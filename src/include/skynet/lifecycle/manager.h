// Incident life-cycle management: what happens to an incident *after*
// the locator opens it and the evaluator ranks it.
//
// The detection pipeline stops at reporting — a flapping link re-opens a
// "new" incident every few minutes, a recovered failure lingers until
// the 15-minute locator timeout, and the operator re-reads the same
// ranked listing with no signal of what changed. The life-cycle manager
// closes that loop. It runs at every engine barrier, *after* the engine
// has closed/snapshotted incidents and *before* anything is reported,
// and maintains lineages — managed incidents keyed by a recurrence
// fingerprint (location subtree root + distinct alert-type set):
//
//   * recurrence fingerprinting: a closed incident that recurs within
//     the configured window links to the prior lineage id instead of
//     minting a fresh managed incident;
//   * flap suppression with hysteresis: a lineage that re-occurs
//     >= flap_threshold times collapses into one `flapping` incident
//     carrying an occurrence count; further re-alerts are suppressed
//     (counted, not re-announced) until a quiet period elapses;
//   * auto-close with recovery confirmation: an engine-open incident
//     whose subtree has been alert-quiet for the quiet period *and*
//     whose root answers a healthy ping probe is closed early in the
//     managed view — and re-opens with its lineage intact if alerts
//     recur;
//   * a ranked "what changed" diff between consecutive barriers
//     (opened / escalated / de-escalated / resolved / flapping),
//     exposed via the CLI `--diff` and the daemon's `GET /v1/diff`.
//
// Determinism contract: the manager consumes the *merged, ranked*
// barrier reports — which are already byte-identical across the
// sequential, sharded, and steal-enabled engines — and applies state
// only at barriers. Its outputs (diffs, managed listing, metrics) are
// therefore byte-identical across engine configurations by
// construction, and its state round-trips through persist snapshots so
// a recovered session reports identically.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "skynet/core/engine_metrics.h"
#include "skynet/core/pipeline.h"

namespace skynet {
class topology;
class network_state;
}  // namespace skynet

namespace skynet::lifecycle {

/// Life-cycle policy knobs (CLI: --flap-threshold, --recurrence-window,
/// --auto-close-quiet).
struct config {
    /// Occurrences at which a lineage collapses into `flapping`.
    int flap_threshold{3};
    /// How long after a lineage closes a matching incident still links
    /// to it instead of minting a new managed incident.
    sim_duration recurrence_window{minutes(30)};
    /// Clean-signal quiet period: no subtree alert activity for this
    /// long (plus healthy reachability) auto-closes an open incident,
    /// and lets a flapping lineage quiesce.
    sim_duration auto_close_quiet{minutes(6)};

    /// Throws skynet_error on nonsensical settings.
    void validate() const;
};

/// Managed-incident state machine:
///   open -> closed            (engine closed it; lineage remembered)
///   open/closed -> flapping   (>= flap_threshold occurrences)
///   flapping -> suppressed    (further re-alerts swallowed)
///   any -> auto_closed        (quiet period + healthy reachability)
///   auto_closed -> open       (recurred: same lineage id, re-alerted)
enum class phase : std::uint8_t {
    open = 0,
    closed = 1,
    flapping = 2,
    suppressed = 3,
    auto_closed = 4,
};

[[nodiscard]] const char* to_string(phase p) noexcept;

/// One managed incident: every engine incident sharing the recurrence
/// fingerprint, across re-opens. `id` is the first member's incident id
/// and never changes — that is the "same lineage id" guarantee.
struct lineage {
    std::uint64_t id{0};
    /// Fingerprint, part 1: the incident root location path.
    std::string root;
    /// Fingerprint, part 2: sorted distinct alert types seen.
    std::vector<std::uint32_t> types;
    phase state{phase::open};
    /// Engine incidents linked so far (== members.size()).
    std::uint32_t occurrences{1};
    /// Re-alerts swallowed while flapping/suppressed.
    std::uint64_t suppressed_realerts{0};
    sim_time first_seen{0};
    /// Latest subtree alert activity (incident when.end) — the clock the
    /// auto-close quiet period runs against.
    sim_time last_activity{0};
    /// Latest barrier at which a member closed.
    sim_time last_closed{0};
    /// Score anchor for the escalation hysteresis band.
    double last_score{0.0};
    double peak_score{0.0};
    /// A member is live in the engine as of the latest barrier.
    bool engine_open{false};
    /// Member incident ids, in link order; members.front() == id.
    std::vector<std::uint64_t> members;
};

/// One line of a diff section.
struct diff_entry {
    std::uint64_t lineage{0};
    std::string root;
    double score{0.0};
    /// Previous score anchor (escalated/de-escalated lines).
    double prev_score{0.0};
    std::uint32_t occurrences{1};
};

/// Ranked "what changed" between two consecutive barriers. Sections are
/// sorted by (score desc, lineage id asc) — same ranking as reports.
struct barrier_diff {
    sim_time at{0};
    std::vector<diff_entry> opened;
    std::vector<diff_entry> escalated;
    std::vector<diff_entry> deescalated;
    std::vector<diff_entry> resolved;
    std::vector<diff_entry> flapping;

    [[nodiscard]] bool any() const noexcept {
        return !opened.empty() || !escalated.empty() || !deescalated.empty() ||
               !resolved.empty() || !flapping.empty();
    }
    /// Human-readable rendering (CLI --diff).
    [[nodiscard]] std::string render() const;
    /// JSON object (daemon GET /v1/diff).
    [[nodiscard]] std::string to_json() const;
};

class manager {
public:
    static constexpr sim_time no_barrier = INT64_MIN;

    /// Serializable manager state, stored in persist snapshots so a
    /// recovered session diffs and suppresses identically.
    struct persist_state {
        sim_time last_barrier{no_barrier};
        lifecycle_metrics counters;
        std::vector<lineage> lineages;
        barrier_diff last_diff;
        /// Closed reports collected across barriers (managed listing).
        std::vector<incident_report> collected;
    };

    /// `topo` powers the auto-close reachability probe; null disables
    /// the probe (quiet period alone decides).
    explicit manager(config cfg, const topology* topo = nullptr);

    /// Applies one barrier: `closed` are the reports the engine just
    /// drained (take_reports), `open` the live snapshot (open_reports),
    /// `state` the network health to confirm recovery against (null =
    /// assume healthy). Barriers at times before the latest applied one
    /// are skipped — that makes re-streamed (durable-resume) barriers
    /// idempotent.
    void on_barrier(sim_time now, std::vector<incident_report> closed,
                    std::span<const incident_report> open, const network_state* state);

    [[nodiscard]] const barrier_diff& last_diff() const noexcept { return diff_; }
    [[nodiscard]] const lifecycle_metrics& metrics() const noexcept { return counters_; }
    [[nodiscard]] sim_time last_barrier() const noexcept { return last_barrier_; }
    [[nodiscard]] const std::vector<lineage>& lineages() const noexcept { return lineages_; }
    [[nodiscard]] const config& options() const noexcept { return cfg_; }

    /// One representative report per lineage — the best-ranked member —
    /// ranked by (peak score desc, lineage id asc). This is the managed
    /// answer to take_reports(): N flaps collapse to one entry.
    [[nodiscard]] std::vector<incident_report> managed_reports() const;

    /// Managed listing: each lineage's representative report plus a
    /// life-cycle annotation (state, occurrences, suppressed count).
    [[nodiscard]] std::string render_managed() const;

    [[nodiscard]] persist_state export_state() const;
    void import_state(persist_state state);

private:
    struct link_result {
        std::size_t index{0};
        bool created{false};
        bool new_member{false};
    };

    [[nodiscard]] link_result link(const incident_report& r, sim_time now);
    [[nodiscard]] std::size_t find_by_member(std::uint64_t incident_id) const;
    [[nodiscard]] std::size_t match_fingerprint(const std::string& root,
                                                const std::vector<std::uint32_t>& types,
                                                sim_time now) const;
    void note_score(lineage& ln, double score);
    [[nodiscard]] bool root_healthy(const lineage& ln, const network_state* state) const;

    config cfg_;
    const topology* topo_;
    sim_time last_barrier_{no_barrier};
    lifecycle_metrics counters_;
    std::vector<lineage> lineages_;
    barrier_diff diff_;
    std::vector<incident_report> collected_;
};

}  // namespace skynet::lifecycle
