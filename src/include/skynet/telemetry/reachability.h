// End-to-end reachability matrix (Figure 7).
//
// Built from ping telemetry between location pairs; the evaluator's
// location zoom-in looks for a *focal point* — a location whose row AND
// column are dark (high loss both as source and destination), which
// pinpoints the incident.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "skynet/topology/location.h"
#include "skynet/topology/location_table.h"

namespace skynet {

class reachability_matrix {
public:
    /// Creates an empty matrix over the given endpoint locations
    /// (typically the clusters of a site or region; granularity "varies
    /// from cluster to region").
    explicit reachability_matrix(std::vector<location> endpoints);

    /// Id-keyed variant: endpoints are interned ids resolved against
    /// `table` (paths are materialized once here, so rendering and the
    /// legacy location-keyed accessors still work).
    reachability_matrix(const location_table& table, std::vector<location_id> endpoints);

    [[nodiscard]] const std::vector<location>& endpoints() const noexcept { return endpoints_; }
    /// Interned endpoint ids; empty when built from string paths.
    [[nodiscard]] const std::vector<location_id>& endpoint_ids() const noexcept {
        return endpoint_ids_;
    }
    [[nodiscard]] std::size_t size() const noexcept { return endpoints_.size(); }

    /// Records a probe result: loss ratio in [0, 1] for src -> dst.
    /// Repeated records for the same pair average. Unknown endpoints are
    /// ignored (probes from outside the matrix scope).
    void record(const location& src, const location& dst, double loss_ratio);
    /// Id-keyed record; only resolvable on an id-built matrix.
    void record(location_id src, location_id dst, double loss_ratio);

    /// Mean observed loss ratio for the pair; 0 when never probed.
    [[nodiscard]] double at(std::size_t src_index, std::size_t dst_index) const;
    [[nodiscard]] double at(const location& src, const location& dst) const;

    /// Finds the focal point: the endpoint whose combined row+column mean
    /// loss is (a) above `min_loss`, and (b) dominant — at least
    /// `dominance` times the mean of all other endpoints' scores.
    /// Returns nullopt when loss is diffuse or absent.
    [[nodiscard]] std::optional<location> focal_point(double min_loss = 0.01,
                                                      double dominance = 3.0) const;

    /// Row/column mean loss for one endpoint (excluding the diagonal).
    [[nodiscard]] double hotspot_score(std::size_t index) const;

    /// ASCII rendering in the style of Figure 7 (percent loss per cell).
    [[nodiscard]] std::string to_string() const;

private:
    struct cell {
        double loss_sum{0.0};
        int samples{0};
    };

    [[nodiscard]] std::optional<std::size_t> index_of(const location& loc) const;
    [[nodiscard]] std::optional<std::size_t> index_of(location_id id) const;

    std::vector<location> endpoints_;
    std::vector<location_id> endpoint_ids_;
    std::unordered_map<location, std::size_t, location_hash> index_;
    std::unordered_map<location_id, std::size_t> id_index_;
    std::vector<cell> cells_;  // row-major size() x size()
};

}  // namespace skynet
