// Customer and SLA-flow registry.
//
// The evaluator's severity equation (Table 3) consumes business data the
// paper pulls from Netflow: which customers ride which circuit sets, how
// important they are (g_i), how many there are (u_i), and which SLA flows
// are committed where. This registry is the synthetic stand-in for that
// production database.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "skynet/common/rng.h"
#include "skynet/topology/topology.h"

namespace skynet {

using customer_id = std::uint32_t;
using sla_flow_id = std::uint32_t;

/// Stability expectation a customer purchased; maps to the importance
/// factor g_i of Equation 1.
enum class customer_tier : std::uint8_t { standard, premium, critical };

[[nodiscard]] std::string_view to_string(customer_tier tier) noexcept;

/// Importance factor contributed by a tier.
[[nodiscard]] constexpr double tier_importance(customer_tier tier) noexcept {
    switch (tier) {
        case customer_tier::standard: return 1.0;
        case customer_tier::premium: return 5.0;
        case customer_tier::critical: return 20.0;
    }
    return 1.0;
}

struct customer {
    customer_id id{};
    std::string name;
    customer_tier tier{customer_tier::standard};
    std::vector<circuit_set_id> circuit_sets;
};

/// A flow with a committed rate (the SLA) pinned to a circuit set. The
/// simulator varies its current rate; a flow whose rate exceeds the
/// committed limit on a degraded set contributes to l_i and L_k.
struct sla_flow {
    sla_flow_id id{};
    customer_id owner{};
    circuit_set_id cset{invalid_circuit_set};
    double committed_gbps{1.0};
};

class customer_registry {
public:
    customer_id add_customer(std::string name, customer_tier tier);
    void attach(customer_id c, circuit_set_id cset);
    sla_flow_id add_sla_flow(customer_id owner, circuit_set_id cset, double committed_gbps);

    [[nodiscard]] const std::vector<customer>& customers() const noexcept { return customers_; }
    [[nodiscard]] const std::vector<sla_flow>& sla_flows() const noexcept { return flows_; }
    [[nodiscard]] const customer& customer_at(customer_id id) const;
    [[nodiscard]] const sla_flow& flow_at(sla_flow_id id) const;

    /// Customers attached to a circuit set.
    [[nodiscard]] std::span<const customer_id> customers_on(circuit_set_id cset) const;
    /// SLA flows pinned to a circuit set.
    [[nodiscard]] std::span<const sla_flow_id> flows_on(circuit_set_id cset) const;

    /// g_i: importance factor of the customers on the set (max of tier
    /// factors; 0 when nobody is attached).
    [[nodiscard]] double importance_factor(circuit_set_id cset) const;
    /// u_i: number of customers on the set.
    [[nodiscard]] int customer_count(circuit_set_id cset) const;
    /// Customers above standard tier across the given sets (U_k).
    [[nodiscard]] int important_customer_count(std::span<const circuit_set_id> csets) const;

    /// Populates a registry over `topo`: customers attach to the
    /// aggregation-tier and internet-entry circuit sets near their
    /// workloads; premium and critical customers also get SLA flows.
    /// Tier mix: ~80 % standard, ~15 % premium, ~5 % critical.
    [[nodiscard]] static customer_registry generate(const topology& topo, int n_customers,
                                                    rng& rand);

private:
    std::vector<customer> customers_;
    std::vector<sla_flow> flows_;
    std::vector<std::vector<customer_id>> customers_by_cset_;
    std::vector<std::vector<sla_flow_id>> flows_by_cset_;

    void ensure_cset(circuit_set_id cset);
};

}  // namespace skynet
