// Alert-storm overload control: admission guard + per-source circuit
// breakers in front of the ingest path.
//
// Severe failures produce O(10^4-10^5) raw alerts (§1, §4.1). The engine
// bounds its queues (PR 3) and survives crashes (PR 4), but nothing
// protects it from a flood that is simply too large, or from a single
// data source emitting sustained garbage. The overload controller sits
// *before* the engine — like the fault injector, it transforms the traced
// alert stream — so the sequential and sharded engines see the identical
// admitted stream and the report-parity invariant is preserved by
// construction.
//
// Two mechanisms, both off by default (the controller is then a strict
// pass-through and the pipeline behaves bit-identically to an unwrapped
// engine):
//
//  * Admission guard: a per-tick-window alert/byte budget. When a window
//    overflows, alerts are shed in priority order — in-window duplicates
//    first, then abnormal/unclassified ("other") alerts, then root-cause
//    alerts, failure alerts last — mirroring the paper's observation that
//    failure alerts dominate the count rules (§4.2), so shedding degrades
//    severity estimates as little as possible.
//
//  * Per-source circuit breakers: a closed -> open -> half-open state
//    machine per data_source, tripping on a sustained rate of malformed /
//    unclassifiable alerts (the same reject reasons the preprocessor
//    uses). An open breaker quarantines its source entirely; after an
//    exponentially backed-off delay it admits a few probe alerts, closing
//    again only when the probes come back clean. One poisoned syslog feed
//    can therefore no longer consume budget that Ping/SNMP need.
//
// Everything is accounted in overload_metrics (engine_metrics::overload).
// Controller state exports/imports through skynet::persist so recovery
// after a crash resumes with identical admission decisions.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "skynet/alert/alert.h"
#include "skynet/alert/type_registry.h"
#include "skynet/common/time.h"
#include "skynet/core/engine_metrics.h"
#include "skynet/sim/trace.h"
#include "skynet/sketch/counting.h"
#include "skynet/topology/topology.h"

namespace skynet::overload {

/// Shedding priority classes, least valuable first. Duplicates go first
/// (their information is already in the window), failure alerts last
/// (they drive the count rules and severity estimates).
enum class shed_class : std::uint8_t { duplicate = 0, other = 1, root_cause = 2, failure = 3 };

/// Per-tick-window admission budget. Zero means "unlimited" for that
/// dimension; both zero disables the guard.
struct admission_config {
    std::uint64_t max_alerts{0};  ///< alerts admitted per tick window
    std::uint64_t max_bytes{0};   ///< approximate payload bytes per window

    [[nodiscard]] bool enabled() const noexcept { return max_alerts != 0 || max_bytes != 0; }
};

/// Circuit-breaker tuning. The observation window is tumbling: counts
/// reset each time it rolls, and the trip condition is evaluated at the
/// rollover (or at a tick barrier), so decisions depend only on the
/// simulated timeline — never on wall-clock — and stay deterministic.
struct breaker_config {
    bool enabled{false};
    sim_duration window{seconds(30)};          ///< tumbling observation window
    std::uint64_t min_samples{20};             ///< don't judge a source on a trickle
    double trip_ratio{0.5};                    ///< bad/total that trips the breaker
    sim_duration backoff_initial{seconds(10)};  ///< first open -> half-open delay
    sim_duration backoff_max{minutes(5)};      ///< cap for the exponential backoff
    std::uint32_t probe_count{3};              ///< clean probes required to re-close
};

struct controller_config {
    admission_config admission;
    breaker_config breaker;
    /// Counting policy for the in-window dedup set and the per-source
    /// alert/byte usage tallies. Below the cardinality threshold both run
    /// exact (bit-identical to a plain set/map); past it new dedup keys
    /// fall back to a count-min sketch whose one-sided error can only
    /// overestimate — i.e. shed *more* duplicates, never fewer.
    sketch::sketch_config sketch{};

    /// True when both mechanisms are off: admit() returns batches
    /// verbatim and touches no counters.
    [[nodiscard]] bool pass_through() const noexcept {
        return !admission.enabled() && !breaker.enabled;
    }

    /// Throws skynet_error on nonsensical settings.
    void validate() const;
};

enum class breaker_state : std::uint8_t { closed = 0, open = 1, half_open = 2 };

[[nodiscard]] std::string_view to_string(breaker_state state) noexcept;

/// Observable per-source breaker state (tests, CLI summary, persist).
struct breaker_status {
    breaker_state state{breaker_state::closed};
    std::uint64_t window_good{0};  ///< clean alerts in the current window
    std::uint64_t window_bad{0};   ///< malformed/unclassifiable in the window
    sim_time window_start{0};
    sim_time reopen_at{0};      ///< when an open breaker goes half-open
    sim_duration backoff{0};    ///< current backoff (doubles per reopen)
    std::uint32_t probes_left{0};
    std::uint64_t trips{0};        ///< lifetime closed -> open transitions
    std::uint64_t quarantined{0};  ///< alerts this breaker refused
};

class controller {
public:
    /// Serializable controller state: admission window progress, the
    /// in-window dedup keys, and every breaker's state machine. Stored in
    /// snapshots so a recovered session sheds identically.
    struct persist_state {
        std::uint64_t window_alerts{0};
        std::uint64_t window_bytes{0};
        std::vector<std::string> dedup_keys;  ///< sorted for determinism
        std::array<breaker_status, data_source_count> breakers{};
        overload_metrics counters;  ///< admission + breaker counters
    };

    controller() = default;
    /// `topo` and `registry` may be null; the corresponding "bad alert"
    /// checks (dangling ids, unknown kind) are then skipped.
    controller(controller_config cfg, const topology* topo, const alert_type_registry* registry);

    [[nodiscard]] const controller_config& config() const noexcept { return cfg_; }
    [[nodiscard]] bool pass_through() const noexcept { return cfg_.pass_through(); }

    /// Runs the batch through breakers then the admission budget,
    /// returning the admitted alerts in their original order. Each
    /// alert's own arrival time drives the breaker state machines.
    [[nodiscard]] std::vector<traced_alert> admit(std::vector<traced_alert> batch);
    /// Same, for a raw batch arriving at a single instant.
    [[nodiscard]] std::vector<raw_alert> admit(std::vector<raw_alert> batch, sim_time now);

    /// Tick barrier: closes the admission window (budget + dedup set
    /// reset) and rolls/evaluates breaker observation windows.
    void on_tick(sim_time now);

    [[nodiscard]] const overload_metrics& metrics() const noexcept { return metrics_; }
    [[nodiscard]] const breaker_status& breaker(data_source source) const noexcept {
        return breakers_[static_cast<std::size_t>(source)];
    }

    /// Alerts admitted from `source` in the current tick window.
    [[nodiscard]] std::uint64_t source_window_alerts(data_source source) const;
    /// Approximate bytes admitted from `source` in the current tick window.
    [[nodiscard]] std::uint64_t source_window_bytes(data_source source) const;
    /// Lifetime count of dedup/usage decisions served by the sketch
    /// instead of an exact container. Callers fold this into
    /// engine_metrics::degraded.sketched.
    [[nodiscard]] std::uint64_t sketched_decisions() const noexcept {
        return dedup_policy_.sketched_adds() + usage_.sketched_adds();
    }

    [[nodiscard]] persist_state export_state() const;
    void import_state(const persist_state& state);

private:
    struct verdict {
        bool keep{true};
        shed_class cls{shed_class::other};
        std::uint64_t bytes{0};
    };

    [[nodiscard]] bool is_bad(const raw_alert& raw) const;
    [[nodiscard]] shed_class classify(const raw_alert& raw, bool duplicate) const;
    [[nodiscard]] std::string dedup_key(const raw_alert& raw) const;
    /// Records `key` in the window dedup structure and reports whether it
    /// was already seen. Exact below the cardinality threshold; sketched
    /// (may over-report duplicates, never under-report) above it.
    [[nodiscard]] bool note_dedup(const std::string& key);
    void account_usage(data_source source, std::uint64_t bytes);
    void run_breaker(const raw_alert& raw, sim_time now, verdict& v);
    void roll_window(breaker_status& st, sim_time now);
    /// Computes keep/shed for the batch; positions map 1:1 to input.
    std::vector<verdict> decide(const std::vector<const raw_alert*>& alerts,
                                const std::vector<sim_time>& arrivals);

    controller_config cfg_;
    const topology* topo_{nullptr};
    const alert_type_registry* registry_{nullptr};
    std::uint64_t window_alerts_{0};
    std::uint64_t window_bytes_{0};
    std::unordered_set<std::string> dedup_seen_;
    std::array<breaker_status, data_source_count> breakers_{};
    overload_metrics metrics_;
    /// Window dedup overflow: once dedup_seen_ crosses the configured
    /// threshold, new keys are counted in the sketch instead of growing
    /// the exact set. Reset each tick window; never persisted — a
    /// recovered session starts in the exact regime (see DESIGN.md).
    sketch::counting_policy dedup_policy_;
    /// Per-source admitted alert/byte tallies for the current window,
    /// keyed 2*source (alerts) and 2*source+1 (bytes).
    sketch::counting_policy usage_;
};

}  // namespace skynet::overload
