// ASCII incident timeline.
//
// Renders a set of incidents as a time-bucketed chart — the at-a-glance
// view of an on-call shift: when each incident opened and closed, how its
// alert activity ramped, and its final severity. Complements the §7.1
// voting graph (which answers *where*; the timeline answers *when*).
#pragma once

#include <string>
#include <vector>

#include "skynet/core/pipeline.h"

namespace skynet {

struct timeline_options {
    /// Character columns used for the time axis.
    int columns = 60;
    /// Truncate incident labels to this many characters.
    int label_width = 36;
};

/// Renders incidents into a chart like:
///
///   00:01:00                                             00:14:20
///   Region-1|...|LS-1            ######====....           72.4
///   Region-2|...|Cluster-3           ##==                  3.1
///
/// `#` marks buckets inside the incident's alert window with failure
/// alerts, `=` buckets with only other categories, `.` the open-but-idle
/// tail. Incidents are ordered by severity.
[[nodiscard]] std::string render_timeline(const std::vector<incident_report>& reports,
                                          const timeline_options& options = {});

}  // namespace skynet
