// Write-ahead alert journal.
//
// Binary, append-only record of everything a durable session fed its
// engine: raw-alert batches and tick/finish barriers, in order. On
// recovery the journal suffix past the newest snapshot is replayed to
// reconstruct the exact engine state at the crash point.
//
// File layout: an 8-byte magic ("SKYNETJ1") followed by records framed
//   [u8 type][u32 payload_len LE][u32 crc32c(payload) LE][payload]
// Batch payloads are a compact little-endian encoding (alert count,
// then per alert: arrival, source, timestamp, length-prefixed strings,
// presence flags, and the metric as a raw double bit pattern — replay
// is bit-exact by construction); the
// barrier payload is the 8-byte LE tick time. A torn tail — short
// header, payload overrunning the file, or CRC mismatch — marks the end
// of the valid prefix: recovery counts and drops it, never aborts.
// Writes are buffered and flushed every `flush_every` records
// (group-commit); finish barriers flush, and the durable session
// flushes before every checkpoint (a checkpoint must not reference
// unflushed bytes) and before a crash-drill exit.
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "skynet/sim/trace.h"

namespace skynet::persist {

inline constexpr std::string_view journal_magic = "SKYNETJ1";
inline constexpr const char* journal_filename = "journal.skywal";

enum class record_type : std::uint8_t {
    batch = 1,   ///< one ingest batch (binary-encoded payload)
    tick = 2,    ///< tick barrier (8-byte LE time)
    finish = 3,  ///< finish barrier (8-byte LE time)
};

/// One decoded journal record.
struct journal_record {
    record_type type{record_type::batch};
    std::vector<traced_alert> batch;  ///< batch records only
    sim_time now{0};                  ///< tick/finish records only
};

/// Bytes of a record frame header: [u8 type][u32 len LE][u32 crc32c LE].
inline constexpr std::size_t record_header_bytes = 1 + 4 + 4;

/// Encodes `batch` into the compact binary batch payload (clears `out`
/// first). Public because the format doubles as the daemon's streaming
/// ingest wire format: a client frames these payloads exactly like
/// journal records and the server replays them bit-exactly.
void encode_batch_payload(std::string& out, std::span<const traced_alert> batch);

/// Decodes a batch payload produced by encode_batch_payload; false on
/// malformed/truncated bytes (out may then hold a partial prefix).
[[nodiscard]] bool decode_batch_payload(std::string_view payload, std::vector<traced_alert>& out);

/// Encodes a tick/finish barrier payload (the 8-byte LE sim time).
[[nodiscard]] std::string encode_barrier_payload(sim_time now);

/// Decodes a barrier payload; false unless it is exactly 8 bytes.
[[nodiscard]] bool decode_barrier_payload(std::string_view payload, sim_time& now);

class journal_writer {
public:
    /// Opens `path` for appending, writing the magic when the file is
    /// new or empty. Throws skynet_error when the file cannot be opened.
    explicit journal_writer(const std::string& path, std::size_t flush_every = 16);
    ~journal_writer();

    journal_writer(const journal_writer&) = delete;
    journal_writer& operator=(const journal_writer&) = delete;

    void append_batch(std::span<const traced_alert> batch);
    void append_barrier(record_type type, sim_time now);

    /// Pushes buffered records to the OS; counted in flushes().
    void flush();

    [[nodiscard]] std::uint64_t records_written() const noexcept { return records_; }
    [[nodiscard]] std::uint64_t flushes() const noexcept { return flushes_; }
    /// File offset after everything appended so far (what a snapshot
    /// records as its journal position).
    [[nodiscard]] std::uint64_t bytes_written() const noexcept { return offset_; }

private:
    void append(record_type type, std::string_view payload, bool force_flush);

    std::FILE* file_{nullptr};
    std::string payload_buf_;  ///< reused batch-encoding scratch
    std::size_t flush_every_;
    std::size_t unflushed_{0};
    std::uint64_t records_{0};
    std::uint64_t flushes_{0};
    std::uint64_t offset_{0};
};

/// Result of scanning a journal (from an offset, usually a snapshot's).
struct journal_read_result {
    std::vector<journal_record> records;
    /// Absolute offset one past the last intact record (resume-append
    /// truncates the file here before writing).
    std::uint64_t valid_bytes{0};
    /// Bytes of torn/corrupt tail dropped (0 for a clean journal).
    std::uint64_t truncated_tail_bytes{0};
    /// Why the scan stopped early; empty for a clean journal.
    std::string truncation_reason;
    /// The file does not exist (a valid empty journal, not an error).
    bool missing{false};
};

/// Decodes records from byte `from` (0 verifies the magic first) to the
/// end of the valid prefix. Corruption is reported, never thrown.
[[nodiscard]] journal_read_result read_journal(const std::string& path, std::uint64_t from = 0);

/// Drops a torn tail so a recovered session can append safely. Returns
/// false when the file cannot be resized.
[[nodiscard]] bool truncate_journal(const std::string& path, std::uint64_t valid_bytes);

}  // namespace skynet::persist
