// Recovery coordinator: newest valid snapshot + journal suffix replay.
//
// recover() rebuilds a freshly constructed engine (same topology,
// registry and config as the crashed run) to the exact state at the
// crash point:
//   1. scan the journal for its valid prefix (torn/corrupt tails are
//      counted, dropped, and trimmed so the resumed session can append);
//   2. load the newest snapshot that passes its CRC, parses, and does
//      not reference journal bytes past the durable prefix — corrupt or
//      inconsistent snapshots are skipped with a reason, never fatal;
//   3. restore the location table (paths re-interned in id order) and
//      the engine/log state from the snapshot, or start from the fresh
//      engine when no snapshot survived;
//   4. replay the journal records past the snapshot's offset.
// The recovered engine's future outputs are bit-identical to an
// uninterrupted run over the same input (replay-mode ticks; see
// DESIGN.md "Durability & recovery" for the network_state convention).
//
// Degradation (corruption) is reported in recovery_result; structural
// impossibility (snapshot shard count != engine, location table drawn
// from a different topology) throws skynet_error.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "skynet/core/engine_metrics.h"
#include "skynet/core/incident_log.h"
#include "skynet/core/sharded_engine.h"
#include "skynet/persist/journal.h"
#include "skynet/persist/snapshot.h"
#include "skynet/sim/network_state.h"
#include "skynet/topology/location_table.h"

namespace skynet::persist {

struct recovery_options {
    /// Checkpoint directory holding journal.skywal and snap-*.skysnap.
    std::string dir;
    /// State replayed barriers tick against. Required when the journal
    /// suffix contains barrier records (the replay convention passes the
    /// idle state the original replay run used).
    const network_state* tick_state{nullptr};
    /// Trim the journal's torn tail on disk so the resumed session can
    /// append after the valid prefix.
    bool repair_journal{true};
    /// Optional overload controller to restore from the snapshot's
    /// overload section. Only for direct continuation (no re-streaming):
    /// a resumed session that re-admits the regenerated stream through a
    /// fresh controller re-derives the same state deterministically and
    /// must NOT also import it.
    overload::controller* controller{nullptr};
    /// Optional life-cycle manager. Unlike the controller, it is *always*
    /// restored from the snapshot (both continuation styles): a resumed
    /// session skips the durable prefix at the engine, so the manager can
    /// never re-derive lineage state from a re-streamed input. It is also
    /// fed every barrier replayed from the journal suffix, so its diffs
    /// and suppression decisions match the uninterrupted run exactly.
    lifecycle::manager* lifecycle{nullptr};
    /// Called after each replayed barrier with the reports the engine
    /// closed at it (already linked into `lifecycle` when that is set).
    /// Lets a daemon append them to its incident store at the true
    /// barrier time instead of batching them into the next live barrier.
    std::function<void(sim_time, const std::vector<incident_report>&)> replay_closed{};
};

struct recovery_result {
    /// records_replayed / truncated_tail_bytes / snapshots_skipped are
    /// filled here; feed this into durable_options::base so the resumed
    /// session's metrics tell the whole story.
    recovery_metrics metrics;
    /// Human-readable trail: what was restored, skipped, and why.
    std::vector<std::string> notes;
    /// Journal prefix that survived (resume appends from here).
    std::uint64_t journal_valid_bytes{0};
    /// Total records accounted for: snapshot base + replayed suffix. A
    /// resumed durable_session skips this many regenerated records.
    std::uint64_t journal_records{0};
    /// Sequence the next checkpoint should use.
    std::uint64_t next_snapshot_seq{1};
    /// Time of the last barrier seen (snapshot or replay); 0 when none.
    sim_time last_barrier_time{0};
    /// The journal ended with a finish record — the run had completed.
    bool saw_finish{false};
};

/// Recovers a sequential engine. The snapshot must hold exactly one
/// shard state. `log` may be null (snapshot log entries are dropped).
[[nodiscard]] recovery_result recover(skynet_engine& engine, location_table& locations,
                                      incident_log* log, const recovery_options& opts);

/// Recovers a sharded engine; the snapshot's shard count must match.
[[nodiscard]] recovery_result recover(sharded_engine& engine, location_table& locations,
                                      incident_log* log, const recovery_options& opts);

}  // namespace skynet::persist
