#pragma once

/// Shared tab-separated text codec for incident reports and their parts.
///
/// Extracted from the snapshot writer/parser so that every persist-format
/// consumer — checkpoints, and the federation digests built on top of them —
/// renders and parses alerts, severities, incidents, and reports with the
/// *same* byte-exact encoding. The format is line-oriented: each record is a
/// tag followed by tab-separated fields, doubles travel as 16-hex-digit bit
/// patterns (exact round-trip, no locale), and multi-line records (INC, REP)
/// nest their children on the following lines.
///
/// The `cursor` is the matching incremental parser: it walks a
/// `std::string_view` line by line, reports the first error with its line
/// number, and latches — once failed, every subsequent call returns false, so
/// callers can chain parses and check once at the end.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "skynet/core/pipeline.h"

namespace skynet::persist::codec {

// ---------------------------------------------------------------- writing

/// Appends one field preceded by its tab separator.
void put(std::string& out, std::string_view field);
void put_u64(std::string& out, std::uint64_t v);
void put_i64(std::string& out, std::int64_t v);

/// Doubles as 16-hex-digit bit patterns: exact round-trip, no locale.
void put_double(std::string& out, double v);

/// The 15 tab-separated alert fields (no leading tag, no newline).
void put_alert(std::string& out, const structured_alert& a);

/// The 8 tab-separated severity fields (no leading tag, no newline).
void put_severity(std::string& out, const severity_breakdown& s);

/// "INC" record plus one "IA" line per alert, newline-terminated.
void put_incident(std::string& out, const incident& inc);

/// "REP" record plus its nested incident, newline-terminated.
void put_report(std::string& out, const incident_report& r);

// ---------------------------------------------------------------- parsing

std::vector<std::string_view> split_tabs(std::string_view line);

bool parse_u64(std::string_view s, std::uint64_t& out);
bool parse_i64(std::string_view s, std::int64_t& out);
bool parse_double_hex(std::string_view s, double& out);

/// Line cursor over a text body with one-line error reporting.
struct cursor {
    std::string_view text;
    std::size_t pos{0};
    int line_no{0};
    std::string err;

    bool fail(const std::string& message);

    /// Next line split on tabs; fails at end of input.
    bool next(std::vector<std::string_view>& fields);

    /// Next line, required to carry `tag` and exactly `n` fields after it.
    bool expect(std::string_view tag, std::size_t n, std::vector<std::string_view>& fields);

    bool u64(std::string_view s, std::uint64_t& out);
    bool i64(std::string_view s, std::int64_t& out);
    bool u32(std::string_view s, std::uint32_t& out);
    bool dbl(std::string_view s, double& out);
    bool flag(std::string_view s, bool& out);
};

inline constexpr std::size_t alert_fields = 15;

/// Parses the 15 alert fields starting at fields[at].
bool get_alert(cursor& c, const std::vector<std::string_view>& fields, std::size_t at,
               structured_alert& a);

/// Parses the 8 severity fields starting at fields[at].
bool get_severity(cursor& c, const std::vector<std::string_view>& fields, std::size_t at,
                  severity_breakdown& s);

/// Parses an "INC" record and its "IA" alert lines.
bool get_incident(cursor& c, incident& inc);

/// Parses a "REP" record and its nested incident.
bool get_report(cursor& c, incident_report& r);

}  // namespace skynet::persist::codec
