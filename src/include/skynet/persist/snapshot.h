// Barrier-consistent engine snapshots.
//
// A snapshot captures, at one tick/finish barrier, everything needed to
// restart the pipeline as if it had never stopped: the interned
// location table (paths in id order), every shard engine's persist
// state, the region routing table, optional incident-log entries, and
// the journal offset the snapshot corresponds to. Recovery loads the
// newest valid snapshot and replays the journal suffix past its offset.
//
// Format: versioned, line-oriented text with tab-separated fields
// (the same conventions as topology/serialization.h), ending in a
// whole-file CRC-32C trailer line. Files are written to a temporary
// name and atomically renamed, so a crash mid-write leaves either the
// previous snapshot set or a complete new file — never a half-written
// one that parses.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "skynet/common/error.h"
#include "skynet/core/incident_log.h"
#include "skynet/core/sharded_engine.h"
#include "skynet/lifecycle/manager.h"
#include "skynet/overload/controller.h"

namespace skynet::persist {

inline constexpr std::string_view snapshot_header = "# skynet snapshot v1";

/// Everything one snapshot file holds. A sequential skynet_engine is
/// stored as a one-shard engines state with no region entries.
struct snapshot_data {
    std::uint64_t seq{0};
    /// Journal offset this snapshot is consistent with: replay starts
    /// here.
    std::uint64_t journal_bytes{0};
    /// Journal records accounted for up to that offset (resume
    /// continues the count).
    std::uint64_t journal_records{0};
    /// Barrier time the snapshot was taken at.
    sim_time barrier_time{0};
    /// Interned location paths in id order (id 1 first; the root is
    /// implicit). Restored before any engine state so every stored
    /// location_id resolves identically.
    std::vector<std::string> locations;
    sharded_engine::persist_state engines;
    /// Overload-controller state (admission window, dedup keys, breaker
    /// machines, counters). All-default when no controller was active —
    /// the section is always written so the format stays fixed-shape.
    overload::controller::persist_state overload;
    /// Life-cycle manager state (lineages, diff, collected reports).
    /// All-default when the lifecycle layer is off; the section is
    /// always written so the format stays fixed-shape.
    lifecycle::manager::persist_state lifecycle;
    std::vector<incident_log::entry> log;
};

/// Serializes to the text format, CRC trailer included.
[[nodiscard]] std::string render_snapshot(const snapshot_data& data);

struct snapshot_parse_result {
    std::optional<snapshot_data> data;
    /// Parse/CRC failure with the offending line; empty on success.
    std::string error;

    [[nodiscard]] bool ok() const noexcept { return data.has_value(); }
};

/// Verifies the CRC trailer and parses. Corruption is reported in
/// `error`, never thrown.
[[nodiscard]] snapshot_parse_result parse_snapshot(std::string_view text);

/// `snap-<seq>.skysnap` (zero-padded so lexical and numeric order agree).
[[nodiscard]] std::string snapshot_filename(std::uint64_t seq);

/// Writes `dir/snap-<seq>.skysnap` via a temp file + atomic rename.
[[nodiscard]] error write_snapshot(const std::string& dir, const snapshot_data& data);

struct skipped_snapshot {
    std::string file;
    std::string reason;
};

struct snapshot_pick {
    /// Newest snapshot that passed CRC + parse + journal-offset checks;
    /// nullopt when none did (recovery then replays the whole journal).
    std::optional<snapshot_data> data;
    std::string file;
    /// Newer candidates passed over, with reasons (surfaces corruption
    /// instead of hiding it).
    std::vector<skipped_snapshot> skipped;
};

/// Scans `dir` for snapshot files, newest sequence first, and returns
/// the first valid one. A snapshot whose journal offset lies past
/// `journal_valid_bytes` references journal data that never became
/// durable and is skipped.
[[nodiscard]] snapshot_pick load_newest_snapshot(const std::string& dir,
                                                 std::uint64_t journal_valid_bytes);

}  // namespace skynet::persist
