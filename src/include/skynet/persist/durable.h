// durable_session<Engine>: the write-ahead path of the persist layer.
//
// Wraps a sequential or sharded engine so that every ingest batch and
// every barrier is journaled *before* it is applied (WAL ordering: a
// crash between the two is recovered by replaying the record), and a
// barrier-consistent snapshot is checkpointed every N barriers. For the
// sharded engine the checkpoint rides the existing tick barrier —
// export_state() drains all queues first, so every shard is captured at
// the same logical instant without any new synchronization.
//
// Resuming after recover(): construct the session with resume_records /
// next_snapshot_seq / base taken from the recovery_result and re-stream
// the same input; the first resume_records regenerated records are
// already durable and applied, so the session skips them (neither
// journaled nor fed to the engine) and seamlessly continues after.
//
// crash_after is the fault hook behind the crash drill: after the Nth
// journal record is appended and flushed — before it reaches the engine
// — the process exits hard (std::_Exit), simulating a crash at an exact
// record boundary.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <functional>
#include <span>
#include <string>

#include "skynet/core/incident_log.h"
#include "skynet/core/sharded_engine.h"
#include "skynet/persist/journal.h"
#include "skynet/persist/snapshot.h"
#include "skynet/topology/location_table.h"

namespace skynet::persist {

struct durable_options {
    /// Directory for journal.skywal and snap-*.skysnap (created).
    std::string dir;
    /// Barriers between checkpoints; 0 journals without checkpointing.
    std::uint64_t checkpoint_every{8};
    /// Journal records between flushes (checkpoints and finish flush
    /// unconditionally).
    std::size_t flush_every{16};
    /// Crash drill: exit the process after this many journal records
    /// (total, including any resumed base); 0 disables.
    std::uint64_t crash_after{0};
    /// Resume: records already durable and applied via recover().
    std::uint64_t resume_records{0};
    /// Resume style. false (the default) is the re-streaming convention:
    /// the caller regenerates the input from the start, so the first
    /// resume_records records are skipped (already durable and applied).
    /// true is direct continuation (the daemon's convention): the engine
    /// already holds the recovered state and only *new* input follows,
    /// so nothing is skipped — resume_records only seeds the record
    /// count for checkpoint bookkeeping.
    bool continue_after_recovery{false};
    /// Resume: recovery_result::next_snapshot_seq.
    std::uint64_t next_snapshot_seq{1};
    /// Resume: recovery_result::metrics, folded into metrics().
    recovery_metrics base{};
    /// Checkpoint inputs: the pipeline's location table (required for
    /// checkpoints) and an optional incident log to snapshot alongside.
    location_table* locations{nullptr};
    incident_log* log{nullptr};
    /// Optional overload controller guarding this session's ingest;
    /// checkpoints then capture its admission/breaker state so recovery
    /// resumes with identical shedding decisions.
    overload::controller* controller{nullptr};
    /// Optional life-cycle manager; checkpoints then capture its lineage
    /// state so a recovered session suppresses and diffs identically.
    lifecycle::manager* lifecycle{nullptr};
    /// Invoked after the engine applies each (non-skipped) barrier and
    /// *before* any checkpoint taken at it. The caller drains the
    /// engine's closed reports and feeds the life-cycle manager here, so
    /// a checkpoint at barrier B captures the manager's state *through*
    /// B — not one barrier behind with B's closures still undrained.
    std::function<void(sim_time, const network_state&)> barrier_hook{};
};

/// Exit code of a crash_after-triggered exit (mirrors SIGKILL's shell
/// convention so drill scripts can tell it from a clean failure).
inline constexpr int crash_exit_code = 137;

namespace detail {

[[nodiscard]] inline sharded_engine::persist_state unified_export(skynet_engine& engine) {
    sharded_engine::persist_state state;
    state.shards.push_back(engine.export_state());
    return state;
}

[[nodiscard]] inline sharded_engine::persist_state unified_export(sharded_engine& engine) {
    return engine.export_state();
}

[[nodiscard]] inline std::string ensure_dir(const std::string& dir) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);  // journal open reports failure
    return dir + "/" + journal_filename;
}

}  // namespace detail

template <typename Engine>
class durable_session {
public:
    durable_session(Engine& engine, durable_options opts)
        : engine_(engine),
          opts_(std::move(opts)),
          journal_(detail::ensure_dir(opts_.dir), opts_.flush_every),
          records_total_(opts_.resume_records),
          skip_remaining_(opts_.continue_after_recovery ? 0 : opts_.resume_records),
          seq_(opts_.next_snapshot_seq) {}

    void ingest_batch(std::span<const traced_alert> batch) {
        if (skip_one()) return;
        journal_.append_batch(batch);
        ++records_total_;
        crash_check();
        engine_.ingest_batch(batch);
    }

    void ingest_batch(std::span<const raw_alert> batch, sim_time now) {
        scratch_.clear();
        scratch_.reserve(batch.size());
        for (const raw_alert& raw : batch) {
            scratch_.push_back(traced_alert{.alert = raw, .arrival = now});
        }
        ingest_batch(std::span<const traced_alert>(scratch_));
    }

    void tick(sim_time now, const network_state& state) {
        if (skip_one()) return;
        journal_.append_barrier(record_type::tick, now);
        ++records_total_;
        crash_check();
        engine_.tick(now, state);
        if (opts_.barrier_hook) opts_.barrier_hook(now, state);
        ++barriers_;
        maybe_checkpoint(now);
    }

    void finish(sim_time now, const network_state& state) {
        if (skip_one()) return;
        journal_.append_barrier(record_type::finish, now);
        ++records_total_;
        crash_check();
        engine_.finish(now, state);
        if (opts_.barrier_hook) opts_.barrier_hook(now, state);
    }

    /// Recovery block for engine_metrics: what this session journaled
    /// and checkpointed, on top of what recovery replayed (opts.base).
    [[nodiscard]] recovery_metrics metrics() const noexcept {
        recovery_metrics m = opts_.base;
        m.journal_records_written += journal_.records_written();
        m.journal_flushes += journal_.flushes();
        m.checkpoints_written += checkpoints_;
        return m;
    }

    /// Unconditional barrier-consistent checkpoint (graceful-shutdown
    /// path: the daemon drains ingest, then checkpoints before exiting
    /// regardless of the checkpoint_every cadence). No-op without a
    /// location table. Returns false when the snapshot failed to write
    /// (the reason lands in last_error()).
    bool checkpoint_now(sim_time now) {
        if (opts_.locations == nullptr) return true;
        return write_checkpoint(now);
    }

    /// Non-fatal durability degradation (a checkpoint that failed to
    /// write); empty while healthy. The journal stays authoritative, so
    /// a failed checkpoint costs replay time, not correctness.
    [[nodiscard]] const std::string& last_error() const noexcept { return last_error_; }

    [[nodiscard]] Engine& engine() noexcept { return engine_; }

private:
    [[nodiscard]] bool skip_one() noexcept {
        if (skip_remaining_ == 0) return false;
        --skip_remaining_;
        return true;
    }

    void crash_check() {
        if (opts_.crash_after == 0 || records_total_ < opts_.crash_after) return;
        journal_.flush();
        std::_Exit(crash_exit_code);
    }

    void maybe_checkpoint(sim_time now) {
        if (opts_.checkpoint_every == 0 || opts_.locations == nullptr) return;
        if (barriers_ % opts_.checkpoint_every != 0) return;
        (void)write_checkpoint(now);
    }

    bool write_checkpoint(sim_time now) {
        journal_.flush();  // the snapshot references bytes_written()
        snapshot_data data;
        data.seq = seq_;
        data.journal_bytes = journal_.bytes_written();
        data.journal_records = records_total_;
        data.barrier_time = now;
        // Engines first: the sharded export syncs its workers, so the
        // location table is guaranteed quiescent for the walk below.
        data.engines = detail::unified_export(engine_);
        const std::size_t interned = opts_.locations->size();
        data.locations.reserve(interned > 0 ? interned - 1 : 0);
        for (std::size_t id = 1; id < interned; ++id) {
            data.locations.push_back(
                opts_.locations->path_of(static_cast<location_id>(id)).to_string());
        }
        if (opts_.log != nullptr) data.log = opts_.log->entries();
        if (opts_.controller != nullptr) data.overload = opts_.controller->export_state();
        if (opts_.lifecycle != nullptr) data.lifecycle = opts_.lifecycle->export_state();
        if (error e = write_snapshot(opts_.dir, data)) {
            last_error_ = e.message();
            return false;
        }
        ++seq_;
        ++checkpoints_;
        return true;
    }

    Engine& engine_;
    durable_options opts_;
    journal_writer journal_;
    std::uint64_t records_total_{0};
    std::uint64_t skip_remaining_{0};
    std::uint64_t seq_{1};
    std::uint64_t barriers_{0};
    std::uint64_t checkpoints_{0};
    std::string last_error_;
    std::vector<traced_alert> scratch_;
};

}  // namespace skynet::persist
