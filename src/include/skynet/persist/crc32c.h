// CRC-32C (Castagnoli) checksums for the durability layer.
//
// Every journal record payload and every snapshot file carries a CRC so
// torn writes and bit rot are detected on recovery instead of silently
// corrupting replayed state. Uses the SSE4.2 crc32 instruction when the
// CPU has it (checksumming sits on the hot ingest path and dominates
// journal overhead otherwise), falling back to a slicing-by-8 table
// implementation elsewhere; both compute the same checksum.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace skynet::persist {

/// CRC-32C over `len` bytes, continuing from `seed` (pass a previous
/// result to checksum data in chunks; 0 starts a fresh checksum).
[[nodiscard]] std::uint32_t crc32c(const void* data, std::size_t len,
                                   std::uint32_t seed = 0) noexcept;

[[nodiscard]] inline std::uint32_t crc32c(std::string_view data,
                                          std::uint32_t seed = 0) noexcept {
    return crc32c(data.data(), data.size(), seed);
}

}  // namespace skynet::persist
