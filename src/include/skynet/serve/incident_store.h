// Persistent windowed incident store behind GET /v1/incidents.
//
// Wraps the core incident_log with what a long-running query service
// needs and the batch CLI never did: an id index, a per-entry alert-type
// index, cursor pagination, and a reader/writer lock so queries run
// concurrently with streaming ingest. Writes happen only at tick/finish
// barriers (the daemon drains the engine's finished reports under the
// store's exclusive lock), so every query observes a
// snapshot-at-barrier: all incidents closed by some barrier, never a
// half-applied batch.
//
// Pagination is by log ordinal (append position), not offset: a cursor
// taken from one page stays valid as later barriers append more
// entries, and re-reading a page is stable because the log is
// append-only.
#pragma once

#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "skynet/core/incident_log.h"

namespace skynet::serve {

class incident_store {
public:
    static constexpr std::size_t default_page_limit = 100;
    static constexpr std::size_t max_page_limit = 1000;

    /// One /v1/incidents query. Unset optionals mean "no constraint".
    struct query_params {
        std::optional<std::uint64_t> id;  ///< exact incident id (still filtered)
        location scope;                   ///< root = anywhere
        std::string type;                 ///< structured alert type name
        std::optional<sim_time> from;     ///< window overlap, inclusive
        std::optional<sim_time> to;
        double min_score{0.0};
        bool only_actionable{false};
        std::uint64_t cursor{0};               ///< resume ordinal from a prior page
        std::optional<std::size_t> limit;      ///< page size; 0 probes without items
    };

    /// One matched entry, copied out so the result outlives the lock.
    struct item {
        incident_log::entry entry;
        std::uint64_t ordinal{0};  ///< append position in the log
    };

    struct query_result {
        std::vector<item> items;
        /// Ordinal to pass as `cursor` to continue the scan.
        std::uint64_t next_cursor{0};
        bool has_more{false};
        /// Log size at query time (not the match count).
        std::uint64_t total{0};
        /// Barrier the answered snapshot corresponds to.
        sim_time barrier_time{0};
    };

    /// Appends the reports closed by the barrier at `now` and publishes
    /// `now` as the store's barrier time (also when `reports` is empty).
    /// Exclusive lock: queries observe either none or all of them.
    void append_closed(const std::vector<incident_report>& reports, sim_time now);

    /// Rebuilds the id/type indexes from log() after an external restore
    /// (crash recovery populates the log behind the store's back).
    void reindex();

    [[nodiscard]] query_result query(const query_params& params) const;

    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::uint64_t out_of_order() const;
    [[nodiscard]] sim_time barrier_time() const;

    /// Every stored report in the global report_before ranking — the
    /// same order the batch CLI prints, used to build /v1/report.
    [[nodiscard]] std::vector<incident_report> ranked_reports() const;

    /// Reports closed strictly after barrier `t`, in log order. The
    /// federation emitter's recovery resync uses this to rebuild the
    /// digests its journal is missing relative to a recovered engine.
    [[nodiscard]] std::vector<incident_report> reports_closed_after(sim_time t) const;

    /// The wrapped log, for recovery wiring (checkpoint snapshots point
    /// at it). Not thread-safe: barrier/startup thread only, never while
    /// listeners are serving.
    [[nodiscard]] incident_log& log() noexcept { return log_; }

private:
    void index_entry(std::size_t ordinal);
    [[nodiscard]] bool matches(const incident_log::entry& e, std::size_t ordinal,
                               const query_params& params) const;

    mutable std::shared_mutex mu_;
    incident_log log_;
    std::unordered_map<std::uint64_t, std::size_t> by_id_;
    /// Per-entry sorted distinct structured-alert type names.
    std::vector<std::vector<std::string>> types_;
    sim_time barrier_{0};
};

}  // namespace skynet::serve
