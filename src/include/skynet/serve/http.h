// Minimal embedded HTTP/1.1 surface for the daemon's JSON API.
//
// Deliberately tiny: request-per-connection ("Connection: close"), no
// TLS, no chunked encoding, percent-decoded query parameters, bounded
// header and body sizes. Enough to serve /v1/health, /v1/report,
// /v1/incidents and POST /v1/ingest to curl and the CLI's --connect
// client without pulling in a dependency the container does not have.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "skynet/serve/net.h"

namespace skynet::serve {

struct http_request {
    std::string method;  ///< uppercase: GET, POST, ...
    std::string path;    ///< percent-decoded, query string stripped
    /// Percent-decoded query parameters in order of appearance.
    std::vector<std::pair<std::string, std::string>> params;
    std::string body;

    /// Last value for `key`, or nullptr when absent.
    [[nodiscard]] const std::string* param(std::string_view key) const;
};

struct http_reply {
    int status{200};
    std::string content_type{"application/json"};
    std::string body;
};

using http_handler = std::function<http_reply(const http_request&)>;

/// Parses a request target ("/v1/incidents?loc=R1&limit=5") into path +
/// params. Exposed for the daemon's unit tests.
[[nodiscard]] http_request parse_target(std::string_view method, std::string_view target);

/// Percent-decodes %XX escapes and '+' (as space).
[[nodiscard]] std::string url_decode(std::string_view text);

/// One-listener HTTP server: accepts on a background thread, parses the
/// request, calls the handler, writes the reply, closes. Malformed
/// requests get a 400 without reaching the handler.
class http_server {
public:
    static constexpr std::size_t max_head_bytes = 64u << 10;
    static constexpr std::size_t max_body_bytes = 16u << 20;

    [[nodiscard]] error start(const socket_addr& addr, http_handler handler);
    void stop() { listener_.stop(); }
    [[nodiscard]] const socket_addr& bound() const noexcept { return listener_.bound(); }

private:
    void handle(int fd);

    listener listener_;
    http_handler handler_;
};

/// Blocking HTTP/1.1 client for the CLI, tests and bench.
struct http_response {
    int status{0};
    std::string body;
};

/// Sends one request to `addr` and reads the reply; false with `err` on
/// transport or parse failure. `path_and_query` is sent verbatim.
[[nodiscard]] bool http_call(const socket_addr& addr, std::string_view method,
                             std::string_view path_and_query, std::string_view body,
                             http_response& out, std::string& err);

}  // namespace skynet::serve
