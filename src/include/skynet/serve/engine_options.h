// One service-facing option surface for the whole stack.
//
// Five PRs of growth accreted options in layers: the pipeline's
// skynet_config, the sharded engine's overflow/watchdog knobs, the
// persist layer's checkpoint settings, the overload controller's
// admission/breaker switches, and now the daemon's listen addresses.
// engine_options is the single aggregate the batch CLI and the daemon
// both parse into, with one validate() that cross-checks every block
// and returns structured errors (option + message) instead of
// exit(2)-ing from scattered call sites.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "skynet/core/pipeline.h"
#include "skynet/core/sharded_engine.h"
#include "skynet/lifecycle/manager.h"
#include "skynet/overload/controller.h"

namespace skynet::serve {

/// One rejected setting: which option and why.
struct option_error {
    std::string option;   ///< flag spelling, e.g. "--checkpoint-every"
    std::string message;

    [[nodiscard]] std::string render() const { return option + ": " + message; }
};

/// What the process is being asked to be.
enum class run_mode : std::uint8_t {
    batch,   ///< classic one-shot: simulate/replay, print, exit
    serve,   ///< long-running daemon (--serve / --http)
    client,  ///< talk to a daemon (--connect)
    help,    ///< --help
};

/// Daemon-only settings.
struct serve_options {
    std::string ingest_addr;  ///< --serve: streaming-ingest socket
    std::string http_addr;    ///< --http: JSON API socket

    [[nodiscard]] bool enabled() const noexcept {
        return !ingest_addr.empty() || !http_addr.empty();
    }
};

/// Federation settings (--federate and friends). A process is either a
/// per-region emitter (a daemon whose barrier reports stream out as
/// digests) or the global aggregator (no engine, merges digests from
/// every region); the one --federate flag picks the role:
///   --federate emit:REGION@ADDR    this daemon is region REGION, its
///                                  digests go to the aggregator at ADDR
///   --federate aggregate:ADDR      run the aggregator, listening on ADDR
struct federate_options {
    std::string emit_region;     ///< emit: region name
    std::string emit_addr;       ///< emit: aggregator address to dial
    std::string aggregate_addr;  ///< aggregate: federation listen address
    std::string journal_dir;     ///< --fed-journal: digest journal directory
    int heartbeat_ms{1000};      ///< --fed-heartbeat-ms; 0 = no idle sessions
    // Staleness thresholds (see federate::health_config); must increase.
    std::int64_t lag_ms{2000};
    std::int64_t stale_ms{5000};
    std::int64_t partition_ms{15000};

    [[nodiscard]] bool emit() const noexcept { return !emit_addr.empty(); }
    [[nodiscard]] bool aggregate() const noexcept { return !aggregate_addr.empty(); }
    [[nodiscard]] bool enabled() const noexcept { return emit() || aggregate(); }
};

/// Client-only settings (--connect and friends).
struct client_options {
    std::string connect;      ///< daemon address to talk to
    std::string get_path;     ///< --get: HTTP GET this path (with query)
    std::string post_path;    ///< --post: HTTP POST this path
    std::string data_file;    ///< --data-file: body for --post
    std::string stream_file;  ///< --stream-trace: trace to stream-ingest

    [[nodiscard]] bool enabled() const noexcept { return !connect.empty(); }
};

/// The unified option aggregate. Field defaults are the library
/// defaults; parse_cli() fills it from argv and validate() cross-checks
/// the blocks for the chosen run mode.
struct engine_options {
    // Topology & scenario.
    std::string topo_preset{"small"};
    std::string topo_file;
    std::string export_topo;
    std::string scenario_name{"random"};
    bool severe{true};
    bool extended{false};
    int duration_min{5};
    int customers{400};
    double noise{0.02};
    std::uint64_t seed{1};

    // Pipeline & sharding.
    /// Upper bound for --shards. Shards cost a thread, a bounded queue
    /// and a steal board each; past a few hundred the fan-out stops
    /// meaning "one worker per region" and starts meaning "misparsed
    /// flag", so validate() refuses rather than oversubscribing.
    static constexpr int kMaxShards = 256;
    skynet_config pipeline{};
    int shards{0};  ///< 0 = sequential engine; --shards auto = hardware_concurrency
    bool steal{true};  ///< --steal on|off: deterministic work stealing between shards
    std::string overflow{"block"};
    std::uint64_t watchdog_deadline{0};  ///< ms; 0 = off

    // Overload control.
    std::uint64_t admission_budget{0};  ///< alerts per tick window; 0 = off
    bool breaker{false};

    // Incident life-cycle management (--lifecycle and friends).
    bool lifecycle{false};          ///< --lifecycle on|off (default off)
    int flap_threshold{3};          ///< re-opens within the window that mark flapping
    int recurrence_window_min{30};  ///< minutes a closed lineage stays linkable
    int auto_close_quiet_min{6};    ///< quiet minutes before auto-close
    bool diff{false};               ///< --diff: print the per-barrier "what changed" diff

    // Durability.
    std::string checkpoint_dir;
    int checkpoint_every{8};
    bool recover{false};
    std::uint64_t crash_after{0};

    // Recording / replay / fault injection.
    std::string record_file;
    std::string replay_file;
    std::string faults_spec;

    // Reporting.
    bool json{false};
    bool timeline{false};
    bool metrics{false};
    std::string health_json;

    // Service surfaces.
    serve_options serve;
    client_options client;
    federate_options federate;

    // Reconnect policy shared by the --connect client and the federation
    // emitter: --retry N attempts after the first try, exponential
    // backoff from --retry-base-ms with deterministic jitter.
    int retry{0};
    int retry_base_ms{100};

    /// --resume-stream: a recovered daemon expects its feeder to replay
    /// the original stream from the top and silently skips the prefix the
    /// journal already applied (instead of re-closing incidents). Only
    /// meaningful with --recover.
    bool resume_stream{false};

    /// The overload controller config these options describe.
    [[nodiscard]] overload::controller_config overload_config() const;

    /// The life-cycle manager config these options describe.
    [[nodiscard]] lifecycle::config lifecycle_config() const;

    /// The sharded-engine config these options describe (overflow must
    /// have validated; an unparsable token falls back to block).
    [[nodiscard]] sharded_config sharded(const std::string& parsed_overflow = {}) const;

    /// Cross-checks every block for `mode`. Empty vector = valid. Each
    /// entry names the offending flag, so callers can print
    ///   skynet_cli: --crash-after: requires --checkpoint-dir
    /// or serialize the list into an API error.
    [[nodiscard]] std::vector<option_error> validate(run_mode mode) const;
};

/// parse_cli() outcome: the aggregate, the mode argv implies, and any
/// parse-level errors (unknown flag, missing value, malformed number).
struct cli_parse_result {
    engine_options opts;
    run_mode mode{run_mode::batch};
    std::vector<option_error> errors;

    [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
};

/// Parses argv (both the batch CLI's classic flags and the daemon's)
/// without exiting; callers decide how to surface the errors. Mode:
/// --help wins, then --connect (client), then --serve/--http (serve),
/// else batch.
[[nodiscard]] cli_parse_result parse_cli(int argc, const char* const* argv);

/// The full usage text (batch + daemon + client flags).
[[nodiscard]] std::string cli_usage();

}  // namespace skynet::serve
