// POSIX socket plumbing for the serve subsystem.
//
// Small, dependency-free wrappers shared by the daemon's two listeners
// (streaming ingest + HTTP API) and the client helpers (CLI --connect,
// tests, bench): address parsing, a blocking dial, bounded read/write,
// and an accept-loop listener that handles one connection at a time on
// its own thread. Addresses use an explicit scheme so drills can pick
// collision-free unix sockets and production runs a TCP port:
//   unix:/path/to.sock      stream socket in the filesystem namespace
//   tcp:HOST:PORT           IPv4; PORT 0 binds an ephemeral port, the
//                           resolved port is reported via bound()
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

#include "skynet/common/error.h"

namespace skynet::serve {

/// A parsed listen/dial address (see the header comment for syntax).
struct socket_addr {
    bool is_unix{false};
    std::string path;  ///< unix: filesystem path
    std::string host;  ///< tcp: dotted quad or name (resolved at dial/bind)
    std::uint16_t port{0};

    /// Canonical "unix:..." / "tcp:host:port" rendering.
    [[nodiscard]] std::string to_string() const;
};

/// Parses "unix:PATH" or "tcp:HOST:PORT"; nullopt on malformed input.
[[nodiscard]] std::optional<socket_addr> parse_addr(std::string_view text);

/// Blocking connect. Returns the connected fd, or -1 with the reason in
/// `err`.
[[nodiscard]] int dial(const socket_addr& addr, std::string& err);

/// Writes all of `data` (retrying short writes); false on error.
[[nodiscard]] bool write_all(int fd, std::string_view data);

/// Reads until EOF or `max_bytes`, appending to `out`; false on a read
/// error (EOF is success).
[[nodiscard]] bool read_all(int fd, std::string& out, std::size_t max_bytes = 64u << 20);

/// Reads whatever is available within `timeout_ms` (poll + one recv).
/// Returns bytes read, 0 on timeout, -1 on EOF/error.
[[nodiscard]] int read_some(int fd, char* buf, std::size_t cap, int timeout_ms);

/// Reads up to and including one '\n' (stripped from `line`, trailing
/// '\r' too), waiting at most `timeout_ms` overall. False on
/// EOF-before-newline, error, timeout, or a line longer than `max_len`.
[[nodiscard]] bool read_line(int fd, std::string& line, int timeout_ms,
                             std::size_t max_len = 4096);

/// Bounded-retry schedule with exponential backoff and deterministic
/// jitter, shared by the --connect client and the federation emitter.
/// `attempts` counts retries *after* the first try; attempt 0's delay is
/// the base, doubling per attempt up to `max_ms`. The jitter is a pure
/// function of (seed, attempt), so replays and tests see identical
/// schedules while distinct seeds (e.g. per region) de-synchronize
/// reconnect storms.
struct retry_policy {
    int attempts{0};
    int base_ms{100};
    int max_ms{5000};
    std::uint64_t seed{0};
};

/// Delay before retry number `attempt` (0-based): a deterministic point
/// in [cap/2, cap] where cap = min(base_ms << attempt, max_ms).
[[nodiscard]] std::chrono::milliseconds backoff_delay(const retry_policy& policy,
                                                      int attempt) noexcept;

/// Accept loop on a dedicated thread. Connections are handled one at a
/// time by the provided handler, which borrows the fd (the listener
/// closes it afterwards). stop() closes the listen socket, wakes the
/// loop, and joins the thread — an in-flight handler should watch its
/// own stop flag so shutdown stays prompt.
class listener {
public:
    listener() = default;
    ~listener() { stop(); }

    listener(const listener&) = delete;
    listener& operator=(const listener&) = delete;

    /// Binds `addr` (unlinking a stale unix socket path, resolving an
    /// ephemeral tcp port) and starts accepting. Empty error = running.
    [[nodiscard]] error start(const socket_addr& addr, std::function<void(int fd)> handler);

    /// Idempotent: closes the listen socket and joins the accept thread.
    void stop();

    /// The bound address with the real port filled in (valid after a
    /// successful start()).
    [[nodiscard]] const socket_addr& bound() const noexcept { return bound_; }

private:
    void loop();

    socket_addr bound_{};
    std::function<void(int)> handler_;
    int fd_{-1};
    std::atomic<bool> stopping_{false};
    std::thread thread_;
};

}  // namespace skynet::serve
