// Streaming-ingest wire protocol.
//
// The daemon's ingest socket speaks the SKYNETJ1 journal stream format,
// verbatim: the 8-byte magic, then framed records
//   [u8 type][u32 payload_len LE][u32 crc32c(payload) LE][payload]
// with the journal's batch/tick/finish record types and payload
// encodings (see skynet/persist/journal.h). One format, two transports:
// a recorded journal file can be streamed to a live daemon unchanged,
// and a capture of the socket bytes is a replayable journal. After the
// finish record the server answers a single status line —
//   OK <records> <alerts>\n        every record applied
//   ERR <reason>\n                 stream rejected (corrupt frame, ...)
// — and closes the connection.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "skynet/persist/journal.h"
#include "skynet/serve/net.h"

namespace skynet::serve {

/// Frames one wire/journal record (header + payload, no magic).
[[nodiscard]] std::string frame_record(persist::record_type type, std::string_view payload);

/// Incremental decoder for the wire byte stream: feed() arbitrary
/// chunks, drain complete records with next(). The magic is consumed
/// first; any framing violation (bad magic, unknown type, CRC mismatch,
/// oversized payload) latches corrupt() with a reason — a TCP stream
/// has no torn-tail ambiguity to tolerate, unlike a crashed journal.
class wire_decoder {
public:
    /// Upper bound on a single payload; a length field beyond this is
    /// treated as corruption rather than an allocation request.
    static constexpr std::uint32_t max_payload_bytes = 64u << 20;

    void feed(std::string_view bytes);

    /// Next complete record, or nullopt when more bytes are needed (or
    /// the stream is corrupt).
    [[nodiscard]] std::optional<persist::journal_record> next();

    [[nodiscard]] bool corrupt() const noexcept { return corrupt_; }
    [[nodiscard]] const std::string& corruption_reason() const noexcept { return reason_; }
    [[nodiscard]] std::uint64_t records_decoded() const noexcept { return records_; }

private:
    void fail(std::string reason);

    std::string buf_;
    std::size_t pos_{0};
    bool seen_magic_{false};
    bool corrupt_{false};
    std::string reason_;
    std::uint64_t records_{0};
};

/// Outcome of one streaming-ingest session.
struct stream_stats {
    std::uint64_t records{0};  ///< wire records sent (batches + barriers)
    std::uint64_t alerts{0};   ///< alerts inside the batch records
    std::string status;        ///< server status line, trailing newline stripped
    [[nodiscard]] bool ok() const noexcept { return status.starts_with("OK"); }
};

/// Streams a trace to a daemon's ingest socket with the batch CLI's
/// replay cadence: alerts accumulate into a batch record until the next
/// arrival is `tick_every` or more past the last barrier, a tick record
/// follows at that arrival, and a finish record lands `finish_grace`
/// after the last arrival. Identical batching to examples/skynet_cli's
/// --replay path, so a daemon fed this stream reaches bit-identical
/// reports. Returns nullopt with `err` set on transport failure.
[[nodiscard]] std::optional<stream_stats> stream_trace(const socket_addr& addr,
                                                       std::span<const traced_alert> alerts,
                                                       sim_duration tick_every,
                                                       sim_duration finish_grace,
                                                       std::string& err);

/// Streams pre-decoded journal records (e.g. read_journal() output) to
/// a daemon's ingest socket, re-framing them unchanged. The stream must
/// end with a finish record for the server to acknowledge; when
/// `append_finish_if_missing` is set one is synthesized at the last
/// barrier/arrival time plus `finish_grace`.
[[nodiscard]] std::optional<stream_stats> stream_records(
    const socket_addr& addr, std::span<const persist::journal_record> records,
    bool append_finish_if_missing, sim_duration finish_grace, std::string& err);

}  // namespace skynet::serve
