// skynet::serve::daemon — the long-running service mode.
//
// One process, two sockets, one engine:
//   - streaming ingest (--serve): clients stream SKYNETJ1-framed alert
//     batches and tick/finish barriers (see wire.h); every batch passes
//     the overload admission guard before reaching the engine, exactly
//     like the batch CLI's guarded replay;
//   - HTTP/JSON API (--http): GET /v1/health (the canonical
//     engine_metrics::to_json() schema), GET /v1/report (the batch
//     CLI's report listing, byte-identical for the same input), GET
//     /v1/incidents (windowed, filtered, cursor-paginated queries
//     against the incident store), POST /v1/ingest (one-shot trace-text
//     ingest for curl).
//
// Concurrency model — snapshot-at-barrier:
//   - engine_mu_ serializes every engine mutation (wire connections,
//     POST /v1/ingest, shutdown drain). The engine is never read or
//     written outside it.
//   - At each barrier the daemon drains the engine's finished reports
//     into the incident_store (reader/writer locked) and publishes an
//     immutable health snapshot. Queries touch only the store and the
//     published snapshot, so they run concurrently with ingest and
//     always observe a barrier-consistent state, never a half-applied
//     batch.
//
// Durability: with --checkpoint-dir every applied record is journaled
// first (the wire format IS the journal format, so the journal is a
// byte-accurate capture of the stream) and checkpoints ride the barrier
// cadence. --recover restores the newest valid snapshot + journal
// suffix, then continues serving — direct continuation, nothing
// re-streamed. SIGTERM drains in-flight connections, takes a final
// checkpoint, and exits 0.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "skynet/core/pipeline.h"
#include "skynet/core/sharded_engine.h"
#include "skynet/lifecycle/manager.h"
#include "skynet/overload/controller.h"
#include "skynet/persist/durable.h"
#include "skynet/serve/engine_options.h"
#include "skynet/serve/http.h"
#include "skynet/serve/incident_store.h"
#include "skynet/serve/net.h"
#include "skynet/sim/network_state.h"

namespace skynet::serve {

class daemon {
public:
    /// All references non-owning and must outlive the daemon. `syslog`
    /// may be null. `opts` must have passed validate(run_mode::serve).
    daemon(const topology& topo, const customer_registry& customers,
           const alert_type_registry& registry, const syslog_classifier* syslog,
           engine_options opts);
    ~daemon();

    daemon(const daemon&) = delete;
    daemon& operator=(const daemon&) = delete;

    /// Builds the engine (recovering first with --recover), binds the
    /// configured sockets and starts serving. Empty error = running.
    [[nodiscard]] error start();

    /// Blocks until request_stop(), then drains, checkpoints and tears
    /// down. Returns the process exit code (0 = clean shutdown).
    int run();

    /// Async-signal-safe shutdown trigger (call from SIGTERM/SIGINT
    /// handlers or another thread).
    void request_stop() noexcept;

    /// Bound addresses with ephemeral ports resolved; empty when that
    /// surface is not configured. Valid after start().
    [[nodiscard]] std::string ingest_addr() const;
    [[nodiscard]] std::string http_addr() const;

    /// The HTTP routing table, callable without sockets (unit tests
    /// drive the API through this; the real server calls it too).
    [[nodiscard]] http_reply handle(const http_request& req);

    [[nodiscard]] incident_store& store() noexcept { return store_; }

    // Federation hooks — how the digest emitter rides the daemon without
    // the serve layer linking against skynet_federate. All three must be
    // set before start() (the daemon never synchronizes hook swaps).

    /// Called at the end of every applied barrier, under engine_mu_,
    /// with the reports that barrier closed. Keep it non-blocking: the
    /// emitter only encodes and queues here.
    void set_barrier_hook(
        std::function<void(const std::vector<incident_report>&, sim_time, bool)> hook) {
        barrier_hook_ = std::move(hook);
    }
    /// Called while building each health snapshot so external
    /// subsystems (the emitter) can merge their metrics blocks in.
    void set_metrics_hook(std::function<void(engine_metrics&)> hook) {
        metrics_hook_ = std::move(hook);
    }
    /// Called once in start() after recovery completes and before any
    /// listener binds — the emitter's chance to resync a digest journal
    /// that fell behind the recovered engine state.
    void set_recovered_hook(std::function<void()> hook) { recovered_hook_ = std::move(hook); }

    /// Barrier clock / finish flag as of the last applied barrier.
    [[nodiscard]] sim_time last_barrier() {
        std::lock_guard lock(engine_mu_);
        return last_barrier_;
    }
    [[nodiscard]] bool finished() {
        std::lock_guard lock(engine_mu_);
        return saw_finish_;
    }

private:
    void handle_ingest_conn(int fd);
    /// Admission guard + engine ingest for one batch (takes engine_mu_).
    void apply_batch(std::vector<traced_alert> batch);
    /// Tick/finish barrier + report drain + snapshot publish (takes
    /// engine_mu_). Backwards barriers (a replayed stream older than
    /// the engine's clock) are dropped.
    void apply_barrier(sim_time now, bool finish);
    /// Recomputes and swaps the published health snapshot. engine_mu_
    /// must be held (reads engine metrics).
    void publish_locked();

    [[nodiscard]] http_reply get_health() const;
    [[nodiscard]] http_reply get_report(const http_request& req) const;
    [[nodiscard]] http_reply get_incidents(const http_request& req) const;
    [[nodiscard]] http_reply get_diff();
    [[nodiscard]] http_reply post_ingest(const http_request& req);

    /// Drains the engine's finished reports and, with the life-cycle
    /// layer on, feeds them (plus the live open snapshot) to the
    /// manager. engine_mu_ must be held.
    [[nodiscard]] std::vector<incident_report> drain_reports_locked(sim_time now);

    template <typename Fn>
    decltype(auto) with_engine(Fn&& fn) {
        return sharded_ ? fn(*sharded_) : fn(*seq_);
    }
    template <typename Fn>
    void with_sink(Fn&& fn) {
        if (dur_sharded_) {
            fn(*dur_sharded_);
        } else if (dur_seq_) {
            fn(*dur_seq_);
        } else if (sharded_) {
            fn(*sharded_);
        } else {
            fn(*seq_);
        }
    }
    [[nodiscard]] recovery_metrics durable_metrics() const;
    bool durable_checkpoint(sim_time now);

    const topology& topo_;
    const customer_registry& customers_;
    const alert_type_registry& registry_;
    const syslog_classifier* syslog_;
    engine_options opts_;
    network_state idle_;
    overload::controller guard_;

    /// --lifecycle on: recurrence linking, flap suppression, auto-close
    /// and the /v1/diff surface. Mutated only under engine_mu_.
    std::optional<lifecycle::manager> lifecycle_;
    /// With a durable session AND the life-cycle layer on, the session's
    /// barrier_hook drains each barrier's reports here (pre-checkpoint);
    /// apply_barrier then consumes the stash instead of re-draining.
    std::vector<incident_report> barrier_reports_;

    std::optional<skynet_engine> seq_;
    std::optional<sharded_engine> sharded_;
    std::unique_ptr<persist::durable_session<skynet_engine>> dur_seq_;
    std::unique_ptr<persist::durable_session<sharded_engine>> dur_sharded_;
    recovery_metrics recovered_base_{};

    incident_store store_;
    listener ingest_listener_;
    http_server http_;

    std::mutex engine_mu_;
    sim_time last_barrier_{0};
    bool saw_finish_{false};

    std::function<void(const std::vector<incident_report>&, sim_time, bool)> barrier_hook_;
    std::function<void(engine_metrics&)> metrics_hook_;
    std::function<void()> recovered_hook_;

    /// --resume-stream: wire records in this ingest prefix were already
    /// applied from the journal during recovery; skip them instead of
    /// re-applying. Only the single-threaded ingest listener touches the
    /// position counter.
    std::uint64_t resume_skip_{0};
    std::uint64_t resume_pos_{0};

    mutable std::mutex pub_mu_;
    std::string pub_health_{"{}\n"};

    std::atomic<bool> stopping_{false};
    int stop_pipe_[2]{-1, -1};

    std::atomic<std::uint64_t> wire_conns_{0};
    std::atomic<std::uint64_t> wire_records_{0};
    std::atomic<std::uint64_t> wire_alerts_{0};
};

}  // namespace skynet::serve
