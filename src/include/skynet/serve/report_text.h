// The one report-listing renderer.
//
// The batch CLI's stdout listing and the daemon's GET /v1/report body
// must never drift apart — the serve_drill parity check diffs them
// byte for byte. Both call this instead of hand-rolling the loop.
#pragma once

#include <span>
#include <string>

#include "skynet/core/pipeline.h"

namespace skynet::serve {

struct report_listing_options {
    bool json{false};      ///< digest JSON per incident instead of render()
    bool timeline{false};  ///< prepend the ASCII timeline
};

/// "incidents: N\n\n" header, optional timeline, then one rendered
/// incident per line group — exactly what the batch CLI prints after
/// its run summary. `reports` must already be report_before-ranked.
[[nodiscard]] std::string render_report_listing(std::span<const incident_report> reports,
                                                const report_listing_options& options = {});

}  // namespace skynet::serve
