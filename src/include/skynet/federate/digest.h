// Federation digest format: the unit of multi-region streaming.
//
// A region daemon periodically condenses the incident reports closed at
// a barrier into a *digest* — sequence-numbered, region-tagged, carrying
// the full ranked reports in the persist layer's text codec — and
// streams it to the global aggregator. The wire mirrors the SKYNETJ1
// design exactly: an 8-byte magic ("SKYNETF1"), then records framed
//   [u8 type][u32 payload_len LE][u32 crc32c(payload) LE][payload]
// with two record types: hello (payload = region name, opens a session)
// and digest. One format, two transports, again: the emitter's digest
// journal on disk is the same byte stream minus the magic/hello, so a
// recovering emitter replays its own journal to rebuild the send queue
// and the catch-up state.
//
// Session protocol (emitter side):
//   dial -> magic + hello(region) -> read "HAVE <last_seq>\n"
//        -> send every digest frame with seq > last_seq -> shutdown(WR)
//        -> read "OK <last_seq> <applied>\n"
// A session with nothing new to send still runs the handshake — that is
// the heartbeat that keeps the region marked live on the aggregator.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "skynet/common/error.h"
#include "skynet/core/pipeline.h"

namespace skynet::federate {

inline constexpr std::string_view fed_magic = "SKYNETF1";
inline constexpr const char* digest_journal_filename = "digests.skyfed";

enum class fed_record : std::uint8_t {
    hello = 1,   ///< session opener; payload = region name
    digest = 2,  ///< one incident digest (text payload, see below)
};

/// One region digest. The text payload is a header line
///   DIG\t<seq>\t<barrier>\t<finish>\t<nreports>\t<region>
/// followed by <nreports> REP blocks in the persist report codec —
/// byte-identical to how the same reports land in a checkpoint.
struct region_digest {
    std::string region;
    std::uint64_t seq{0};  ///< 1-based, strictly increasing per region
    sim_time barrier{0};   ///< sim time of the barrier that closed these reports
    bool finish{false};    ///< true when the region's trace finished
    std::vector<incident_report> reports;
};

/// Encodes the digest text payload (header line + report blocks).
[[nodiscard]] std::string encode_digest_payload(const region_digest& d);

/// Decodes a digest payload; false with `err` set on malformed bytes.
[[nodiscard]] bool decode_digest_payload(std::string_view payload, region_digest& d,
                                         std::string& err);

/// Frames one federation record (header + payload, no magic).
[[nodiscard]] std::string frame_fed_record(fed_record type, std::string_view payload);

/// One decoded federation frame.
struct fed_frame {
    fed_record type{fed_record::hello};
    std::string payload;
};

/// Incremental decoder for the federation byte stream; same contract as
/// serve::wire_decoder — feed() arbitrary chunks, drain frames with
/// next(), any framing violation latches corrupt() with a reason.
class fed_decoder {
public:
    static constexpr std::uint32_t max_payload_bytes = 64u << 20;

    void feed(std::string_view bytes);
    [[nodiscard]] std::optional<fed_frame> next();

    [[nodiscard]] bool corrupt() const noexcept { return corrupt_; }
    [[nodiscard]] const std::string& corruption_reason() const noexcept { return reason_; }
    [[nodiscard]] std::uint64_t frames_decoded() const noexcept { return frames_; }

private:
    void fail(std::string reason);

    std::string buf_;
    std::size_t pos_{0};
    bool seen_magic_{false};
    bool corrupt_{false};
    std::string reason_;
    std::uint64_t frames_{0};
};

/// Result of scanning an emitter's digest journal.
struct digest_journal_read {
    std::vector<region_digest> digests;
    /// Offset one past the last intact digest (resume-append truncates
    /// the file here before writing).
    std::uint64_t valid_bytes{0};
    std::uint64_t truncated_tail_bytes{0};
    std::string truncation_reason;  ///< empty for a clean journal
    bool missing{false};            ///< no file yet (a valid empty journal)
};

/// Scans `path` with the journal layer's torn-tail tolerance: a short
/// header, overrunning payload, CRC mismatch, or undecodable digest
/// marks the end of the valid prefix — counted and dropped, never an
/// abort.
[[nodiscard]] digest_journal_read read_digest_journal(const std::string& path);

/// Append-side of the digest journal: framed digest records after the
/// magic, flushed per append (digests ride the barrier cadence, so
/// group commit would buy nothing and cost catch-up fidelity).
class digest_journal_writer {
public:
    /// Opens `path` for appending, writing the magic when new/empty.
    /// Throws skynet_error when the file cannot be opened.
    explicit digest_journal_writer(const std::string& path);
    ~digest_journal_writer();

    digest_journal_writer(const digest_journal_writer&) = delete;
    digest_journal_writer& operator=(const digest_journal_writer&) = delete;

    /// Appends one already-framed digest record and flushes.
    void append_frame(std::string_view frame);

    [[nodiscard]] std::uint64_t bytes_written() const noexcept { return offset_; }

private:
    std::FILE* file_{nullptr};
    std::uint64_t offset_{0};
};

}  // namespace skynet::federate
