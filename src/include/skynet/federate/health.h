// Region health: the aggregator's staleness state machine.
//
// Every emitter session (digests or a bare heartbeat handshake) touches
// the region's last-contact clock; health is then a pure function of the
// elapsed wall time since that touch:
//
//   live ──lag_ms──▶ lagging ──stale_ms──▶ stale ──partition_ms──▶ partitioned
//
// The transitions are thresholds on one monotonically growing quantity,
// so the state machine needs no events, no timers, and no per-region
// threads — the aggregator classifies at query time. A reconnect resets
// the clock and the region snaps straight back to live; the catch-up
// digests it replays restore the *content* independently of the health
// label (graceful degradation: a stale region's last known reports keep
// serving, annotated, until then).
#pragma once

#include <cstdint>
#include <string_view>

namespace skynet::federate {

enum class region_state : std::uint8_t {
    live = 0,         ///< heard from within lag_ms
    lagging = 1,      ///< quiet for lag_ms, digests likely queuing
    stale = 2,        ///< quiet for stale_ms, view is old but served
    partitioned = 3,  ///< quiet for partition_ms, link presumed down
};

[[nodiscard]] constexpr std::string_view to_string(region_state s) noexcept {
    switch (s) {
        case region_state::live: return "live";
        case region_state::lagging: return "lagging";
        case region_state::stale: return "stale";
        case region_state::partitioned: return "partitioned";
    }
    return "?";
}

/// Thresholds in wall-clock milliseconds since last contact; must be
/// strictly increasing (validated at the options layer).
struct health_config {
    std::int64_t lag_ms{2000};
    std::int64_t stale_ms{5000};
    std::int64_t partition_ms{15000};
};

[[nodiscard]] constexpr region_state classify(std::int64_t since_contact_ms,
                                              const health_config& cfg) noexcept {
    if (since_contact_ms >= cfg.partition_ms) return region_state::partitioned;
    if (since_contact_ms >= cfg.stale_ms) return region_state::stale;
    if (since_contact_ms >= cfg.lag_ms) return region_state::lagging;
    return region_state::live;
}

}  // namespace skynet::federate
