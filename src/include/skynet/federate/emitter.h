// Per-region digest emitter: the robust half of the federation link.
//
// The daemon hands every barrier's closed reports to publish(); the
// emitter encodes the digest, appends it to its journal (flushed per
// digest — the journal IS the retransmit queue across restarts), and a
// sender thread streams everything unacked to the aggregator in short
// sessions (see digest.h for the protocol). Robustness contract:
//
//   - Sequence numbers: digests are numbered per region; the aggregator
//     replies with its high-water mark ("HAVE n"), so every session is
//     an exact catch-up — nothing duplicated, nothing skipped.
//   - Journal-backed replay: start() reloads the digest journal
//     (trimming a torn tail) so a restarted emitter still holds every
//     unacked digest.
//   - Bounded retry: each send cycle dials with cfg.retry attempts and
//     exponential backoff + deterministic per-region jitter (see
//     serve::backoff_delay); failures just leave digests queued for the
//     next cycle — the daemon's ingest path never blocks on the link.
//   - Heartbeats: with nothing queued, a session still runs every
//     heartbeat_ms so the aggregator can tell "idle region" from
//     "partitioned region".
//
// publish() is called under the daemon's engine lock: it only encodes,
// appends to the journal, and queues — all socket I/O lives on the
// sender thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "skynet/common/error.h"
#include "skynet/core/engine_metrics.h"
#include "skynet/federate/digest.h"
#include "skynet/serve/net.h"

namespace skynet::federate {

struct emitter_config {
    std::string region;
    std::string aggregator_addr;  ///< "unix:..." / "tcp:host:port"
    /// Directory for the digest journal; empty = in-memory queue only
    /// (no replay across restarts).
    std::string journal_dir;
    int heartbeat_ms{1000};        ///< 0 disables idle heartbeat sessions
    int session_timeout_ms{2000};  ///< per handshake/ack line read
    serve::retry_policy retry{};   ///< seed 0 = derived from the region name
};

class digest_emitter {
public:
    explicit digest_emitter(emitter_config cfg);
    ~digest_emitter();

    digest_emitter(const digest_emitter&) = delete;
    digest_emitter& operator=(const digest_emitter&) = delete;

    /// Parses the address, reloads the journal (truncating a torn
    /// tail), and starts the sender thread. Empty error = running.
    [[nodiscard]] error start();

    /// Final single-attempt flush of anything unacked, then joins the
    /// sender thread. Idempotent.
    void stop();

    /// Queues one digest for the barrier's closed reports. Digests for
    /// barriers at or before the last published one are dropped (the
    /// barrier clock only moves forward; the one exception is a finish
    /// upgrading a tick at the same barrier) — that rule is what makes a
    /// recovered daemon re-applying a replayed stream publish each
    /// barrier's digest exactly once.
    void publish(const std::vector<incident_report>& reports, sim_time barrier, bool finish);

    /// One synchronous send cycle (with retries); true when everything
    /// published so far is acked. Test/shutdown hook.
    bool flush_now();

    /// Next sequence number to be assigned (last journaled + 1).
    [[nodiscard]] std::uint64_t next_seq() const;
    /// Barrier of the newest published digest; sim_time min when none.
    [[nodiscard]] sim_time last_barrier() const;
    /// Aggregator's acked high-water mark.
    [[nodiscard]] std::uint64_t acked_seq() const noexcept {
        return acked_.load(std::memory_order_relaxed);
    }

    /// Emitter-side federation counters (merged into /v1/health).
    [[nodiscard]] federation_metrics metrics() const;

private:
    void loop();
    bool session_with_retries();
    bool run_session(std::string& err);

    emitter_config cfg_;
    serve::socket_addr addr_{};
    serve::retry_policy retry_{};

    mutable std::mutex mu_;
    std::condition_variable cv_;
    /// Every journaled digest, framed and ready to send, seq-tagged.
    std::vector<std::pair<std::uint64_t, std::string>> frames_;
    std::uint64_t next_seq_{1};
    sim_time last_barrier_{std::numeric_limits<sim_time>::min()};
    bool last_finish_{false};
    bool stop_{false};

    std::unique_ptr<digest_journal_writer> journal_;
    std::thread thread_;

    std::atomic<std::uint64_t> acked_{0};
    std::atomic<std::uint64_t> emitted_{0};
    std::atomic<std::uint64_t> emitted_bytes_{0};
    std::atomic<std::uint64_t> sessions_ok_{0};
    std::atomic<std::uint64_t> sessions_failed_{0};
    std::atomic<std::uint64_t> retries_{0};
};

}  // namespace skynet::federate
