// Global aggregator: merges per-region digests into one ranked view.
//
// Two sockets, no engine:
//   - federation ingest (--federate aggregate:ADDR): emitters run short
//     sessions (hello -> "HAVE <seq>" -> digest frames -> "OK ...");
//     sequence gating makes the merge exactly-once — a digest at or
//     below the region's high-water mark is dropped as a duplicate, a
//     jump past it is counted as a gap (the next session's HAVE triggers
//     the replay);
//   - HTTP/JSON API (--http): GET /v1/report is the cross-region ranked
//     listing in the exact batch-CLI format, GET /v1/health the
//     canonical engine_metrics JSON with the federation block populated,
//     GET /v1/regions the per-region staleness detail.
//
// Graceful degradation is structural: the merged view is a plain
// in-memory map guarded by a shared_mutex, so queries never wait on the
// network — a partitioned region simply stops updating its slice and
// ages through the health states (see health.h) while its last known
// reports keep serving. Determinism: merged reports are ordered by
// (score desc, region asc, incident id asc) — a total order independent
// of digest arrival interleaving, which is what makes the partition
// parity guarantee ("recovered region converges to the byte-identical
// report") hold by construction.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "skynet/common/error.h"
#include "skynet/core/engine_metrics.h"
#include "skynet/federate/digest.h"
#include "skynet/federate/health.h"
#include "skynet/serve/http.h"
#include "skynet/serve/net.h"

namespace skynet::federate {

struct aggregator_config {
    std::string listen_addr;  ///< federation ingest ("unix:..." / "tcp:...")
    std::string http_addr;    ///< HTTP API; empty = none (tests drive handle())
    health_config health{};
    /// A session silent for this long is dropped so one hung emitter
    /// cannot wedge the one-connection-at-a-time listener.
    int session_timeout_ms{2000};
    bool report_json{false};      ///< default /v1/report json flag
    bool report_timeline{false};  ///< default /v1/report timeline flag
};

class aggregator {
public:
    explicit aggregator(aggregator_config cfg);
    ~aggregator();

    aggregator(const aggregator&) = delete;
    aggregator& operator=(const aggregator&) = delete;

    /// Binds both sockets. Empty error = running.
    [[nodiscard]] error start();

    /// Blocks until request_stop(); returns the process exit code.
    int run();

    /// Async-signal-safe shutdown trigger.
    void request_stop() noexcept;

    /// Bound addresses with ephemeral ports resolved (after start()).
    [[nodiscard]] std::string fed_addr() const;
    [[nodiscard]] std::string http_addr() const;

    /// The HTTP routing table, callable without sockets.
    [[nodiscard]] serve::http_reply handle(const serve::http_request& req);

    /// Outcome of merging one digest (exposed for tests).
    struct apply_result {
        bool applied{false};     ///< false = duplicate, dropped
        std::uint64_t gap{0};    ///< sequence numbers skipped before it
    };

    /// Merges one digest directly (the socket path and tests both land
    /// here). Thread-safe.
    apply_result apply_digest(region_digest d);

    /// Region's acked high-water sequence (0 = never heard from it).
    [[nodiscard]] std::uint64_t last_seq(const std::string& region) const;

    /// The merged cross-region ranking (score desc, region, id).
    [[nodiscard]] std::vector<incident_report> merged_ranked() const;

    /// Aggregator-side federation counters + region-health gauges.
    [[nodiscard]] federation_metrics metrics() const;

    [[nodiscard]] std::size_t region_count() const;

private:
    struct region_entry {
        std::uint64_t last_seq{0};
        sim_time last_barrier{0};
        bool finished{false};
        std::uint64_t digests_applied{0};
        std::uint64_t duplicates_dropped{0};
        std::uint64_t gaps_detected{0};
        std::chrono::steady_clock::time_point last_contact{};
        std::vector<incident_report> reports;
    };

    void handle_fed_conn(int fd);
    void touch(const std::string& region);
    [[nodiscard]] serve::http_reply get_health();
    [[nodiscard]] serve::http_reply get_report(const serve::http_request& req) const;
    [[nodiscard]] serve::http_reply get_regions() const;

    aggregator_config cfg_;
    serve::listener fed_listener_;
    serve::http_server http_;

    mutable std::shared_mutex mu_;
    std::map<std::string, region_entry> regions_;

    std::atomic<bool> stopping_{false};
    int stop_pipe_[2]{-1, -1};
    std::atomic<std::uint64_t> sessions_{0};
    std::atomic<std::uint64_t> sessions_rejected_{0};
};

}  // namespace skynet::federate
