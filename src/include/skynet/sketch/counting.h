// Sketch-based hot-path counting (count-min with conservative update).
//
// The paper's central stressor is alert flooding: duplicate/frequency
// consolidation must survive floods whose cardinality dwarfs the steady
// state. Exact hash maps pay memory and cache misses proportional to
// flood cardinality — exactly the bill a mega-storm runs up. A count-min
// sketch bounds both at a fixed width*depth grid of counters at the cost
// of bounded *over*estimation (never underestimation): for width w and
// depth d, P[estimate - true > (e/w) * N] <= e^-d over N total adds.
//
// counting_policy packages the sketch behind an exact front regime: below
// a configurable cardinality threshold every count is exact (callers'
// outputs stay bit-identical to the pre-sketch code), above it new keys
// overflow into the sketch and the policy reports degraded.sketched
// activity. Both the preprocessor's consolidation tables and the overload
// guard's per-source accounting sit on this policy.
//
// Concurrency contract: add() (conservative update) is single-writer —
// two racing conservative updates can both observe a stale minimum and
// *undercount*, which would break the one invariant everything here
// leans on. estimate() may run concurrently with the single writer
// (cells are relaxed atomics). add_concurrent() is a plain count-min
// update (fetch_add) that is safe from any number of threads and still
// never undercounts, at the cost of more overestimation.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>

namespace skynet::sketch {

/// When the policy is allowed to trade exactness for bounded memory.
enum class counting_mode : std::uint8_t {
    off = 0,          ///< always exact, unbounded (pre-sketch behavior)
    auto_switch = 1,  ///< exact below the cardinality threshold, sketched above
    always = 2,       ///< sketch from the first key (tests, worst-case drills)
};

[[nodiscard]] std::string_view to_string(counting_mode mode) noexcept;
/// "off" | "auto" | "on" (the CLI spellings); nullopt on anything else.
[[nodiscard]] std::optional<counting_mode> parse_counting_mode(std::string_view text) noexcept;

struct sketch_config {
    counting_mode mode{counting_mode::auto_switch};
    /// Exact-regime cardinality ceiling (distinct keys tracked exactly
    /// before new keys overflow into the sketch). The default is far
    /// above every regime the parity drills exercise, so reports stay
    /// bit-identical there by construction.
    std::size_t threshold{65536};
    /// Cells per sketch row; must be a power of two. epsilon = e/width.
    std::size_t width{8192};
    /// Rows (independent hash functions); delta = e^-depth. Max 8.
    std::size_t depth{4};

    [[nodiscard]] bool enabled() const noexcept { return mode != counting_mode::off; }
    /// Overestimation bound: P[err > epsilon()*N] <= delta() over N adds.
    [[nodiscard]] double epsilon() const noexcept;
    [[nodiscard]] double delta() const noexcept;
    /// Nullptr when valid, else a static message describing the problem.
    [[nodiscard]] const char* check() const noexcept;
    /// Throws skynet_error on invalid settings.
    void validate() const;
};

/// Stable 64-bit string hash (FNV-1a) for callers whose natural keys are
/// strings (the overload guard's dedup keys). Deliberately not
/// std::hash: the value feeds deterministic replay comparisons, so it
/// must not vary with the standard library build.
[[nodiscard]] std::uint64_t hash64(std::string_view text) noexcept;

class count_min_sketch {
public:
    static constexpr std::size_t max_depth = 8;

    count_min_sketch() = default;
    /// width must be a power of two >= 2, depth in [1, max_depth].
    count_min_sketch(std::size_t width, std::size_t depth);

    count_min_sketch(const count_min_sketch& other);
    count_min_sketch& operator=(const count_min_sketch& other);
    count_min_sketch(count_min_sketch&&) noexcept = default;
    count_min_sketch& operator=(count_min_sketch&&) noexcept = default;

    /// Conservative update: raises only the cells that bound this key's
    /// estimate, so collisions inflate estimates as little as possible.
    /// Returns the new estimate. SINGLE WRITER ONLY (see file comment);
    /// concurrent estimate() calls are fine.
    std::uint64_t add(std::uint64_t key, std::uint64_t n = 1) noexcept;

    /// Plain count-min update (fetch_add on every row): safe from any
    /// number of threads, still never undercounts, overestimates more
    /// than add(). No return value — a racing estimate would be stale.
    void add_concurrent(std::uint64_t key, std::uint64_t n = 1) noexcept;

    /// Min over rows; >= the true count of `key`, with the epsilon/delta
    /// bound above. Thread-safe against one concurrent add().
    [[nodiscard]] std::uint64_t estimate(std::uint64_t key) const noexcept;

    void clear() noexcept;
    [[nodiscard]] std::size_t width() const noexcept { return width_; }
    [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return width_ * depth_ * sizeof(std::uint64_t);
    }

private:
    [[nodiscard]] std::size_t cell_of(std::size_t row, std::uint64_t key) const noexcept;

    std::size_t width_{0};
    std::size_t depth_{0};
    std::uint64_t mask_{0};
    std::unique_ptr<std::atomic<std::uint64_t>[]> cells_;
};

/// One counted add: the (possibly estimated) running count, whether the
/// key was new (for a count-min sketch a pre-add estimate of zero is
/// exact, so `first` is reliable even in the sketched regime), and which
/// regime served it.
struct counted {
    std::uint64_t count{0};
    bool first{false};
    bool sketched{false};
};

/// Exact-map front + count-min overflow. Two usage styles:
///
///  * Callers that own rich exact entries (the preprocessor's
///    consolidation tables, the guard's dedup set) keep their own maps
///    and only ask the policy two questions: overflowing(my_size) — has
///    the exact regime run out? — and sketch_add(key) for keys past the
///    ceiling. Their exact entries stay authoritative.
///
///  * Self-contained counting (per-source accounting, differential
///    tests) goes through add(): the policy keeps its own u64 -> count
///    map below the threshold and spills new keys to the sketch above
///    it.
///
/// The sketch is allocated lazily on first sketched add, so exact-regime
/// policies cost one pointer.
class counting_policy {
public:
    counting_policy() = default;
    /// Throws skynet_error on an invalid config.
    explicit counting_policy(sketch_config cfg);

    [[nodiscard]] const sketch_config& config() const noexcept { return cfg_; }
    [[nodiscard]] bool enabled() const noexcept { return cfg_.enabled(); }
    /// True when a caller-owned exact table of `exact_entries` entries
    /// must stop growing and route new keys through the sketch.
    [[nodiscard]] bool overflowing(std::size_t exact_entries) const noexcept {
        return cfg_.mode == counting_mode::always ||
               (cfg_.mode == counting_mode::auto_switch && exact_entries >= cfg_.threshold);
    }

    /// Sketch-side count of one occurrence batch (style one: the caller
    /// owns the exact regime). Single writer, like count_min_sketch::add.
    counted sketch_add(std::uint64_t key, std::uint64_t n = 1);
    /// Current sketch estimate (current + previous half after a
    /// rotate_sketch()); 0 when the sketch was never touched.
    [[nodiscard]] std::uint64_t sketch_estimate(std::uint64_t key) const noexcept;

    /// Self-contained count (style two): exact until the internal map
    /// reaches the threshold, sketched for new keys after. Keys counted
    /// exactly stay exact forever (the front cache is never demoted).
    counted add(std::uint64_t key, std::uint64_t n = 1);
    /// Current count of `key` under either regime (0 if never seen).
    [[nodiscard]] std::uint64_t count(std::uint64_t key) const noexcept;

    /// Lifetime adds served by the sketch — the degraded.sketched marker.
    [[nodiscard]] std::uint64_t sketched_adds() const noexcept { return sketched_adds_; }
    /// Latched true by the first sketched add; cleared by clear_sketch().
    [[nodiscard]] bool sketch_active() const noexcept { return sketch_active_; }
    [[nodiscard]] std::size_t exact_size() const noexcept { return exact_.size(); }
    [[nodiscard]] std::size_t memory_bytes() const noexcept;

    /// Epoch rollover, rotating-halves style: the current sketch becomes
    /// the previous half and a zeroed sketch takes over as current.
    /// Estimates are served as current + previous, so a key's count
    /// decays over two windows instead of cliffing to zero — after two
    /// quiet rotations it is fully forgotten. Adds always land in the
    /// current half, so the never-undercount direction is preserved:
    /// every add since the last rotation is in current, every add from
    /// the window before is still in previous. Lifetime sketched_adds()
    /// and the active marker are preserved.
    void rotate_sketch() noexcept;
    /// Zeroes both sketch halves (hard reset): estimates restart, the
    /// lifetime sketched_adds() marker is preserved.
    void clear_sketch() noexcept;
    /// Window rollover: forgets every count (exact + sketch), keeps the
    /// lifetime marker.
    void reset_counts() noexcept;
    /// Recover-time reset: everything, marker included (see DESIGN.md
    /// "Sketched counting" — sketch state is not persisted).
    void reset_all() noexcept;

private:
    void ensure_sketch();

    sketch_config cfg_{};
    count_min_sketch sketch_;
    /// Previous rotation window (rotating halves); unallocated until the
    /// first rotate_sketch(), so non-rotating policies pay nothing.
    count_min_sketch prev_;
    std::unordered_map<std::uint64_t, std::uint64_t> exact_;
    std::uint64_t sketched_adds_{0};
    bool sketch_active_{false};
};

}  // namespace skynet::sketch
