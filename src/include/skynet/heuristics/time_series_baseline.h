// First-alert time-series attribution — the §7.3 strawman.
//
// "In common sense, time series analysis is employed to establish causal
// relationships between alerts, where the first alert is seen as the root
// cause." The paper shows this is unreliable: network *behaviour* is
// affected first; the root-cause log (hardware error, interface failure)
// is often collected minutes later. This module implements both the
// strawman and SkyNet's category-based alternative so the ablation bench
// can compare their attribution accuracy.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "skynet/alert/alert.h"

namespace skynet {

/// An attribution verdict: which device (if determinable) and which alert
/// the analyzer blames.
struct attribution {
    std::optional<device_id> device;
    std::string type_name;
    sim_time at{0};
    bool valid{false};
};

/// The strawman: the chronologically first alert is the root cause.
[[nodiscard]] attribution attribute_first_alert(std::span<const structured_alert> alerts);

/// SkyNet's approach: alert *categories* outrank arrival order — prefer
/// root-cause-category alerts (they name the thing to fix), then failure,
/// then abnormal; ties break on earliest arrival.
[[nodiscard]] attribution attribute_by_category(std::span<const structured_alert> alerts);

}  // namespace skynet
