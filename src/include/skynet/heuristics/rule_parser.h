// Text format for SOP rules (§7.2).
//
// Production accumulated nearly 1,000 heuristic rules; operators author
// them as text, not C++. This parser reads a small declarative format:
//
//   rule "device packet loss isolation":
//     require sflow packet loss
//     require hardware error        # all required types must be present
//     forbid  software error        # none of these may appear in the group
//     group quiet                   # other group members silent
//     max group utilization 0.7
//     action isolate device         # or: disable interface,
//                                   #     rollback modification
//
//   # comments and blank lines are ignored; several rules per file.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "skynet/heuristics/sop.h"

namespace skynet {

/// Parse error with 1-based line information.
struct rule_parse_error {
    int line{0};
    std::string message;
};

struct rule_parse_result {
    std::vector<sop_rule> rules;
    std::vector<rule_parse_error> errors;

    [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
};

/// Parses rule text. Recovers after a bad rule (reports the error, skips
/// to the next `rule` header) so one typo does not take down the rulebook.
[[nodiscard]] rule_parse_result parse_sop_rules(std::string_view text);

/// Renders a rule back to the text format (round-trips through the
/// parser).
[[nodiscard]] std::string render_sop_rule(const sop_rule& rule);

}  // namespace skynet
