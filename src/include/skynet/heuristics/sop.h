// Heuristic SOP rule engine (§7.2).
//
// The pre-SkyNet diagnosis system: rules manually formulated from
// historical failures. The canonical example —
//   * a device in a group is losing packets,
//   * the other group members are silent,
//   * group traffic is below a threshold
// -> isolate the device, with a rollback plan prepared. Rules only cover
// known failures; the unprecedented ones (all entry links broken) match
// nothing, which is exactly the gap SkyNet fills. The engine doubles as
// the automatic-SOP stage of Figure 5a and as the baseline system in the
// mitigation-time comparison.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "skynet/alert/alert.h"
#include "skynet/sim/network_state.h"

namespace skynet {

enum class sop_action_kind : std::uint8_t {
    isolate_device,
    disable_interface,
    rollback_modification,
};

[[nodiscard]] std::string_view to_string(sop_action_kind kind) noexcept;

struct sop_condition {
    /// Alert type names that must all be present on one device.
    std::vector<std::string> required_types;
    /// Alert type names that must NOT appear anywhere in the group.
    std::vector<std::string> forbidden_types;
    /// Other devices of the group must have produced no alerts.
    bool require_group_quiet = true;
    /// The group's mean circuit-set utilization must stay below this, so
    /// isolating a member is safe.
    double max_group_utilization = 0.7;
};

struct sop_rule {
    std::string name;
    sop_condition condition;
    sop_action_kind action{sop_action_kind::isolate_device};
};

/// A rule that fired for a specific device, with its prepared rollback.
struct sop_match {
    const sop_rule* rule{nullptr};
    device_id device{invalid_device};
    sop_action_kind action{sop_action_kind::isolate_device};
    std::string rollback_note;
};

class sop_engine {
public:
    explicit sop_engine(const topology* topo);

    void add_rule(sop_rule rule);
    [[nodiscard]] std::size_t rule_count() const noexcept { return rules_.size(); }

    /// Engine loaded with the production-style rule set: isolation rules
    /// for the common single-device failure signatures. The rules are
    /// authored in the text format (see rule_parser.h) and parsed at
    /// construction, exactly like an operator-maintained rulebook.
    [[nodiscard]] static sop_engine with_default_rules(const topology* topo);

    /// The default rulebook source text.
    [[nodiscard]] static std::string_view default_rulebook();

    /// Evaluates every rule against the recent structured alerts and the
    /// live state. Alerts must be device-attributed to participate.
    [[nodiscard]] std::vector<sop_match> match(std::span<const structured_alert> recent,
                                               const network_state& state) const;

    /// Applies a match (isolates the device / re-enables on rollback).
    /// Returns a rollback closure so operators can revert a wrong call.
    [[nodiscard]] std::function<void(network_state&)> execute(const sop_match& m,
                                                              network_state& state) const;

private:
    const topology* topo_;
    std::vector<sop_rule> rules_;
};

}  // namespace skynet
