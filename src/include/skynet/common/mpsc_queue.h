// Bounded multi-producer / single-consumer batch-handoff queue.
//
// Generalizes spsc_queue to many producers: thief workers that finish
// preparing a stolen ingest batch hand the result back to the owning
// shard through one of these, so the owner never polls per-thief state.
// Classic Vyukov bounded-queue layout — each slot carries a sequence
// number that tickets producers (who CAS the tail) and tells the single
// consumer when a slot's value is fully published. Per-slot release /
// acquire ordering means a popped value happens-after everything the
// producer did before pushing.
//
// Waiting mirrors spsc_queue: bounded yield spin, then a futex park on a
// progress counter (pushes_ for the consumer, pops_ for producers), so
// neither side burns a core waiting on a stalled peer.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

namespace skynet {

template <typename T>
class mpsc_queue {
public:
    explicit mpsc_queue(std::size_t capacity) {
        std::size_t cap = 1;
        while (cap < capacity) cap <<= 1;
        cells_ = std::vector<cell>(cap);
        mask_ = cap - 1;
        for (std::size_t i = 0; i < cap; ++i)
            cells_[i].seq.store(i, std::memory_order_relaxed);
    }

    /// Any thread; non-blocking. False when the ring is full.
    bool try_push(T& value) {
        std::size_t pos = tail_.load(std::memory_order_relaxed);
        for (;;) {
            cell& c = cells_[pos & mask_];
            const std::size_t seq = c.seq.load(std::memory_order_acquire);
            const auto dif = static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
            if (dif == 0) {
                // Slot free at our ticket: claim it by advancing the tail.
                if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed))
                    break;
            } else if (dif < 0) {
                return false;  // full: consumer has not recycled this slot
            } else {
                pos = tail_.load(std::memory_order_relaxed);  // lost a race
            }
        }
        cell& c = cells_[pos & mask_];
        c.value = std::move(value);
        c.seq.store(pos + 1, std::memory_order_release);
        pushes_.fetch_add(1, std::memory_order_release);
        pushes_.notify_one();
        return true;
    }

    /// Any thread. Blocks while full: yield spin, then park until the
    /// consumer makes progress. Returns how many waits it took.
    std::size_t push(T value) {
        std::size_t waits = 0;
        std::size_t spins = 0;
        for (;;) {
            if (try_push(value)) return waits;
            ++waits;
            if (++spins <= spin_limit) {
                std::this_thread::yield();
            } else {
                pops_.wait(pops_.load(std::memory_order_acquire), std::memory_order_acquire);
            }
        }
    }

    /// Consumer only; non-blocking. False when the queue is empty.
    bool try_pop(T& out) {
        const std::size_t pos = head_.load(std::memory_order_relaxed);
        cell& c = cells_[pos & mask_];
        const std::size_t seq = c.seq.load(std::memory_order_acquire);
        const auto dif =
            static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1);
        if (dif < 0) return false;  // slot not yet published
        out = std::move(c.value);
        c.seq.store(pos + mask_ + 1, std::memory_order_release);  // recycle
        head_.store(pos + 1, std::memory_order_relaxed);
        pops_.fetch_add(1, std::memory_order_release);
        pops_.notify_all();
        return true;
    }

    /// Consumer only; yield spin, then park until a producer pushes.
    void pop_blocking(T& out) {
        std::size_t spins = 0;
        for (;;) {
            if (try_pop(out)) return;
            if (++spins <= spin_limit) {
                std::this_thread::yield();
                continue;
            }
            pushes_.wait(pushes_.load(std::memory_order_acquire), std::memory_order_acquire);
        }
    }

    /// Approximate occupancy (exact only from the consumer thread).
    [[nodiscard]] std::size_t size() const noexcept {
        const std::size_t tail = tail_.load(std::memory_order_acquire);
        const std::size_t head = head_.load(std::memory_order_relaxed);
        return tail >= head ? tail - head : 0;
    }
    [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

private:
    static constexpr std::size_t spin_limit = 64;

    struct cell {
        std::atomic<std::size_t> seq{0};
        T value{};
    };

    std::vector<cell> cells_;
    std::size_t mask_{0};
    alignas(64) std::atomic<std::size_t> tail_{0};
    /// Single consumer: only the consumer thread advances it (relaxed).
    alignas(64) std::atomic<std::size_t> head_{0};
    // Progress counters backing the futex parks.
    alignas(64) std::atomic<std::size_t> pushes_{0};
    alignas(64) std::atomic<std::size_t> pops_{0};
};

}  // namespace skynet
