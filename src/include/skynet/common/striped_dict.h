// Striped concurrent dictionary with lock-free reads.
//
// The ingest hot path is read-mostly: once a storm's first alerts intern
// their location paths, every later alert resolves the same keys. This
// dictionary makes that fast path wait-free — find() never takes a lock,
// never retries, and never blocks behind a writer — while inserts touch
// exactly one stripe (netdata's libnetdata/dictionary is the exemplar:
// per-stripe bucket arrays, atomic chain heads, read-mostly bias).
//
// Shape: the key space is split across power-of-two stripes by hash.
// Each stripe owns a chain-bucket hash table whose bucket heads are
// atomic pointers; a reader walks `current table → prev tables` with
// acquire loads only. A writer takes the stripe's spin lock, rechecks,
// and publishes a fully-constructed node with a release store — nodes
// are immutable after publication and never move, so value pointers
// returned by find() stay valid for the dictionary's lifetime.
//
// Growth never rehashes in place: a full stripe publishes a doubled
// table whose `prev` points at the old one. Old tables (log-many per
// stripe) are retained until destruction, which is what makes reads
// safe without hazard pointers or epochs. Erase is deliberately not
// offered — every user of this container (interning, registries) is
// insert-only.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "skynet/common/spin_mutex.h"

namespace skynet {

template <typename Key, typename T, typename Hash = std::hash<Key>, typename Eq = std::equal_to<>>
class striped_dict {
public:
    explicit striped_dict(std::size_t stripes = 64, std::size_t initial_buckets = 16) {
        std::size_t n = 1;
        while (n < stripes) n <<= 1;
        stripe_mask_ = n - 1;
        std::size_t buckets = 4;
        while (buckets < initial_buckets) buckets <<= 1;
        initial_buckets_ = buckets;
        stripes_ = std::vector<stripe>(n);
        for (stripe& s : stripes_) s.current.store(new table(buckets, nullptr), std::memory_order_relaxed);
    }

    ~striped_dict() { destroy(); }

    striped_dict(const striped_dict&) = delete;
    striped_dict& operator=(const striped_dict&) = delete;

    /// Moves require exclusive use of both sides (no concurrent readers
    /// or writers) — same contract as moving any standard container.
    striped_dict(striped_dict&& other) noexcept
        : stripes_(std::move(other.stripes_)),
          stripe_mask_(other.stripe_mask_),
          initial_buckets_(other.initial_buckets_) {
        other.stripes_.clear();
    }

    striped_dict& operator=(striped_dict&& other) noexcept {
        if (this == &other) return *this;
        destroy();
        stripes_ = std::move(other.stripes_);
        stripe_mask_ = other.stripe_mask_;
        initial_buckets_ = other.initial_buckets_;
        other.stripes_.clear();
        return *this;
    }

    /// Wait-free lookup; accepts any key type the hash/eq are transparent
    /// over. The returned pointer stays valid for the dict's lifetime.
    template <typename K>
    [[nodiscard]] const T* find(const K& key) const {
        const std::size_t h = mix(Hash{}(key));
        const stripe& s = stripes_[stripe_of(h)];
        for (const table* t = s.current.load(std::memory_order_acquire); t != nullptr;
             t = t->prev) {
            for (const node* n = t->buckets[h & t->mask].load(std::memory_order_acquire);
                 n != nullptr; n = n->next) {
                if (n->hash == h && Eq{}(n->key, key)) return &n->value;
            }
        }
        return nullptr;
    }

    /// Returns the existing value or inserts `make()` under the stripe
    /// lock (make runs at most once, while the slot is reserved — safe
    /// for id allocation). `inserted` reports which happened.
    template <typename K, typename Make>
    T get_or_insert(const K& key, Make&& make, bool* inserted = nullptr) {
        if (const T* hit = find(key)) {
            if (inserted != nullptr) *inserted = false;
            return *hit;
        }
        const std::size_t h = mix(Hash{}(key));
        stripe& s = stripes_[stripe_of(h)];
        std::lock_guard<spin_mutex> guard(s.mu);
        // Recheck under the lock — another writer may have won the race.
        for (const table* t = s.current.load(std::memory_order_relaxed); t != nullptr;
             t = t->prev) {
            for (const node* n = t->buckets[h & t->mask].load(std::memory_order_relaxed);
                 n != nullptr; n = n->next) {
                if (n->hash == h && Eq{}(n->key, key)) {
                    if (inserted != nullptr) *inserted = false;
                    return n->value;
                }
            }
        }
        table* t = s.current.load(std::memory_order_relaxed);
        if (s.count.load(std::memory_order_relaxed) + 1 > t->mask + 1) t = grow(s, t);
        node* n = new node{h, Key(key), std::forward<Make>(make)(),
                           t->buckets[h & t->mask].load(std::memory_order_relaxed)};
        t->buckets[h & t->mask].store(n, std::memory_order_release);
        s.count.fetch_add(1, std::memory_order_relaxed);
        if (inserted != nullptr) *inserted = true;
        return n->value;
    }

    [[nodiscard]] std::size_t size() const noexcept {
        std::size_t total = 0;
        for (const stripe& s : stripes_) total += s.count.load(std::memory_order_relaxed);
        return total;
    }

    /// Writer lock acquisitions that found the stripe contended.
    [[nodiscard]] std::uint64_t lock_contention() const noexcept {
        std::uint64_t total = 0;
        for (const stripe& s : stripes_) total += s.mu.contended();
        return total;
    }

    [[nodiscard]] std::size_t stripe_count() const noexcept { return stripe_mask_ + 1; }

private:
    struct node {
        std::size_t hash;
        Key key;
        T value;
        node* next;
    };
    struct table {
        table(std::size_t buckets, table* previous)
            : mask(buckets - 1),
              prev(previous),
              bucket_store(new std::atomic<node*>[buckets]),
              buckets(bucket_store.get()) {
            for (std::size_t b = 0; b < buckets_of(); ++b)
                bucket_store[b].store(nullptr, std::memory_order_relaxed);
        }
        [[nodiscard]] std::size_t buckets_of() const noexcept { return mask + 1; }

        std::size_t mask;
        table* prev;
        std::unique_ptr<std::atomic<node*>[]> bucket_store;
        std::atomic<node*>* buckets;
    };
    struct stripe {
        std::atomic<table*> current{nullptr};
        mutable spin_mutex mu;
        std::atomic<std::size_t> count{0};
    };

    /// Finalizer-style avalanche so clustered hashes still spread across
    /// stripes (high bits) and buckets (low bits).
    [[nodiscard]] static std::size_t mix(std::size_t h) noexcept {
        std::uint64_t x = static_cast<std::uint64_t>(h);
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
        x ^= x >> 33;
        x *= 0xc4ceb9fe1a85ec53ULL;
        x ^= x >> 33;
        return static_cast<std::size_t>(x);
    }

    [[nodiscard]] std::size_t stripe_of(std::size_t mixed) const noexcept {
        return (mixed >> 40) & stripe_mask_;
    }

    /// Publishes a doubled table in front of `old` (stripe lock held).
    table* grow(stripe& s, table* old) {
        table* bigger = new table(old->buckets_of() * 2, old);
        s.current.store(bigger, std::memory_order_release);
        return bigger;
    }

    void destroy() noexcept {
        for (stripe& s : stripes_) {
            table* t = s.current.load(std::memory_order_relaxed);
            while (t != nullptr) {
                for (std::size_t b = 0; b < t->buckets_of(); ++b) {
                    node* n = t->buckets[b].load(std::memory_order_relaxed);
                    while (n != nullptr) {
                        node* next = n->next;
                        delete n;
                        n = next;
                    }
                }
                table* prev = t->prev;
                delete t;
                t = prev;
            }
            s.current.store(nullptr, std::memory_order_relaxed);
        }
    }

    std::vector<stripe> stripes_;
    std::size_t stripe_mask_{0};
    std::size_t initial_buckets_{16};
};

}  // namespace skynet
