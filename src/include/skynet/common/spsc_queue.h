// Bounded single-producer / single-consumer command queue.
//
// Backs the sharded engine's per-shard command stream: the caller thread
// pushes ingest batches and tick barriers, exactly one worker pops.
// Lock-free power-of-two ring buffer; when the ring is full the producer
// spins with yield (backpressure), and the number of full-queue waits is
// returned so the caller can surface it as a metric. Blocking pops use
// C++20 atomic wait/notify, so an idle worker sleeps instead of spinning.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace skynet {

template <typename T>
class spsc_queue {
public:
    explicit spsc_queue(std::size_t capacity) {
        std::size_t cap = 1;
        while (cap < capacity) cap <<= 1;
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    /// Producer only. Blocks (yield-spin) while the ring is full; returns
    /// how many times it had to wait.
    std::size_t push(T value) {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        std::size_t waits = 0;
        while (tail - head_.load(std::memory_order_acquire) > mask_) {
            ++waits;
            std::this_thread::yield();
        }
        slots_[tail & mask_] = std::move(value);
        tail_.store(tail + 1, std::memory_order_release);
        tail_.notify_one();
        return waits;
    }

    /// Consumer only; non-blocking. False when the queue is empty.
    bool try_pop(T& out) {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        if (head == tail_.load(std::memory_order_acquire)) return false;
        out = std::move(slots_[head & mask_]);
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /// Consumer only; sleeps until an item is available. Shutdown is a
    /// queue message, not a flag, so wakeups cannot be missed.
    void pop_blocking(T& out) {
        for (;;) {
            if (try_pop(out)) return;
            // Empty: sleep until tail_ moves past the value we saw.
            tail_.wait(head_.load(std::memory_order_relaxed), std::memory_order_acquire);
        }
    }

    /// Approximate occupancy (exact from either endpoint's own thread).
    [[nodiscard]] std::size_t size() const noexcept {
        return tail_.load(std::memory_order_acquire) - head_.load(std::memory_order_acquire);
    }
    [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

private:
    std::vector<T> slots_;
    std::size_t mask_{0};
    // Separate cache lines so producer stores do not thrash consumer loads.
    alignas(64) std::atomic<std::size_t> head_{0};
    alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace skynet
