// Bounded single-producer / single-consumer command queue.
//
// Backs the sharded engine's per-shard command stream: the caller thread
// pushes ingest batches and tick barriers, exactly one worker pops.
// Lock-free power-of-two ring buffer. Both endpoints use bounded
// spin-then-park waiting (C++20 atomic wait/notify): a consumer facing a
// dropped producer, or a producer facing a stalled shard, sleeps on a
// futex after a short yield phase instead of burning a core — the
// degradation semantics the fault-injection suite exercises. try_push
// never blocks, which is what the sharded engine's non-blocking overflow
// policies (drop_oldest / reject) build on.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace skynet {

template <typename T>
class spsc_queue {
public:
    explicit spsc_queue(std::size_t capacity) {
        std::size_t cap = 1;
        while (cap < capacity) cap <<= 1;
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    /// Producer only; non-blocking. False when the ring is full.
    bool try_push(T& value) {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        if (tail - head_.load(std::memory_order_acquire) > mask_) return false;
        slots_[tail & mask_] = std::move(value);
        tail_.store(tail + 1, std::memory_order_release);
        tail_.notify_one();
        return true;
    }

    /// Producer only. Blocks while the ring is full — a short yield spin,
    /// then parks until the consumer frees a slot, so a stalled shard
    /// cannot make the caller burn a core. Returns how many times it had
    /// to wait (backpressure, surfaced as a metric).
    std::size_t push(T value) {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        std::size_t waits = 0;
        std::size_t spins = 0;
        for (;;) {
            const std::size_t head = head_.load(std::memory_order_acquire);
            if (tail - head <= mask_) break;
            ++waits;
            if (++spins <= spin_limit) {
                std::this_thread::yield();
            } else {
                // Park until head_ moves past the value we saw; the wait
                // rechecks the value, so a pop between our load and the
                // sleep just returns immediately.
                head_.wait(head, std::memory_order_acquire);
            }
        }
        slots_[tail & mask_] = std::move(value);
        tail_.store(tail + 1, std::memory_order_release);
        tail_.notify_one();
        return waits;
    }

    /// Consumer only; non-blocking. False when the queue is empty.
    bool try_pop(T& out) {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        if (head == tail_.load(std::memory_order_acquire)) return false;
        out = std::move(slots_[head & mask_]);
        head_.store(head + 1, std::memory_order_release);
        head_.notify_one();
        return true;
    }

    /// Consumer only; sleeps until an item is available — bounded yield
    /// spin first (the common fast path under load), then a futex park,
    /// so a dropped producer cannot make an idle worker burn a core.
    /// Shutdown is a queue message, not a flag, so wakeups cannot be
    /// missed.
    void pop_blocking(T& out) {
        std::size_t spins = 0;
        for (;;) {
            if (try_pop(out)) return;
            if (++spins <= spin_limit) {
                std::this_thread::yield();
                continue;
            }
            // Empty: park until tail_ moves past the value we saw.
            tail_.wait(head_.load(std::memory_order_relaxed), std::memory_order_acquire);
        }
    }

    /// Approximate occupancy (exact from either endpoint's own thread).
    [[nodiscard]] std::size_t size() const noexcept {
        return tail_.load(std::memory_order_acquire) - head_.load(std::memory_order_acquire);
    }
    [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

private:
    /// Yields tolerated before parking. Short: a healthy peer responds in
    /// far fewer; past this the peer is presumed stalled or gone.
    static constexpr std::size_t spin_limit = 64;

    std::vector<T> slots_;
    std::size_t mask_{0};
    // Separate cache lines so producer stores do not thrash consumer loads.
    alignas(64) std::atomic<std::size_t> head_{0};
    alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace skynet
