// Injectable simulated clock.
#pragma once

#include "skynet/common/time.h"

namespace skynet {

/// The single source of "now" for every component. The simulation engine
/// owns one and advances it; SkyNet's locator reads it for timeout checks.
/// Monotone by construction: advancing backwards is a programming error and
/// is clamped.
class sim_clock {
public:
    sim_clock() = default;
    explicit sim_clock(sim_time start) : now_(start) {}

    [[nodiscard]] sim_time now() const noexcept { return now_; }

    /// Moves the clock forward by `d` (non-negative).
    void advance(sim_duration d) noexcept {
        if (d > 0) now_ += d;
    }

    /// Jumps the clock to `t` if `t` is in the future; no-op otherwise.
    void advance_to(sim_time t) noexcept {
        if (t > now_) now_ = t;
    }

private:
    sim_time now_{0};
};

}  // namespace skynet
