// Deterministic random source for the simulator.
//
// Everything stochastic in the reproduction (failure scenario sampling,
// alert jitter, noise glitches, topology generation) draws from an rng
// seeded explicitly, so every experiment is replayable from its seed.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

namespace skynet {

class rng {
public:
    explicit rng(std::uint64_t seed) : engine_(seed) {}

    /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
    [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /// Uniform real in [lo, hi).
    [[nodiscard]] double uniform_real(double lo = 0.0, double hi = 1.0) {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /// True with probability p (clamped to [0, 1]).
    [[nodiscard]] bool chance(double p) {
        if (p <= 0.0) return false;
        if (p >= 1.0) return true;
        return std::bernoulli_distribution(p)(engine_);
    }

    /// Exponentially distributed inter-arrival gap with the given mean.
    [[nodiscard]] double exponential(double mean) {
        return std::exponential_distribution<double>(1.0 / mean)(engine_);
    }

    /// Normal sample.
    [[nodiscard]] double normal(double mean, double stddev) {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /// Uniformly chosen index into a container of the given size (> 0).
    [[nodiscard]] std::size_t index(std::size_t size) {
        if (size == 0) throw std::invalid_argument("rng::index: empty range");
        return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(size) - 1));
    }

    /// Uniformly chosen element.
    template <typename T>
    [[nodiscard]] const T& pick(std::span<const T> items) {
        return items[index(items.size())];
    }
    template <typename T>
    [[nodiscard]] const T& pick(const std::vector<T>& items) {
        return items[index(items.size())];
    }

    /// Index sampled according to non-negative weights (at least one > 0).
    [[nodiscard]] std::size_t weighted_index(std::span<const double> weights);

    /// Derives an independent child generator (stable given call order).
    [[nodiscard]] rng fork() { return rng(engine_()); }

    [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

private:
    std::mt19937_64 engine_;
};

}  // namespace skynet
