// Simulated-time primitives.
//
// SkyNet's algorithms (alert aggregation windows, node expiry, incident
// timeouts) are defined on wall-clock timestamps carried by alerts. The
// reproduction runs against a discrete-event simulator, so all components
// use an explicit simulated timeline instead of the system clock: time is
// never read ambiently, it always flows in through alert timestamps or an
// injected sim_clock.
#pragma once

#include <cstdint>
#include <string>

namespace skynet {

/// A point on the simulated timeline, in milliseconds since the simulation
/// epoch. Plain integer semantics: comparable, subtractable.
using sim_time = std::int64_t;

/// A span of simulated time, in milliseconds.
using sim_duration = std::int64_t;

constexpr sim_duration milliseconds(std::int64_t n) noexcept { return n; }
constexpr sim_duration seconds(std::int64_t n) noexcept { return n * 1000; }
constexpr sim_duration minutes(std::int64_t n) noexcept { return n * 60 * 1000; }
constexpr sim_duration hours(std::int64_t n) noexcept { return n * 60 * 60 * 1000; }
constexpr sim_duration days(std::int64_t n) noexcept { return n * 24 * 60 * 60 * 1000; }

constexpr double to_seconds(sim_duration d) noexcept { return static_cast<double>(d) / 1000.0; }

/// A closed interval [begin, end] on the simulated timeline. Used for the
/// "duration" attribute the preprocessor attaches to aggregated alerts
/// (start of packet loss .. last observation).
struct time_range {
    sim_time begin{0};
    sim_time end{0};

    [[nodiscard]] constexpr sim_duration length() const noexcept { return end - begin; }
    [[nodiscard]] constexpr bool contains(sim_time t) const noexcept {
        return t >= begin && t <= end;
    }
    /// Extends the range to cover `t` (used when consolidating repeats).
    constexpr void extend(sim_time t) noexcept {
        if (t < begin) begin = t;
        if (t > end) end = t;
    }
    [[nodiscard]] constexpr bool overlaps(const time_range& other) const noexcept {
        return begin <= other.end && other.begin <= end;
    }
    constexpr bool operator==(const time_range&) const noexcept = default;
};

/// Renders a sim_time as "HH:MM:SS.mmm" relative to the simulation epoch.
[[nodiscard]] std::string format_time(sim_time t);

/// Renders a duration as e.g. "3m42s" / "512ms".
[[nodiscard]] std::string format_duration(sim_duration d);

}  // namespace skynet
