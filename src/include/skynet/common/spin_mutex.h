// Tiny test-and-test-and-set spin lock with a contention counter.
//
// Guards the write side of the striped dictionary and the sharded
// engine's steal boards: critical sections of a few dozen instructions
// where a futex round-trip would dominate the work. Spins with bounded
// yielding (no parking — holders never sleep), and counts contended
// acquisitions so the engine can surface stripe contention as a metric
// instead of guessing.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace skynet {

class spin_mutex {
public:
    spin_mutex() = default;
    spin_mutex(const spin_mutex&) = delete;
    spin_mutex& operator=(const spin_mutex&) = delete;

    /// Non-blocking probe (used by lock()'s fast path).
    bool try_lock() noexcept { return !locked_.exchange(true, std::memory_order_acquire); }

    void lock() noexcept {
        if (try_lock()) return;
        contended_.fetch_add(1, std::memory_order_relaxed);
        std::size_t spins = 0;
        for (;;) {
            // Test before test-and-set: spin on a plain load so waiters do
            // not bounce the cache line while the holder works.
            while (locked_.load(std::memory_order_relaxed)) {
                if (++spins >= yield_after) std::this_thread::yield();
            }
            if (try_lock()) return;
        }
    }

    void unlock() noexcept { locked_.store(false, std::memory_order_release); }

    /// Acquisitions that found the lock held (relaxed; monotonic).
    [[nodiscard]] std::uint64_t contended() const noexcept {
        return contended_.load(std::memory_order_relaxed);
    }

private:
    /// Busy-spins tolerated before yielding the core to the holder.
    static constexpr std::size_t yield_after = 16;

    std::atomic<bool> locked_{false};
    std::atomic<std::uint64_t> contended_{0};
};

}  // namespace skynet
