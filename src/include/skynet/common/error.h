// Library error type.
#pragma once

#include <stdexcept>
#include <string>

namespace skynet {

/// Thrown for violated preconditions and malformed inputs throughout the
/// library. Derives from std::runtime_error so callers that do not care
/// about the distinction can catch the standard hierarchy.
class skynet_error : public std::runtime_error {
public:
    explicit skynet_error(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace skynet
