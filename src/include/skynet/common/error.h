// Library error type.
#pragma once

#include <stdexcept>
#include <string>

namespace skynet {

/// Thrown for violated preconditions and malformed inputs throughout the
/// library. Derives from std::runtime_error so callers that do not care
/// about the distinction can catch the standard hierarchy.
class skynet_error : public std::runtime_error {
public:
    explicit skynet_error(const std::string& what) : std::runtime_error(what) {}
};

/// Value-type error for validating APIs (e.g. skynet_config::validate()).
/// Default-constructed means success; converts to true when an error is
/// present, so call sites read
///   if (error e = cfg.validate()) throw skynet_error(e.message());
class error {
public:
    error() = default;
    explicit error(std::string message) : message_(std::move(message)) {}

    [[nodiscard]] explicit operator bool() const noexcept { return !message_.empty(); }
    [[nodiscard]] const std::string& message() const noexcept { return message_; }

private:
    std::string message_;
};

}  // namespace skynet
