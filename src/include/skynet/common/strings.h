// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace skynet {

/// Splits `text` on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Splits on runs of whitespace, dropping empty fields.
[[nodiscard]] std::vector<std::string> split_whitespace(std::string_view text);

/// Joins the elements with `sep` between them.
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);

[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix) noexcept;
[[nodiscard]] bool contains(std::string_view text, std::string_view needle) noexcept;

/// Lowercases ASCII characters.
[[nodiscard]] std::string to_lower(std::string_view text);

}  // namespace skynet
