// Discrete-event simulation engine.
//
// Advances a simulated clock in ticks; on each tick, active scenarios
// progress, traffic rebalances, and every monitoring tool whose period
// elapsed polls the network. Emitted alerts go through a delivery queue
// modeling per-source delays — notably the up-to-2-minute SNMP delay on
// legacy devices that motivates the locator's 5-minute node timeout —
// and reach the sink in arrival order.
#pragma once

#include <functional>
#include <memory>
#include <queue>
#include <span>
#include <vector>

#include "skynet/common/sim_clock.h"
#include "skynet/monitors/monitor.h"
#include "skynet/sim/scenario.h"
#include "skynet/sim/trace.h"

namespace skynet {

struct engine_params {
    sim_duration tick = seconds(2);
    std::uint64_t seed = 1;
    /// Maximum SNMP delivery delay on legacy devices (§4.2: ~2 minutes).
    sim_duration legacy_snmp_max_delay = minutes(2);
};

class simulation_engine {
public:
    simulation_engine(const topology* topo, const customer_registry* customers,
                      engine_params params = {});

    [[nodiscard]] network_state& state() noexcept { return state_; }
    [[nodiscard]] const network_state& state() const noexcept { return state_; }
    [[nodiscard]] sim_clock& clock() noexcept { return clock_; }
    [[nodiscard]] rng& random() noexcept { return rand_; }

    void add_monitor(std::unique_ptr<monitor_tool> tool);
    /// Installs all twelve Table 2 tools.
    void add_default_monitors(monitor_options opts = {});
    /// Number of installed monitors.
    [[nodiscard]] std::size_t monitor_count() const noexcept { return monitors_.size(); }

    /// Schedules a failure: active during [start, start + duration).
    void inject(std::unique_ptr<scenario> s, sim_time start, sim_duration duration);

    /// Alert arrival callback: (alert, arrival_time).
    using alert_sink = std::function<void(const raw_alert&, sim_time)>;
    /// Batched arrival callback: one span per tick, arrival order
    /// preserved (feeds skynet_engine::ingest_batch directly).
    using batch_sink = std::function<void(std::span<const traced_alert>)>;
    /// Per-tick callback after delivery (SkyNet maintenance hook).
    using tick_hook = std::function<void(sim_time)>;

    /// Runs the simulation until `end`, delivering alerts in arrival
    /// order to `sink` and invoking `hook` once per tick.
    void run_until(sim_time end, const alert_sink& sink, const tick_hook& hook = nullptr);

    /// Same, but hands each tick's deliveries over as one batch.
    void run_until_batched(sim_time end, const batch_sink& sink,
                           const tick_hook& hook = nullptr);

    /// Ground-truth records of every injected scenario (for accuracy
    /// scoring).
    [[nodiscard]] const std::vector<scenario_record>& ground_truth() const noexcept {
        return records_;
    }

private:
    struct scheduled {
        std::unique_ptr<scenario> s;
        sim_time start{0};
        sim_time end{0};
        bool started{false};
        bool finished{false};
        std::size_t record{0};
    };
    struct pending_delivery {
        sim_time arrival{0};
        std::uint64_t seq{0};
        raw_alert alert;
        bool operator>(const pending_delivery& other) const noexcept {
            if (arrival != other.arrival) return arrival > other.arrival;
            return seq > other.seq;
        }
    };
    struct monitor_slot {
        std::unique_ptr<monitor_tool> tool;
        sim_time next_due{0};
    };

    [[nodiscard]] sim_duration delivery_delay(const raw_alert& alert);

    const topology* topo_;
    network_state state_;
    sim_clock clock_;
    rng rand_;
    engine_params params_;
    std::vector<monitor_slot> monitors_;
    std::vector<scheduled> scheduled_;
    std::vector<scenario_record> records_;
    std::priority_queue<pending_delivery, std::vector<pending_delivery>,
                        std::greater<pending_delivery>>
        queue_;
    std::uint64_t seq_{0};
};

}  // namespace skynet
