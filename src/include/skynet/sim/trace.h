// Alert trace recording and replay.
//
// Serializes a stream of (raw alert, arrival time) to a line-oriented,
// tab-separated text format and loads it back. Together with the
// topology format (topology/serialization.h) this makes experiments
// portable: record a production-like flood once, replay it through
// different SkyNet configurations, feed it to the threshold tuner.
//
// Format (one alert per line, 11 tab-separated fields):
//   arrival_ms  source  timestamp_ms  kind  metric  loc  device  link  src  dst  message
// Empty optional fields are `-`. Device/link ids are indices into the
// accompanying topology; traces only replay against the topology they
// were recorded on.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "skynet/alert/alert.h"

namespace skynet {

/// One recorded delivery.
struct traced_alert {
    raw_alert alert;
    sim_time arrival{0};
};

/// Serializes one record (no trailing newline).
[[nodiscard]] std::string serialize_alert_record(const raw_alert& alert, sim_time arrival);

struct trace_parse_error {
    int line{0};
    std::string message;
};

struct trace_parse_result {
    std::vector<traced_alert> alerts;
    std::vector<trace_parse_error> errors;

    [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
};

/// Parses a whole trace. Bad lines are reported and skipped.
[[nodiscard]] trace_parse_result parse_trace(std::string_view text);

/// Serializes a whole trace.
[[nodiscard]] std::string serialize_trace(std::span<const traced_alert> alerts);

/// Data-source token helpers used by the format.
[[nodiscard]] std::string_view source_token(data_source source) noexcept;
[[nodiscard]] std::optional<data_source> parse_source(std::string_view token) noexcept;

}  // namespace skynet
