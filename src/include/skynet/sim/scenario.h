// Failure scenarios.
//
// A scenario is an injected network failure: it mutates network_state at
// start, may progress over ticks (cascades, delayed symptoms), and heals
// at end. Every scenario carries ground truth (root-cause class per
// Figure 1, scope location, severity) against which the locator's and
// evaluator's output is scored in the accuracy experiments.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "skynet/common/rng.h"
#include "skynet/common/time.h"
#include "skynet/sim/network_state.h"

namespace skynet {

/// Root-cause classes and their observed shares (Figure 1).
enum class root_cause : std::uint8_t {
    device_hardware,     // 42.6 %
    link_error,          // 18.5 %
    modification_error,  // 16.7 %
    device_software,     //  9.3 %
    infrastructure,      //  9.3 %
    route_error,         //  1.9 %
    security,            //  1.9 %
    configuration,       //  1.9 %
};

inline constexpr std::size_t root_cause_count = 8;

[[nodiscard]] std::string_view to_string(root_cause cause) noexcept;

/// The Figure 1 proportion for a class (sums to 1 across classes).
[[nodiscard]] double root_cause_share(root_cause cause) noexcept;

/// Samples a root-cause class according to the Figure 1 distribution.
[[nodiscard]] root_cause sample_root_cause(rng& rand);

class scenario {
public:
    virtual ~scenario() = default;

    [[nodiscard]] virtual std::string name() const = 0;
    [[nodiscard]] virtual root_cause cause() const = 0;
    /// Ground-truth hierarchy scope of the failure. Multi-site failures
    /// (e.g. a coordinated DDoS) report their primary site here and the
    /// full list via scopes().
    [[nodiscard]] virtual location scope() const = 0;
    /// All ground-truth scopes; one entry per independent blast site.
    [[nodiscard]] virtual std::vector<location> scopes() const { return {scope()}; }
    /// Severe failures impact extensive areas (alert floods); minor ones
    /// a single device or circuit.
    [[nodiscard]] virtual bool severe() const = 0;
    /// Benign events (flash crowds, maintenance) perturb the network and
    /// generate alerts but are NOT failures: detecting them is a false
    /// positive.
    [[nodiscard]] virtual bool benign() const { return false; }
    /// False for faults fully absorbed by redundancy (a broken circuit
    /// inside a healthy bundle): they are repair tickets, not incidents —
    /// missing them is not a false negative, reporting them is not a
    /// false positive.
    [[nodiscard]] virtual bool must_detect() const { return true; }
    /// The device to repair, when the failure has a single culprit.
    [[nodiscard]] virtual std::optional<device_id> culprit() const { return std::nullopt; }

    virtual void on_start(network_state& state, rng& rand, sim_time now) = 0;
    /// Called every engine tick while active (cascade progression).
    virtual void on_tick(network_state& state, rng& rand, sim_time now) { (void)state, (void)rand, (void)now; }
    virtual void on_end(network_state& state, rng& rand, sim_time now) = 0;
};

/// Ground-truth record the engine keeps per injected scenario.
struct scenario_record {
    std::string name;
    root_cause cause{root_cause::device_hardware};
    location scope;
    /// All blast sites (== {scope} for single-site failures).
    std::vector<location> scopes;
    time_range active;
    bool severe{false};
    /// True for injected non-failures (flash crowds): an incident matching
    /// only benign records is a false positive.
    bool benign{false};
    /// False for redundancy-absorbed faults (see scenario::must_detect).
    bool must_detect{true};
    std::optional<device_id> culprit;
};

// --- concrete scenario factories -----------------------------------------
// Each picks its victim(s) from the topology with the provided rng.
// `severe` selects the wide-blast-radius variant of the class.

[[nodiscard]] std::unique_ptr<scenario> make_device_hardware_failure(const topology& topo,
                                                                     rng& rand, bool severe);
[[nodiscard]] std::unique_ptr<scenario> make_link_failure(const topology& topo, rng& rand,
                                                          bool severe);
/// The §2.2 severe case: cuts `fraction` of a logic site's internet-entry
/// circuits; backup congestion follows.
[[nodiscard]] std::unique_ptr<scenario> make_internet_entry_cut(const topology& topo,
                                                                const location& logic_site,
                                                                double fraction);
[[nodiscard]] std::unique_ptr<scenario> make_modification_error(const topology& topo, rng& rand,
                                                                bool severe);
[[nodiscard]] std::unique_ptr<scenario> make_device_software_failure(const topology& topo,
                                                                     rng& rand, bool severe);
[[nodiscard]] std::unique_ptr<scenario> make_infrastructure_failure(const topology& topo,
                                                                    rng& rand, bool severe);
[[nodiscard]] std::unique_ptr<scenario> make_route_error(const topology& topo, rng& rand,
                                                         bool severe);
/// DDoS against internet entries; `sites` > 1 reproduces the five-site
/// multi-scene case study of §5.1.
[[nodiscard]] std::unique_ptr<scenario> make_security_ddos(const topology& topo, rng& rand,
                                                           int sites);
[[nodiscard]] std::unique_ptr<scenario> make_configuration_error(const topology& topo, rng& rand,
                                                                 bool severe);

/// A WAN partition: every backbone circuit between two cities is cut at
/// once (backhoe through the long-haul conduit). Cross-city traffic
/// reroutes over the remaining ring and congests it; in the worst case a
/// region islands.
[[nodiscard]] std::unique_ptr<scenario> make_wan_partition(const topology& topo, rng& rand);

/// A benign flash crowd: CPU climbs and traffic surges in one cluster
/// without any failure — alert-generating noise that the per-type
/// counting rule must not turn into an incident.
[[nodiscard]] std::unique_ptr<scenario> make_flash_crowd(const topology& topo, rng& rand);

// --- adversarial pack (life-cycle stress scenarios) -----------------------

/// Gray failure: a device silently drops a slice of traffic while every
/// health surface stays green — no syslog, no BGP churn, control plane
/// up. Only end-to-end loss probes see it (partial observability), so
/// the alert evidence is thin and intermittent.
[[nodiscard]] std::unique_ptr<scenario> make_gray_failure(const topology& topo, rng& rand,
                                                          bool severe);

/// Flapping link: a circuit bundle cycles down/up with a fixed period
/// for the whole active window. Without flap suppression every down
/// phase re-alerts as a fresh incident.
[[nodiscard]] std::unique_ptr<scenario> make_flapping_link(const topology& topo, rng& rand,
                                                           bool severe);

/// Overlapping multi-root-cause storm: independent failures of distinct
/// classes at disjoint subtree roots, active simultaneously. Each root
/// must stay its own managed incident — neither merged nor duplicated.
[[nodiscard]] std::unique_ptr<scenario> make_multi_cause_storm(const topology& topo, rng& rand,
                                                               bool severe);

/// Maintenance window: a cluster is drained and its devices rebooted in
/// a rolling sequence. The symptoms mimic a failure, but the event is
/// expected (benign): incidents here are false positives the life-cycle
/// layer should keep collapsed, not re-alert per rebooted device.
[[nodiscard]] std::unique_ptr<scenario> make_maintenance_window(const topology& topo, rng& rand);

/// Slow-burn degradation: a circuit's corruption loss creeps up a little
/// every tick, from harmless to SLA-breaking, with no step change for
/// threshold rules to latch onto.
[[nodiscard]] std::unique_ptr<scenario> make_slow_burn_degradation(const topology& topo,
                                                                   rng& rand, bool severe);

/// Samples a scenario of class `cause`.
[[nodiscard]] std::unique_ptr<scenario> make_scenario(root_cause cause, const topology& topo,
                                                      rng& rand, bool severe);

/// Samples class per Figure 1, then builds it.
[[nodiscard]] std::unique_ptr<scenario> make_random_scenario(const topology& topo, rng& rand,
                                                             bool severe);

}  // namespace skynet
