// Deterministic fault injection on the monitor -> engine ingest path.
//
// SkyNet's value is that it keeps working *during* severe failures
// (§1, §4.2) — which is exactly when its own inputs degrade: monitors
// stop reporting, collection paths duplicate and reorder deliveries,
// clocks skew, relays garble fields, and ingest queues back up. The
// fault_injector scripts those pathologies over a recorded or live
// alert stream, seeded so every degraded run is replayable bit-for-bit.
//
// The injector sits *in front of* the engine: it transforms the single
// ordered (alert, arrival) stream before ingest, consuming its rng in
// stream order. Both the sequential and the region-sharded engine then
// consume the identical faulted stream, so report parity between them
// is preserved under any fault seed (the property test_faults.cpp
// checks). The one exception is queue overflow shedding, which happens
// inside the sharded engine and is documented in DESIGN.md "Fault model
// & degradation semantics".
//
// Fault clauses are scriptable through a small text DSL (the CLI's
// --faults flag, and the scenario recipes in EXPERIMENTS.md):
//
//   seed=3;dropout=0.2;drop:ping@60s+120s;dup=0.05;reorder=0.1;
//   reorder_max=10s;skew=5s;skew_rate=0.3;corrupt=0.02;pressure=0.5;
//   stall:1@4;stall=0.01
//
// Clauses are ';' or ',' separated; durations take ms/s/m suffixes.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <span>
#include <string>
#include <vector>

#include "skynet/common/error.h"
#include "skynet/common/rng.h"
#include "skynet/sim/trace.h"

namespace skynet {

/// One scripted per-source dropout window: alerts from `source` whose
/// arrival falls in [from, from + duration) never reach the engine.
struct dropout_window {
    data_source source{data_source::ping};
    sim_time from{0};
    sim_duration duration{0};
};

/// One scripted worker stall (the `stall:<shard>@<ordinal>` clause):
/// shard `shard` parks at its `ordinal`-th command (1-based) until the
/// watchdog releases it.
struct stall_point {
    std::size_t shard{0};
    std::uint64_t ordinal{1};
};

struct fault_spec {
    std::uint64_t seed{1};

    /// Scripted dropout windows (the `drop:<source>@<from>+<for>` clause).
    std::vector<dropout_window> dropouts;
    /// Random dropout: probability that a given source is dark during a
    /// given `dropout_period`-aligned window. Decided by a stateless hash
    /// of (seed, source, window index), so it is independent of stream
    /// order and replayable.
    double dropout_rate{0.0};
    sim_duration dropout_period{minutes(1)};

    /// Probability an alert is delivered twice (collection-path retry).
    double duplicate_rate{0.0};

    /// Probability an alert is held back and re-delivered up to
    /// `reorder_max_delay` later, after alerts that arrived behind it.
    double reorder_rate{0.0};
    sim_duration reorder_max_delay{seconds(10)};

    /// Probability one field of the alert is garbled (unknown kind, bogus
    /// device/link reference, non-finite metric, negative timestamp) —
    /// exercising the preprocessor's reject-with-reason paths.
    double corrupt_rate{0.0};

    /// Bounded clock skew: with probability `skew_rate` the generation
    /// timestamp shifts by a uniform amount in [-max_skew, +max_skew]
    /// (arrival time unchanged). Forward skew past the arrival time is
    /// clamped by the preprocessor and counted as `skew_clamped`.
    sim_duration max_skew{0};
    double skew_rate{0.0};

    /// Probability per submit that a shard queue is treated as full (a
    /// forced-full window); drives the sharded engine's overflow policy
    /// via fault_injector::queue_pressure_hook().
    double pressure_rate{0.0};

    /// Scripted worker stalls (the `stall:<shard>@<ordinal>` clause);
    /// drives sharded_config::worker_stall via worker_stall_hook().
    std::vector<stall_point> stalls;
    /// Probability a worker parks at a given command (the `stall=<rate>`
    /// clause). Decided by a stateless hash of (seed, shard, ordinal), so
    /// stall placement is independent of thread interleaving.
    double stall_rate{0.0};

    /// True when at least one fault knob is active.
    [[nodiscard]] bool any() const noexcept;
    /// Rates in [0,1], durations non-negative. Empty error = valid.
    [[nodiscard]] error validate() const;
};

struct fault_parse_error {
    std::string clause;
    std::string message;
};

struct fault_parse_result {
    fault_spec spec;
    std::vector<fault_parse_error> errors;

    [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
};

/// Parses the fault-clause DSL (see header comment for the grammar).
[[nodiscard]] fault_parse_result parse_fault_spec(std::string_view text);

/// What the injector did to the stream; `sources_in_dropout` feeds the
/// engine_metrics degraded block through the CLI.
struct fault_stats {
    std::uint64_t alerts_in{0};
    std::uint64_t dropped_dropout{0};
    std::uint64_t duplicated{0};
    std::uint64_t reordered{0};
    std::uint64_t corrupted{0};
    std::uint64_t skewed{0};
    /// Distinct data sources that hit at least one dropout window.
    std::uint64_t sources_in_dropout{0};
};

class fault_injector {
public:
    explicit fault_injector(fault_spec spec);

    /// Feeds one delivery in arrival order; appends zero or more faulted
    /// deliveries (dropped alerts append nothing, duplicates append two,
    /// reordered alerts appear on a later call once their delay elapses).
    void feed(const traced_alert& t, std::vector<traced_alert>& out);

    /// Batch convenience over feed(): one simulator tick's deliveries in,
    /// the faulted deliveries out.
    [[nodiscard]] std::vector<traced_alert> apply(std::span<const traced_alert> batch);

    /// Releases reorder-held alerts due by `now` (call once per tick).
    [[nodiscard]] std::vector<traced_alert> release(sim_time now);

    /// Releases everything still held (end of the stream).
    [[nodiscard]] std::vector<traced_alert> drain();

    /// Seeded forced-full predicate for sharded_config::force_full; fires
    /// with probability pressure_rate per call, independently of the
    /// alert-stream rng so the faulted stream stays identical whether or
    /// not the hook is installed.
    [[nodiscard]] std::function<bool()> queue_pressure_hook();

    /// Stall predicate for sharded_config::worker_stall; fires at every
    /// scripted stall point and with probability stall_rate per (shard,
    /// ordinal). Stateless (no shared rng), so concurrent workers can
    /// consult it without synchronization and placement is replayable.
    [[nodiscard]] std::function<bool(std::size_t, std::uint64_t)> worker_stall_hook() const;

    [[nodiscard]] const fault_stats& stats() const noexcept { return stats_; }
    [[nodiscard]] const fault_spec& spec() const noexcept { return spec_; }

private:
    struct held_alert {
        sim_time due{0};
        std::uint64_t seq{0};
        traced_alert t;
        bool operator>(const held_alert& other) const noexcept {
            if (due != other.due) return due > other.due;
            return seq > other.seq;
        }
    };

    [[nodiscard]] bool in_dropout(data_source source, sim_time at);
    void corrupt(raw_alert& alert);
    void pop_due(sim_time now, std::vector<traced_alert>& out);

    fault_spec spec_;
    rng rand_;
    fault_stats stats_;
    /// Sources already counted toward sources_in_dropout.
    std::uint32_t dropout_seen_mask_{0};
    std::priority_queue<held_alert, std::vector<held_alert>, std::greater<held_alert>> held_;
    std::uint64_t seq_{0};
};

}  // namespace skynet
