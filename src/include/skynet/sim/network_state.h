// Dynamic network state over a static topology.
//
// Failure scenarios mutate this state; monitoring tools observe it. The
// model captures exactly the phenomena the paper's alert flood is made
// of: device death and degradation, circuit breaks, traffic shift onto
// surviving circuits, congestion loss, SLA-flow overload, control-plane
// damage, and end-to-end reachability along live paths.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "skynet/common/time.h"
#include "skynet/telemetry/customer.h"
#include "skynet/topology/topology.h"

namespace skynet {

struct device_health {
    /// Device answers its out-of-band channel and forwards traffic.
    bool alive{true};
    /// Routing processes are up (BGP sessions, route advertisement).
    bool control_plane_ok{true};
    /// Hardware fault present (ASIC/linecard); causes silent loss.
    bool hardware_fault{false};
    /// Software fault present (process crash / OOM).
    bool software_fault{false};
    /// PTP clock synchronized.
    bool clock_synced{true};
    /// Operator or SOP isolated the device (drained, not a fault).
    bool isolated{false};
    /// BGP sessions flapping (the early symptom preceding hardware-error
    /// syslogs in the §7.3 incident).
    bool bgp_flapping{false};
    double cpu{0.3};
    double ram{0.4};
    /// Silent loss ratio introduced on every link of this device (gray
    /// failure — invisible to the device's own syslog).
    double silent_loss{0.0};
};

struct link_health {
    bool up{true};
    /// Interface bouncing between up and down.
    bool flapping{false};
    /// Physical-layer corruption (CRC) ratio on this circuit.
    double corruption_loss{0.0};
};

/// Control-plane anomaly observable by route monitoring.
struct route_incident {
    enum class kind : std::uint8_t { default_route_loss, aggregate_route_loss, hijack, leak, churn };
    kind what{kind::churn};
    location where;
    /// `where` interned in the topology's location table (scenarios set
    /// it; the sentinel means "not interned yet").
    location_id where_id{invalid_location_id};
    sim_time since{0};
};

/// A network modification (automatic or manual) whose outcome the
/// modification-events source reports.
struct modification_event {
    location where;
    /// `where` interned in the topology's location table.
    location_id where_id{invalid_location_id};
    bool failed{false};
    bool rolled_back{false};
    sim_time at{0};
    bool consumed{false};  // set once the monitor has reported it
};

/// Mutable runtime state; cheap value-semantics snapshotting (copyable)
/// so the evaluator can be fed a frozen view.
class network_state {
public:
    network_state(const topology* topo, const customer_registry* customers);

    [[nodiscard]] const topology& topo() const noexcept { return *topo_; }
    [[nodiscard]] const customer_registry& customers() const noexcept { return *customers_; }

    // --- element health ---------------------------------------------------
    [[nodiscard]] device_health& device_state(device_id id);
    [[nodiscard]] const device_health& device_state(device_id id) const;
    [[nodiscard]] link_health& link_state(link_id id);
    [[nodiscard]] const link_health& link_state(link_id id) const;

    /// A link forwards only if it is up and both endpoints are alive and
    /// not isolated.
    [[nodiscard]] bool link_usable(link_id id) const;

    // --- circuit sets -----------------------------------------------------
    /// Fraction of the set's circuits currently not usable (d_i).
    [[nodiscard]] double break_ratio(circuit_set_id cset) const;
    /// Live capacity: usable circuits x per-circuit capacity.
    [[nodiscard]] double live_capacity_gbps(circuit_set_id cset) const;
    /// Effective load riding the set (demand plus spillover from dead
    /// sibling sets).
    [[nodiscard]] double offered_gbps(circuit_set_id cset) const;
    /// Sets the set's base demand (scenarios use this for DDoS surges,
    /// peak-hour bumps, ...). Takes effect immediately; spillover is
    /// recomputed by apply_traffic_shift().
    void set_offered_gbps(circuit_set_id cset, double gbps);
    /// offered / live capacity; infinite when capacity is zero but load
    /// is offered (represented as a large sentinel).
    [[nodiscard]] double utilization(circuit_set_id cset) const;
    /// Loss caused by overload: 0 below `congestion_knee`, then rising to
    /// (util-1)/util when offered exceeds capacity.
    [[nodiscard]] double congestion_loss(circuit_set_id cset) const;
    /// Total loss ratio a packet crossing this set experiences
    /// (congestion + mean corruption + endpoint silent loss).
    [[nodiscard]] double traversal_loss(circuit_set_id cset) const;

    // --- SLA flows ----------------------------------------------------------
    [[nodiscard]] double flow_rate_gbps(sla_flow_id id) const;
    void set_flow_rate_gbps(sla_flow_id id, double gbps);
    /// l_i: fraction of the set's SLA flows beyond limit — rate above
    /// commitment, or service degraded past the SLA loss bound by the
    /// set's traversal loss.
    [[nodiscard]] double sla_overload_ratio(circuit_set_id cset) const;
    /// L_k: maximum violation magnitude across flows on the given sets —
    /// relative rate overshoot or normalized loss violation, capped at 1.
    [[nodiscard]] double max_sla_overload(std::span<const circuit_set_id> csets) const;

    /// Loss bound an SLA flow tolerates before it counts as violated.
    static constexpr double sla_loss_limit = 0.001;

    // --- end-to-end probing -------------------------------------------------
    struct probe_result {
        bool reachable{false};
        /// End-to-end loss ratio along the path.
        double loss{0.0};
        /// One-way latency estimate in ms (hops + queueing).
        double latency_ms{0.0};
        std::vector<device_id> hops;
    };
    /// Shortest live path (BFS) with multiplicative loss accumulation.
    [[nodiscard]] probe_result probe(device_id src, device_id dst) const;

    /// A stable probing endpoint inside a cluster (its first ToR);
    /// nullopt when the cluster has no devices.
    [[nodiscard]] std::optional<device_id> representative(const location& cluster) const;
    /// Id-keyed variant: containment checks are pointer chases in the
    /// topology's location table instead of segment compares.
    [[nodiscard]] std::optional<device_id> representative(location_id cluster) const;

    /// Initializes baseline traffic: every circuit set loaded to
    /// `baseline_util` of capacity, every SLA flow to 70 % of commitment.
    void reset_traffic(double baseline_util = 0.45);

    /// Recomputes effective loads: each set carries its own demand
    /// (traffic shifts between circuits *within* a set implicitly since
    /// capacity shrinks), plus the demand of fully-dead sets spilled onto
    /// sibling sets of the same device group (backup-path congestion —
    /// the §2.2 mechanism). Idempotent; the engine calls it every tick.
    void apply_traffic_shift();

    // --- control plane ------------------------------------------------------
    [[nodiscard]] std::vector<route_incident>& route_incidents() noexcept {
        return route_incidents_;
    }
    [[nodiscard]] const std::vector<route_incident>& route_incidents() const noexcept {
        return route_incidents_;
    }
    void clear_route_incidents(const location& scope);

    [[nodiscard]] std::vector<modification_event>& modifications() noexcept {
        return modifications_;
    }
    [[nodiscard]] const std::vector<modification_event>& modifications() const noexcept {
        return modifications_;
    }

    /// Congestion knee: utilization above which queues start dropping.
    static constexpr double congestion_knee = 0.9;

private:
    const topology* topo_;
    const customer_registry* customers_;
    std::vector<device_health> devices_;
    std::vector<link_health> links_;
    std::vector<double> offered_;  // effective (demand + spillover)
    std::vector<double> demand_;
    std::vector<double> flow_rates_;
    std::vector<route_incident> route_incidents_;
    std::vector<modification_event> modifications_;
};

}  // namespace skynet
