// Operator response model for the mitigation-time comparison (Fig 10c).
//
// The paper measures time-to-mitigation before and after SkyNet on real
// on-call operators; we model the mechanics their narrative describes:
// an operator triages messages one by one, diagnosis only starts once the
// root-cause alert has been seen, floods bury it (the §2.2 congestion
// alert "obscured by a flood of alerts"), and wrong first hypotheses cost
// wall-clock time. With SkyNet the operator reads ~10 ranked incident
// reports with categorized root-cause alerts and a zoomed location.
// Calibrated so the *shape* matches the paper (median 736 s -> 147 s,
// max 14028 s -> 1920 s; both >80 % reductions).
#pragma once

#include <cstdint>

#include "skynet/common/rng.h"
#include "skynet/common/time.h"

namespace skynet {

struct operator_model_params {
    /// Seconds to skim one raw alert during triage.
    double seconds_per_alert = 0.8;
    /// An operator cannot triage more than this many alerts before
    /// falling back to ad-hoc spelunking.
    int triage_capacity = 2000;
    /// Seconds to digest one SkyNet incident report.
    double seconds_per_report = 45.0;
    /// Base time for the mitigation action itself (isolate, reroute,
    /// reduce bandwidth), once correctly diagnosed.
    double action_seconds = 90.0;
    /// Time lost to each wrong hypothesis (isolate the wrong device,
    /// dispatch a repair technician, ...).
    double wrong_path_seconds = 1800.0;
    /// Probability of a wrong first hypothesis per 1000 alerts of flood
    /// (saturates at max_wrong_paths).
    double wrong_path_per_1000_alerts = 0.35;
    int max_wrong_paths = 6;
    /// Extra spelunking time when the root-cause alert never surfaced.
    double undetected_penalty_seconds = 3600.0;
};

/// One failure episode as the operator experiences it.
struct episode_observation {
    /// Raw alerts the failure produced (pre-SkyNet the operator faces all
    /// of them).
    int raw_alerts{0};
    /// Whether a root-cause alert exists somewhere in the stream.
    bool root_cause_alert_present{false};
    /// SkyNet path: incident reports shown after filtering.
    int incident_reports{0};
    /// SkyNet surfaced the root-cause category in a report.
    bool root_cause_surfaced{false};
    /// SkyNet's zoom-in refined the location.
    bool zoomed{false};
};

/// Mitigation time (seconds) for a manual operator drowning in raw alerts.
[[nodiscard]] double mitigation_time_manual(const episode_observation& obs,
                                            const operator_model_params& params, rng& rand);

/// Mitigation time (seconds) with SkyNet's ranked incident reports.
[[nodiscard]] double mitigation_time_skynet(const episode_observation& obs,
                                            const operator_model_params& params, rng& rand);

}  // namespace skynet
