// Monitoring data sources (Table 2 of the paper).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace skynet {

/// The twelve monitoring data sources SkyNet integrates. Each has its own
/// simulated tool in `skynet::monitors`, with the coverage limitations
/// described in §2.1.
enum class data_source : std::uint8_t {
    ping,                 ///< server-pair latency/reachability probes
    traceroute,           ///< per-hop latency between server pairs
    out_of_band,          ///< device liveness / CPU / RAM via OOB channel
    traffic_stats,        ///< sFlow / netFlow traffic monitoring
    internet_telemetry,   ///< pings from DC servers to Internet addresses
    syslog,               ///< errors reported by the devices themselves
    snmp,                 ///< interface status & counters, RX errors, CPU/RAM
    inband_telemetry,     ///< INT test packets through supporting devices
    ptp,                  ///< device clock out of synchronization
    route_monitoring,     ///< route loss / hijack / leaking (control plane)
    modification_events,  ///< failed automatic or manual network changes
    patrol_inspection,    ///< periodic scripted CLI command sweeps
};

inline constexpr std::size_t data_source_count = 12;

[[nodiscard]] std::string_view to_string(data_source source) noexcept;

/// All sources, in enum order (useful for sweeps such as the Figure 8a
/// source-removal experiment).
[[nodiscard]] constexpr std::array<data_source, data_source_count> all_data_sources() noexcept {
    return {data_source::ping,
            data_source::traceroute,
            data_source::out_of_band,
            data_source::traffic_stats,
            data_source::internet_telemetry,
            data_source::syslog,
            data_source::snmp,
            data_source::inband_telemetry,
            data_source::ptp,
            data_source::route_monitoring,
            data_source::modification_events,
            data_source::patrol_inspection};
}

}  // namespace skynet
