// Alert data model: raw alerts from monitoring tools and the uniform
// structured alerts the preprocessor emits (§4.1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "skynet/alert/data_source.h"
#include "skynet/common/time.h"
#include "skynet/topology/model.h"

namespace skynet {

/// The three alert importance levels of §4.2.
enum class alert_category : std::uint8_t {
    /// Network behaviour is definitively abnormal: packet loss, bit flips,
    /// high transmission latency. Most authoritative for detection.
    failure,
    /// Irregular but possibly benign behaviour: jitter, sudden latency
    /// increase, abrupt traffic change, device unreachable.
    abnormal,
    /// Failures of network entities that point at the fix: device/NIC
    /// failure, link outage, CRC errors, risky routes, error logs.
    root_cause,
};

[[nodiscard]] std::string_view to_string(alert_category category) noexcept;

/// Identifier of a registered alert type (see alert_type_registry).
using alert_type_id = std::uint32_t;
inline constexpr alert_type_id invalid_alert_type = 0xffffffffu;

/// What a monitoring tool emits, before preprocessing. Tools disagree on
/// structure: syslog carries free text, ping carries a server pair, SNMP
/// carries a device counter — hence the optional fields.
struct raw_alert {
    data_source source{data_source::ping};
    sim_time timestamp{0};
    /// Tool-specific kind tag ("packet_loss", "link_down", ...). Empty for
    /// syslog, whose kind is recovered by template classification.
    std::string kind;
    /// Human-readable payload (the full syslog line, probe detail, ...).
    std::string message;
    /// Hierarchy location the tool attributes the event to. End-to-end
    /// tools report an aggregate location (e.g. common ancestor of the
    /// probe endpoints); device tools report the device location.
    location loc;
    /// `loc` interned in the emitting topology's location table. Monitors
    /// set this directly (they hold the topology); alerts parsed from
    /// traces arrive with the sentinel and are interned by the
    /// preprocessor on ingest.
    location_id loc_id{invalid_location_id};
    /// Set when the alert is attributable to a single device.
    std::optional<device_id> device;
    /// Set when the alert concerns a link; the preprocessor splits it into
    /// two device-attributed alerts (§4.1).
    std::optional<link_id> link;
    /// Tool metric: loss ratio for ping/sFlow, utilization for SNMP, ...
    double metric{0.0};
    /// Endpoints for end-to-end probes (reachability matrix input).
    std::optional<location> src_loc;
    std::optional<location> dst_loc;
    /// Interned probe endpoints (same convention as loc_id).
    location_id src_id{invalid_location_id};
    location_id dst_id{invalid_location_id};
};

/// The uniform format every data source is converted into: when, where,
/// what (type + category), plus consolidation metadata.
struct structured_alert {
    alert_type_id type{invalid_alert_type};
    std::string type_name;
    data_source source{data_source::ping};
    alert_category category{alert_category::abnormal};
    /// Aggregated time range: begin = first occurrence, end = latest
    /// occurrence (the "duration" attribute of §4.1).
    time_range when;
    location loc;
    /// `loc` interned in the pipeline's location table; the key every
    /// downstream stage (locator trees, evaluator memo, reachability
    /// index) uses instead of the string path.
    location_id loc_id{invalid_location_id};
    /// Occurrences consolidated into this alert.
    int count{1};
    /// Representative metric (e.g. mean packet-loss ratio).
    double metric{0.0};
    std::optional<device_id> device;
    /// Probe endpoints, preserved from end-to-end sources so the
    /// evaluator can build reachability matrices (Figure 7).
    std::optional<location> src_loc;
    std::optional<location> dst_loc;
    /// Interned probe endpoints (same convention as loc_id).
    location_id src_id{invalid_location_id};
    location_id dst_id{invalid_location_id};
};

}  // namespace skynet
