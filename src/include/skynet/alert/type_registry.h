// Alert type registry (§4.1).
//
// Every structured alert carries a type drawn from this registry. Types
// for tools with limited alert content (Ping, SNMP, ...) are manually
// defined — the built-in catalog below mirrors the types visible in the
// paper's Figure 6 running example. Syslog types are added dynamically as
// the FT-tree template classifier discovers templates.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "skynet/alert/alert.h"

namespace skynet {

struct alert_type {
    alert_type_id id{invalid_alert_type};
    std::string name;
    data_source source{data_source::ping};
    alert_category category{alert_category::abnormal};
};

class alert_type_registry {
public:
    /// Registers (or returns the existing id of) a type. Re-registering
    /// with a conflicting category throws.
    alert_type_id register_type(data_source source, std::string name, alert_category category);

    [[nodiscard]] std::optional<alert_type_id> find(data_source source,
                                                    std::string_view name) const;
    [[nodiscard]] const alert_type& at(alert_type_id id) const;
    [[nodiscard]] std::size_t size() const noexcept { return types_.size(); }
    [[nodiscard]] const std::vector<alert_type>& types() const noexcept { return types_; }

    /// Registry preloaded with the manual catalog for all twelve sources
    /// (the syslog entries cover the templates exercised by the simulator;
    /// production would learn them from the FT-tree).
    [[nodiscard]] static alert_type_registry with_builtin_catalog();

private:
    [[nodiscard]] static std::string key(data_source source, std::string_view name);

    std::vector<alert_type> types_;
    std::unordered_map<std::string, alert_type_id> by_key_;
};

}  // namespace skynet
