// Syslog-to-alert-type classifier built on the FT-tree.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "skynet/syslog/ft_tree.h"

namespace skynet {

/// Converts raw syslog lines into alert type names by FT-tree template
/// matching. Trained from a labeled corpus; unmatched or unlabeled
/// messages classify to nullopt (the preprocessor maps those to a generic
/// "unknown syslog" type).
class syslog_classifier {
public:
    /// Builds the tree from the built-in message catalog: renders
    /// `samples_per_format` randomized instances of every format as the
    /// corpus, then labels each template from one more rendered example.
    [[nodiscard]] static syslog_classifier train_from_catalog(int samples_per_format = 8,
                                                              std::uint64_t seed = 7);

    /// Builds from an arbitrary labeled corpus: each entry is
    /// (message, type name). Messages with empty type contribute corpus
    /// statistics without labeling a template.
    [[nodiscard]] static syslog_classifier train(
        const std::vector<std::pair<std::string, std::string>>& labeled_corpus,
        ft_tree::options opts = {});

    struct result {
        std::string type_name;
        template_id tmpl{invalid_template};
    };

    /// Classifies a message; nullopt when no labeled template matches.
    [[nodiscard]] std::optional<result> classify(std::string_view message) const;

    [[nodiscard]] const ft_tree& tree() const noexcept { return tree_; }

private:
    explicit syslog_classifier(ft_tree tree) : tree_(std::move(tree)) {}
    ft_tree tree_;
};

}  // namespace skynet
