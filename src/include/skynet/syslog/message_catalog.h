// Catalog of syslog message formats.
//
// Substitutes for the production syslog corpus: realistic vendor-style
// CLI messages with variable fields (interfaces, addresses, counters).
// Both sides of the pipeline share it — the simulated syslog source
// renders concrete messages from it, and the classifier trainer uses it
// as the labeled example set (the paper's months-long manual
// classification, compressed).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "skynet/common/rng.h"

namespace skynet {

struct syslog_format {
    /// Alert type name this format maps to (must exist in the registry
    /// under data_source::syslog).
    std::string type_name;
    /// Format string with placeholders: {intf} {ip} {num} {hex} {proc}.
    std::string pattern;
};

/// All formats the simulator can emit, several per alert type.
[[nodiscard]] const std::vector<syslog_format>& syslog_message_catalog();

/// Renders `pattern` with randomized variable fields.
[[nodiscard]] std::string render_syslog(std::string_view pattern, rng& rand);

}  // namespace skynet
