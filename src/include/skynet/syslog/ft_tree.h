// FT-tree syslog template extraction (§4.1, after Zhang et al. [56]).
//
// Syslog has thousands of distinct CLI output formats; SkyNet converts
// them into alert types by template matching. The pipeline:
//   1. tokenize each message into words,
//   2. strip variable words (addresses, interfaces, numbers) with
//      predefined regular expressions,
//   3. order the remaining words by corpus frequency (descending) and
//      insert them as a path into a frequency tree,
//   4. prune rare subtrees; the surviving paths are the templates.
// Classification walks a message's frequency-ordered words down the tree;
// the deepest template node reached is the message's template.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace skynet {

/// Splits a syslog message into words and removes variable tokens
/// (IPv4/IPv6 addresses, interface paths like `TenGigE0/1/0/25`, plain
/// and hex numbers, MAC addresses, bracketed timestamps). Mnemonic tokens
/// such as `%LINK-3-UPDOWN:` survive — they identify the template.
[[nodiscard]] std::vector<std::string> strip_variables(std::string_view message);

using template_id = std::uint32_t;
inline constexpr template_id invalid_template = 0xffffffffu;

struct syslog_template {
    template_id id{invalid_template};
    /// Frequency-ordered constant words forming the template path.
    std::vector<std::string> words;
    /// Messages in the training corpus matching this template.
    int support{0};
    /// Alert type name assigned by manual labeling (empty = unclassified).
    std::string assigned_type;
};

/// FT-tree tuning knobs; defaults follow the FT-tree paper's spirit.
struct ft_tree_options {
    /// Maximum template path length (deeper words are detail).
    int max_depth = 6;
    /// Minimum corpus support for a node to survive pruning.
    int min_support = 2;
};

class ft_tree {
public:
    using options = ft_tree_options;

    explicit ft_tree(options opts = {}) : opts_(opts) {}

    /// Corpus accumulation phase: feed raw messages.
    void add_message(std::string_view message);
    [[nodiscard]] std::size_t corpus_size() const noexcept { return corpus_.size(); }

    /// Finalizes word frequencies, builds and prunes the tree, and
    /// enumerates templates. Must be called once after accumulation.
    void build();
    [[nodiscard]] bool built() const noexcept { return built_; }

    /// Templates discovered by build().
    [[nodiscard]] const std::vector<syslog_template>& templates() const noexcept {
        return templates_;
    }

    /// Matches a message to its template; nullopt when no template path
    /// covers it (rare message or tree not built).
    [[nodiscard]] std::optional<template_id> classify(std::string_view message) const;

    /// Assigns an alert type name to the template that `example_message`
    /// classifies to (the "manual classification" step the paper spread
    /// over months). Returns the template id, or nullopt if unmatched.
    std::optional<template_id> label(std::string_view example_message, std::string_view type_name);

    [[nodiscard]] const syslog_template& template_at(template_id id) const;

private:
    struct node {
        std::map<std::string, std::unique_ptr<node>> children;
        int support{0};
        /// Corpus messages whose word path terminates exactly here.
        int ends{0};
        template_id tmpl{invalid_template};
    };

    /// Message words ordered by descending corpus frequency, truncated to
    /// max_depth. Ties break lexicographically for determinism.
    [[nodiscard]] std::vector<std::string> ordered_words(std::string_view message) const;

    options opts_;
    bool built_{false};
    std::vector<std::vector<std::string>> corpus_;
    std::unordered_map<std::string, int> word_freq_;
    std::unique_ptr<node> root_;
    std::vector<syslog_template> templates_;
};

}  // namespace skynet
