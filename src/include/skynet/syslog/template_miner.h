// Online discovery of unclassified syslog templates.
//
// The paper's manual classification took months and covered hundreds of
// types, prioritized by criticality — and the corpus keeps growing as
// vendors ship new firmware. The miner watches the lines the classifier
// could not map, groups them by their FT-tree word signature, and
// surfaces the highest-volume candidates so operators label the
// templates that matter first (exactly the prioritize-by-frequency
// process §4.1 describes).
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "skynet/common/time.h"

namespace skynet {

/// A candidate template awaiting manual classification.
struct mined_template {
    /// Frequency-ordered constant-word signature.
    std::string signature;
    /// Messages matching it so far.
    int occurrences{0};
    /// A verbatim example for the labeling operator.
    std::string example;
    sim_time first_seen{0};
    sim_time last_seen{0};
};

struct template_miner_options {
    /// Candidates below this support are noise, not templates.
    int min_occurrences = 5;
    /// Cap on tracked distinct signatures (oldest-evicted beyond it).
    std::size_t max_tracked = 10000;
};

class template_miner {
public:
    using options = template_miner_options;

    explicit template_miner(options opts = {}) : opts_(opts) {}

    /// Feeds one unclassified syslog line.
    void observe(std::string_view message, sim_time now);

    [[nodiscard]] std::int64_t observed_count() const noexcept { return observed_; }
    [[nodiscard]] std::size_t tracked_signatures() const noexcept { return tracked_.size(); }

    /// Candidates at/above min_occurrences, highest-volume first — the
    /// labeling worklist.
    [[nodiscard]] std::vector<mined_template> candidates() const;

    /// Drops a signature once it has been labeled (or dismissed).
    void resolve(std::string_view signature);

private:
    options opts_;
    std::int64_t observed_{0};
    std::unordered_map<std::string, mined_template> tracked_;
};

}  // namespace skynet
