// Topology container and graph queries.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "skynet/topology/model.h"

namespace skynet {

/// Owns every network element and answers the structural queries SkyNet's
/// modules need: hierarchy lookups (devices under a location), adjacency
/// (connectivity grouping in the locator), and circuit-set membership
/// (evaluator). Built once, then immutable; runtime health lives in
/// `skynet::network_state`.
class topology {
public:
    // --- construction (used by the generator and by tests) -------------
    device_id add_device(std::string name, device_role role, location loc);
    link_id add_link(device_id a, device_id b, circuit_set_id cset, double capacity_gbps,
                     bool internet_entry = false);
    /// Creates an empty circuit set between two endpoints; links are
    /// attached to it via add_link.
    circuit_set_id add_circuit_set(std::string name, device_id a, device_id b);
    group_id add_group(std::string name);
    void add_to_group(group_id g, device_id d);
    void set_legacy_slow_snmp(device_id d, bool value);
    void set_supports_int(device_id d, bool value);

    // --- element access -------------------------------------------------
    [[nodiscard]] const std::vector<device>& devices() const noexcept { return devices_; }
    [[nodiscard]] const std::vector<link>& links() const noexcept { return links_; }
    [[nodiscard]] const std::vector<circuit_set>& circuit_sets() const noexcept { return csets_; }
    [[nodiscard]] const std::vector<device_group>& groups() const noexcept { return groups_; }

    [[nodiscard]] const device& device_at(device_id id) const;
    [[nodiscard]] const link& link_at(link_id id) const;
    [[nodiscard]] const circuit_set& circuit_set_at(circuit_set_id id) const;
    [[nodiscard]] const device_group& group_at(group_id id) const;

    [[nodiscard]] std::optional<device_id> find_device(std::string_view name) const;

    // --- hierarchy queries ----------------------------------------------
    /// The topology-owned location interner. Every device path (and its
    /// ancestors) is interned at add_device time; alert producers and
    /// the pipeline carry the resulting ids instead of string paths.
    /// Mutable through a const topology: interning is memoization — the
    /// set of *paths* never changes meaning, only gains dense ids.
    [[nodiscard]] location_table& locations() const noexcept { return locations_; }

    /// Devices whose location is under (or at) `loc`.
    [[nodiscard]] std::vector<device_id> devices_under(const location& loc) const;
    [[nodiscard]] std::vector<device_id> devices_under(location_id scope) const;

    /// All cluster-level locations under `loc` (used for reachability
    /// matrices).
    [[nodiscard]] std::vector<location> clusters_under(const location& loc) const;

    /// Interned ids of the cluster-level locations under `scope`, in the
    /// same (path-sorted) order clusters_under() returns.
    [[nodiscard]] std::vector<location_id> cluster_ids_under(location_id scope) const;

    // --- graph queries ----------------------------------------------------
    /// Links incident to `d`.
    [[nodiscard]] std::span<const link_id> links_of(device_id d) const;

    /// Neighbor devices of `d` (deduplicated).
    [[nodiscard]] std::vector<device_id> neighbors(device_id d) const;

    /// Circuit sets with `d` as an endpoint.
    [[nodiscard]] std::span<const circuit_set_id> circuit_sets_of(device_id d) const;

    /// True if a direct link joins the devices.
    [[nodiscard]] bool adjacent(device_id a, device_id b) const;

    /// Partitions `members` into groups connected through topology links
    /// restricted to the member set itself, with one extension matching
    /// the paper's propagation insight: two members are also considered
    /// connected when they sit in the same cluster (alerts propagate
    /// within the shared fabric even without a direct cable).
    [[nodiscard]] std::vector<std::vector<device_id>> connected_components(
        std::span<const device_id> members) const;

    /// Shortest hop distance between devices (BFS); nullopt if unreachable.
    [[nodiscard]] std::optional<int> hop_distance(device_id a, device_id b) const;

private:
    std::vector<device> devices_;
    std::vector<link> links_;
    std::vector<circuit_set> csets_;
    std::vector<device_group> groups_;
    std::vector<std::vector<link_id>> links_by_device_;
    std::vector<std::vector<circuit_set_id>> csets_by_device_;
    std::unordered_map<std::string, device_id> device_by_name_;
    /// See locations(). Mutable: interning through a const topology.
    mutable location_table locations_;
};

}  // namespace skynet
