// Interned hierarchy locations: the location_table.
//
// Every layer of the pipeline used to key on `skynet::location` — a
// vector of path segments that is deep-copied on insert, re-hashed
// segment-by-segment on every lookup, and compared lexicographically on
// every ancestor walk. The table interns each distinct path once and
// hands out a dense `location_id` (u32, root = 0) with a parent pointer
// and cached depth, so the hot tree operations — parent(), ancestor_at(),
// contains(), common_ancestor() — become O(depth) pointer chases with
// zero allocation, and hashing/equality a single integer op.
//
// Invariants (see DESIGN.md "Location interning"):
//   * ids are dense: 0 .. size()-1, assigned in first-intern order;
//   * id 0 is the root (empty path); every other entry's parent id is
//     strictly smaller than its own id (parents are interned first);
//   * entries are immutable once created — the cached path reference
//     returned by path_of() stays valid for the table's lifetime;
//   * ids are table-local: two tables intern the same path to different
//     ids, so ids must never cross table boundaries (reports compare by
//     path, not id).
//
// String paths survive only at the I/O boundary (trace parsing,
// serialization, viz, CLI rendering); everything in between carries ids.
//
// Thread safety: interning and lookups may race across threads (the
// sharded engine's caller routes by region while shard workers intern
// derived paths); all operations are guarded by a shared mutex —
// readers take it shared, a miss during intern upgrades to exclusive.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "skynet/topology/location.h"

namespace skynet {

/// Dense identifier of an interned location path. Table-local: never
/// compare ids that came from different tables.
using location_id = std::uint32_t;

/// The implicit global root (empty path) is always entry 0.
inline constexpr location_id root_location_id = 0;

/// "Not interned yet" sentinel carried by alerts at the I/O boundary.
inline constexpr location_id invalid_location_id = 0xffffffffu;

class location_table {
public:
    location_table();

    location_table(const location_table& other);
    location_table& operator=(const location_table& other);
    location_table(location_table&& other) noexcept;
    location_table& operator=(location_table&& other) noexcept;

    /// Interns the full path, creating any missing ancestors. Returns the
    /// existing id when the path is already known.
    location_id intern(const location& loc);

    /// Interns one child step below an already-interned parent.
    location_id intern_child(location_id parent, std::string_view segment);

    /// Id of an already-interned path; nullopt when never interned.
    [[nodiscard]] std::optional<location_id> find(const location& loc) const;

    /// The materialized path (cached at intern time; the reference stays
    /// valid for the table's lifetime).
    [[nodiscard]] const location& path_of(location_id id) const;

    /// Last path segment; empty for the root.
    [[nodiscard]] std::string_view segment_of(location_id id) const;

    /// One level up; the root's parent is the root (mirrors
    /// location::parent()).
    [[nodiscard]] location_id parent_of(location_id id) const;

    [[nodiscard]] std::size_t depth(location_id id) const;
    [[nodiscard]] hierarchy_level level_of(location_id id) const;

    /// Prefix of `id` truncated at `level` (no-op if already at or above).
    [[nodiscard]] location_id ancestor_at(location_id id, hierarchy_level level) const;

    /// Region-level ancestor; the root maps to itself.
    [[nodiscard]] location_id region_of(location_id id) const {
        return ancestor_at(id, hierarchy_level::region);
    }

    /// True if `anc` is `desc` or one of its ancestors.
    [[nodiscard]] bool contains(location_id anc, location_id desc) const;

    /// True if `anc` is a *proper* ancestor of `desc`.
    [[nodiscard]] bool is_ancestor_of(location_id anc, location_id desc) const;

    /// Deepest common prefix of the two paths.
    [[nodiscard]] location_id common_ancestor(location_id a, location_id b) const;

    /// Number of interned paths (including the root).
    [[nodiscard]] std::size_t size() const;

private:
    struct sv_hash {
        using is_transparent = void;
        [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
            return std::hash<std::string_view>{}(s);
        }
    };
    struct entry {
        location_id parent{root_location_id};
        std::uint32_t depth{0};
        std::string segment;
        /// Full path, cached so path_of() is a pointer dereference.
        location path;
        /// Children by segment; the interner's walk structure.
        std::unordered_map<std::string, location_id, sv_hash, std::equal_to<>> children;
    };

    // Lock-free variants used internally while a lock is already held.
    [[nodiscard]] location_id ancestor_at_unlocked(location_id id, std::size_t want) const;
    void check_id(location_id id) const;

    mutable std::shared_mutex mutex_;
    /// Deque: entry addresses are stable across growth, so references
    /// returned by path_of()/segment_of() never dangle.
    std::deque<entry> entries_;
};

}  // namespace skynet
