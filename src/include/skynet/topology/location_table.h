// Interned hierarchy locations: the location_table.
//
// Every layer of the pipeline used to key on `skynet::location` — a
// vector of path segments that is deep-copied on insert, re-hashed
// segment-by-segment on every lookup, and compared lexicographically on
// every ancestor walk. The table interns each distinct path once and
// hands out a dense `location_id` (u32, root = 0) with a parent pointer
// and cached depth, so the hot tree operations — parent(), ancestor_at(),
// contains(), common_ancestor() — become O(depth) pointer chases with
// zero allocation, and hashing/equality a single integer op.
//
// Invariants (see DESIGN.md "Location interning"):
//   * ids are dense: 0 .. size()-1, assigned in first-intern order;
//   * id 0 is the root (empty path); every other entry's parent id is
//     strictly smaller than its own id (parents are interned first);
//   * entries are immutable once created — the cached path reference
//     returned by path_of() stays valid for the table's lifetime;
//   * ids are table-local: two tables intern the same path to different
//     ids, so ids must never cross table boundaries (reports compare by
//     path, not id).
//
// String paths survive only at the I/O boundary (trace parsing,
// serialization, viz, CLI rendering); everything in between carries ids.
//
// Thread safety: lock-free for every read — path_of(), find(),
// ancestor walks, and the hit path of intern() take no lock at all and
// never wait on a writer (the old design put a global shared_mutex in
// front of all of it; under a sharded mega-storm the interning of
// derived paths serialized every worker on that one lock). Entries live
// in an append-only segmented store (geometrically sized blocks, so
// addresses never move) published by a release store of size_; the
// (parent, segment) → id index is a striped_dict whose inserts touch a
// single stripe. Writers contend only on the short append lock and the
// one stripe owning their key; lock_contention() surfaces how often.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "skynet/common/spin_mutex.h"
#include "skynet/common/striped_dict.h"
#include "skynet/topology/location.h"

namespace skynet {

/// Dense identifier of an interned location path. Table-local: never
/// compare ids that came from different tables.
using location_id = std::uint32_t;

/// The implicit global root (empty path) is always entry 0.
inline constexpr location_id root_location_id = 0;

/// "Not interned yet" sentinel carried by alerts at the I/O boundary.
inline constexpr location_id invalid_location_id = 0xffffffffu;

class location_table {
public:
    location_table();
    ~location_table();

    /// Copies snapshot a consistent prefix of the source (safe while the
    /// source keeps interning; parents precede children, so any dense
    /// prefix is a valid table). Moves require exclusive use of both
    /// sides, like moving any standard container.
    location_table(const location_table& other);
    location_table& operator=(const location_table& other);
    location_table(location_table&& other) noexcept;
    location_table& operator=(location_table&& other) noexcept;

    /// Interns the full path, creating any missing ancestors. Returns the
    /// existing id when the path is already known.
    location_id intern(const location& loc);

    /// Interns at most the first `max_depth` segments of `loc` (creating
    /// missing prefix entries). The sharded router's cheap region step:
    /// routing only needs the region prefix, so the full-path intern can
    /// happen later, on a worker, in parallel.
    location_id intern_prefix(const location& loc, std::size_t max_depth);

    /// Interns one child step below an already-interned parent.
    location_id intern_child(location_id parent, std::string_view segment);

    /// Id of an already-interned path; nullopt when never interned.
    [[nodiscard]] std::optional<location_id> find(const location& loc) const;

    /// The materialized path (cached at intern time; the reference stays
    /// valid for the table's lifetime).
    [[nodiscard]] const location& path_of(location_id id) const;

    /// Last path segment; empty for the root.
    [[nodiscard]] std::string_view segment_of(location_id id) const;

    /// One level up; the root's parent is the root (mirrors
    /// location::parent()).
    [[nodiscard]] location_id parent_of(location_id id) const;

    [[nodiscard]] std::size_t depth(location_id id) const;
    [[nodiscard]] hierarchy_level level_of(location_id id) const;

    /// Prefix of `id` truncated at `level` (no-op if already at or above).
    [[nodiscard]] location_id ancestor_at(location_id id, hierarchy_level level) const;

    /// Region-level ancestor; the root maps to itself.
    [[nodiscard]] location_id region_of(location_id id) const {
        return ancestor_at(id, hierarchy_level::region);
    }

    /// True if `anc` is `desc` or one of its ancestors.
    [[nodiscard]] bool contains(location_id anc, location_id desc) const;

    /// True if `anc` is a *proper* ancestor of `desc`.
    [[nodiscard]] bool is_ancestor_of(location_id anc, location_id desc) const;

    /// Deepest common prefix of the two paths.
    [[nodiscard]] location_id common_ancestor(location_id a, location_id b) const;

    /// Number of interned paths (including the root).
    [[nodiscard]] std::size_t size() const;

    /// Contended lock acquisitions so far: child-index stripes plus the
    /// append lock. The sharded engine surfaces this as
    /// steal.intern_lock_contention.
    [[nodiscard]] std::uint64_t lock_contention() const noexcept;

private:
    struct entry {
        location_id parent{root_location_id};
        std::uint32_t depth{0};
        std::string segment;
        /// Full path, cached so path_of() is a pointer dereference.
        location path;
    };

    /// Borrowed lookup key — no allocation on the hit path.
    struct child_ref {
        location_id parent;
        std::string_view segment;
    };
    /// Owning key of the child index: one (parent, segment) edge.
    struct child_key {
        location_id parent;
        std::string segment;

        child_key(location_id p, std::string_view s) : parent(p), segment(s) {}
        explicit child_key(const child_ref& r);
    };
    struct child_hash {
        using is_transparent = void;
        [[nodiscard]] std::size_t operator()(const child_key& k) const noexcept {
            return hash(k.parent, k.segment);
        }
        [[nodiscard]] std::size_t operator()(const child_ref& k) const noexcept {
            return hash(k.parent, k.segment);
        }
        [[nodiscard]] static std::size_t hash(location_id parent, std::string_view seg) noexcept {
            return std::hash<std::string_view>{}(seg) ^
                   (static_cast<std::size_t>(parent) * 0x9e3779b97f4a7c15ULL);
        }
    };
    struct child_eq {
        using is_transparent = void;
        [[nodiscard]] bool operator()(const child_key& a, const child_key& b) const noexcept {
            return a.parent == b.parent && a.segment == b.segment;
        }
        [[nodiscard]] bool operator()(const child_key& a, const child_ref& b) const noexcept {
            return a.parent == b.parent && a.segment == b.segment;
        }
    };
    using child_index = striped_dict<child_key, location_id, child_hash, child_eq>;

    // Append-only segmented entry store: block b holds
    // kFirstBlock << b entries, so ~32 blocks cover the whole id space
    // and entry addresses never move (path_of() references stay valid).
    static constexpr std::size_t kFirstBlock = 256;
    static constexpr std::size_t kMaxBlocks = 24;

    [[nodiscard]] static std::pair<std::size_t, std::size_t> block_of(std::size_t id) noexcept;
    [[nodiscard]] const entry& at(location_id id) const noexcept;
    void check_id(location_id id) const;
    /// Appends a fully-built entry; returns its id (append lock held by
    /// caller via intern paths).
    location_id append_entry(location_id parent, std::string_view segment);
    location_id intern_edge(location_id parent, std::string_view segment);
    void copy_from(const location_table& other);
    void steal_from(location_table&& other) noexcept;
    void destroy() noexcept;

    std::array<std::atomic<entry*>, kMaxBlocks> blocks_{};
    /// Published count: entries [0, size_) are fully constructed.
    std::atomic<std::size_t> size_{0};
    child_index children_;
    /// Serializes id allocation + entry construction (short critical
    /// section; taken after a stripe lock, never before).
    mutable spin_mutex append_mu_;
};

}  // namespace skynet
