// Parameterized hierarchical topology generator.
//
// Substitutes for the paper's production network (O(10^5) devices, 89 data
// centers in 29 regions): builds a multi-region cloud network with the
// exact hierarchy of Figure 5b, Clos-style sites, redundant circuit sets
// at every aggregation tier, internet-entry bundles on the ISRs, and a WAN
// mesh between city backbone routers.
#pragma once

#include <cstdint>

#include "skynet/topology/topology.h"

namespace skynet {

struct generator_params {
    int regions = 2;
    int cities_per_region = 2;
    int logic_sites_per_city = 2;
    int sites_per_logic_site = 2;
    int clusters_per_site = 3;
    int tors_per_cluster = 6;
    int aggs_per_cluster = 2;
    int csrs_per_site = 2;
    int dcbrs_per_logic_site = 2;
    int isrs_per_logic_site = 2;
    int bsrs_per_city = 2;
    /// Parallel circuits per aggregation-tier circuit set.
    int circuits_per_agg_set = 2;
    /// Parallel circuits per WAN (BSR-BSR) circuit set.
    int circuits_per_wan_set = 4;
    /// Parallel circuits in each ISR's internet-entry bundle.
    int internet_circuits_per_isr = 8;
    /// One route reflector per logic site (§7.1 visualization case).
    bool add_reflectors = true;
    /// Fraction of devices whose SNMP agent is slow (alert delay up to
    /// ~2 min, §4.2).
    double legacy_snmp_fraction = 0.15;
    /// Fraction of devices supporting in-band telemetry (§2.1: INT is not
    /// universally supported).
    double int_support_fraction = 0.6;
    std::uint64_t seed = 42;

    /// Handful of devices; fast unit tests.
    [[nodiscard]] static generator_params tiny();
    /// Hundreds of devices; integration tests.
    [[nodiscard]] static generator_params small();
    /// Thousands of devices; benchmark default.
    [[nodiscard]] static generator_params medium();
    /// Tens of thousands of devices; stress benchmarks.
    [[nodiscard]] static generator_params large();
};

/// Builds the network. Deterministic for a given parameter set.
[[nodiscard]] topology generate_topology(const generator_params& params);

}  // namespace skynet
