// Network element model: devices, links, circuit sets, device groups.
//
// The reproduction's topology mirrors the structures SkyNet's algorithms
// actually consume:
//   * devices attached at hierarchy locations (locator main tree),
//   * link adjacency (connectivity grouping of alerting nodes),
//   * circuit sets — bundles of parallel physical circuits between two
//     devices, the redundancy unit of the evaluator's Equation 1
//     (break ratio d_i, SLA-overload ratio l_i per circuit set),
//   * device groups — the redundancy groups heuristic SOP rules match on.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "skynet/topology/location.h"
#include "skynet/topology/location_table.h"

namespace skynet {

using device_id = std::uint32_t;
using link_id = std::uint32_t;
using circuit_set_id = std::uint32_t;
using group_id = std::uint32_t;

inline constexpr device_id invalid_device = std::numeric_limits<device_id>::max();
inline constexpr link_id invalid_link = std::numeric_limits<link_id>::max();
inline constexpr circuit_set_id invalid_circuit_set = std::numeric_limits<circuit_set_id>::max();
inline constexpr group_id invalid_group = std::numeric_limits<group_id>::max();

/// Device roles, following the naming visible in the paper's Figure 11
/// visualization (DCBR/BSR/ISR/CSR) plus intra-cluster tiers.
enum class device_role : std::uint8_t {
    tor,        ///< top-of-rack switch inside a cluster
    agg,        ///< cluster aggregation switch
    csr,        ///< site-level core switch router
    dcbr,       ///< data-center border router (logic-site level)
    isr,        ///< internet switch router (internet entry, logic-site level)
    bsr,        ///< backbone router (city level, WAN)
    reflector,  ///< route reflector (logic-site level; §7.1 case study)
    isp,        ///< external ISP peer (outside our hierarchy)
};

[[nodiscard]] std::string_view to_string(device_role role) noexcept;

struct device {
    device_id id{invalid_device};
    std::string name;
    device_role role{device_role::tor};
    /// Hierarchy node the device attaches to, *including* its own name as
    /// the final segment (so `loc.parent()` is the containing cluster /
    /// site / logic site).
    location loc;
    /// `loc` interned in the owning topology's location table
    /// (topology::locations()); monitors emit this id on their alerts.
    location_id loc_id{invalid_location_id};
    group_id group{invalid_group};
    /// Older devices with weak CPUs deliver SNMP alerts with up to ~2 min
    /// delay (§4.2's motivation for the 5-minute node timeout).
    bool legacy_slow_snmp{false};
    /// INT is not universally supported (§2.1).
    bool supports_int{false};
};

/// One physical circuit. Parallel circuits between the same device pair
/// form a circuit set.
struct link {
    link_id id{invalid_link};
    device_id a{invalid_device};
    device_id b{invalid_device};
    circuit_set_id cset{invalid_circuit_set};
    double capacity_gbps{100.0};
    /// True for the circuits forming a data center's Internet entry
    /// (the severe-failure case of §2.2 cuts half of these at once).
    bool internet_entry{false};
};

/// Redundant bundle of circuits between two endpoints (Table 3's
/// "circuit set"). Evaluator inputs d_i (break ratio) and l_i (SLA
/// overload) are computed per circuit set.
struct circuit_set {
    circuit_set_id id{invalid_circuit_set};
    std::string name;
    device_id a{invalid_device};
    device_id b{invalid_device};
    std::vector<link_id> circuits;
};

/// Redundancy group of interchangeable devices; the unit heuristic SOP
/// rules reason about ("if one device in the group loses packets and the
/// others are silent, isolate it").
struct device_group {
    group_id id{invalid_group};
    std::string name;
    std::vector<device_id> members;
};

}  // namespace skynet
