// Hierarchical network locations.
//
// The paper's cloud network is organized as a strict hierarchy
// (Figure 5b): Region > City > Logic site > Site > Cluster > Device.
// Every alert carries a location — a path from the region down to the
// level at which the alerting entity sits. Devices can attach at any
// level (a reflector attaches at the logic-site level, a ToR at the
// cluster level), so a location's depth varies.
#pragma once

#include <compare>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace skynet {

/// Depth of a node in the location hierarchy. `root` is the implicit
/// global root (empty path); `device` is the deepest level.
enum class hierarchy_level : std::uint8_t {
    root = 0,
    region = 1,
    city = 2,
    logic_site = 3,
    site = 4,
    cluster = 5,
    device = 6,
};

[[nodiscard]] std::string_view to_string(hierarchy_level level) noexcept;

/// Number of path segments for a location at `level`.
[[nodiscard]] constexpr std::size_t depth_of(hierarchy_level level) noexcept {
    return static_cast<std::size_t>(level);
}

/// A path in the location hierarchy, e.g.
/// `Region A|City a|Logic site 2|Site I`. Immutable value type; ordering
/// is lexicographic on segments so locations sort hierarchically.
class location {
public:
    location() = default;
    explicit location(std::vector<std::string> segments) : segments_(std::move(segments)) {}
    location(std::initializer_list<std::string> segments) : segments_(segments) {}

    /// Parses the `a|b|c` rendering produced by to_string().
    [[nodiscard]] static location parse(std::string_view text);

    [[nodiscard]] const std::vector<std::string>& segments() const noexcept { return segments_; }
    [[nodiscard]] bool is_root() const noexcept { return segments_.empty(); }
    [[nodiscard]] std::size_t depth() const noexcept { return segments_.size(); }

    /// Level corresponding to this path's depth. Paths deeper than
    /// `device` are clamped to `device`.
    [[nodiscard]] hierarchy_level level() const noexcept;

    /// Last segment ("Site I" for `Region A|...|Site I`); empty for root.
    [[nodiscard]] std::string_view leaf() const noexcept;

    /// The path one level up; root's parent is root.
    [[nodiscard]] location parent() const;

    /// The prefix of this path truncated at `level` (no-op if already
    /// at or above that level).
    [[nodiscard]] location ancestor_at(hierarchy_level level) const;

    /// True if this location is `other` or one of its ancestors.
    [[nodiscard]] bool contains(const location& other) const noexcept;

    /// True if this location is a *proper* ancestor of `other`.
    [[nodiscard]] bool is_ancestor_of(const location& other) const noexcept;

    /// Deepest common prefix of the two paths.
    [[nodiscard]] static location common_ancestor(const location& a, const location& b);

    /// Path extended one level down with `segment`.
    [[nodiscard]] location child(std::string segment) const;

    [[nodiscard]] std::string to_string() const;

    friend bool operator==(const location& a, const location& b) noexcept = default;
    friend std::strong_ordering operator<=>(const location& a, const location& b) noexcept {
        return a.segments_ <=> b.segments_;
    }

private:
    std::vector<std::string> segments_;
};

/// Hash support so locations can key unordered containers. Boundary
/// code only — the pipeline proper keys on interned `location_id`s
/// (see skynet/topology/location_table.h). Mixes per-segment hashes
/// with a proper combiner so permuted segments do not collide.
struct location_hash {
    [[nodiscard]] std::size_t operator()(const location& loc) const noexcept;
};

}  // namespace skynet
