// Topology text format: export and import.
//
// Lets a deployment load its real inventory instead of the synthetic
// generator. Line-oriented, one element per line, `#` comments:
//
//   # skynet topology v1
//   device <name> <role> <location path with | separators>
//   flags <device-name> [legacy_snmp] [int]
//   group <group-name> <member> [member...]
//   cset <set-name> <endpoint-a> <endpoint-b>
//   link <endpoint-a> <endpoint-b> <set-name|-> <capacity_gbps> [internet]
//
// Names containing whitespace are not supported (matching the generator's
// conventions); location paths use `|` separators. A path containing
// whitespace is written double-quoted (`device d1 tor "Region A|Site 1"`)
// and the importer strips the quotes — any field may be quoted this way.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "skynet/topology/topology.h"

namespace skynet {

/// Serializes every device, flag, group, circuit set and link.
[[nodiscard]] std::string export_topology(const topology& topo);

struct topology_parse_error {
    int line{0};
    std::string message;
    /// The offending input line, verbatim, so callers can show the
    /// operator what was rejected without re-reading the file.
    std::string text;
};

struct topology_parse_result {
    topology topo;
    std::vector<topology_parse_error> errors;

    [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
};

/// Parses the text format. Recovers per line: a malformed line is
/// reported and skipped; references to unknown names are errors.
[[nodiscard]] topology_parse_result import_topology(std::string_view text);

/// Role <-> token helpers used by the format.
[[nodiscard]] std::string_view role_token(device_role role) noexcept;
[[nodiscard]] std::optional<device_role> parse_role(std::string_view token) noexcept;

}  // namespace skynet
