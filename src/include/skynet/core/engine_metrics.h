// Engine observability: per-stage counters and latency histograms.
//
// Both the sequential skynet_engine and the region-sharded engine expose
// an engine_metrics snapshot so benches and the CLI can report where the
// time goes — preprocessing vs. locating vs. evaluation — plus, for the
// sharded engine, queue backpressure and per-shard utilization. Metrics
// use the wall clock and never feed back into the simulated pipeline, so
// they cannot perturb results.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

namespace skynet {

/// Log2-bucketed latency histogram over nanoseconds: bucket i counts
/// samples in [2^i, 2^(i+1)). Fixed memory, allocation-free record path.
class latency_histogram {
public:
    static constexpr std::size_t bucket_count = 40;  // up to ~2^40 ns ≈ 18 min

    void record(std::uint64_t ns) noexcept {
        std::size_t b = 0;
        while ((ns >> (b + 1)) != 0 && b + 1 < bucket_count) ++b;
        ++buckets_[b];
        ++count_;
        sum_ns_ += ns;
        if (ns > max_ns_) max_ns_ = ns;
    }

    [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
    [[nodiscard]] std::uint64_t total_ns() const noexcept { return sum_ns_; }
    [[nodiscard]] std::uint64_t max_ns() const noexcept { return max_ns_; }
    [[nodiscard]] double mean_us() const noexcept {
        return count_ == 0 ? 0.0 : static_cast<double>(sum_ns_) / (1000.0 * count_);
    }
    /// Approximate percentile (upper bound of the containing bucket), in
    /// microseconds. p in [0, 100].
    [[nodiscard]] double percentile_us(double p) const noexcept;

    latency_histogram& operator+=(const latency_histogram& other) noexcept;

private:
    std::array<std::uint64_t, bucket_count> buckets_{};
    std::uint64_t count_{0};
    std::uint64_t sum_ns_{0};
    std::uint64_t max_ns_{0};
};

/// One pipeline stage (preprocess / locate / evaluate).
struct stage_metrics {
    std::uint64_t calls{0};
    /// Units the stage consumed or produced (alerts, incidents, ...).
    std::uint64_t items{0};
    latency_histogram latency;

    stage_metrics& operator+=(const stage_metrics& other) noexcept;
};

/// Graceful-degradation counters: what the pipeline shed, clamped, or
/// refused instead of crashing or silently corrupting reports. Rendered
/// by --metrics; the fault-injection suite asserts every injected
/// pathology lands in exactly one of these.
struct degraded_metrics {
    std::uint64_t alerts_rejected{0};         ///< malformed input refused with a reason
    std::uint64_t alerts_dropped_overflow{0};  ///< shed by the queue overflow policy
    std::uint64_t skew_clamped{0};            ///< future timestamps clamped to arrival
    std::uint64_t sources_in_dropout{0};      ///< distinct sources seen dark (fault layer)
    /// Ingest alerts drained unexecuted on a shard whose worker failed.
    std::uint64_t alerts_dropped_failed_shard{0};
    /// Incident-log appends that broke the close-order invariant: the
    /// history query silently degraded from a binary-searched start to a
    /// full linear scan (see incident_log::out_of_order_appends()).
    std::uint64_t log_out_of_order{0};
    /// Counting decisions served by the count-min sketch instead of an
    /// exact table (preprocessor consolidation past the cardinality
    /// threshold, overload-guard dedup past it). Nonzero means counts in
    /// the current window may be overestimates — never underestimates.
    std::uint64_t sketched{0};

    [[nodiscard]] bool any() const noexcept {
        return alerts_rejected != 0 || alerts_dropped_overflow != 0 || skew_clamped != 0 ||
               sources_in_dropout != 0 || alerts_dropped_failed_shard != 0 ||
               log_out_of_order != 0 || sketched != 0;
    }

    degraded_metrics& operator+=(const degraded_metrics& other) noexcept {
        alerts_rejected += other.alerts_rejected;
        alerts_dropped_overflow += other.alerts_dropped_overflow;
        skew_clamped += other.skew_clamped;
        sources_in_dropout += other.sources_in_dropout;
        alerts_dropped_failed_shard += other.alerts_dropped_failed_shard;
        log_out_of_order += other.log_out_of_order;
        sketched += other.sketched;
        return *this;
    }
};

/// Durability accounting: what the persist subsystem wrote, replayed,
/// skipped or truncated. Zero everywhere when durability is off; a
/// recovery that had to degrade (torn journal tail, corrupt snapshot)
/// shows up here instead of as a crash.
struct recovery_metrics {
    std::uint64_t journal_records_written{0};  ///< batch + barrier records appended
    std::uint64_t journal_flushes{0};          ///< fsync-grade flush calls
    std::uint64_t checkpoints_written{0};      ///< snapshot files persisted
    std::uint64_t records_replayed{0};         ///< journal records re-applied on recover
    std::uint64_t truncated_tail_bytes{0};     ///< torn journal tail dropped on recover
    std::uint64_t snapshots_skipped{0};        ///< corrupt/stale snapshots passed over

    [[nodiscard]] bool any() const noexcept {
        return journal_records_written != 0 || journal_flushes != 0 ||
               checkpoints_written != 0 || records_replayed != 0 || truncated_tail_bytes != 0 ||
               snapshots_skipped != 0;
    }

    recovery_metrics& operator+=(const recovery_metrics& other) noexcept {
        journal_records_written += other.journal_records_written;
        journal_flushes += other.journal_flushes;
        checkpoints_written += other.checkpoints_written;
        records_replayed += other.records_replayed;
        truncated_tail_bytes += other.truncated_tail_bytes;
        snapshots_skipped += other.snapshots_skipped;
        return *this;
    }
};

/// Overload-control accounting: what the admission guard shed, the
/// per-source circuit breakers quarantined, the shard watchdog recovered
/// or wrote off, and the bounded-memory caps evicted. All zero when the
/// overload layer is disabled (the default).
struct overload_metrics {
    std::uint64_t admitted{0};            ///< alerts passed by the admission guard
    std::uint64_t shed_duplicate{0};      ///< shed first: in-window duplicates
    std::uint64_t shed_other{0};          ///< shed second: abnormal/unclassified
    std::uint64_t shed_root_cause{0};     ///< shed third: root-cause alerts
    std::uint64_t shed_failure{0};        ///< shed last: failure alerts
    std::uint64_t shed_bytes{0};          ///< approximate payload bytes shed
    std::uint64_t breaker_trips{0};       ///< closed -> open transitions
    std::uint64_t breaker_reopens{0};     ///< half-open probe failed, reopened
    std::uint64_t breaker_closes{0};      ///< half-open probes clean, re-closed
    std::uint64_t quarantined{0};         ///< alerts refused by an open breaker
    std::uint64_t probes_admitted{0};     ///< half-open probe alerts let through
    std::uint64_t stalls_detected{0};     ///< watchdog deadline expiries
    std::uint64_t stalls_recovered{0};    ///< stalled shards resumed, work intact
    std::uint64_t shards_written_off{0};  ///< wedged shards declared failed
    std::uint64_t evicted_node_alerts{0};  ///< locator per-node cap evictions
    std::uint64_t evicted_incidents{0};    ///< open-incident cap force-closes
    std::uint64_t evicted_pending{0};      ///< preprocessor pending-state evictions

    [[nodiscard]] std::uint64_t shed_total() const noexcept {
        return shed_duplicate + shed_other + shed_root_cause + shed_failure;
    }

    [[nodiscard]] bool any() const noexcept {
        return admitted != 0 || shed_total() != 0 || shed_bytes != 0 || breaker_trips != 0 ||
               breaker_reopens != 0 || breaker_closes != 0 || quarantined != 0 ||
               probes_admitted != 0 || stalls_detected != 0 || stalls_recovered != 0 ||
               shards_written_off != 0 || evicted_node_alerts != 0 || evicted_incidents != 0 ||
               evicted_pending != 0;
    }

    overload_metrics& operator+=(const overload_metrics& other) noexcept {
        admitted += other.admitted;
        shed_duplicate += other.shed_duplicate;
        shed_other += other.shed_other;
        shed_root_cause += other.shed_root_cause;
        shed_failure += other.shed_failure;
        shed_bytes += other.shed_bytes;
        breaker_trips += other.breaker_trips;
        breaker_reopens += other.breaker_reopens;
        breaker_closes += other.breaker_closes;
        quarantined += other.quarantined;
        probes_admitted += other.probes_admitted;
        stalls_detected += other.stalls_detected;
        stalls_recovered += other.stalls_recovered;
        shards_written_off += other.shards_written_off;
        evicted_node_alerts += other.evicted_node_alerts;
        evicted_incidents += other.evicted_incidents;
        evicted_pending += other.evicted_pending;
        return *this;
    }
};

/// Work-stealing + lock-free-interning accounting for the sharded
/// engine: how often idle workers prepared batches for loaded peers, how
/// often owners had to wait on a thief, and how contended the
/// location_table's stripes were. All zero for the sequential engine
/// and when stealing is disabled (--steal off).
struct steal_metrics {
    std::uint64_t batches_stolen{0};   ///< batches a thief prepared for a peer
    std::uint64_t alerts_stolen{0};    ///< alerts inside those batches
    std::uint64_t steal_attempts{0};   ///< idle-worker scans of peer boards
    std::uint64_t steal_misses{0};     ///< scans that found nothing stealable
    std::uint64_t owner_waits{0};      ///< owner reached a batch still being prepared
    std::uint64_t worker_parks{0};     ///< idle workers that went to sleep
    std::uint64_t prepare_ns{0};       ///< thief time spent preparing stolen work
    /// Gauges sampled at the barrier, not counters (merged by max).
    std::uint64_t intern_lock_contention{0};  ///< location_table contended locks
    std::uint64_t intern_entries{0};          ///< interned location count

    [[nodiscard]] bool any() const noexcept {
        return batches_stolen != 0 || alerts_stolen != 0 || steal_attempts != 0 ||
               steal_misses != 0 || owner_waits != 0 || worker_parks != 0 || prepare_ns != 0 ||
               intern_lock_contention != 0 || intern_entries != 0;
    }

    steal_metrics& operator+=(const steal_metrics& other) noexcept {
        batches_stolen += other.batches_stolen;
        alerts_stolen += other.alerts_stolen;
        steal_attempts += other.steal_attempts;
        steal_misses += other.steal_misses;
        owner_waits += other.owner_waits;
        worker_parks += other.worker_parks;
        prepare_ns += other.prepare_ns;
        if (other.intern_lock_contention > intern_lock_contention)
            intern_lock_contention = other.intern_lock_contention;
        if (other.intern_entries > intern_entries) intern_entries = other.intern_entries;
        return *this;
    }
};

/// Federation accounting: the emitter side counts digests leaving a
/// region, the aggregator side counts digests merging into the global
/// view. A process is one or the other, so each health report naturally
/// renders only its own half; the merged struct carries both so the
/// /v1/health JSON shape is identical everywhere.
struct federation_metrics {
    // Emitter side (per-region daemon with --federate emit:).
    std::uint64_t digests_emitted{0};  ///< digests published (journal + queue)
    std::uint64_t digest_bytes{0};     ///< framed digest bytes published
    std::uint64_t sessions_ok{0};      ///< emitter sessions acked by the aggregator
    std::uint64_t sessions_failed{0};  ///< sessions that died before the ack
    std::uint64_t send_retries{0};     ///< backoff retries across all sessions
    /// Highest digest sequence the aggregator has acked (gauge, max-merge).
    std::uint64_t acked_seq{0};
    // Aggregator side (--federate aggregate:).
    std::uint64_t digests_applied{0};     ///< digests merged into the global view
    std::uint64_t duplicates_dropped{0};  ///< re-sent digests skipped by seq gating
    std::uint64_t gaps_detected{0};       ///< missing sequence numbers observed
    /// Region-health gauges sampled at query time (merged by max).
    std::uint64_t regions_live{0};
    std::uint64_t regions_lagging{0};
    std::uint64_t regions_stale{0};
    std::uint64_t regions_partitioned{0};

    [[nodiscard]] bool any() const noexcept {
        return digests_emitted != 0 || digest_bytes != 0 || sessions_ok != 0 ||
               sessions_failed != 0 || send_retries != 0 || acked_seq != 0 ||
               digests_applied != 0 || duplicates_dropped != 0 || gaps_detected != 0 ||
               regions_live != 0 || regions_lagging != 0 || regions_stale != 0 ||
               regions_partitioned != 0;
    }

    federation_metrics& operator+=(const federation_metrics& other) noexcept {
        digests_emitted += other.digests_emitted;
        digest_bytes += other.digest_bytes;
        sessions_ok += other.sessions_ok;
        sessions_failed += other.sessions_failed;
        send_retries += other.send_retries;
        if (other.acked_seq > acked_seq) acked_seq = other.acked_seq;
        digests_applied += other.digests_applied;
        duplicates_dropped += other.duplicates_dropped;
        gaps_detected += other.gaps_detected;
        if (other.regions_live > regions_live) regions_live = other.regions_live;
        if (other.regions_lagging > regions_lagging) regions_lagging = other.regions_lagging;
        if (other.regions_stale > regions_stale) regions_stale = other.regions_stale;
        if (other.regions_partitioned > regions_partitioned)
            regions_partitioned = other.regions_partitioned;
        return *this;
    }
};

/// Incident life-cycle accounting: what the lifecycle manager linked,
/// collapsed, suppressed, auto-closed, and re-opened on top of the raw
/// detection stream. All zero when the lifecycle layer is disabled (the
/// default).
struct lifecycle_metrics {
    std::uint64_t tracked{0};              ///< lineages (managed incidents) created
    std::uint64_t recurrences_linked{0};   ///< incidents linked to a prior lineage
    std::uint64_t flaps_collapsed{0};      ///< lineages that crossed the flap threshold
    std::uint64_t realerts_suppressed{0};  ///< re-alerts swallowed while flapping
    std::uint64_t auto_closed{0};          ///< quiet + healthy early closes
    std::uint64_t reopened{0};             ///< auto-closed lineages that recurred
    std::uint64_t diffs_emitted{0};        ///< non-empty barrier diffs produced

    [[nodiscard]] bool any() const noexcept {
        return tracked != 0 || recurrences_linked != 0 || flaps_collapsed != 0 ||
               realerts_suppressed != 0 || auto_closed != 0 || reopened != 0 ||
               diffs_emitted != 0;
    }

    lifecycle_metrics& operator+=(const lifecycle_metrics& other) noexcept {
        tracked += other.tracked;
        recurrences_linked += other.recurrences_linked;
        flaps_collapsed += other.flaps_collapsed;
        realerts_suppressed += other.realerts_suppressed;
        auto_closed += other.auto_closed;
        reopened += other.reopened;
        diffs_emitted += other.diffs_emitted;
        return *this;
    }
};

struct engine_metrics {
    stage_metrics preprocess;  ///< raw -> structured conversion + flush
    stage_metrics locate;      ///< main-tree insert/refresh + incident checks
    stage_metrics evaluate;    ///< severity scoring + zoom-in
    degraded_metrics degraded;  ///< graceful-degradation accounting
    recovery_metrics recovery;  ///< durability / crash-recovery accounting
    overload_metrics overload;  ///< overload-control accounting
    steal_metrics steal;        ///< work-stealing / interning accounting
    federation_metrics federation;  ///< multi-region digest streaming accounting
    lifecycle_metrics lifecycle;    ///< incident life-cycle accounting
    std::uint64_t alerts_in{0};
    std::uint64_t batches_in{0};
    std::uint64_t ticks{0};
    std::uint64_t reports_emitted{0};
    // Sharded-engine extras; zero for the sequential engine.
    std::uint64_t enqueue_full_waits{0};  ///< producer stalls on a full queue
    std::uint64_t max_queue_depth{0};     ///< deepest command backlog sampled
    std::uint64_t busy_ns{0};             ///< worker time spent executing commands

    engine_metrics& operator+=(const engine_metrics& other) noexcept;
    /// Multi-line human-readable summary (CLI --metrics, bench logs).
    [[nodiscard]] std::string render() const;
    /// Machine-readable health report: one JSON object covering the
    /// per-stage, degraded, recovery, and overload blocks. Written by the
    /// CLI's --health-json at every tick barrier.
    [[nodiscard]] std::string to_json() const;
};

/// Tiny scope timer feeding a stage: construct, do the work, stop().
class stage_timer {
public:
    explicit stage_timer(stage_metrics& stage) noexcept
        : stage_(&stage), start_(std::chrono::steady_clock::now()) {}

    /// Records elapsed time plus `items` processed; one call per stage.
    void stop(std::uint64_t items = 0) noexcept {
        const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start_)
                            .count();
        ++stage_->calls;
        stage_->items += items;
        stage_->latency.record(static_cast<std::uint64_t>(ns));
    }

private:
    stage_metrics* stage_;
    std::chrono::steady_clock::time_point start_;
};

}  // namespace skynet
