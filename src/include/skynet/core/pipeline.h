// SkyNet engine facade: raw alert streams in, ranked incident reports out.
//
// Wires the three modules of Figure 5a together: the preprocessor
// normalizes and consolidates, the locator clusters alerts into incidents
// on the hierarchical tree, and the evaluator scores severity live while
// an incident is open (operations prioritize on the running score) and
// zooms in on the failure location.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "skynet/core/evaluator.h"
#include "skynet/core/locator.h"
#include "skynet/core/preprocessor.h"

namespace skynet {

struct skynet_config {
    preprocessor_config pre{};
    locator_config loc{};
    evaluator_config eval{};
};

/// A finished (or snapshot of an open) incident with its evaluation.
struct incident_report {
    incident inc;
    severity_breakdown severity;
    /// Refined location from zoom-in; nullopt when emergency procedures
    /// fall back to the incident root.
    std::optional<location> zoomed;
    /// True when the severity filter keeps this incident in the operator
    /// view (score >= threshold).
    bool actionable{false};

    /// Figure 6-style rendering with the risk score and zoomed location.
    [[nodiscard]] std::string render() const;
};

class skynet_engine {
public:
    skynet_engine(const topology* topo, const customer_registry* customers,
                  const alert_type_registry* registry, const syslog_classifier* syslog,
                  skynet_config config = {});

    /// Feeds one raw alert at its arrival time.
    void ingest(const raw_alert& raw, sim_time now);

    /// Periodic maintenance (call ~once per simulated tick): preprocessor
    /// flush, locator timeout checks, live severity evaluation of open
    /// incidents against `state`. Closed incidents move to the finished
    /// buffer.
    void tick(sim_time now, const network_state& state);

    /// Force-closes open incidents (end of an experiment episode).
    void finish(sim_time now, const network_state& state);

    /// Drains finished incident reports.
    [[nodiscard]] std::vector<incident_report> take_reports();

    /// Snapshot reports of currently open incidents (live ranking view).
    [[nodiscard]] std::vector<incident_report> open_reports(sim_time now,
                                                            const network_state& state) const;

    [[nodiscard]] const preprocessor_stats& preprocessing_stats() const noexcept {
        return pre_.stats();
    }
    [[nodiscard]] std::int64_t structured_alert_count() const noexcept { return structured_count_; }
    [[nodiscard]] const locator& tree() const noexcept { return locator_; }
    [[nodiscard]] const evaluator& scorer() const noexcept { return evaluator_; }

private:
    [[nodiscard]] incident_report finalize(const incident& inc, sim_time now,
                                           const network_state& state);

    preprocessor pre_;
    locator locator_;
    evaluator evaluator_;
    std::int64_t structured_count_{0};
    /// Best severity observed while each incident was open (scores decay
    /// once the underlying breakage heals; operations act on the peak).
    std::unordered_map<std::uint64_t, severity_breakdown> live_scores_;
    std::vector<incident_report> finished_;
};

}  // namespace skynet
