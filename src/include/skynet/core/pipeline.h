// SkyNet engine facade: raw alert streams in, ranked incident reports out.
//
// Wires the three modules of Figure 5a together: the preprocessor
// normalizes and consolidates, the locator clusters alerts into incidents
// on the hierarchical tree, and the evaluator scores severity live while
// an incident is open (operations prioritize on the running score) and
// zooms in on the failure location.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "skynet/common/error.h"
#include "skynet/core/engine_metrics.h"
#include "skynet/core/evaluator.h"
#include "skynet/core/locator.h"
#include "skynet/core/preprocessor.h"
#include "skynet/sim/trace.h"

namespace skynet {

struct skynet_config {
    preprocessor_config pre{};
    locator_config loc{};
    evaluator_config eval{};

    /// Sanity-checks the settings (negative windows/timeouts, thresholds
    /// that can never fire, inverted rate bounds). Empty error = valid.
    [[nodiscard]] error validate() const;
};

/// One prepare_batch() result: per-alert classification outputs, index-
/// aligned with the batch they were prepared from, ready to be applied
/// by ingest_batch_prepared(). This is the unit of work the sharded
/// engine's thieves compute on behalf of a loaded peer.
struct prepared_batch {
    std::vector<prepared_alert> alerts;
};

/// A finished (or snapshot of an open) incident with its evaluation.
struct incident_report {
    incident inc;
    severity_breakdown severity;
    /// Refined location from zoom-in; nullopt when emergency procedures
    /// fall back to the incident root.
    std::optional<location> zoomed;
    /// True when the severity filter keeps this incident in the operator
    /// view (score >= threshold).
    bool actionable{false};

    /// Figure 6-style rendering with the risk score and zoomed location.
    [[nodiscard]] std::string render() const;
};

/// Global ranking used by every report view: most severe first, ties
/// broken by incident id so the order is stable across engines.
[[nodiscard]] inline bool report_before(const incident_report& a,
                                        const incident_report& b) noexcept {
    if (a.severity.score != b.severity.score) return a.severity.score > b.severity.score;
    return a.inc.id < b.inc.id;
}

/// Which incidents a reports() call returns.
enum class report_scope : std::uint8_t {
    finished,  ///< closed incidents; drains the finished buffer
    open,      ///< snapshot of the live (still-open) incidents
};

class skynet_engine {
public:
    /// Construction dependencies; all non-owning. topo, customers and
    /// registry are required; syslog may be null (syslog alerts are then
    /// dropped as unclassified).
    struct deps {
        const topology* topo{nullptr};
        const customer_registry* customers{nullptr};
        const alert_type_registry* registry{nullptr};
        const syslog_classifier* syslog{nullptr};
    };

    /// Snapshot of everything the engine would lose in a crash: the
    /// preprocessor's consolidation buffers, the locator's trees, the
    /// live-score peaks and the not-yet-drained finished reports.
    /// Exported at a barrier (between tick() calls) and restored into a
    /// freshly constructed engine with the same deps and config; the
    /// restored engine's future outputs are bit-identical to the
    /// exporting one's. engine_metrics are observability, not state, and
    /// are deliberately not part of the snapshot.
    struct persist_state {
        preprocessor::persist_state pre;
        locator::persist_state loc;
        std::int64_t structured_count{0};
        /// Peak severity per open incident, sorted by incident id.
        std::vector<std::pair<std::uint64_t, severity_breakdown>> live_scores;
        std::vector<incident_report> finished;
    };

    explicit skynet_engine(deps d, skynet_config config = {});

    /// Exports the crash-relevant state; see persist_state.
    [[nodiscard]] persist_state export_state() const;

    /// Replaces the engine state with a previously exported snapshot.
    void import_state(persist_state state);

    [[deprecated("pass skynet_engine::deps instead of four pointers")]] skynet_engine(
        const topology* topo, const customer_registry* customers,
        const alert_type_registry* registry, const syslog_classifier* syslog,
        skynet_config config = {});

    /// Feeds one raw alert at its arrival time.
    void ingest(const raw_alert& raw, sim_time now);

    /// Feeds a batch that all arrived at `now` (e.g. one poll sweep).
    void ingest_batch(std::span<const raw_alert> batch, sim_time now);

    /// Feeds a batch with per-alert arrival times (e.g. one simulator
    /// tick's deliveries); equivalent to looping ingest() in order.
    void ingest_batch(std::span<const traced_alert> batch);

    /// The stateless half of ingest_batch() for stolen work: classifies
    /// every alert without touching engine state. Thread-safe (see
    /// preprocessor::prepare) — a thief worker may run it while the
    /// owner is ingesting other batches.
    [[nodiscard]] prepared_batch prepare_batch(std::span<const traced_alert> batch) const;

    /// Applies a prepare_batch() result; equivalent to
    /// ingest_batch(batch) byte-for-byte, with the classification work
    /// already paid. `prep` must be index-aligned with `batch`.
    void ingest_batch_prepared(std::span<const traced_alert> batch, prepared_batch&& prep);

    /// Periodic maintenance (call ~once per simulated tick): preprocessor
    /// flush, locator timeout checks, live severity evaluation of open
    /// incidents against `state`. Closed incidents move to the finished
    /// buffer.
    void tick(sim_time now, const network_state& state);

    /// Force-closes open incidents (end of an experiment episode).
    void finish(sim_time now, const network_state& state);

    /// Unified ranked report access (severity desc, then incident id).
    /// finished: drains the finished buffer; `now`/`state` are unused.
    /// open: live snapshot evaluated against `state` at `now`.
    [[nodiscard]] std::vector<incident_report> reports(report_scope scope, sim_time now,
                                                       const network_state& state);

    /// Drains finished incident reports, ranked. Thin wrapper kept for
    /// callers that do not have a network_state at hand.
    [[nodiscard]] std::vector<incident_report> take_reports();

    /// Snapshot reports of currently open incidents (live ranking view).
    [[nodiscard]] std::vector<incident_report> open_reports(sim_time now,
                                                            const network_state& state) const;

    [[nodiscard]] const preprocessor_stats& preprocessing_stats() const noexcept {
        return pre_.stats();
    }
    [[nodiscard]] std::int64_t structured_alert_count() const noexcept { return structured_count_; }
    [[nodiscard]] const locator& tree() const noexcept { return locator_; }
    [[nodiscard]] const evaluator& scorer() const noexcept { return evaluator_; }
    /// Where the time goes: per-stage counters and latency histograms.
    [[nodiscard]] const engine_metrics& metrics() const noexcept { return metrics_; }
    /// Metrics as of the last barrier. For the sequential engine this is
    /// the same snapshot as metrics(); the name exists so generic callers
    /// (CLI --health-json) treat both engines uniformly — the sharded
    /// engine's barrier_metrics() is a cheap cached merge.
    [[nodiscard]] const engine_metrics& barrier_metrics() const noexcept { return metrics_; }
    /// Live alerts held across the preprocessor's consolidation buffers,
    /// the locator's main tree and the open incident trees: the memory-
    /// footprint proxy the storm-shedding bench tracks.
    [[nodiscard]] std::size_t live_alert_count() const noexcept {
        return pre_.pending_count() + locator_.stored_alert_count();
    }

private:
    void ingest_one_prepared(const raw_alert& raw, sim_time now, prepared_alert&& prep);
    [[nodiscard]] incident_report finalize(const incident& inc, sim_time now,
                                           const network_state& state);
    [[nodiscard]] std::vector<incident_report> ranked_finished();
    void sync_overload_counters() noexcept;

    preprocessor pre_;
    locator locator_;
    evaluator evaluator_;
    std::int64_t structured_count_{0};
    /// Best severity observed while each incident was open (scores decay
    /// once the underlying breakage heals; operations act on the peak).
    std::unordered_map<std::uint64_t, severity_breakdown> live_scores_;
    std::vector<incident_report> finished_;
    engine_metrics metrics_;
};

}  // namespace skynet
