// Data-driven threshold tuning (§9 "better thresholds").
//
// The production thresholds (2/1+2/5, severity 10) were distilled from
// experience by the exact methodology of §6.3: replay labeled episodes
// under candidate settings, never accept false negatives, minimize false
// positives. This module automates that search over recorded episodes so
// accumulated experience keeps the knobs honest as the network evolves.
#pragma once

#include <span>
#include <vector>

#include "skynet/core/accuracy.h"
#include "skynet/core/locator.h"
#include "skynet/core/preprocessor.h"
#include "skynet/sim/trace.h"

namespace skynet {

/// A recorded episode for offline replay: the structured alerts with
/// their arrival times, the injected ground truth, and when it ended.
struct tuning_episode {
    /// (alert, arrival time), arrival-ordered.
    std::vector<std::pair<structured_alert, sim_time>> alerts;
    std::vector<scenario_record> truth;
    sim_time end{0};
};

/// Accuracy of one candidate across all episodes.
struct threshold_candidate_result {
    incident_thresholds thresholds;
    accuracy_counts accuracy;
};

struct tuning_result {
    /// The winner: zero false negatives (if any candidate achieves it)
    /// with the fewest false positives; ties prefer stricter settings
    /// (fewer incidents).
    incident_thresholds best;
    accuracy_counts best_accuracy;
    /// Every candidate's score, in candidate order.
    std::vector<threshold_candidate_result> all;
};

/// Builds a tuning episode from a recorded raw-alert trace: runs the
/// trace through a preprocessor (fresh, with the given config) and keeps
/// the structured alerts. `truth` labels the episode; `end` bounds the
/// replay clock (defaults to the last arrival plus the incident timeout).
[[nodiscard]] tuning_episode make_tuning_episode(
    const topology& topo, const alert_type_registry& registry, const syslog_classifier& syslog,
    std::span<const traced_alert> trace, std::vector<scenario_record> truth, sim_time end = 0,
    const preprocessor_config& pre_config = {});

/// The default candidate grid: the Figure 9 variants.
[[nodiscard]] std::vector<incident_thresholds> default_threshold_grid();

/// Replays every episode through a locator per candidate and scores it.
/// `base` supplies the non-threshold knobs (timeouts, counting mode).
[[nodiscard]] tuning_result tune_thresholds(const topology& topo,
                                            std::span<const tuning_episode> episodes,
                                            std::span<const incident_thresholds> candidates,
                                            const locator_config& base = {});

}  // namespace skynet
