// Ground-truth scoring of incidents against injected scenarios.
//
// Used by the evaluation benches (Figures 8a, 9) and by the threshold
// tuner: every non-benign, must-detect failure needs a covering incident
// (else a false negative); every incident covering no real failure is a
// false positive.
#pragma once

#include <span>
#include <vector>

#include "skynet/core/locator.h"
#include "skynet/sim/scenario.h"

namespace skynet {

/// True when the incident plausibly reports this record: hierarchy
/// containment either way against any ground-truth scope, and time
/// overlap within `slack` (detection and closure lag).
[[nodiscard]] bool incident_matches(const incident& inc, const scenario_record& truth,
                                    sim_duration slack = minutes(16));

struct accuracy_counts {
    int true_positives{0};
    int false_positives{0};
    int false_negatives{0};

    [[nodiscard]] double false_positive_rate() const {
        const int denom = true_positives + false_positives;
        return denom == 0 ? 0.0 : static_cast<double>(false_positives) / denom;
    }
    [[nodiscard]] double false_negative_rate() const {
        const int denom = true_positives + false_negatives;
        return denom == 0 ? 0.0 : static_cast<double>(false_negatives) / denom;
    }

    accuracy_counts& operator+=(const accuracy_counts& other) {
        true_positives += other.true_positives;
        false_positives += other.false_positives;
        false_negatives += other.false_negatives;
        return *this;
    }
};

/// Scores one episode's incidents against its ground truth.
[[nodiscard]] accuracy_counts score_incidents(std::span<const incident> incidents,
                                              std::span<const scenario_record> truth,
                                              sim_duration slack = minutes(16));

}  // namespace skynet
