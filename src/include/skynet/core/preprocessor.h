// The preprocessor (§4.1).
//
// Converts the twelve heterogeneous raw-alert streams into the uniform
// structured format (type, category, time range, hierarchy location) and
// fights the volume problem with three consolidation methods:
//   1. identical alerts   — same (type, location) within a window merge
//      into one alert whose time range and count grow;
//   2. single-source      — sporadic probe blips are held until they
//      persist; related traffic anomalies at adjacent locations merge;
//   3. cross-source       — a traffic drop alone is expected behaviour;
//      it is emitted (as "abnormal traffic decline") only when a failure
//      or root-cause alert corroborates it nearby, otherwise discarded.
// Syslog free text is classified to a type via the FT-tree classifier;
// link alerts are split onto both endpoint devices.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "skynet/alert/type_registry.h"
#include "skynet/sketch/counting.h"
#include "skynet/syslog/classifier.h"
#include "skynet/syslog/template_miner.h"
#include "skynet/topology/topology.h"

namespace skynet {

struct preprocessor_config {
    /// Identical-alert consolidation window: a repeat within this window
    /// updates the open alert instead of creating a new one.
    sim_duration dedup_window = minutes(5);
    /// Probe-type failure alerts (ping/internet loss) must recur this many
    /// times ...
    int persistence_threshold = 2;
    /// ... within this window before they are emitted (sporadic loss is
    /// ignored, persistent loss recorded).
    sim_duration persistence_window = seconds(45);
    /// How long a lone traffic-drop waits for corroboration before being
    /// discarded.
    sim_duration correlation_window = seconds(60);
    /// Merge traffic surge/drop alerts at adjacent locations.
    bool consolidate_related = true;
    /// Enable the cross-source rule (traffic drop needs corroboration).
    bool cross_source = true;
    /// Split link-attributed alerts onto both endpoint devices.
    bool split_link_alerts = true;
    /// Bounded-memory degradation (overload control): cap on the entry
    /// count of *each* consolidation table (open, persistence,
    /// correlation). When a table is full, the entry with the oldest
    /// last_seen is evicted — canonical (type, location) order breaking
    /// ties — so a storm degrades deterministically instead of growing
    /// without bound. 0 = unbounded (the default; behavior unchanged).
    std::size_t max_pending_alerts = 0;
    /// Cap on the cross-source corroboration history (oldest sightings
    /// dropped first). 0 = unbounded.
    std::size_t max_sightings = 0;
    /// Sketch-based counting for flood-scale cardinalities: below
    /// sketch.threshold distinct keys per consolidation table everything
    /// is exact (bit-identical to sketch-off), above it new keys are
    /// counted in a count-min sketch with bounded memory and bounded
    /// overestimation (never undercounts). See DESIGN.md "Sketched
    /// counting".
    sketch::sketch_config sketch{};
};

/// Counters for the Figure 8b before/after comparison.
struct preprocessor_stats {
    std::int64_t raw_in{0};
    std::int64_t emitted_new{0};
    std::int64_t emitted_update{0};
    std::int64_t merged_identical{0};
    std::int64_t dropped_sporadic{0};
    std::int64_t dropped_unclassified{0};
    std::int64_t dropped_uncorroborated{0};
    std::int64_t merged_related{0};
    /// Malformed inputs refused with a reason (dangling device/link
    /// references, non-finite metrics, pre-epoch timestamps, inverted
    /// time ranges) instead of corrupting downstream state.
    std::int64_t rejected_malformed{0};
    /// Alerts whose generation timestamp was ahead of their arrival time
    /// (clock skew); the timestamp is clamped to the arrival.
    std::int64_t skew_clamped{0};

    /// Accumulation across engines (the sharded engine's merged view).
    preprocessor_stats& operator+=(const preprocessor_stats& other) noexcept {
        raw_in += other.raw_in;
        emitted_new += other.emitted_new;
        emitted_update += other.emitted_update;
        merged_identical += other.merged_identical;
        dropped_sporadic += other.dropped_sporadic;
        dropped_unclassified += other.dropped_unclassified;
        dropped_uncorroborated += other.dropped_uncorroborated;
        merged_related += other.merged_related;
        rejected_malformed += other.rejected_malformed;
        skew_clamped += other.skew_clamped;
        return *this;
    }

    friend bool operator==(const preprocessor_stats&, const preprocessor_stats&) = default;
};

/// One output of a process() call.
struct preprocess_event {
    structured_alert alert;
    /// False: a brand-new structured alert. True: consolidation update of
    /// a previously emitted alert (same type+location); the locator
    /// refreshes node timestamps instead of inserting again.
    bool is_update{false};
};

/// Result of the pure classification stage (prepare()): everything
/// process() computes *before* touching consolidation state — the
/// reject check, the skew clamp, syslog classification, interning, and
/// the link/pair split. A thief worker can run this stage for a batch
/// it stole; the owning shard later replays apply_prepared() in
/// submission order, which is where every counter and consolidation
/// table is touched — so outputs stay byte-identical to plain process().
struct prepared_alert {
    bool rejected{false};
    bool skew_clamped{false};
    bool unclassified{false};
    /// Routed split outputs; a link/pair alert fans out to at most two
    /// endpoints, so the storage is inline (no per-alert allocation).
    std::array<structured_alert, 2> routes;
    std::uint8_t route_count{0};
};

class preprocessor {
public:
    /// Snapshot of the consolidation state, exported at a barrier and
    /// restored into a freshly constructed preprocessor (same topology,
    /// registry and config) by the persist subsystem. Entries are held in
    /// a canonical order (type, then location path) so two exports of the
    /// same logical state are byte-identical regardless of hash-map
    /// layout or location-id assignment order.
    struct persist_state {
        struct open_entry {
            structured_alert alert;
            sim_time last_seen{0};
        };
        struct pending_entry {
            structured_alert alert;
            int occurrences{1};
            sim_time first_seen{0};
            sim_time last_seen{0};
            sim_time last_counted_ts{-1};
        };
        struct sighting_entry {
            location_id loc{invalid_location_id};
            sim_time at{0};
        };

        preprocessor_stats stats;
        std::vector<open_entry> open;
        std::vector<pending_entry> persistence;
        std::vector<pending_entry> correlation;
        /// Time order (oldest first), as pruning expects.
        std::vector<sighting_entry> sightings;
    };

    preprocessor(const topology* topo, const alert_type_registry* registry,
                 const syslog_classifier* syslog, preprocessor_config config = {});

    /// Exports the consolidation state in canonical order; see
    /// persist_state. Call only between process()/flush() calls.
    [[nodiscard]] persist_state export_state() const;

    /// Replaces the consolidation state with a previously exported one.
    /// The restored preprocessor behaves bit-identically to the one that
    /// exported (same future outputs for the same future inputs).
    void import_state(persist_state state);

    /// Feeds one raw alert; returns zero or more structured outputs.
    /// `now` is the arrival time (>= alert timestamp under delivery
    /// delays; a timestamp ahead of `now` is clock skew and is clamped).
    /// Malformed alerts are rejected with a reason (see reject_reason),
    /// never asserted on — degraded monitor streams must not take the
    /// pipeline down.
    [[nodiscard]] std::vector<preprocess_event> process(const raw_alert& raw, sim_time now);

    /// The stateless first half of process(): classify + clamp + split,
    /// no counters, no consolidation state. Thread-safe — it touches
    /// only the immutable topology/registry/classifier/config (interning
    /// into the location_table is itself thread-safe), so concurrent
    /// prepare() calls may race with each other and with process() on
    /// *other* preprocessor instances sharing the topology.
    [[nodiscard]] prepared_alert prepare(const raw_alert& raw, sim_time now) const;

    /// The stateful second half: consumes a prepare() result for `raw`,
    /// bumping exactly the counters process() would and routing each
    /// split through the consolidation tables. process(raw, now) ≡
    /// apply_prepared(raw, now, prepare(raw, now)) — process() is
    /// literally implemented that way, so the two paths cannot drift.
    [[nodiscard]] std::vector<preprocess_event> apply_prepared(const raw_alert& raw, sim_time now,
                                                               prepared_alert&& prep);

    /// Why a raw alert would be refused, or nullptr when it is
    /// well-formed. Checks references (device/link/location ids) against
    /// the topology, the metric for non-finite values, and the timestamp
    /// for pre-epoch garbage.
    [[nodiscard]] const char* reject_reason(const raw_alert& raw) const;

    /// Periodic maintenance: expires open alerts, resolves pending
    /// correlation buffers. Returns alerts released by the flush (e.g.
    /// corroborated traffic declines).
    [[nodiscard]] std::vector<preprocess_event> flush(sim_time now);

    [[nodiscard]] const preprocessor_stats& stats() const noexcept { return stats_; }
    void reset_stats() noexcept { stats_ = {}; }

    /// Entries evicted by the max_pending_alerts / max_sightings caps.
    /// Deliberately outside preprocessor_stats (which is persisted in
    /// snapshots with a fixed field count); resets with the process.
    [[nodiscard]] std::uint64_t evicted_pending() const noexcept { return evicted_pending_; }
    /// Lifetime consolidation decisions served by the count-min sketch
    /// instead of an exact table (the degraded.sketched marker). Outside
    /// preprocessor_stats for the same fixed-field-count reason as
    /// evicted_pending(); resets on import_state (reset-on-recover).
    [[nodiscard]] std::uint64_t sketched_counts() const noexcept {
        return policy_.sketched_adds();
    }
    /// True once any consolidation table has spilled into the sketch.
    [[nodiscard]] bool sketch_active() const noexcept { return policy_.sketch_active(); }
    /// Live consolidation entries (open + persistence + correlation):
    /// the preprocessor's share of the engine's memory footprint.
    [[nodiscard]] std::size_t pending_count() const noexcept {
        return open_.size() + pending_persistence_.size() + pending_correlation_.size();
    }

    /// Optional: unclassified syslog lines are fed to `miner` so new
    /// templates surface for manual labeling (§4.1's classification
    /// backlog, kept alive in production). Not owned; may be null.
    void set_template_miner(template_miner* miner) noexcept { miner_ = miner; }

private:
    struct open_alert {
        structured_alert alert;
        sim_time last_seen{0};
    };
    struct pending_alert {
        structured_alert alert;
        int occurrences{1};
        sim_time first_seen{0};
        sim_time last_seen{0};
        /// Generation timestamp of the last counted occurrence: a burst
        /// of identical alerts from one poll (the probe-glitch pattern)
        /// counts once.
        sim_time last_counted_ts{-1};
    };
    /// Recent failure/root-cause sightings used for cross-source
    /// corroboration, pruned by time.
    struct sighting {
        location_id loc{invalid_location_id};
        sim_time at{0};
    };

    /// Converts one raw alert into (type, category, location); nullopt
    /// when the alert cannot be classified (dropped). Interns the
    /// location (and probe endpoints) so every downstream stage keys on
    /// ids.
    [[nodiscard]] std::optional<structured_alert> to_structured(const raw_alert& raw) const;

    /// Consolidation key: (type, interned location) packed into one u64.
    [[nodiscard]] static std::uint64_t key_of(const structured_alert& alert);

    /// Routes a classified alert through dedup / persistence /
    /// correlation; appends outputs.
    void route(structured_alert alert, sim_time now, std::vector<preprocess_event>& out);

    void emit(structured_alert alert, sim_time now, std::vector<preprocess_event>& out);
    [[nodiscard]] bool corroborated(location_id loc, sim_time now) const;
    void note_sighting(const structured_alert& alert, sim_time now);
    /// Applies max_pending_alerts to one consolidation table after an
    /// insert: evicts oldest-first (never the entry keyed `keep_key`).
    template <typename Entry>
    void enforce_cap(std::unordered_map<std::uint64_t, Entry>& map, std::uint64_t keep_key);

    const topology* topo_;
    const alert_type_registry* registry_;
    const syslog_classifier* syslog_;
    template_miner* miner_{nullptr};
    preprocessor_config config_;
    preprocessor_stats stats_;
    std::uint64_t evicted_pending_{0};
    /// Count-min overflow shared by all three consolidation tables
    /// (per-table key salts keep their streams from colliding by
    /// construction). Only apply-side code (emit/route/flush) touches it
    /// — prepare() stays const and thread-safe, so the single-writer
    /// contract of the conservative update holds under work stealing.
    sketch::counting_policy policy_;
    /// Simulated time the sketch epoch started; the sketch halves rotate
    /// every dedup_window after it first activates (the sketched analog
    /// of open-table expiry, with estimates decaying over two windows
    /// instead of cliffing), keyed purely off sim time for determinism.
    sim_time sketch_epoch_{0};

    std::unordered_map<std::uint64_t, open_alert> open_;
    std::unordered_map<std::uint64_t, pending_alert> pending_persistence_;
    std::unordered_map<std::uint64_t, pending_alert> pending_correlation_;
    std::deque<sighting> sightings_;
};

}  // namespace skynet
