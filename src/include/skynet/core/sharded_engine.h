// Region-sharded parallel SkyNet engine.
//
// The locator's main tree is indexed Region > City > ... > Device
// (§4.2), so alerts in different regions never share an incident tree —
// the same partition-by-locality insight that lets the paper's
// deployment digest O(10^4..10^5) alerts during severe failures. This
// engine exploits it: incoming raw alerts are partitioned by region onto
// N per-shard skynet_engine instances, each driven by a worker thread
// pulling commands from a bounded SPSC queue. tick()/finish() fan out to
// every shard and act as barriers — the shared network_state is only
// read while the caller is blocked, so the caller may freely mutate it
// between ticks. The merge step recombines per-shard incident reports
// into one globally ranked view (severity desc, then incident id).
//
// Per-shard locators use deterministic incident ids, so on a trace that
// respects the region partition invariant (no cross-region alert
// interactions; see DESIGN.md "Region-sharded engine") the merged output
// is bit-identical to a sequential skynet_engine run on the same trace —
// for any shard count.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "skynet/common/mpsc_queue.h"
#include "skynet/common/spin_mutex.h"
#include "skynet/common/spsc_queue.h"
#include "skynet/core/pipeline.h"

namespace skynet {

/// What the ingest path does when a shard's command queue is full.
/// Barrier commands (tick/finish/stop) always block — dropping a barrier
/// would deadlock the caller — so the policy governs ingest only.
enum class overflow_policy : std::uint8_t {
    /// Spin-then-park until the worker frees a slot (lossless
    /// backpressure; the default, and the only policy that preserves
    /// sequential/sharded report parity because nothing is shed).
    block,
    /// Shed the *oldest* waiting ingest batch once the producer-side
    /// backlog overflows; newest data survives (alert floods are
    /// redundant, the freshest observations matter most).
    drop_oldest,
    /// Shed the *incoming* batch when the queue is full; whatever is
    /// already queued survives (cheapest: no backlog buffering at all).
    reject,
};

[[nodiscard]] std::string_view to_string(overflow_policy policy) noexcept;
[[nodiscard]] std::optional<overflow_policy> parse_overflow_policy(
    std::string_view token) noexcept;

struct sharded_config {
    /// Worker shard count (clamped to >= 1). Regions are assigned to
    /// shards round-robin in order of first appearance, so shard load
    /// balances when failures span several regions.
    std::size_t shards = 4;
    /// Per-shard command-queue capacity (rounded up to a power of two).
    /// The producer spins when a queue is full — backpressure, surfaced
    /// via engine_metrics::enqueue_full_waits.
    std::size_t queue_capacity = 256;
    /// Ingest commands are coalesced into batches of up to this many
    /// alerts before being enqueued (amortizes queue traffic).
    std::size_t max_ingest_batch = 64;
    /// Full-queue behaviour for ingest commands (see overflow_policy).
    /// Shedding policies count every discarded alert in
    /// engine_metrics::degraded.alerts_dropped_overflow.
    overflow_policy overflow = overflow_policy::block;
    /// drop_oldest only: ingest batches the producer may hold while the
    /// queue is full before the oldest is shed (clamped to >= 1).
    std::size_t backlog_batches = 16;
    /// Fault hook: when set and returning true, the submit path treats
    /// the shard queue as full (a forced-full window) regardless of real
    /// occupancy. Drives overflow-policy tests and the --faults
    /// pressure clause; see fault_injector::queue_pressure_hook().
    std::function<bool()> force_full{};
    /// Fault hook: invoked by each worker thread (with its shard index)
    /// before executing a command; a throw simulates the shard's engine
    /// crashing mid-command. Drives the worker-failure survivability
    /// tests — production code never sets this.
    std::function<void(std::size_t)> worker_fault{};
    /// Shard watchdog: wall-clock milliseconds a barrier (or a blocked
    /// enqueue) tolerates a shard making no progress before intervening.
    /// A worker parked at the injected stall gate is released and its
    /// queued work proceeds untouched (reports stay bit-identical); a
    /// shard wedged with no recovery point is written off like a failed
    /// one (queued ingest drained and counted, failure surfaced at the
    /// next barrier). 0 disables the watchdog (the default: a stalled
    /// shard blocks the barrier indefinitely, as before).
    std::uint64_t watchdog_deadline_ms = 0;
    /// Fault hook: each worker consults it (shard index, 1-based command
    /// ordinal) before executing a command; true parks the worker at the
    /// stall gate until the watchdog (or the destructor) releases it.
    /// Drives the watchdog tests and the fault DSL's stall clauses —
    /// production code never sets this.
    std::function<bool(std::size_t, std::uint64_t)> worker_stall{};
    /// Deterministic work stealing: a worker whose own queue is empty
    /// prepares (classifies, interns, splits — the stateless stage)
    /// queued ingest batches of loaded peers, always the victim's
    /// lowest-sequence unclaimed batch. The owning shard applies every
    /// batch in submission order — stolen or not — so merged reports are
    /// bit-identical with stealing on, off, or forced. Ignored with one
    /// shard.
    bool steal = true;
    /// Per-shard engine configuration. locator deterministic_ids is
    /// forced on so merged ids are stable across shard counts.
    skynet_config engine{};
};

class sharded_engine {
public:
    /// Barrier-consistent snapshot: per-shard engine states (by shard
    /// index) plus the region routing table, exported after sync() so
    /// every shard is captured at the same logical instant. Restorable
    /// only into an engine with the same shard count.
    struct persist_state {
        std::vector<skynet_engine::persist_state> shards;
        /// (region id, shard index) pairs, sorted by region id.
        std::vector<std::pair<location_id, std::size_t>> regions;
        std::size_t next_region_shard{0};
    };

    explicit sharded_engine(skynet_engine::deps d, sharded_config config = {});
    ~sharded_engine();

    sharded_engine(const sharded_engine&) = delete;
    sharded_engine& operator=(const sharded_engine&) = delete;

    /// Exports the snapshot at a barrier (drains all queues first); see
    /// persist_state.
    [[nodiscard]] persist_state export_state();

    /// Restores a previously exported snapshot. Throws skynet_error when
    /// the snapshot's shard count differs from this engine's.
    void import_state(persist_state state);

    /// Routes one raw alert to its region's shard (asynchronous).
    void ingest(const raw_alert& raw, sim_time now);

    /// Batch ingest: all alerts arrived at `now`.
    void ingest_batch(std::span<const raw_alert> batch, sim_time now);

    /// Batch ingest with per-alert arrival times.
    void ingest_batch(std::span<const traced_alert> batch);

    /// Fans the tick out to every shard and waits for all of them —
    /// `state` is only read while this call blocks. If a worker thread
    /// failed (its engine threw mid-command), the failure surfaces here
    /// as a skynet_error after the barrier completes — the other shards
    /// keep running and their data stays reachable via reports().
    void tick(sim_time now, const network_state& state);

    /// Fans out finish() and waits; all incidents close. Surfaces worker
    /// failures like tick().
    void finish(sim_time now, const network_state& state);

    /// Shards whose worker caught an engine exception; their queued work
    /// is drained unexecuted (ingest counted in
    /// degraded.alerts_dropped_failed_shard) so barriers never hang.
    [[nodiscard]] std::size_t failed_shard_count() const noexcept;

    /// Human-readable "shard N: message" lines for every failed shard.
    [[nodiscard]] std::vector<std::string> failed_shard_messages() const;

    /// Unified ranked report access, merged across shards (severity
    /// desc, then incident id). Drains pending ingest first.
    [[nodiscard]] std::vector<incident_report> reports(report_scope scope, sim_time now,
                                                       const network_state& state);

    /// Merged ranked finished reports (drains every shard).
    [[nodiscard]] std::vector<incident_report> take_reports();

    /// Merged ranked snapshot of the open incidents.
    [[nodiscard]] std::vector<incident_report> open_reports(sim_time now,
                                                            const network_state& state);

    /// Preprocessor counters summed across shards.
    [[nodiscard]] preprocessor_stats preprocessing_stats();

    [[nodiscard]] std::int64_t structured_alert_count();

    /// Aggregate metrics: per-stage sums across shards, plus queue
    /// backpressure and worker busy time. `ticks` counts engine-level
    /// ticks (not per-shard fan-outs).
    [[nodiscard]] engine_metrics metrics();

    /// Fully merged metrics as cached at the last tick/finish barrier —
    /// including every shard's degraded block, so mid-run health reads
    /// are accurate without forcing an extra sync. Refreshed by every
    /// tick()/finish() before failures surface.
    [[nodiscard]] const engine_metrics& barrier_metrics() const noexcept {
        return barrier_metrics_;
    }

    /// Live alerts held across all shard engines (memory-footprint
    /// proxy). Drains pending ingest first.
    [[nodiscard]] std::size_t live_alert_count();

    /// One shard's metrics (stages + that worker's busy time).
    [[nodiscard]] engine_metrics shard_metrics(std::size_t shard);

    [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
    /// Distinct regions observed in the alert stream so far.
    [[nodiscard]] std::size_t region_count() const noexcept { return region_to_shard_.size(); }

private:
    /// One submitted ingest batch, shared between the owner's command
    /// queue and the steal board. `stage` is the claim protocol:
    /// 0 = unclaimed, 1 = claimed (being prepared), 2 = prepared,
    /// 3 = prepare aborted (thief hit an exception; owner falls back).
    /// A thief moves 0→1 (CAS), fills `prep`, stores 2 (release), and
    /// hands the job back through the owner's `done` queue; the owner
    /// either wins the CAS itself and runs inline, or waits for stage ≥ 2
    /// and applies the thief's result — in submission order either way.
    struct ingest_job {
        std::vector<traced_alert> batch;
        /// Engine-wide submission sequence: the deterministic steal
        /// priority (thieves always take the victim's lowest seq).
        std::uint64_t seq{0};
        std::atomic<std::uint32_t> stage{0};
        prepared_batch prep;
    };

    struct command {
        enum class op : std::uint8_t { ingest, tick, finish, stop } what{op::ingest};
        std::shared_ptr<ingest_job> job;  // ingest only
        sim_time now{0};
        const network_state* state{nullptr};  // tick/finish only
    };

    struct shard {
        shard(skynet_engine::deps d, const skynet_config& cfg, std::size_t queue_capacity,
              std::size_t done_capacity, std::size_t idx)
            : engine(d, cfg), queue(queue_capacity), done(done_capacity), index(idx) {}

        skynet_engine engine;
        spsc_queue<command> queue;
        /// Prepared-batch handoff from thieves back to this shard's
        /// owner. Sized queue + backlog + slack, so a thief's push can
        /// never block indefinitely (tokens ≤ in-flight ingest commands).
        mpsc_queue<std::shared_ptr<ingest_job>> done;
        std::size_t index{0};
        /// Steal board: this shard's queued ingest jobs a thief may
        /// claim, oldest (lowest seq) first. Caller pushes after a
        /// successful enqueue; completed front entries pruned lazily.
        spin_mutex board_mu;
        std::deque<std::shared_ptr<ingest_job>> board;
        // Steal accounting (relaxed atomics; read at barriers).
        std::atomic<std::uint64_t> stolen_batches{0};
        std::atomic<std::uint64_t> stolen_alerts{0};
        std::atomic<std::uint64_t> steal_attempts{0};
        std::atomic<std::uint64_t> steal_misses{0};
        std::atomic<std::uint64_t> owner_waits{0};
        std::atomic<std::uint64_t> parks{0};
        std::atomic<std::uint64_t> prepare_ns{0};
        // Producer-side accounting (caller thread only).
        std::vector<traced_alert> pending;
        /// Ingest commands waiting out a full queue (drop_oldest only).
        std::deque<command> backlog;
        std::uint64_t submitted{0};
        std::uint64_t full_waits{0};
        std::uint64_t max_depth{0};
        std::uint64_t dropped_overflow{0};
        // Worker-side completion, waited on by the caller's barrier.
        std::atomic<std::uint64_t> completed{0};
        std::atomic<std::uint64_t> busy_ns{0};
        /// Set (once) by the worker when a command threw; `failure`
        /// is written before the release store and only read after an
        /// acquire load, so the producer sees a complete message.
        std::atomic<bool> failed{false};
        std::string failure;
        /// Ingest alerts drained unexecuted after the failure.
        std::atomic<std::uint64_t> dropped_failed{0};
        /// Stall-injection gate: 0 = running, 1 = worker parked, 2 =
        /// release requested by the watchdog/destructor.
        std::atomic<std::uint32_t> stall_gate{0};
        /// Watchdog write-off: the shard made no progress past the
        /// deadline and had no recovery point. Drains like `failed`;
        /// kept separate so the wedged worker and the watchdog never
        /// race on the `failure` string.
        std::atomic<bool> written_off{false};
        /// Commands seen by the worker (worker thread only; the ordinal
        /// handed to the worker_stall hook).
        std::uint64_t commands_seen{0};
        std::thread worker;
    };

    void worker_loop(shard& s);
    /// One command on the worker: dead-shard drain, stall gate, fault
    /// hooks, steal-aware ingest. Returns true on stop.
    bool execute_command(shard& s, command& cmd);
    /// The steal-aware ingest path: claim-or-wait on the job's stage.
    void run_ingest(shard& s, ingest_job& job);
    /// Owner reached a job a thief is still preparing: drain `done`
    /// tokens until its stage advances (the thief publishes stage before
    /// pushing the token, so this cannot miss).
    void wait_for_prepared(shard& s, ingest_job& job);
    /// Discards pending done-tokens (each token's work is recorded in
    /// its job's stage; the token itself is only a wakeup).
    void drain_done(shard& s);
    /// Scans peers in ring order from `self`; claims and prepares the
    /// first victim's lowest-seq unclaimed batch. True if work was done.
    bool try_steal(shard& self);
    [[nodiscard]] std::shared_ptr<ingest_job> claim_from(shard& victim);
    /// Caller side: expose a freshly enqueued job to thieves.
    void publish_stealable(shard& s, const std::shared_ptr<ingest_job>& job);
    /// Shard owning the alert's region, keyed by the interned region id
    /// (the root id groups unattributable alerts). Also interns the
    /// alert's full location into `interned` so the shard's preprocessor
    /// skips the string walk. Garbled references (dangling location or
    /// device ids) route to the unattributable bucket unchanged, so the
    /// shard's preprocessor rejects them exactly as a sequential engine
    /// would — never dereferenced here.
    [[nodiscard]] std::size_t shard_of(const raw_alert& raw, location_id& interned);
    void append(std::size_t idx, const raw_alert& raw, location_id interned, sim_time now);
    /// Barrier-grade enqueue: drains the backlog, then blocks until the
    /// command fits. tick/finish/stop and sync points go through here.
    void submit(shard& s, command cmd);
    /// Policy-governed enqueue for ingest commands.
    void submit_ingest(shard& s, command cmd);
    /// Re-enqueues backlogged ingest. Non-blocking unless `blocking`;
    /// under a forced-full window the non-blocking drain stalls too.
    void drain_backlog(shard& s, bool blocking, bool pressured);
    [[nodiscard]] bool forced_full() const;
    /// Blocking enqueue. With the watchdog enabled, supervises the wait:
    /// a stalled shard is intervened on, and ingest bound for a dead
    /// shard with a full queue is shed (returns false) instead of
    /// hanging the producer. `waits` accumulates full-queue waits.
    [[nodiscard]] bool push_supervised(shard& s, command cmd, std::size_t& waits);
    /// Watchdog action on a shard stalled past the deadline: release a
    /// parked stall gate (recovered) or write the shard off. Returns
    /// true when the stall was recoverable.
    bool watchdog_intervene(shard& s);
    /// Rebuilds the merged barrier_metrics_ cache (shards must be idle).
    void update_barrier_metrics();
    /// Bookkeeping shared by every successful enqueue; publishes ingest
    /// jobs to the steal board and wakes parked workers.
    void note_enqueued(shard& s, std::size_t waits,
                       const std::shared_ptr<ingest_job>& job = nullptr);
    void flush_pending();
    /// Waits until every shard has executed everything submitted to it.
    void barrier();
    /// Throws skynet_error listing every failed shard; called by
    /// tick()/finish() after their barrier completes.
    void surface_failures();
    /// flush_pending + barrier: shards idle, safe to touch engines inline.
    void sync();

    sharded_config config_;
    /// For routing device-attributed alerts whose location is unset.
    const topology* topo_{nullptr};
    /// config_.steal with more than one shard.
    bool steal_enabled_{false};
    std::vector<std::unique_ptr<shard>> shards_;
    std::unordered_map<location_id, std::size_t> region_to_shard_;
    std::size_t next_region_shard_{0};
    /// Caller-side ingest sequence numbers (the steal priority).
    std::uint64_t next_job_seq_{0};
    /// Global work version: bumped (and notified) on every enqueue so
    /// idle workers parked between steal scans wake up. Only used when
    /// stealing is enabled; otherwise workers park on their own queue.
    alignas(64) std::atomic<std::uint64_t> work_signal_{0};
    std::uint64_t ticks_{0};
    std::uint64_t batches_in_{0};
    // Watchdog accounting (caller thread only).
    std::uint64_t stalls_detected_{0};
    std::uint64_t stalls_recovered_{0};
    /// Merged metrics cached at the last tick/finish barrier.
    engine_metrics barrier_metrics_;
};

}  // namespace skynet
