// Incident digests for downstream consumers (§9 "integration with LLM").
//
// SkyNet's incidents carry exactly the time and location context an
// LLM-based root-cause analyzer needs, but monitoring results must be
// truncated to fit model input limits "without sacrificing valuable
// information". These renderers produce a bounded plain-text digest
// (category-ordered, root-cause alerts first within the budget) and a
// machine-readable JSON form for programmatic consumers.
#pragma once

#include <string>

#include "skynet/core/pipeline.h"

namespace skynet {

struct digest_options {
    /// Hard upper bound on the rendered size. The digest degrades
    /// gracefully: root-cause alert types survive longest.
    std::size_t max_chars = 4000;
    /// At most this many alert types listed per category.
    int max_types_per_category = 8;
};

/// Bounded plain-text digest of an incident report.
[[nodiscard]] std::string incident_digest(const incident_report& report,
                                          const digest_options& options = {});

/// JSON rendering of an incident report (self-contained, no external
/// dependencies; strings are escaped per RFC 8259).
[[nodiscard]] std::string incident_digest_json(const incident_report& report);

/// Escapes a string for embedding in JSON (exposed for reuse/testing).
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace skynet
