// The evaluator (§4.3): incident severity and location zoom-in.
//
// Severity y_k = I_k * T_k (Equations 1-3):
//   I_k = max(1, sum_i d_i*g_i*u_i + sum_j l_j*g_j*u_j)   — impact factor
//   T_k = max(log_{1/R_k}(dT_k + Sig(U_k)),
//             log_{1/L_k}(dT_k + Sig(U_k)))               — time factor
// with the Table 3 symbols: d_i circuit-set break ratio, l_i SLA-overload
// ratio, g_i customer importance, u_i customer count, R_k mean ping loss,
// L_k max SLA overshoot, dT_k incident duration, U_k important customers.
//
// Location zoom-in refines the incident location through behaviour
// monitors: the reachability-matrix focal point, sFlow loss trace-back,
// and INT rate discrepancies.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "skynet/core/locator.h"
#include "skynet/sim/network_state.h"
#include "skynet/telemetry/reachability.h"

namespace skynet {

struct evaluator_config {
    /// Incidents scoring below this are filtered from the operator view
    /// (§6.4: threshold 10 cuts incident volume ~2 orders of magnitude
    /// with zero false negatives).
    double severity_threshold = 10.0;
    /// Display cap (Figure 10a caps at 100).
    double score_cap = 100.0;
    /// Floors/ceilings keeping the log bases meaningful.
    double min_rate = 1e-4;
    double max_rate = 0.99;
};

/// Full severity decomposition for one incident (Table 3 inputs echoed
/// back for the report).
struct severity_breakdown {
    double impact_factor{1.0};   // I_k
    double time_factor{0.0};     // T_k
    double score{0.0};           // y_k = I_k * T_k (capped)
    double avg_ping_loss{0.0};   // R_k
    double max_sla_overload{0.0};  // L_k
    int important_customers{0};  // U_k
    sim_duration duration{0};    // dT_k
    int circuit_sets{0};         // N
};

class evaluator {
public:
    evaluator(const topology* topo, const customer_registry* customers,
              evaluator_config config = {});

    /// Circuit sets related to an incident: sets with at least one
    /// endpoint device under the incident root.
    [[nodiscard]] std::vector<circuit_set_id> related_circuit_sets(const incident& inc) const;

    /// Computes y_k against the frozen network state; `now` supplies the
    /// duration for still-open incidents.
    [[nodiscard]] severity_breakdown evaluate(const incident& inc, const network_state& state,
                                              sim_time now) const;

    [[nodiscard]] bool passes_filter(const severity_breakdown& s) const noexcept {
        return s.score >= config_.severity_threshold;
    }

    /// Builds the Figure 7 reachability matrix from the incident's
    /// end-to-end alerts (cluster granularity).
    [[nodiscard]] reachability_matrix build_matrix(const incident& inc) const;

    /// Location zoom-in (§4.3). Tries, in order: the reachability-matrix
    /// focal point; sFlow loss trace-back to a common node; INT rate
    /// discrepancies. Returns the refined location, or nullopt when the
    /// general incident location stands.
    [[nodiscard]] std::optional<location> zoom_in(const incident& inc) const;

    [[nodiscard]] const evaluator_config& config() const noexcept { return config_; }

private:
    /// The incident root's interned id; interns the root path for
    /// hand-built incidents that carry the sentinel.
    [[nodiscard]] location_id root_id_of(const incident& inc) const;

    const topology* topo_;
    const customer_registry* customers_;
    evaluator_config config_;
    /// related_circuit_sets depends only on the incident root (the
    /// topology is immutable), and live scoring re-evaluates every open
    /// incident each tick — memoizing by the root's interned id turns
    /// the per-evaluation full circuit-set scan into an integer-keyed
    /// hash lookup.
    mutable std::unordered_map<location_id, std::vector<circuit_set_id>> related_cache_;
};

}  // namespace skynet
