// The locator (§4.2): hierarchical alert tree and incident discovery.
//
// Structured alerts are inserted into a *main tree* indexed by their
// hierarchy location (Algorithm 1). When the alerts under a node exceed
// the incident thresholds — counting each alert type once, and only
// alerts topologically connected to each other (Figure 5c: an isolated
// device's alerts belong to a different root cause) — the subtree is
// replicated as an *incident tree* (Algorithm 2). Nodes expire after
// 5 minutes without updates; incident trees close after 15 idle minutes
// (Algorithm 3).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "skynet/alert/alert.h"
#include "skynet/topology/topology.h"

namespace skynet {

/// Incident-generation thresholds in the paper's "A/B+C/D" notation:
/// A failure alerts, or B failure alerts plus C other alerts, or D alerts
/// of any type. 0 disables the clause. Production setting: 2/1+2/5.
struct incident_thresholds {
    int pure_failure = 2;   // A
    int combo_failure = 1;  // B
    int combo_other = 2;    // C
    int any = 5;            // D

    [[nodiscard]] bool met(int failure_types, int total_types) const noexcept {
        const int other = total_types - failure_types;
        if (pure_failure > 0 && failure_types >= pure_failure) return true;
        if (combo_failure > 0 && combo_other > 0 && failure_types >= combo_failure &&
            other >= combo_other) {
            return true;
        }
        if (any > 0 && total_types >= any) return true;
        return false;
    }

    [[nodiscard]] std::string to_string() const;
};

struct locator_config {
    /// Main-tree node expiry (§4.2: max alert delay ~2 min SNMP + ~4 min
    /// worst-case transmission -> 5 minutes).
    sim_duration node_timeout = minutes(5);
    /// Incident-tree idle timeout (timeliness is not critical here).
    sim_duration incident_timeout = minutes(15);
    incident_thresholds thresholds{};
    /// Count alerts per type (same type at different locations counts
    /// once). false reproduces the Figure 9 "type+location" ablation.
    bool count_by_type = true;
    /// Partition alerting devices into topology-connected groups before
    /// threshold checks.
    bool use_connectivity = true;
    /// Derive incident ids from a stable hash of (root location, spawn
    /// time) instead of a per-locator counter. The sharded engine forces
    /// this on so ids agree across shard counts — and with a sequential
    /// engine run on the same trace — making merged rankings comparable.
    bool deterministic_ids = false;
    /// Bounded-memory degradation (overload control): cap on alerts
    /// stored per main-tree node. When full, the oldest-inserted alert is
    /// evicted first, so a storm hammering one location degrades its node
    /// deterministically instead of growing without bound. 0 = unbounded
    /// (the default; behavior unchanged).
    std::size_t max_node_alerts = 0;
    /// Cap on concurrently open incident trees. When exceeded, the
    /// oldest open incident (front-most in spawn order) is force-closed
    /// and surfaced through check()'s closed list. 0 = unbounded.
    std::size_t max_open_incidents = 0;
};

/// A set of alerts attributed to one root cause.
struct incident {
    std::uint64_t id{0};
    /// Root of the incident tree.
    location root;
    /// `root` interned in the owning topology's location table; the
    /// sentinel for hand-built incidents (consumers intern `root` then).
    location_id root_id{invalid_location_id};
    time_range when;
    std::vector<structured_alert> alerts;
    bool closed{false};

    /// Distinct alert types present, by category.
    [[nodiscard]] int type_count(alert_category category) const;
    [[nodiscard]] int total_type_count() const;
    /// Mean metric over failure-category probe alerts (R_k input).
    [[nodiscard]] double avg_failure_loss() const;
    /// Figure 6-style rendering: categorized type counts under the
    /// incident header.
    [[nodiscard]] std::string render() const;
};

class locator {
public:
    /// One alert as stored in a tree node, with its insertion time (the
    /// node-expiry clock runs on insertion, not generation, times).
    struct stored_alert {
        structured_alert alert;
        sim_time inserted{0};
    };

    /// Snapshot of the main tree and the open incident trees, exported
    /// at a barrier and restored into a freshly constructed locator
    /// (same topology, same config) by the persist subsystem. Nodes are
    /// listed in location-path order; incident trees keep their spawn
    /// order (it is part of Algorithm 1's routing semantics).
    struct persist_state {
        struct node_state {
            location_id loc{invalid_location_id};
            sim_time last_update{0};
            std::vector<stored_alert> alerts;
        };
        struct incident_entry {
            incident inc;
            location_id root_id{root_location_id};
            sim_time update_time{0};
            std::vector<node_state> nodes;
        };

        std::vector<node_state> nodes;
        std::vector<incident_entry> incidents;
        std::uint64_t next_incident_id{1};
    };

    locator(const topology* topo, locator_config config = {});

    /// Exports main-tree and incident-tree state; see persist_state.
    [[nodiscard]] persist_state export_state() const;

    /// Replaces all trees with a previously exported state. The restored
    /// locator behaves bit-identically to the exporting one.
    void import_state(persist_state state);

    /// Algorithm 1: routes the alert into matching incident trees and the
    /// main tree.
    void insert(const structured_alert& alert, sim_time now);

    /// Consolidation update: refreshes timestamps of the alert's node.
    void refresh(const structured_alert& alert, sim_time now);

    /// Algorithms 2 + 3: spawn incident trees whose thresholds are met,
    /// expire stale nodes, close idle incidents. Returns incidents closed
    /// by this call.
    [[nodiscard]] std::vector<incident> check(sim_time now);

    /// Force-closes every open incident (end of an experiment episode).
    [[nodiscard]] std::vector<incident> drain(sim_time now);

    /// Snapshot of the currently open incidents (deep copy; prefer
    /// open_incident_view() on hot paths).
    [[nodiscard]] std::vector<incident> open_incidents() const;

    /// Zero-copy view of the open incidents. Pointers are valid until the
    /// next mutating call (insert/refresh/check/drain).
    [[nodiscard]] std::vector<const incident*> open_incident_view() const;

    [[nodiscard]] std::size_t main_tree_size() const noexcept { return nodes_.size(); }

    /// Alerts evicted by max_node_alerts, and incidents force-closed by
    /// max_open_incidents. Process-local overload accounting (not part
    /// of the persisted state).
    [[nodiscard]] std::uint64_t evicted_node_alerts() const noexcept {
        return evicted_node_alerts_;
    }
    [[nodiscard]] std::uint64_t evicted_incidents() const noexcept { return evicted_incidents_; }
    /// Live stored alerts (main-tree nodes + open incident trees): the
    /// locator's share of the engine's memory footprint.
    [[nodiscard]] std::size_t stored_alert_count() const noexcept;

private:
    struct tree_node {
        location_id loc{invalid_location_id};
        /// Table-owned path (stable for the table's lifetime); kept for
        /// the path-ordered sorts that make spawn order deterministic.
        const location* path{nullptr};
        std::vector<stored_alert> alerts;
        sim_time last_update{0};
    };
    struct incident_state {
        incident inc;
        location_id root_id{root_location_id};
        sim_time update_time{0};
        /// Interned locations (node keys) belonging to this incident tree.
        std::unordered_map<location_id, std::vector<stored_alert>> nodes;
    };

    /// The alert's interned id; interns its string path when the caller
    /// (e.g. a test building alerts by hand) left the sentinel.
    [[nodiscard]] location_id ensure_id(const structured_alert& alert) const;
    void add_to_main(const structured_alert& alert, sim_time now);
    /// Counts distinct failure types and total types among the alerts of
    /// the given nodes; with count_by_type disabled, counts distinct
    /// (type, location) pairs instead.
    [[nodiscard]] std::pair<int, int> count_types(
        const std::vector<const tree_node*>& group) const;
    /// Partitions alert-bearing nodes into connectivity groups: device
    /// nodes join via topology adjacency / shared cluster; aggregate-
    /// location nodes glue everything beneath them.
    [[nodiscard]] std::vector<std::vector<const tree_node*>> connectivity_groups(
        std::vector<const tree_node*> members) const;
    void spawn_incident(const std::vector<const tree_node*>& group, sim_time now);

    const topology* topo_;
    locator_config config_;
    std::unordered_map<location_id, tree_node> nodes_;
    std::vector<incident_state> incident_states_;
    std::uint64_t next_incident_id_{1};
    /// Incidents force-closed by the max_open_incidents cap, held until
    /// the surrounding check() folds them into its closed list.
    std::vector<incident> force_closed_;
    std::uint64_t evicted_node_alerts_{0};
    std::uint64_t evicted_incidents_{0};
};

}  // namespace skynet
