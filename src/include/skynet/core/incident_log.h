// Incident history log.
//
// §6.4's methodology: "over the past nine months, we gathered network
// incidents identified by SkyNet, then had our network operators select
// those attributable to network failures". This append-only store keeps
// closed incident reports queryable by time, location and severity, and
// produces the month-bucketed rollups behind Figure 10b.
#pragma once

#include <optional>
#include <vector>

#include "skynet/core/pipeline.h"

namespace skynet {

class incident_log {
public:
    struct entry {
        incident_report report;
        sim_time closed_at{0};
        /// Operator labeling (the §6.4 manual selection); unset until
        /// reviewed.
        std::optional<bool> attributed_to_failure;
    };

    /// Appends a closed incident. The pipeline appends in close order
    /// with closed_at at/after the incident window's end; while that
    /// invariant holds, time-window queries binary-search their starting
    /// point instead of scanning the whole log. An out-of-order append
    /// (hand-built logs) is accepted and silently downgrades query() to
    /// the linear scan — never an abort.
    void append(incident_report report, sim_time closed_at);

    /// Bulk replace used by the persist subsystem on recovery; re-derives
    /// the fast-query invariant from the restored entries.
    void restore(std::vector<entry> entries);

    /// Operator labeling by incident id; false if the id is unknown.
    bool label(std::uint64_t incident_id, bool is_failure);

    [[nodiscard]] const std::vector<entry>& entries() const noexcept { return entries_; }
    [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

    /// True while the close-order invariant holds and time-window
    /// queries binary-search their starting point; false once any
    /// append broke it (query() then degrades to a full linear scan).
    [[nodiscard]] bool fast_query() const noexcept { return fast_query_; }

    /// Appends (or restored entries) that broke the close-order
    /// invariant. A non-zero count means query()'s complexity class
    /// silently changed from O(log n + hits) to O(n) — surfaced in
    /// engine_metrics::degraded.log_out_of_order so the degradation is
    /// observable instead of a latent slowdown.
    [[nodiscard]] std::uint64_t out_of_order_appends() const noexcept { return out_of_order_; }

    /// First index whose closed_at is >= `t` under the fast-query
    /// invariant; 0 when the invariant is broken (callers must then
    /// scan from the start). The building block the serve-layer
    /// incident store uses for cursor-paginated window queries.
    [[nodiscard]] std::size_t first_closed_at_or_after(sim_time t) const noexcept;

    struct query_filter {
        /// Only incidents whose window overlaps this (ignored when both 0).
        time_range window{0, 0};
        /// Only incidents rooted at/under this location (root = any).
        location scope;
        double min_score{0.0};
        bool only_actionable{false};
    };

    /// Matching entries, append order. With a time window set and the
    /// close-order invariant intact, the scan starts at the first entry
    /// with closed_at >= window.begin (binary search): every earlier
    /// entry closed before the window opened, and since incidents close
    /// at/after their window's end, cannot overlap it.
    [[nodiscard]] std::vector<const entry*> query(const query_filter& filter) const;

    struct monthly_stats {
        int month{0};  // 0-based bucket index from the log epoch
        int total{0};
        int actionable{0};
        int labeled_failures{0};
        double max_score{0.0};
    };

    /// Buckets closed incidents by `month_length` (only non-empty months
    /// are listed, ascending).
    [[nodiscard]] std::vector<monthly_stats> monthly_rollup(
        sim_duration month_length = days(30)) const;

private:
    [[nodiscard]] static bool entry_keeps_invariant(const entry& e, const entry* prev) noexcept;

    std::vector<entry> entries_;
    /// True while entries are sorted by closed_at and each closed_at is
    /// at/after its incident window's end — the precondition for the
    /// binary-searched query start.
    bool fast_query_{true};
    /// Lifetime count of invariant-breaking appends (see
    /// out_of_order_appends()).
    std::uint64_t out_of_order_{0};
};

}  // namespace skynet
