// Monitoring tool interface.
//
// Each of the twelve data sources (Table 2) is a monitor_tool: the
// simulation engine polls it at its native cadence and it emits raw
// alerts describing what its real counterpart could observe — no more.
// The per-tool blind spots of §2.1 (syslog can't see silent loss, route
// monitoring can't see the data plane, INT only on supporting devices,
// ...) fall out of what each implementation reads from network_state.
#pragma once

#include <memory>
#include <vector>

#include "skynet/alert/alert.h"
#include "skynet/common/rng.h"
#include "skynet/sim/network_state.h"

namespace skynet {

struct monitor_options {
    /// Probability per poll of an unrelated glitch alert (the concurrent
    /// minor noise of §1 that complicates manual localization).
    double noise_rate = 0.0;
};

class monitor_tool {
public:
    virtual ~monitor_tool() = default;

    [[nodiscard]] virtual data_source source() const = 0;
    /// Native polling / reporting cadence.
    [[nodiscard]] virtual sim_duration period() const = 0;
    /// Observes the network and appends raw alerts.
    virtual void poll(const network_state& state, sim_time now, rng& rand,
                      std::vector<raw_alert>& out) = 0;
};

/// Builds all twelve tools over `topo` with the given noise level.
[[nodiscard]] std::vector<std::unique_ptr<monitor_tool>> make_all_monitors(
    const topology& topo, monitor_options opts = {});

}  // namespace skynet
