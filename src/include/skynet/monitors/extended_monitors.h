// Extended data sources (§9 "more data sources").
//
// The paper's future-work section names two sources being onboarded:
// user-side telemetry (probe packets from customers' clients into the
// data center) and an SRTE label-based tester that periodically verifies
// link reachability in the segment-routed network. Both demonstrate the
// §5.2 extensibility claim: once structured, their alerts "can be simply
// injected into SkyNet" — no pipeline changes, only new registry types.
#pragma once

#include <vector>

#include "skynet/alert/type_registry.h"
#include "skynet/monitors/monitor.h"

namespace skynet {

/// Registers the alert types these tools emit (idempotent). Call once on
/// the registry handed to the preprocessor.
void register_extended_alert_types(alert_type_registry& registry);

/// User-side telemetry: clients outside our network probe into the data
/// centers. Sees the internet path from the *user* direction — including
/// troubles beyond our border that internal tools cannot observe.
class user_telemetry_monitor final : public monitor_tool {
public:
    struct config {
        double loss_threshold = 0.05;
        double latency_threshold_ms = 20.0;
        sim_duration poll_period = seconds(20);
    };

    user_telemetry_monitor(const topology& topo, config cfg, monitor_options opts);

    data_source source() const override { return data_source::internet_telemetry; }
    sim_duration period() const override { return cfg_.poll_period; }
    void poll(const network_state& state, sim_time now, rng& rand,
              std::vector<raw_alert>& out) override;

private:
    const topology* topo_;
    config cfg_;
    monitor_options opts_;
    /// (ISP vantage, target cluster) probe pairs.
    struct probe_target {
        device_id isp{invalid_device};
        location cluster;
        location_id cluster_id{invalid_location_id};
    };
    std::vector<probe_target> probes_;
};

/// SRTE label-based reachability tester: steers a test packet over every
/// circuit set via explicit segment labels and verifies it arrives. Gives
/// a direct per-bundle up/degraded verdict — faster and more precise than
/// inferring breaks from counters.
class srte_probe_monitor final : public monitor_tool {
public:
    struct config {
        sim_duration poll_period = seconds(30);
        /// Break ratio above which the bundle is reported degraded.
        double degraded_threshold = 0.25;
    };

    srte_probe_monitor(const topology& topo, config cfg, monitor_options opts);

    data_source source() const override { return data_source::inband_telemetry; }
    sim_duration period() const override { return cfg_.poll_period; }
    void poll(const network_state& state, sim_time now, rng& rand,
              std::vector<raw_alert>& out) override;

private:
    const topology* topo_;
    config cfg_;
    monitor_options opts_;
};

/// Builds both extended tools.
[[nodiscard]] std::vector<std::unique_ptr<monitor_tool>> make_extended_monitors(
    const topology& topo, monitor_options opts = {});

}  // namespace skynet
