// Device-centric monitoring tools: out-of-band, SNMP/GRPC, the device
// syslog stream, in-band telemetry, PTP and patrol inspection.
#pragma once

#include <unordered_map>
#include <vector>

#include "skynet/monitors/monitor.h"
#include "skynet/syslog/message_catalog.h"

namespace skynet {

/// Out-of-band monitor: device liveness, CPU, RAM through the management
/// plane. Sees infrastructure problems even when the device itself cannot
/// report. Subject to the probe-glitch false alarm of §4.2: a broken
/// liveness probe occasionally floods identical "device inaccessible"
/// alerts for a healthy device.
class oob_monitor final : public monitor_tool {
public:
    oob_monitor(const topology& topo, monitor_options opts) : topo_(&topo), opts_(opts) {}

    data_source source() const override { return data_source::out_of_band; }
    sim_duration period() const override { return seconds(10); }
    void poll(const network_state& state, sim_time now, rng& rand,
              std::vector<raw_alert>& out) override;

private:
    const topology* topo_;
    monitor_options opts_;
};

/// SNMP & GRPC counters: interface status, RX errors, congestion
/// (utilization), per-device traffic against a learned baseline, CPU/RAM.
/// Level-triggered (re-reports every poll while the condition holds),
/// which is why the preprocessor's identical-alert consolidation matters.
class snmp_monitor final : public monitor_tool {
public:
    snmp_monitor(const topology& topo, monitor_options opts) : topo_(&topo), opts_(opts) {}

    data_source source() const override { return data_source::snmp; }
    sim_duration period() const override { return seconds(30); }
    void poll(const network_state& state, sim_time now, rng& rand,
              std::vector<raw_alert>& out) override;

private:
    const topology* topo_;
    monitor_options opts_;
    /// EWMA of carried traffic per device, for drop/surge detection.
    std::unordered_map<device_id, double> traffic_baseline_;
};

/// The devices' own log stream. Edge-triggered on state transitions (a
/// link going down logs once) plus recurring messages while a condition
/// persists (flapping). Dead devices cannot log — the §2.1 blind spot —
/// and silent loss never appears here at all.
class syslog_source final : public monitor_tool {
public:
    syslog_source(const topology& topo, monitor_options opts) : topo_(&topo), opts_(opts) {}

    data_source source() const override { return data_source::syslog; }
    sim_duration period() const override { return seconds(2); }
    void poll(const network_state& state, sim_time now, rng& rand,
              std::vector<raw_alert>& out) override;

private:
    /// Emits a rendered catalog message of `type_name` for `dev`.
    void emit(const device& dev, std::string_view type_name, sim_time now, rng& rand,
              std::vector<raw_alert>& out) const;

    const topology* topo_;
    monitor_options opts_;
    bool primed_{false};
    std::vector<bool> prev_link_up_;
    std::vector<bool> prev_cp_ok_;
    std::vector<bool> prev_hw_fault_;
    std::vector<bool> prev_sw_fault_;
    std::vector<bool> prev_oom_;
    std::vector<bool> prev_crc_;
};

/// In-band network telemetry: DSCP-marked test flows through supporting
/// devices, comparing input and output rates per circuit set. Only covers
/// sets whose both endpoints support INT (§2.1).
class int_monitor final : public monitor_tool {
public:
    int_monitor(const topology& topo, monitor_options opts);

    data_source source() const override { return data_source::inband_telemetry; }
    sim_duration period() const override { return seconds(10); }
    void poll(const network_state& state, sim_time now, rng& rand,
              std::vector<raw_alert>& out) override;

private:
    const topology* topo_;
    monitor_options opts_;
    std::vector<circuit_set_id> covered_sets_;
};

/// PTP: reports devices whose system clock fell out of synchronization.
class ptp_monitor final : public monitor_tool {
public:
    ptp_monitor(const topology& topo, monitor_options opts) : topo_(&topo), opts_(opts) {}

    data_source source() const override { return data_source::ptp; }
    sim_duration period() const override { return seconds(60); }
    void poll(const network_state& state, sim_time now, rng& rand,
              std::vector<raw_alert>& out) override;

private:
    const topology* topo_;
    monitor_options opts_;
};

/// Patrol inspection: slow periodic sweep running scripted commands on
/// every device. Catches faults the event-driven tools miss (including
/// gray failures, probabilistically) but at a five-minute cadence.
class patrol_monitor final : public monitor_tool {
public:
    patrol_monitor(const topology& topo, monitor_options opts) : topo_(&topo), opts_(opts) {}

    data_source source() const override { return data_source::patrol_inspection; }
    sim_duration period() const override { return minutes(5); }
    void poll(const network_state& state, sim_time now, rng& rand,
              std::vector<raw_alert>& out) override;

private:
    const topology* topo_;
    monitor_options opts_;
};

}  // namespace skynet
