// Traffic-plane and control-plane monitors: sFlow/netFlow traffic
// statistics, route monitoring, modification events.
#pragma once

#include <unordered_map>

#include "skynet/monitors/monitor.h"

namespace skynet {

/// sFlow/netFlow traffic statistics per circuit set: packet loss seen in
/// sampled flows, traffic drop/surge against a learned baseline, SLA
/// flows beyond their committed rate. Alerts carry the link so the
/// preprocessor can attribute endpoints, enabling the evaluator's sFlow
/// trace-back zoom-in.
class traffic_monitor final : public monitor_tool {
public:
    traffic_monitor(const topology& topo, monitor_options opts) : topo_(&topo), opts_(opts) {}

    data_source source() const override { return data_source::traffic_stats; }
    sim_duration period() const override { return seconds(10); }
    void poll(const network_state& state, sim_time now, rng& rand,
              std::vector<raw_alert>& out) override;

private:
    const topology* topo_;
    monitor_options opts_;
    std::unordered_map<circuit_set_id, double> baseline_;
};

/// Route monitoring: control-plane anomalies only (default/aggregate
/// route loss, hijack, leak, churn). Blind to everything in the data
/// plane (§2.1).
class route_monitor final : public monitor_tool {
public:
    route_monitor(const topology& topo, monitor_options opts) : topo_(&topo), opts_(opts) {}

    data_source source() const override { return data_source::route_monitoring; }
    sim_duration period() const override { return seconds(30); }
    void poll(const network_state& state, sim_time now, rng& rand,
              std::vector<raw_alert>& out) override;

private:
    const topology* topo_;
    monitor_options opts_;
};

/// Modification events: reports failed or rolled-back network changes the
/// moment the change system records them.
class modification_monitor final : public monitor_tool {
public:
    modification_monitor(const topology& topo, monitor_options opts)
        : topo_(&topo), opts_(opts) {}

    data_source source() const override { return data_source::modification_events; }
    sim_duration period() const override { return seconds(10); }
    void poll(const network_state& state, sim_time now, rng& rand,
              std::vector<raw_alert>& out) override;

private:
    const topology* topo_;
    monitor_options opts_;
    std::size_t seen_{0};
};

}  // namespace skynet
