// End-to-end probing tools: ping mesh, traceroute, internet telemetry.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "skynet/monitors/monitor.h"

namespace skynet {

/// Pingmesh-style server-pair probing. Samples random cluster pairs each
/// round and reports loss / unreachability / latency between them. Limited
/// to reachability phenomena (§2.1): a broken circuit inside a redundant
/// bundle that reroutes cleanly is invisible here.
class ping_mesh final : public monitor_tool {
public:
    struct config {
        int pairs_per_poll = 50;
        double loss_threshold = 0.01;
        double latency_threshold_ms = 10.0;
        sim_duration poll_period = seconds(2);
    };

    ping_mesh(const topology& topo, config cfg, monitor_options opts);

    data_source source() const override { return data_source::ping; }
    sim_duration period() const override { return cfg_.poll_period; }
    void poll(const network_state& state, sim_time now, rng& rand,
              std::vector<raw_alert>& out) override;

private:
    const topology* topo_;
    config cfg_;
    monitor_options opts_;
    std::vector<location> clusters_;
    /// Interned ids of clusters_, same order (alerts carry ids directly).
    std::vector<location_id> cluster_ids_;
};

/// Periodic traceroute between sampled pairs; detects path changes against
/// the first path it saw and attributes latency spikes to hops. Loses
/// effectiveness with asymmetric paths — it only sees the forward path.
class traceroute_monitor final : public monitor_tool {
public:
    struct config {
        int pairs_per_poll = 10;
        double hop_loss_threshold = 0.05;
        sim_duration poll_period = seconds(30);
    };

    traceroute_monitor(const topology& topo, config cfg, monitor_options opts);

    data_source source() const override { return data_source::traceroute; }
    sim_duration period() const override { return cfg_.poll_period; }
    void poll(const network_state& state, sim_time now, rng& rand,
              std::vector<raw_alert>& out) override;

private:
    const topology* topo_;
    config cfg_;
    monitor_options opts_;
    std::vector<location> clusters_;
    /// Interned ids of clusters_, same order.
    std::vector<location_id> cluster_ids_;
    /// Baseline path signature per (src id, dst id) pair.
    std::unordered_map<std::uint64_t, std::vector<device_id>> baseline_paths_;
};

/// Pings Internet addresses from DC servers: per logic site, probes from a
/// ToR through the ISRs to the region's ISP peer.
class internet_telemetry_monitor final : public monitor_tool {
public:
    struct config {
        double loss_threshold = 0.05;
        double latency_threshold_ms = 15.0;
        sim_duration poll_period = seconds(15);
    };

    internet_telemetry_monitor(const topology& topo, config cfg, monitor_options opts);

    data_source source() const override { return data_source::internet_telemetry; }
    sim_duration period() const override { return cfg_.poll_period; }
    void poll(const network_state& state, sim_time now, rng& rand,
              std::vector<raw_alert>& out) override;

private:
    const topology* topo_;
    config cfg_;
    monitor_options opts_;
    struct probe_target {
        location ls;          ///< logic site path (message rendering)
        location_id ls_id{invalid_location_id};
        device_id isp{invalid_device};  ///< its region's ISP peer
    };
    std::vector<probe_target> probes_;
};

}  // namespace skynet
