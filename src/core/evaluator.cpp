#include "skynet/core/evaluator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "skynet/common/error.h"

namespace skynet {
namespace {

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

/// log base (1/rate) of x: grows with incident duration, faster for
/// higher loss/overload rates. rate is clamped into (0, 1).
double rate_log(double rate, double x, const evaluator_config& cfg) {
    const double r = std::clamp(rate, cfg.min_rate, cfg.max_rate);
    if (x <= 1.0) return 0.0;
    return std::log(x) / std::log(1.0 / r);
}

}  // namespace

evaluator::evaluator(const topology* topo, const customer_registry* customers,
                     evaluator_config config)
    : topo_(topo), customers_(customers), config_(config) {
    if (topo_ == nullptr || customers_ == nullptr) {
        throw skynet_error("evaluator: null topology or customer registry");
    }
}

location_id evaluator::root_id_of(const incident& inc) const {
    if (inc.root_id != invalid_location_id) return inc.root_id;
    return topo_->locations().intern(inc.root);
}

std::vector<circuit_set_id> evaluator::related_circuit_sets(const incident& inc) const {
    const location_id root = root_id_of(inc);
    if (const auto it = related_cache_.find(root); it != related_cache_.end()) {
        return it->second;
    }
    const location_table& table = topo_->locations();
    std::unordered_set<circuit_set_id> seen;
    std::vector<circuit_set_id> out;
    for (const circuit_set& cs : topo_->circuit_sets()) {
        const location_id la = topo_->device_at(cs.a).loc_id;
        const location_id lb = topo_->device_at(cs.b).loc_id;
        if (table.contains(root, la) || table.contains(root, lb)) {
            if (seen.insert(cs.id).second) out.push_back(cs.id);
        }
    }
    related_cache_.emplace(root, out);
    return out;
}

severity_breakdown evaluator::evaluate(const incident& inc, const network_state& state,
                                       sim_time now) const {
    severity_breakdown s;
    const std::vector<circuit_set_id> csets = related_circuit_sets(inc);
    s.circuit_sets = static_cast<int>(csets.size());

    // Equation 1: impact factor.
    double impact = 0.0;
    for (circuit_set_id cs : csets) {
        const double d = state.break_ratio(cs);
        const double l = state.sla_overload_ratio(cs);
        const double g = customers_->importance_factor(cs);
        const double u = static_cast<double>(customers_->customer_count(cs));
        impact += d * g * u + l * g * u;
    }
    s.impact_factor = std::max(1.0, impact);

    // Table 3 inputs for Equation 2.
    s.avg_ping_loss = inc.avg_failure_loss();
    s.max_sla_overload = state.max_sla_overload(csets);
    s.important_customers = customers_->important_customer_count(csets);
    const sim_time end = inc.closed ? inc.when.end : std::max(inc.when.end, now);
    s.duration = std::max<sim_duration>(0, end - inc.when.begin);

    // Equation 2: time factor. Duration is measured in seconds; the
    // sigmoid keeps small important-customer counts influential without
    // letting large ones run away.
    const double x = to_seconds(s.duration) + sigmoid(static_cast<double>(s.important_customers));
    s.time_factor = std::max(rate_log(s.avg_ping_loss, x, config_),
                             rate_log(s.max_sla_overload, x, config_));

    // Equation 3, with the Figure 10a display cap.
    s.score = std::min(config_.score_cap, s.impact_factor * s.time_factor);
    return s;
}

reachability_matrix evaluator::build_matrix(const incident& inc) const {
    // Matrix endpoints: every cluster seen as a probe endpoint in the
    // incident's end-to-end alerts, as interned ids (interning the path
    // for hand-built alerts carrying the sentinel).
    location_table& table = topo_->locations();
    const auto endpoint_id = [&table](const location& path, location_id id) {
        return id != invalid_location_id ? id : table.intern(path);
    };
    std::unordered_set<location_id> endpoint_set;
    for (const structured_alert& a : inc.alerts) {
        if (a.src_loc) endpoint_set.insert(endpoint_id(*a.src_loc, a.src_id));
        if (a.dst_loc) endpoint_set.insert(endpoint_id(*a.dst_loc, a.dst_id));
    }
    std::vector<location_id> endpoints(endpoint_set.begin(), endpoint_set.end());
    // Path order, not id order: focal_point() breaks score ties by
    // endpoint index, and the pre-interning behaviour sorted by path.
    std::sort(endpoints.begin(), endpoints.end(), [&table](location_id a, location_id b) {
        return table.path_of(a) < table.path_of(b);
    });
    reachability_matrix matrix(table, std::move(endpoints));
    for (const structured_alert& a : inc.alerts) {
        if (!a.src_loc || !a.dst_loc) continue;
        if (a.metric <= 0.0 || a.metric > 1.0) continue;
        matrix.record(endpoint_id(*a.src_loc, a.src_id), endpoint_id(*a.dst_loc, a.dst_id),
                      a.metric);
    }
    return matrix;
}

std::optional<location> evaluator::zoom_in(const incident& inc) const {
    const location_table& table = topo_->locations();
    const location_id root = root_id_of(inc);

    // 1. Reachability-matrix focal point.
    const reachability_matrix matrix = build_matrix(inc);
    if (matrix.size() >= 3) {
        if (const auto focal = matrix.focal_point()) {
            if (inc.root.contains(*focal) && *focal != inc.root) return focal;
        }
    }

    // 2. sFlow packet loss: all affected devices trace back to one node
    //    inside the incident tree.
    // 3. In-band telemetry rate discrepancies, same trace-back.
    for (const char* type_name : {"sflow packet loss", "rate discrepancy", "int packet loss"}) {
        std::optional<location_id> common;
        bool any = false;
        for (const structured_alert& a : inc.alerts) {
            if (a.type_name != type_name) continue;
            any = true;
            const location_id lid =
                a.loc_id != invalid_location_id ? a.loc_id : topo_->locations().intern(a.loc);
            common = common ? table.common_ancestor(*common, lid) : lid;
        }
        if (any && common && table.is_ancestor_of(root, *common)) return table.path_of(*common);
    }

    return std::nullopt;  // emergency procedures fall back to inc.root
}

}  // namespace skynet
