#include "skynet/core/sharded_engine.h"

#include <algorithm>
#include <chrono>

#include "skynet/common/error.h"

namespace skynet {

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now() - since)
                                          .count());
}

}  // namespace

std::string_view to_string(overflow_policy policy) noexcept {
    switch (policy) {
        case overflow_policy::block: return "block";
        case overflow_policy::drop_oldest: return "drop_oldest";
        case overflow_policy::reject: return "reject";
    }
    return "block";
}

std::optional<overflow_policy> parse_overflow_policy(std::string_view token) noexcept {
    if (token == "block") return overflow_policy::block;
    if (token == "drop_oldest" || token == "drop-oldest") return overflow_policy::drop_oldest;
    if (token == "reject") return overflow_policy::reject;
    return std::nullopt;
}

sharded_engine::sharded_engine(skynet_engine::deps d, sharded_config config)
    : config_(std::move(config)), topo_(d.topo) {
    if (config_.shards == 0) config_.shards = 1;
    if (config_.max_ingest_batch == 0) config_.max_ingest_batch = 1;
    if (config_.backlog_batches == 0) config_.backlog_batches = 1;
    // Shard ids must agree with a sequential engine on the same trace.
    config_.engine.loc.deterministic_ids = true;
    steal_enabled_ = config_.steal && config_.shards > 1;
    // The done queue must hold one token per in-flight ingest command,
    // worst case queue + backlog (plus slack), so thieves never block on
    // a full handoff ring.
    const std::size_t done_capacity = config_.queue_capacity + config_.backlog_batches + 8;
    shards_.reserve(config_.shards);
    for (std::size_t i = 0; i < config_.shards; ++i) {
        shards_.push_back(
            std::make_unique<shard>(d, config_.engine, config_.queue_capacity, done_capacity, i));
    }
    for (auto& s : shards_) {
        s->worker = std::thread(&sharded_engine::worker_loop, this, std::ref(*s));
    }
}

sharded_engine::~sharded_engine() {
    flush_pending();
    for (auto& s : shards_) {
        command stop;
        stop.what = command::op::stop;
        submit(*s, std::move(stop));
    }
    if (config_.worker_stall) {
        // A worker may still be parked at the stall gate with the stop
        // command queued behind it; keep releasing until its queue
        // drains, or join would hang.
        for (auto& s : shards_) {
            while (s->completed.load(std::memory_order_acquire) < s->submitted) {
                std::uint32_t parked = 1;
                if (s->stall_gate.compare_exchange_strong(parked, 2, std::memory_order_acq_rel)) {
                    s->stall_gate.notify_all();
                }
                std::this_thread::sleep_for(std::chrono::microseconds(50));
            }
        }
    }
    for (auto& s : shards_) {
        if (s->worker.joinable()) s->worker.join();
    }
}

void sharded_engine::worker_loop(shard& s) {
    command cmd;
    if (!steal_enabled_) {
        // No stealing: the classic loop, parked on the shard's own queue.
        for (;;) {
            s.queue.pop_blocking(cmd);
            if (execute_command(s, cmd)) return;
        }
    }
    for (;;) {
        drain_done(s);
        if (s.queue.try_pop(cmd)) {
            if (execute_command(s, cmd)) return;
            continue;
        }
        // Load the work version BEFORE the re-check: an enqueue between
        // the re-check and wait() bumps the version, so wait(signal)
        // returns immediately — no missed wakeups.
        const std::uint64_t signal = work_signal_.load(std::memory_order_acquire);
        if (s.queue.try_pop(cmd)) {
            if (execute_command(s, cmd)) return;
            continue;
        }
        if (try_steal(s)) continue;
        s.parks.fetch_add(1, std::memory_order_relaxed);
        work_signal_.wait(signal, std::memory_order_acquire);
    }
}

bool sharded_engine::execute_command(shard& s, command& cmd) {
    const auto start = std::chrono::steady_clock::now();
    bool stop = false;
    if (s.failed.load(std::memory_order_relaxed) ||
        s.written_off.load(std::memory_order_relaxed)) {
        // Dead shard: drain without executing so the producer's
        // push() and barrier() never hang; count what was lost.
        if (cmd.what == command::op::ingest && cmd.job) {
            s.dropped_failed.fetch_add(cmd.job->batch.size(), std::memory_order_relaxed);
        }
        stop = cmd.what == command::op::stop;
    } else {
        ++s.commands_seen;
        if (cmd.what != command::op::stop && config_.worker_stall &&
            config_.worker_stall(s.index, s.commands_seen)) {
            // Injected stall: park at the gate until the watchdog (or
            // the destructor) flips it to release. The command then
            // executes normally — a recovered stall loses nothing.
            // Thieves keep preparing this shard's queued batches in the
            // meantime; on release the owner applies them in order.
            s.stall_gate.store(1, std::memory_order_release);
            s.stall_gate.notify_all();
            s.stall_gate.wait(1, std::memory_order_acquire);
            s.stall_gate.store(0, std::memory_order_release);
            s.stall_gate.notify_all();
        }
        try {
            if (config_.worker_fault) config_.worker_fault(s.index);
            switch (cmd.what) {
                case command::op::ingest:
                    run_ingest(s, *cmd.job);
                    break;
                case command::op::tick:
                    s.engine.tick(cmd.now, *cmd.state);
                    break;
                case command::op::finish:
                    s.engine.finish(cmd.now, *cmd.state);
                    break;
                case command::op::stop:
                    stop = true;
                    break;
            }
        } catch (const std::exception& e) {
            // Never std::terminate the process: record, mark, keep
            // consuming. The failure surfaces at the next barrier.
            if (cmd.what == command::op::ingest && cmd.job) {
                s.dropped_failed.fetch_add(cmd.job->batch.size(), std::memory_order_relaxed);
            }
            s.failure = e.what();
            s.failed.store(true, std::memory_order_release);
        } catch (...) {
            if (cmd.what == command::op::ingest && cmd.job) {
                s.dropped_failed.fetch_add(cmd.job->batch.size(), std::memory_order_relaxed);
            }
            s.failure = "unknown exception";
            s.failed.store(true, std::memory_order_release);
        }
    }
    cmd.job.reset();
    s.busy_ns.fetch_add(elapsed_ns(start), std::memory_order_relaxed);
    s.completed.fetch_add(1, std::memory_order_release);
    s.completed.notify_all();
    return stop;
}

void sharded_engine::run_ingest(shard& s, ingest_job& job) {
    const std::span<const traced_alert> batch(job.batch);
    if (!steal_enabled_) {
        s.engine.ingest_batch(batch);
        return;
    }
    std::uint32_t seen = 0;
    if (job.stage.compare_exchange_strong(seen, 1, std::memory_order_acq_rel)) {
        // We won our own batch: prepare + apply inline (the same two
        // halves a steal goes through, so the paths cannot diverge).
        s.engine.ingest_batch_prepared(batch, s.engine.prepare_batch(batch));
        job.stage.store(2, std::memory_order_release);  // lets the board prune
        return;
    }
    if (seen == 1) wait_for_prepared(s, job);
    if (job.stage.load(std::memory_order_acquire) == 2) {
        s.engine.ingest_batch_prepared(batch, std::move(job.prep));
    } else {
        // Thief aborted (classification threw on its thread): run the
        // whole batch inline; a real fault will resurface here.
        s.engine.ingest_batch(batch);
    }
}

void sharded_engine::wait_for_prepared(shard& s, ingest_job& job) {
    s.owner_waits.fetch_add(1, std::memory_order_relaxed);
    std::shared_ptr<ingest_job> token;
    while (job.stage.load(std::memory_order_acquire) < 2) {
        // The thief stores stage (release) before pushing its token, so
        // once we observe stage < 2 a token is still in flight and this
        // pop cannot block forever. Tokens for other jobs are harmless:
        // their stage is already ≥ 2 when the owner reaches them.
        s.done.pop_blocking(token);
        token.reset();
    }
}

void sharded_engine::drain_done(shard& s) {
    std::shared_ptr<ingest_job> token;
    while (s.done.try_pop(token)) token.reset();
}

bool sharded_engine::try_steal(shard& self) {
    self.steal_attempts.fetch_add(1, std::memory_order_relaxed);
    const std::size_t n = shards_.size();
    for (std::size_t k = 1; k < n; ++k) {
        shard& victim = *shards_[(self.index + k) % n];
        std::shared_ptr<ingest_job> job = claim_from(victim);
        if (!job) continue;
        const auto start = std::chrono::steady_clock::now();
        try {
            // The stateless stage only: classify + intern + split against
            // the victim engine's immutable config/topology. The victim's
            // owner may be applying earlier batches concurrently — the
            // two halves share no mutable state (see
            // preprocessor::prepare).
            job->prep = victim.engine.prepare_batch(std::span<const traced_alert>(job->batch));
            job->stage.store(2, std::memory_order_release);
        } catch (...) {
            // Abort the steal; the owner falls back to the plain path and
            // any real fault surfaces on the owning shard.
            job->stage.store(3, std::memory_order_release);
        }
        self.prepare_ns.fetch_add(elapsed_ns(start), std::memory_order_relaxed);
        self.stolen_batches.fetch_add(1, std::memory_order_relaxed);
        self.stolen_alerts.fetch_add(job->batch.size(), std::memory_order_relaxed);
        victim.done.push(job);  // wakes an owner parked in wait_for_prepared
        return true;
    }
    self.steal_misses.fetch_add(1, std::memory_order_relaxed);
    return false;
}

std::shared_ptr<sharded_engine::ingest_job> sharded_engine::claim_from(shard& victim) {
    std::lock_guard<spin_mutex> guard(victim.board_mu);
    while (!victim.board.empty()) {
        std::shared_ptr<ingest_job>& front = victim.board.front();
        std::uint32_t unclaimed = 0;
        if (front->stage.compare_exchange_strong(unclaimed, 1, std::memory_order_acq_rel)) {
            std::shared_ptr<ingest_job> job = std::move(front);
            victim.board.pop_front();
            return job;
        }
        victim.board.pop_front();  // claimed or done already: prune
    }
    return nullptr;
}

void sharded_engine::publish_stealable(shard& s, const std::shared_ptr<ingest_job>& job) {
    std::lock_guard<spin_mutex> guard(s.board_mu);
    // Lazy prune keeps the board bounded by the in-flight command count.
    while (!s.board.empty() && s.board.front()->stage.load(std::memory_order_acquire) != 0) {
        s.board.pop_front();
    }
    s.board.push_back(job);
}

std::size_t sharded_engine::shard_of(const raw_alert& raw, location_id& interned) {
    location_table& table = topo_->locations();
    // A dangling (garbled) id is preserved for the shard's preprocessor
    // to reject with a reason; routing must not walk the table with it.
    const bool dangling = raw.loc_id != invalid_location_id && raw.loc_id >= table.size();
    location_id region = root_location_id;
    if (dangling) {
        interned = raw.loc_id;
    } else if (raw.loc_id != invalid_location_id) {
        interned = raw.loc_id;
        region = table.region_of(interned);
    } else {
        // Routing only needs the region prefix; the full path interns on
        // the owning shard (prepare is thread-safe), keeping the producer
        // off the deep-path insert stripes.
        interned = invalid_location_id;
        region = table.region_of(table.intern_prefix(raw.loc, depth_of(hierarchy_level::region)));
    }
    if (region == root_location_id && raw.device && topo_ != nullptr &&
        *raw.device < topo_->devices().size()) {
        // Device-attributed alert with an unset location: fall back to
        // the device's home region. Dangling device ids stay in the
        // unattributable bucket instead of crashing the router.
        region = table.region_of(topo_->device_at(*raw.device).loc_id);
    }
    // Unattributable (cross-region / global) alerts share one shard —
    // the root id's bucket — so their relative order is preserved.
    auto it = region_to_shard_.find(region);
    if (it != region_to_shard_.end()) return it->second;
    const std::size_t idx = next_region_shard_++ % shards_.size();
    region_to_shard_.emplace(region, idx);
    return idx;
}

void sharded_engine::append(std::size_t idx, const raw_alert& raw, location_id interned,
                            sim_time now) {
    shard& s = *shards_[idx];
    s.pending.push_back(traced_alert{.alert = raw, .arrival = now});
    s.pending.back().alert.loc_id = interned;
    if (s.pending.size() >= config_.max_ingest_batch) {
        command cmd;
        cmd.what = command::op::ingest;
        cmd.job = std::make_shared<ingest_job>();
        cmd.job->batch = std::move(s.pending);
        cmd.job->seq = next_job_seq_++;
        submit_ingest(s, std::move(cmd));
        s.pending = {};
    }
}

bool sharded_engine::forced_full() const {
    return config_.force_full && config_.force_full();
}

void sharded_engine::note_enqueued(shard& s, std::size_t waits,
                                   const std::shared_ptr<ingest_job>& job) {
    s.full_waits += waits;
    s.max_depth = std::max(s.max_depth, static_cast<std::uint64_t>(s.queue.size()));
    ++s.submitted;
    if (!steal_enabled_) return;
    // Publish only after the command is actually enqueued: the steal
    // board must never hold a batch that could still be shed from the
    // backlog, or a thief would prepare work the owner never applies.
    if (job) publish_stealable(s, job);
    // Version bump for every command (ingest, barrier, stop): idle
    // thieves parked on the signal must recheck their own queue too.
    work_signal_.fetch_add(1, std::memory_order_release);
    work_signal_.notify_all();
}

bool sharded_engine::watchdog_intervene(shard& s) {
    ++stalls_detected_;
    std::uint32_t parked = 1;
    if (s.stall_gate.compare_exchange_strong(parked, 2, std::memory_order_acq_rel)) {
        // Worker parked at the injected stall gate: release it. The
        // stalled command executes untouched, so reports stay
        // bit-identical to an unstalled run.
        s.stall_gate.notify_all();
        ++stalls_recovered_;
        return true;
    }
    // Wedged with no recovery point: write the shard off. The worker
    // drains its remaining queue like a failed shard; the write-off
    // surfaces at the next barrier.
    if (!s.written_off.load(std::memory_order_relaxed) &&
        !s.failed.load(std::memory_order_relaxed)) {
        s.written_off.store(true, std::memory_order_release);
    }
    return false;
}

bool sharded_engine::push_supervised(shard& s, command cmd, std::size_t& waits) {
    if (config_.watchdog_deadline_ms == 0) {
        waits += s.queue.push(std::move(cmd));
        return true;
    }
    // Supervised wait: poll instead of parking so a stalled worker is
    // caught and intervened on rather than hanging the producer forever.
    const auto deadline = std::chrono::milliseconds(config_.watchdog_deadline_ms);
    auto last_progress = std::chrono::steady_clock::now();
    std::uint64_t last_done = s.completed.load(std::memory_order_acquire);
    bool waited = false;
    for (;;) {
        if (s.queue.try_push(cmd)) {
            if (waited) ++waits;
            return true;
        }
        waited = true;
        const bool dead = s.failed.load(std::memory_order_acquire) ||
                          s.written_off.load(std::memory_order_acquire);
        if (dead && cmd.what == command::op::ingest) {
            // Dead shard with a full queue: shed the batch (counted)
            // instead of wedging the producer behind a drain that may
            // itself be stuck. Barrier commands are never shed — the
            // worker drains dead-shard queues, so they go through
            // eventually.
            if (cmd.job) {
                s.dropped_failed.fetch_add(cmd.job->batch.size(), std::memory_order_relaxed);
            }
            return false;
        }
        const std::uint64_t done = s.completed.load(std::memory_order_acquire);
        if (done != last_done) {
            last_done = done;
            last_progress = std::chrono::steady_clock::now();
        } else if (!dead && std::chrono::steady_clock::now() - last_progress >= deadline) {
            watchdog_intervene(s);
            last_progress = std::chrono::steady_clock::now();
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
}

void sharded_engine::drain_backlog(shard& s, bool blocking, bool pressured) {
    while (!s.backlog.empty()) {
        // Capture the job handle first: a successful push moves the
        // command out of the backlog slot.
        std::shared_ptr<ingest_job> job = s.backlog.front().job;
        if (blocking) {
            std::size_t waits = 0;
            const bool pushed = push_supervised(s, std::move(s.backlog.front()), waits);
            if (pushed) note_enqueued(s, waits, job);
            s.backlog.pop_front();
            continue;
        }
        if (pressured || !s.queue.try_push(s.backlog.front())) return;
        note_enqueued(s, 0, job);
        s.backlog.pop_front();
    }
}

void sharded_engine::submit(shard& s, command cmd) {
    // Barrier commands ride behind any backlogged ingest — command order
    // is the correctness contract — and always block; a forced-full
    // window may shed data, never a barrier.
    drain_backlog(s, /*blocking=*/true, /*pressured=*/false);
    std::shared_ptr<ingest_job> job = cmd.job;
    std::size_t waits = 0;
    if (push_supervised(s, std::move(cmd), waits)) note_enqueued(s, waits, job);
}

void sharded_engine::submit_ingest(shard& s, command cmd) {
    const bool pressured = forced_full();
    switch (config_.overflow) {
        case overflow_policy::block:
            // Lossless: a forced-full window registers as backpressure
            // (the real queue cannot be held artificially full without
            // stalling the test clock), a genuinely full queue blocks.
            if (pressured) ++s.full_waits;
            submit(s, std::move(cmd));
            return;
        case overflow_policy::reject: {
            std::shared_ptr<ingest_job> job = cmd.job;
            if (!pressured && s.queue.try_push(cmd)) {
                note_enqueued(s, 0, job);
                return;
            }
            ++s.full_waits;
            s.dropped_overflow += job->batch.size();
            return;
        }
        case overflow_policy::drop_oldest: {
            drain_backlog(s, /*blocking=*/false, pressured);
            std::shared_ptr<ingest_job> job = cmd.job;
            if (s.backlog.empty() && !pressured && s.queue.try_push(cmd)) {
                note_enqueued(s, 0, job);
                return;
            }
            ++s.full_waits;
            s.backlog.push_back(std::move(cmd));
            while (s.backlog.size() > config_.backlog_batches) {
                s.dropped_overflow += s.backlog.front().job->batch.size();
                s.backlog.pop_front();
            }
            return;
        }
    }
}

void sharded_engine::flush_pending() {
    for (auto& s : shards_) {
        if (s->pending.empty()) continue;
        command cmd;
        cmd.what = command::op::ingest;
        cmd.job = std::make_shared<ingest_job>();
        cmd.job->batch = std::move(s->pending);
        cmd.job->seq = next_job_seq_++;
        submit_ingest(*s, std::move(cmd));
        s->pending = {};
    }
}

void sharded_engine::barrier() {
    if (config_.watchdog_deadline_ms == 0) {
        for (auto& s : shards_) {
            std::uint64_t done = s->completed.load(std::memory_order_acquire);
            while (done < s->submitted) {
                s->completed.wait(done, std::memory_order_acquire);
                done = s->completed.load(std::memory_order_acquire);
            }
        }
        return;
    }
    // Supervised barrier: poll each shard's progress; a shard quiet past
    // the deadline is intervened on (stall gate released, or written
    // off). A written-off shard's queue drains worker-side, so the wait
    // still terminates; if the worker is wedged inside a command, stop
    // waiting on it — its failure surfaces after the barrier.
    const auto deadline = std::chrono::milliseconds(config_.watchdog_deadline_ms);
    for (auto& s : shards_) {
        auto last_progress = std::chrono::steady_clock::now();
        std::uint64_t last_done = s->completed.load(std::memory_order_acquire);
        while (last_done < s->submitted) {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            const std::uint64_t done = s->completed.load(std::memory_order_acquire);
            if (done != last_done) {
                last_done = done;
                last_progress = std::chrono::steady_clock::now();
                continue;
            }
            const bool dead = s->failed.load(std::memory_order_acquire) ||
                              s->written_off.load(std::memory_order_acquire);
            if (std::chrono::steady_clock::now() - last_progress < deadline) continue;
            if (dead) break;  // wedged inside a command; don't wait it out
            watchdog_intervene(*s);
            last_progress = std::chrono::steady_clock::now();
        }
    }
}

void sharded_engine::sync() {
    flush_pending();
    // Deliver surviving backlog before any inline engine access: what was
    // shed is gone, what was held must not be.
    for (auto& s : shards_) drain_backlog(*s, /*blocking=*/true, /*pressured=*/false);
    barrier();
}

void sharded_engine::ingest(const raw_alert& raw, sim_time now) {
    location_id lid = invalid_location_id;
    const std::size_t idx = shard_of(raw, lid);
    append(idx, raw, lid, now);
}

void sharded_engine::ingest_batch(std::span<const raw_alert> batch, sim_time now) {
    ++batches_in_;
    for (const raw_alert& raw : batch) {
        location_id lid = invalid_location_id;
        const std::size_t idx = shard_of(raw, lid);
        append(idx, raw, lid, now);
    }
}

void sharded_engine::ingest_batch(std::span<const traced_alert> batch) {
    ++batches_in_;
    for (const traced_alert& t : batch) {
        location_id lid = invalid_location_id;
        const std::size_t idx = shard_of(t.alert, lid);
        append(idx, t.alert, lid, t.arrival);
    }
}

void sharded_engine::tick(sim_time now, const network_state& state) {
    flush_pending();
    for (auto& s : shards_) {
        command cmd;
        cmd.what = command::op::tick;
        cmd.now = now;
        cmd.state = &state;
        submit(*s, std::move(cmd));
    }
    barrier();
    ++ticks_;
    update_barrier_metrics();
    surface_failures();
}

void sharded_engine::finish(sim_time now, const network_state& state) {
    flush_pending();
    for (auto& s : shards_) {
        command cmd;
        cmd.what = command::op::finish;
        cmd.now = now;
        cmd.state = &state;
        submit(*s, std::move(cmd));
    }
    barrier();
    ++ticks_;
    update_barrier_metrics();
    surface_failures();
}

std::size_t sharded_engine::failed_shard_count() const noexcept {
    std::size_t n = 0;
    for (const auto& s : shards_) {
        if (s->failed.load(std::memory_order_acquire) ||
            s->written_off.load(std::memory_order_acquire)) {
            ++n;
        }
    }
    return n;
}

std::vector<std::string> sharded_engine::failed_shard_messages() const {
    std::vector<std::string> out;
    for (const auto& s : shards_) {
        if (s->failed.load(std::memory_order_acquire)) {
            out.push_back("shard " + std::to_string(s->index) + ": " + s->failure);
        } else if (s->written_off.load(std::memory_order_acquire)) {
            out.push_back("shard " + std::to_string(s->index) +
                          ": watchdog: stalled past deadline, written off");
        }
    }
    return out;
}

void sharded_engine::surface_failures() {
    const std::vector<std::string> failures = failed_shard_messages();
    if (failures.empty()) return;
    std::string msg = "sharded_engine: worker failure";
    for (const std::string& f : failures) msg += "; " + f;
    throw skynet_error(msg);
}

sharded_engine::persist_state sharded_engine::export_state() {
    sync();
    persist_state state;
    state.shards.reserve(shards_.size());
    for (auto& s : shards_) state.shards.push_back(s->engine.export_state());
    state.regions.assign(region_to_shard_.begin(), region_to_shard_.end());
    std::sort(state.regions.begin(), state.regions.end());
    state.next_region_shard = next_region_shard_;
    return state;
}

void sharded_engine::import_state(persist_state state) {
    if (state.shards.size() != shards_.size()) {
        throw skynet_error("sharded_engine: snapshot has " + std::to_string(state.shards.size()) +
                           " shards, engine has " + std::to_string(shards_.size()));
    }
    sync();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        shards_[i]->engine.import_state(std::move(state.shards[i]));
    }
    region_to_shard_.clear();
    region_to_shard_.insert(state.regions.begin(), state.regions.end());
    next_region_shard_ = state.next_region_shard;
}

std::vector<incident_report> sharded_engine::take_reports() {
    sync();
    std::vector<incident_report> merged;
    for (auto& s : shards_) {
        std::vector<incident_report> part = s->engine.take_reports();
        merged.insert(merged.end(), std::make_move_iterator(part.begin()),
                      std::make_move_iterator(part.end()));
    }
    std::sort(merged.begin(), merged.end(), report_before);
    return merged;
}

std::vector<incident_report> sharded_engine::open_reports(sim_time now,
                                                          const network_state& state) {
    sync();
    std::vector<incident_report> merged;
    for (auto& s : shards_) {
        std::vector<incident_report> part = s->engine.open_reports(now, state);
        merged.insert(merged.end(), std::make_move_iterator(part.begin()),
                      std::make_move_iterator(part.end()));
    }
    std::sort(merged.begin(), merged.end(), report_before);
    return merged;
}

std::vector<incident_report> sharded_engine::reports(report_scope scope, sim_time now,
                                                     const network_state& state) {
    if (scope == report_scope::finished) return take_reports();
    return open_reports(now, state);
}

preprocessor_stats sharded_engine::preprocessing_stats() {
    sync();
    preprocessor_stats total;
    for (auto& s : shards_) total += s->engine.preprocessing_stats();
    return total;
}

std::int64_t sharded_engine::structured_alert_count() {
    sync();
    std::int64_t total = 0;
    for (auto& s : shards_) total += s->engine.structured_alert_count();
    return total;
}

void sharded_engine::update_barrier_metrics() {
    engine_metrics total;
    std::uint64_t written_off = 0;
    for (auto& s : shards_) {
        // Only touch a shard's engine when its worker is idle (everything
        // submitted has completed); a wedged worker may still be inside
        // the engine. Producer-side counters are always safe.
        if (s->completed.load(std::memory_order_acquire) >= s->submitted) {
            total += s->engine.metrics();
        }
        total.enqueue_full_waits += s->full_waits;
        total.max_queue_depth = std::max(total.max_queue_depth, s->max_depth);
        total.busy_ns += s->busy_ns.load(std::memory_order_relaxed);
        total.degraded.alerts_dropped_overflow += s->dropped_overflow;
        total.degraded.alerts_dropped_failed_shard +=
            s->dropped_failed.load(std::memory_order_relaxed);
        if (s->written_off.load(std::memory_order_acquire)) ++written_off;
    }
    // Per-shard engines each count every fan-out; report engine-level
    // tick and batch counts instead.
    total.ticks = ticks_;
    total.batches_in = batches_in_;
    total.overload.stalls_detected = stalls_detected_;
    total.overload.stalls_recovered = stalls_recovered_;
    total.overload.shards_written_off = written_off;
    steal_metrics st;
    for (auto& s : shards_) {
        st.batches_stolen += s->stolen_batches.load(std::memory_order_relaxed);
        st.alerts_stolen += s->stolen_alerts.load(std::memory_order_relaxed);
        st.steal_attempts += s->steal_attempts.load(std::memory_order_relaxed);
        st.steal_misses += s->steal_misses.load(std::memory_order_relaxed);
        st.owner_waits += s->owner_waits.load(std::memory_order_relaxed);
        st.worker_parks += s->parks.load(std::memory_order_relaxed);
        st.prepare_ns += s->prepare_ns.load(std::memory_order_relaxed);
    }
    if (topo_ != nullptr) {
        const location_table& table = topo_->locations();
        st.intern_lock_contention = table.lock_contention();
        st.intern_entries = table.size();
    }
    total.steal = st;
    barrier_metrics_ = std::move(total);
}

engine_metrics sharded_engine::metrics() {
    sync();
    update_barrier_metrics();
    return barrier_metrics_;
}

std::size_t sharded_engine::live_alert_count() {
    sync();
    std::size_t total = 0;
    for (auto& s : shards_) {
        if (s->completed.load(std::memory_order_acquire) >= s->submitted) {
            total += s->engine.live_alert_count();
        }
    }
    return total;
}

engine_metrics sharded_engine::shard_metrics(std::size_t shard_index) {
    sync();
    const shard& s = *shards_.at(shard_index);
    engine_metrics m = s.engine.metrics();
    m.enqueue_full_waits = s.full_waits;
    m.max_queue_depth = s.max_depth;
    m.busy_ns = s.busy_ns.load(std::memory_order_relaxed);
    m.degraded.alerts_dropped_overflow = s.dropped_overflow;
    m.degraded.alerts_dropped_failed_shard = s.dropped_failed.load(std::memory_order_relaxed);
    return m;
}

}  // namespace skynet
