#include "skynet/core/incident_log.h"

#include <algorithm>
#include <map>

namespace skynet {

void incident_log::append(incident_report report, sim_time closed_at) {
    entries_.push_back(entry{.report = std::move(report),
                             .closed_at = closed_at,
                             .attributed_to_failure = std::nullopt});
}

bool incident_log::label(std::uint64_t incident_id, bool is_failure) {
    bool found = false;
    for (entry& e : entries_) {
        if (e.report.inc.id == incident_id) {
            e.attributed_to_failure = is_failure;
            found = true;
        }
    }
    return found;
}

std::vector<const incident_log::entry*> incident_log::query(const query_filter& filter) const {
    std::vector<const entry*> out;
    const bool use_window = !(filter.window.begin == 0 && filter.window.end == 0);
    for (const entry& e : entries_) {
        if (use_window && !filter.window.overlaps(e.report.inc.when)) continue;
        if (!filter.scope.is_root() && !filter.scope.contains(e.report.inc.root)) continue;
        if (e.report.severity.score < filter.min_score) continue;
        if (filter.only_actionable && !e.report.actionable) continue;
        out.push_back(&e);
    }
    return out;
}

std::vector<incident_log::monthly_stats> incident_log::monthly_rollup(
    sim_duration month_length) const {
    std::map<int, monthly_stats> buckets;
    for (const entry& e : entries_) {
        const int month = static_cast<int>(e.closed_at / std::max<sim_duration>(1, month_length));
        monthly_stats& stats = buckets[month];
        stats.month = month;
        ++stats.total;
        if (e.report.actionable) ++stats.actionable;
        if (e.attributed_to_failure.value_or(false)) ++stats.labeled_failures;
        stats.max_score = std::max(stats.max_score, e.report.severity.score);
    }
    std::vector<monthly_stats> out;
    out.reserve(buckets.size());
    for (const auto& [month, stats] : buckets) out.push_back(stats);
    return out;
}

}  // namespace skynet
