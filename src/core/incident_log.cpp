#include "skynet/core/incident_log.h"

#include <algorithm>
#include <map>

namespace skynet {

bool incident_log::entry_keeps_invariant(const entry& e, const entry* prev) noexcept {
    if (prev != nullptr && e.closed_at < prev->closed_at) return false;
    return e.closed_at >= e.report.inc.when.end;
}

void incident_log::append(incident_report report, sim_time closed_at) {
    entries_.push_back(entry{.report = std::move(report),
                             .closed_at = closed_at,
                             .attributed_to_failure = std::nullopt});
    if (!entry_keeps_invariant(entries_.back(),
                               entries_.size() > 1 ? &entries_[entries_.size() - 2] : nullptr)) {
        fast_query_ = false;
        ++out_of_order_;
    }
}

void incident_log::restore(std::vector<entry> entries) {
    entries_ = std::move(entries);
    fast_query_ = true;
    out_of_order_ = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (!entry_keeps_invariant(entries_[i], i > 0 ? &entries_[i - 1] : nullptr)) {
            fast_query_ = false;
            ++out_of_order_;
        }
    }
}

std::size_t incident_log::first_closed_at_or_after(sim_time t) const noexcept {
    if (!fast_query_) return 0;
    const auto it = std::partition_point(entries_.begin(), entries_.end(),
                                         [&](const entry& e) { return e.closed_at < t; });
    return static_cast<std::size_t>(it - entries_.begin());
}

bool incident_log::label(std::uint64_t incident_id, bool is_failure) {
    bool found = false;
    for (entry& e : entries_) {
        if (e.report.inc.id == incident_id) {
            e.attributed_to_failure = is_failure;
            found = true;
        }
    }
    return found;
}

std::vector<const incident_log::entry*> incident_log::query(const query_filter& filter) const {
    std::vector<const entry*> out;
    const bool use_window = !(filter.window.begin == 0 && filter.window.end == 0);
    auto first = entries_.begin();
    if (use_window && fast_query_) {
        // Entries closed before the window opened ended at/before their
        // close time, so they cannot overlap [begin, end].
        first = entries_.begin() +
                static_cast<std::ptrdiff_t>(first_closed_at_or_after(filter.window.begin));
    }
    for (auto it = first; it != entries_.end(); ++it) {
        const entry& e = *it;
        if (use_window && !filter.window.overlaps(e.report.inc.when)) continue;
        if (!filter.scope.is_root() && !filter.scope.contains(e.report.inc.root)) continue;
        if (e.report.severity.score < filter.min_score) continue;
        if (filter.only_actionable && !e.report.actionable) continue;
        out.push_back(&e);
    }
    return out;
}

std::vector<incident_log::monthly_stats> incident_log::monthly_rollup(
    sim_duration month_length) const {
    std::map<int, monthly_stats> buckets;
    for (const entry& e : entries_) {
        const int month = static_cast<int>(e.closed_at / std::max<sim_duration>(1, month_length));
        monthly_stats& stats = buckets[month];
        stats.month = month;
        ++stats.total;
        if (e.report.actionable) ++stats.actionable;
        if (e.attributed_to_failure.value_or(false)) ++stats.labeled_failures;
        stats.max_score = std::max(stats.max_score, e.report.severity.score);
    }
    std::vector<monthly_stats> out;
    out.reserve(buckets.size());
    for (const auto& [month, stats] : buckets) out.push_back(stats);
    return out;
}

}  // namespace skynet
