#include "skynet/core/threshold_tuner.h"

#include "skynet/common/error.h"

namespace skynet {

tuning_episode make_tuning_episode(const topology& topo, const alert_type_registry& registry,
                                   const syslog_classifier& syslog,
                                   std::span<const traced_alert> trace,
                                   std::vector<scenario_record> truth, sim_time end,
                                   const preprocessor_config& pre_config) {
    tuning_episode episode;
    episode.truth = std::move(truth);

    preprocessor pre(&topo, &registry, &syslog, pre_config);
    sim_time last_arrival = 0;
    sim_time last_flush = 0;
    auto take = [&episode](std::vector<preprocess_event> events, sim_time at) {
        for (preprocess_event& ev : events) {
            if (!ev.is_update) episode.alerts.emplace_back(std::move(ev.alert), at);
        }
    };
    for (const traced_alert& t : trace) {
        take(pre.process(t.alert, t.arrival), t.arrival);
        last_arrival = t.arrival;
        if (t.arrival - last_flush >= seconds(2)) {
            take(pre.flush(t.arrival), t.arrival);
            last_flush = t.arrival;
        }
    }
    take(pre.flush(last_arrival + seconds(2)), last_arrival + seconds(2));

    episode.end = end > 0 ? end : last_arrival + minutes(20);
    return episode;
}

std::vector<incident_thresholds> default_threshold_grid() {
    auto t = [](int a, int b, int c, int d) {
        return incident_thresholds{.pure_failure = a, .combo_failure = b, .combo_other = c,
                                   .any = d};
    };
    return {
        t(0, 1, 2, 5), t(2, 0, 0, 5), t(2, 1, 2, 0), t(1, 1, 2, 5), t(2, 1, 2, 4),
        t(2, 1, 1, 5), t(2, 1, 2, 5), t(2, 1, 3, 5), t(2, 1, 2, 6), t(3, 2, 2, 6),
    };
}

namespace {

/// Strictness: larger thresholds spawn fewer incidents. Used only for
/// tie-breaking among equal-accuracy candidates.
int strictness(const incident_thresholds& t) {
    auto clause = [](int v) { return v == 0 ? 100 : v; };  // disabled = strictest
    return clause(t.pure_failure) + clause(t.combo_failure) + clause(t.combo_other) +
           clause(t.any);
}

accuracy_counts replay(const topology& topo, const tuning_episode& episode,
                       const locator_config& cfg) {
    locator loc(&topo, cfg);
    sim_time last_check = 0;
    sim_time last_arrival = 0;
    std::vector<incident> incidents;
    for (const auto& [alert, arrival] : episode.alerts) {
        loc.insert(alert, arrival);
        last_arrival = arrival;
        if (arrival - last_check >= seconds(10)) {
            for (incident& inc : loc.check(arrival)) incidents.push_back(std::move(inc));
            last_check = arrival;
        }
    }
    // One check while the alerts are still fresh (short episodes may
    // never hit the periodic cadence), then run out the clock.
    for (incident& inc : loc.check(last_arrival + seconds(2))) incidents.push_back(std::move(inc));
    for (incident& inc : loc.check(episode.end)) incidents.push_back(std::move(inc));
    for (incident& inc : loc.drain(episode.end)) incidents.push_back(std::move(inc));
    return score_incidents(incidents, episode.truth);
}

}  // namespace

tuning_result tune_thresholds(const topology& topo, std::span<const tuning_episode> episodes,
                              std::span<const incident_thresholds> candidates,
                              const locator_config& base) {
    if (candidates.empty()) throw skynet_error("tune_thresholds: no candidates");

    tuning_result result;
    for (const incident_thresholds& candidate : candidates) {
        locator_config cfg = base;
        cfg.thresholds = candidate;
        accuracy_counts total;
        for (const tuning_episode& episode : episodes) {
            total += replay(topo, episode, cfg);
        }
        result.all.push_back(
            threshold_candidate_result{.thresholds = candidate, .accuracy = total});
    }

    // Selection: FN first (must be minimal, ideally zero), then FP, then
    // strictness.
    const threshold_candidate_result* best = &result.all.front();
    for (const threshold_candidate_result& c : result.all) {
        const auto key = [](const threshold_candidate_result& r) {
            return std::tuple(r.accuracy.false_negatives, r.accuracy.false_positives,
                              -strictness(r.thresholds));
        };
        if (key(c) < key(*best)) best = &c;
    }
    result.best = best->thresholds;
    result.best_accuracy = best->accuracy;
    return result;
}

}  // namespace skynet
