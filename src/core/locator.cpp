#include "skynet/core/locator.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "skynet/alert/type_registry.h"
#include "skynet/common/error.h"

namespace skynet {

std::string incident_thresholds::to_string() const {
    return std::to_string(pure_failure) + "/" + std::to_string(combo_failure) + "+" +
           std::to_string(combo_other) + "/" + std::to_string(any);
}

int incident::type_count(alert_category category) const {
    std::unordered_set<alert_type_id> types;
    for (const structured_alert& a : alerts) {
        if (a.category == category) types.insert(a.type);
    }
    return static_cast<int>(types.size());
}

int incident::total_type_count() const {
    std::unordered_set<alert_type_id> types;
    for (const structured_alert& a : alerts) types.insert(a.type);
    return static_cast<int>(types.size());
}

double incident::avg_failure_loss() const {
    double sum = 0.0;
    int n = 0;
    for (const structured_alert& a : alerts) {
        if (a.category != alert_category::failure) continue;
        if (a.metric <= 0.0 || a.metric > 1.0) continue;  // latency metrics excluded
        sum += a.metric;
        ++n;
    }
    return n == 0 ? 0.0 : sum / n;
}

std::string incident::render() const {
    std::string out = "Incident " + std::to_string(id) + ":\n[" + root.to_string() + "][" +
                      format_time(when.begin) + " - " + format_time(when.end) + "]\n";
    static constexpr alert_category order[] = {alert_category::failure, alert_category::abnormal,
                                               alert_category::root_cause};
    for (alert_category cat : order) {
        // type -> (source label, occurrence count)
        std::map<std::string, std::pair<std::string, int>> by_type;
        for (const structured_alert& a : alerts) {
            if (a.category != cat) continue;
            auto& entry = by_type[a.type_name];
            entry.first = std::string(to_string(a.source));
            entry.second += a.count;
        }
        if (by_type.empty()) continue;
        out += "\n";
        out += (cat == alert_category::failure     ? "Failure alerts\n"
                : cat == alert_category::abnormal ? "Abnormal alerts\n"
                                                  : "Root cause alerts\n");
        for (const auto& [type_name, entry] : by_type) {
            out += "  " + entry.first + " |- " + type_name + " (" +
                   std::to_string(entry.second) + ")\n";
        }
    }
    return out;
}

locator::locator(const topology* topo, locator_config config)
    : topo_(topo), config_(config) {
    if (topo_ == nullptr) throw skynet_error("locator: null topology");
}

locator::persist_state locator::export_state() const {
    const location_table& table = topo_->locations();
    persist_state out;
    out.next_incident_id = next_incident_id_;
    out.nodes.reserve(nodes_.size());
    for (const auto& [loc, node] : nodes_) {
        out.nodes.push_back(persist_state::node_state{
            .loc = loc, .last_update = node.last_update, .alerts = node.alerts});
    }
    // Path order (not id order): canonical across id-assignment races.
    std::sort(out.nodes.begin(), out.nodes.end(),
              [&table](const auto& a, const auto& b) {
                  return table.path_of(a.loc) < table.path_of(b.loc);
              });
    out.incidents.reserve(incident_states_.size());
    for (const incident_state& st : incident_states_) {
        persist_state::incident_entry e;
        e.inc = st.inc;
        e.root_id = st.root_id;
        e.update_time = st.update_time;
        e.nodes.reserve(st.nodes.size());
        for (const auto& [loc, alerts] : st.nodes) {
            e.nodes.push_back(
                persist_state::node_state{.loc = loc, .last_update = 0, .alerts = alerts});
        }
        std::sort(e.nodes.begin(), e.nodes.end(),
                  [&table](const auto& a, const auto& b) {
                      return table.path_of(a.loc) < table.path_of(b.loc);
                  });
        out.incidents.push_back(std::move(e));
    }
    return out;
}

void locator::import_state(persist_state state) {
    const location_table& table = topo_->locations();
    nodes_.clear();
    incident_states_.clear();
    next_incident_id_ = state.next_incident_id;
    for (persist_state::node_state& n : state.nodes) {
        tree_node node;
        node.loc = n.loc;
        node.path = &table.path_of(n.loc);
        node.alerts = std::move(n.alerts);
        node.last_update = n.last_update;
        nodes_.emplace(n.loc, std::move(node));
    }
    incident_states_.reserve(state.incidents.size());
    for (persist_state::incident_entry& e : state.incidents) {
        incident_state st;
        st.inc = std::move(e.inc);
        st.root_id = e.root_id;
        st.update_time = e.update_time;
        for (persist_state::node_state& n : e.nodes) {
            st.nodes.emplace(n.loc, std::move(n.alerts));
        }
        incident_states_.push_back(std::move(st));
    }
}

location_id locator::ensure_id(const structured_alert& alert) const {
    if (alert.loc_id != invalid_location_id) return alert.loc_id;
    return topo_->locations().intern(alert.loc);
}

void locator::add_to_main(const structured_alert& alert, sim_time now) {
    auto [it, inserted] = nodes_.try_emplace(alert.loc_id);
    tree_node& node = it->second;
    if (inserted) {
        node.loc = alert.loc_id;
        node.path = &topo_->locations().path_of(alert.loc_id);
    }
    node.alerts.push_back(stored_alert{.alert = alert, .inserted = now});
    node.last_update = now;
    // Bounded-memory degradation: a node at its cap sheds its oldest
    // stored alert (insertion order == arrival order, so front-first).
    while (config_.max_node_alerts != 0 && node.alerts.size() > config_.max_node_alerts) {
        node.alerts.erase(node.alerts.begin());
        ++evicted_node_alerts_;
    }
}

void locator::insert(const structured_alert& alert, sim_time now) {
    structured_alert a = alert;
    a.loc_id = ensure_id(alert);
    const location_table& table = topo_->locations();
    // Algorithm 1: route into matching incident trees first.
    for (incident_state& st : incident_states_) {
        if (st.inc.closed) continue;
        if (auto it = st.nodes.find(a.loc_id); it != st.nodes.end()) {
            it->second.push_back(stored_alert{.alert = a, .inserted = now});
            st.inc.alerts.push_back(a);
            st.inc.when.extend(a.when.end);
            st.update_time = now;
        } else if (table.contains(st.root_id, a.loc_id)) {
            st.nodes[a.loc_id].push_back(stored_alert{.alert = a, .inserted = now});
            st.inc.alerts.push_back(a);
            st.inc.when.extend(a.when.end);
            st.update_time = now;
        }
    }
    // ... and always into the main tree.
    add_to_main(a, now);
}

void locator::refresh(const structured_alert& alert, sim_time now) {
    structured_alert a = alert;
    a.loc_id = ensure_id(alert);
    const location_table& table = topo_->locations();
    // Consolidation update: same (type, location) alert recurred; extend
    // the stored alert and keep the node alive.
    if (auto it = nodes_.find(a.loc_id); it != nodes_.end()) {
        it->second.last_update = now;
        for (stored_alert& s : it->second.alerts) {
            if (s.alert.type == a.type) {
                s.alert.when = a.when;
                s.alert.count = a.count;
                s.alert.metric = a.metric;
            }
        }
    } else {
        // Node expired between the original emission and this update:
        // treat as a fresh insertion.
        add_to_main(a, now);
    }
    for (incident_state& st : incident_states_) {
        if (st.inc.closed || !table.contains(st.root_id, a.loc_id)) continue;
        st.update_time = now;
        st.inc.when.extend(a.when.end);
        auto it = st.nodes.find(a.loc_id);
        if (it == st.nodes.end()) continue;
        for (stored_alert& s : it->second) {
            if (s.alert.type == a.type) {
                s.alert.when = a.when;
                s.alert.count = a.count;
                s.alert.metric = a.metric;
            }
        }
        for (structured_alert& stored : st.inc.alerts) {
            if (stored.type == a.type && stored.loc_id == a.loc_id) {
                stored.when = a.when;
                stored.count = a.count;
                stored.metric = a.metric;
            }
        }
    }
}

std::pair<int, int> locator::count_types(const std::vector<const tree_node*>& group) const {
    std::unordered_set<std::uint64_t> failure_keys;
    std::unordered_set<std::uint64_t> all_keys;
    for (const tree_node* node : group) {
        for (const stored_alert& s : node->alerts) {
            // (type, interned location) packed into one u64; the location
            // half is zero in count_by_type mode so a type counts once.
            std::uint64_t key = static_cast<std::uint64_t>(s.alert.type) << 32;
            if (!config_.count_by_type) key |= static_cast<std::uint64_t>(s.alert.loc_id);
            all_keys.insert(key);
            if (s.alert.category == alert_category::failure) failure_keys.insert(key);
        }
    }
    return {static_cast<int>(failure_keys.size()), static_cast<int>(all_keys.size())};
}

std::vector<std::vector<const locator::tree_node*>> locator::connectivity_groups(
    std::vector<const tree_node*> members) const {
    const std::size_t n = members.size();
    std::vector<std::size_t> parent(n);
    for (std::size_t i = 0; i < n; ++i) parent[i] = i;
    auto find = [&parent](std::size_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    auto unite = [&](std::size_t a, std::size_t b) { parent[find(a)] = find(b); };

    const location_table& table = topo_->locations();

    // Resolve device ids for device-level nodes.
    std::vector<std::optional<device_id>> dev(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (const stored_alert& s : members[i]->alerts) {
            if (s.alert.device) {
                dev[i] = s.alert.device;
                break;
            }
        }
        if (!dev[i] && table.level_of(members[i]->loc) == hierarchy_level::device) {
            dev[i] = topo_->find_device(table.segment_of(members[i]->loc));
        }
    }

    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const location_id li = members[i]->loc;
            const location_id lj = members[j]->loc;
            // Aggregate glue: containment joins.
            if (table.contains(li, lj) || table.contains(lj, li)) {
                unite(i, j);
                continue;
            }
            if (dev[i] && dev[j]) {
                const location_id ci =
                    table.ancestor_at(topo_->device_at(*dev[i]).loc_id, hierarchy_level::cluster);
                const location_id cj =
                    table.ancestor_at(topo_->device_at(*dev[j]).loc_id, hierarchy_level::cluster);
                const bool same_cluster =
                    table.depth(ci) == depth_of(hierarchy_level::cluster) && ci == cj;
                if (same_cluster || topo_->adjacent(*dev[i], *dev[j])) unite(i, j);
            }
        }
    }

    std::unordered_map<std::size_t, std::vector<const tree_node*>> by_root;
    for (std::size_t i = 0; i < n; ++i) by_root[find(i)].push_back(members[i]);
    std::vector<std::vector<const tree_node*>> out;
    out.reserve(by_root.size());
    for (auto& [root, group] : by_root) out.push_back(std::move(group));
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
        return *a.front()->path < *b.front()->path;
    });
    return out;
}

namespace {

/// FNV-1a over the incident root path and spawn time: a stable id that
/// two locators (e.g. different shards, or a sequential engine on the
/// same trace) agree on without sharing a counter.
std::uint64_t stable_incident_id(const location& root, sim_time now) {
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](const char* data, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) {
            h ^= static_cast<unsigned char>(data[i]);
            h *= 1099511628211ull;
        }
    };
    for (const std::string& seg : root.segments()) {
        mix(seg.data(), seg.size());
        mix("|", 1);
    }
    mix(reinterpret_cast<const char*>(&now), sizeof now);
    return h == 0 ? 1 : h;
}

}  // namespace

void locator::spawn_incident(const std::vector<const tree_node*>& group, sim_time now) {
    const location_table& table = topo_->locations();
    location_id root = group.front()->loc;
    for (const tree_node* node : group) root = table.common_ancestor(root, node->loc);

    // Algorithm 2 lines 2-3: the root already has an incident tree — or
    // sits inside one, whose tree is already absorbing these alerts
    // (nested incident trees would double-report).
    for (const incident_state& st : incident_states_) {
        if (!st.inc.closed && table.contains(st.root_id, root)) return;
    }

    incident_state st;
    st.inc.id = config_.deterministic_ids ? stable_incident_id(table.path_of(root), now)
                                          : next_incident_id_++;
    st.inc.root = table.path_of(root);
    st.inc.root_id = root;
    st.root_id = root;
    st.update_time = now;

    // Replicate the subtree beneath the root from the main tree, in path
    // order so the incident's alert list (and the fp accumulations
    // downstream of it) is independent of hash-map layout.
    std::vector<const tree_node*> subtree;
    for (const auto& [loc, node] : nodes_) {
        if (table.contains(root, loc)) subtree.push_back(&node);
    }
    std::sort(subtree.begin(), subtree.end(),
              [](const tree_node* a, const tree_node* b) { return *a->path < *b->path; });
    sim_time begin = now;
    sim_time end = 0;
    std::size_t total_alerts = 0;
    for (const tree_node* node : subtree) total_alerts += node->alerts.size();
    st.inc.alerts.reserve(total_alerts);
    for (const tree_node* node : subtree) {
        st.nodes.emplace(node->loc, node->alerts);
        for (const stored_alert& s : node->alerts) {
            st.inc.alerts.push_back(s.alert);
            begin = std::min(begin, s.alert.when.begin);
            end = std::max(end, s.alert.when.end);
        }
    }
    st.inc.when = time_range{begin, std::max(begin, end)};

    // Algorithm 2 lines 7-9: absorb incidents rooted inside the subtree.
    std::erase_if(incident_states_, [&root, &table](const incident_state& old) {
        return !old.inc.closed && table.contains(root, old.root_id) && old.root_id != root;
    });

    incident_states_.push_back(std::move(st));

    // Bounded-memory degradation: too many concurrent incident trees —
    // force-close the oldest (spawn order), to be surfaced by check().
    while (config_.max_open_incidents != 0 &&
           incident_states_.size() > config_.max_open_incidents) {
        incident_state& victim = incident_states_.front();
        victim.inc.closed = true;
        force_closed_.push_back(std::move(victim.inc));
        incident_states_.erase(incident_states_.begin());
        ++evicted_incidents_;
    }
}

std::vector<incident> locator::check(sim_time now) {
    // Algorithm 3, main tree: drop nodes idle past the node timeout. A
    // node is expired exactly AT the deadline (>=): "idle for the
    // timeout" includes the barrier that completes it, so a 5-minute
    // timeout means 5 minutes, not 5 minutes plus one tick.
    for (auto it = nodes_.begin(); it != nodes_.end();) {
        if (now >= it->second.last_update + config_.node_timeout) {
            it = nodes_.erase(it);
        } else {
            ++it;
        }
    }

    // Algorithm 2: group alert-bearing nodes, check thresholds, spawn.
    // Path-sorted so grouping and spawn order are independent of the
    // node map's hash layout.
    std::vector<const tree_node*> members;
    members.reserve(nodes_.size());
    for (const auto& [loc, node] : nodes_) {
        if (!node.alerts.empty()) members.push_back(&node);
    }
    std::sort(members.begin(), members.end(),
              [](const tree_node* a, const tree_node* b) { return *a->path < *b->path; });
    std::vector<std::vector<const tree_node*>> groups;
    if (config_.use_connectivity) {
        groups = connectivity_groups(std::move(members));
    } else if (!members.empty()) {
        groups.push_back(std::move(members));
    }
    for (const auto& group : groups) {
        const auto [failure_types, total_types] = count_types(group);
        if (config_.thresholds.met(failure_types, total_types)) {
            spawn_incident(group, now);
        }
    }

    // Algorithm 3, incident trees: close idle incidents. The state is
    // erased right after, so the incident (with its alert vector) is
    // moved out instead of deep-copied; the closed flag survives the
    // move (trivially copied), keeping the erase predicate valid.
    std::vector<incident> closed;
    // Cap-evicted incidents close first (they were forced out before the
    // idle scan), then the idle ones in spawn order.
    closed = std::move(force_closed_);
    force_closed_.clear();
    for (incident_state& st : incident_states_) {
        if (st.inc.closed) continue;
        // Same exact-at-deadline semantics as the node timeout above.
        if (now >= st.update_time + config_.incident_timeout) {
            st.inc.closed = true;
            closed.push_back(std::move(st.inc));
        }
    }
    std::erase_if(incident_states_, [](const incident_state& st) { return st.inc.closed; });
    return closed;
}

std::vector<incident> locator::drain(sim_time now) {
    std::vector<incident> closed = std::move(force_closed_);
    force_closed_.clear();
    closed.reserve(closed.size() + incident_states_.size());
    for (incident_state& st : incident_states_) {
        st.inc.closed = true;
        closed.push_back(std::move(st.inc));
    }
    incident_states_.clear();
    (void)now;
    return closed;
}

std::vector<incident> locator::open_incidents() const {
    std::vector<incident> out;
    out.reserve(incident_states_.size());
    for (const incident_state& st : incident_states_) out.push_back(st.inc);
    return out;
}

std::vector<const incident*> locator::open_incident_view() const {
    std::vector<const incident*> out;
    out.reserve(incident_states_.size());
    for (const incident_state& st : incident_states_) out.push_back(&st.inc);
    return out;
}

std::size_t locator::stored_alert_count() const noexcept {
    std::size_t count = 0;
    for (const auto& [loc, node] : nodes_) count += node.alerts.size();
    for (const incident_state& st : incident_states_) count += st.inc.alerts.size();
    return count;
}

}  // namespace skynet
