#include "skynet/core/accuracy.h"

namespace skynet {

bool incident_matches(const incident& inc, const scenario_record& truth, sim_duration slack) {
    const time_range window{truth.active.begin - slack, truth.active.end + slack};
    if (!window.overlaps(inc.when)) return false;
    for (const location& scope : truth.scopes) {
        if (inc.root.contains(scope) || scope.contains(inc.root)) return true;
    }
    return false;
}

accuracy_counts score_incidents(std::span<const incident> incidents,
                                std::span<const scenario_record> truth, sim_duration slack) {
    accuracy_counts counts;
    for (const scenario_record& record : truth) {
        if (record.benign || !record.must_detect) continue;
        bool covered = false;
        for (const incident& inc : incidents) {
            if (incident_matches(inc, record, slack)) covered = true;
        }
        if (covered) {
            ++counts.true_positives;
        } else {
            ++counts.false_negatives;
        }
    }
    for (const incident& inc : incidents) {
        bool real = false;
        for (const scenario_record& record : truth) {
            if (!record.benign && incident_matches(inc, record, slack)) real = true;
        }
        if (!real) ++counts.false_positives;
    }
    return counts;
}

}  // namespace skynet
