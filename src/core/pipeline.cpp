#include "skynet/core/pipeline.h"

#include <algorithm>
#include <cstdio>

namespace skynet {

error skynet_config::validate() const {
    if (pre.dedup_window < 0) return error("preprocessor: negative dedup_window");
    if (pre.persistence_window < 0) return error("preprocessor: negative persistence_window");
    if (pre.correlation_window < 0) return error("preprocessor: negative correlation_window");
    if (pre.persistence_threshold < 0) {
        return error("preprocessor: negative persistence_threshold");
    }
    if (const char* msg = pre.sketch.check()) {
        return error(std::string("preprocessor: ") + msg);
    }
    if (loc.node_timeout <= 0) return error("locator: node_timeout must be positive");
    if (loc.incident_timeout <= 0) return error("locator: incident_timeout must be positive");
    const incident_thresholds& t = loc.thresholds;
    if (t.pure_failure < 0 || t.combo_failure < 0 || t.combo_other < 0 || t.any < 0) {
        return error("locator: negative incident threshold");
    }
    if (t.pure_failure == 0 && t.any == 0 && (t.combo_failure == 0 || t.combo_other == 0)) {
        return error("locator: all-zero incident thresholds can never fire");
    }
    if (eval.severity_threshold < 0) return error("evaluator: negative severity_threshold");
    if (eval.score_cap <= 0) return error("evaluator: score_cap must be positive");
    if (eval.min_rate <= 0 || eval.max_rate >= 1.0 || eval.min_rate >= eval.max_rate) {
        return error("evaluator: rate bounds must satisfy 0 < min_rate < max_rate < 1");
    }
    return error{};
}

std::string incident_report::render() const {
    std::string out = inc.render();
    char buf[128];
    std::snprintf(buf, sizeof buf, "Risk score: %.1f%s\n", severity.score,
                  actionable ? "" : " (below threshold, filtered)");
    out += buf;
    if (zoomed) {
        out += "Zoomed location: " + zoomed->to_string() + "\n";
    }
    return out;
}

skynet_engine::skynet_engine(deps d, skynet_config config)
    : pre_(d.topo, d.registry, d.syslog, config.pre),
      locator_(d.topo, config.loc),
      evaluator_(d.topo, d.customers, config.eval) {
    if (error e = config.validate()) throw skynet_error("skynet_engine: " + e.message());
}

skynet_engine::skynet_engine(const topology* topo, const customer_registry* customers,
                             const alert_type_registry* registry, const syslog_classifier* syslog,
                             skynet_config config)
    : skynet_engine(
          deps{.topo = topo, .customers = customers, .registry = registry, .syslog = syslog},
          std::move(config)) {}

skynet_engine::persist_state skynet_engine::export_state() const {
    persist_state state;
    state.pre = pre_.export_state();
    state.loc = locator_.export_state();
    state.structured_count = structured_count_;
    state.live_scores.assign(live_scores_.begin(), live_scores_.end());
    std::sort(state.live_scores.begin(), state.live_scores.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    state.finished = finished_;
    return state;
}

void skynet_engine::import_state(persist_state state) {
    pre_.import_state(std::move(state.pre));
    locator_.import_state(std::move(state.loc));
    structured_count_ = state.structured_count;
    live_scores_.clear();
    live_scores_.insert(state.live_scores.begin(), state.live_scores.end());
    finished_ = std::move(state.finished);
}

void skynet_engine::ingest(const raw_alert& raw, sim_time now) {
    ++metrics_.alerts_in;
    stage_timer pre(metrics_.preprocess);
    std::vector<preprocess_event> events = pre_.process(raw, now);
    pre.stop(1);
    // Snapshot (not increment): the preprocessor owns the running counts.
    metrics_.degraded.alerts_rejected =
        static_cast<std::uint64_t>(pre_.stats().rejected_malformed);
    metrics_.degraded.skew_clamped = static_cast<std::uint64_t>(pre_.stats().skew_clamped);
    sync_overload_counters();

    stage_timer locate(metrics_.locate);
    for (preprocess_event& ev : events) {
        ++structured_count_;
        if (ev.is_update) {
            locator_.refresh(ev.alert, now);
        } else {
            locator_.insert(ev.alert, now);
        }
    }
    locate.stop(events.size());
}

void skynet_engine::ingest_batch(std::span<const raw_alert> batch, sim_time now) {
    ++metrics_.batches_in;
    for (const raw_alert& raw : batch) ingest(raw, now);
}

void skynet_engine::ingest_batch(std::span<const traced_alert> batch) {
    ++metrics_.batches_in;
    for (const traced_alert& t : batch) ingest(t.alert, t.arrival);
}

prepared_batch skynet_engine::prepare_batch(std::span<const traced_alert> batch) const {
    prepared_batch out;
    out.alerts.reserve(batch.size());
    for (const traced_alert& t : batch) out.alerts.push_back(pre_.prepare(t.alert, t.arrival));
    return out;
}

void skynet_engine::ingest_batch_prepared(std::span<const traced_alert> batch,
                                          prepared_batch&& prep) {
    if (prep.alerts.size() != batch.size())
        throw skynet_error("ingest_batch_prepared: misaligned prepared batch");
    ++metrics_.batches_in;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        ingest_one_prepared(batch[i].alert, batch[i].arrival, std::move(prep.alerts[i]));
    }
}

void skynet_engine::ingest_one_prepared(const raw_alert& raw, sim_time now,
                                        prepared_alert&& prep) {
    ++metrics_.alerts_in;
    stage_timer pre(metrics_.preprocess);
    std::vector<preprocess_event> events = pre_.apply_prepared(raw, now, std::move(prep));
    pre.stop(1);
    // Snapshot (not increment): the preprocessor owns the running counts.
    metrics_.degraded.alerts_rejected =
        static_cast<std::uint64_t>(pre_.stats().rejected_malformed);
    metrics_.degraded.skew_clamped = static_cast<std::uint64_t>(pre_.stats().skew_clamped);
    sync_overload_counters();

    stage_timer locate(metrics_.locate);
    for (preprocess_event& ev : events) {
        ++structured_count_;
        if (ev.is_update) {
            locator_.refresh(ev.alert, now);
        } else {
            locator_.insert(ev.alert, now);
        }
    }
    locate.stop(events.size());
}

void skynet_engine::tick(sim_time now, const network_state& state) {
    ++metrics_.ticks;
    stage_timer pre(metrics_.preprocess);
    std::vector<preprocess_event> events = pre_.flush(now);
    pre.stop(events.size());

    stage_timer locate(metrics_.locate);
    for (preprocess_event& ev : events) {
        ++structured_count_;
        if (ev.is_update) {
            locator_.refresh(ev.alert, now);
        } else {
            locator_.insert(ev.alert, now);
        }
    }
    std::vector<incident> closed = locator_.check(now);
    locate.stop(events.size());
    sync_overload_counters();

    stage_timer eval(metrics_.evaluate);
    std::uint64_t evaluated = 0;
    for (incident& done : closed) {
        finished_.push_back(finalize(done, now, state));
        ++metrics_.reports_emitted;
        ++evaluated;
    }

    // Live severity: keep the peak score seen while open.
    for (const incident* open : locator_.open_incident_view()) {
        const severity_breakdown s = evaluator_.evaluate(*open, state, now);
        auto [it, inserted] = live_scores_.try_emplace(open->id, s);
        if (!inserted && s.score > it->second.score) it->second = s;
        ++evaluated;
    }
    eval.stop(evaluated);
}

void skynet_engine::finish(sim_time now, const network_state& state) {
    tick(now, state);
    stage_timer eval(metrics_.evaluate);
    std::uint64_t evaluated = 0;
    for (incident& closed : locator_.drain(now)) {
        finished_.push_back(finalize(closed, now, state));
        ++metrics_.reports_emitted;
        ++evaluated;
    }
    eval.stop(evaluated);
}

void skynet_engine::sync_overload_counters() noexcept {
    // Snapshot (not increment): the cap owners keep the running counts.
    metrics_.overload.evicted_pending = pre_.evicted_pending();
    metrics_.overload.evicted_node_alerts = locator_.evicted_node_alerts();
    metrics_.overload.evicted_incidents = locator_.evicted_incidents();
    metrics_.degraded.sketched = pre_.sketched_counts();
}

incident_report skynet_engine::finalize(const incident& inc, sim_time now,
                                        const network_state& state) {
    incident_report report;
    report.inc = inc;
    report.severity = evaluator_.evaluate(inc, state, now);
    if (const auto it = live_scores_.find(inc.id); it != live_scores_.end()) {
        if (it->second.score > report.severity.score) report.severity = it->second;
        live_scores_.erase(it);
    }
    report.zoomed = evaluator_.zoom_in(inc);
    report.actionable = evaluator_.passes_filter(report.severity);
    return report;
}

std::vector<incident_report> skynet_engine::ranked_finished() {
    std::vector<incident_report> out = std::move(finished_);
    finished_.clear();
    std::sort(out.begin(), out.end(), report_before);
    return out;
}

std::vector<incident_report> skynet_engine::reports(report_scope scope, sim_time now,
                                                    const network_state& state) {
    if (scope == report_scope::finished) return ranked_finished();
    return open_reports(now, state);
}

std::vector<incident_report> skynet_engine::take_reports() { return ranked_finished(); }

std::vector<incident_report> skynet_engine::open_reports(sim_time now,
                                                         const network_state& state) const {
    std::vector<incident_report> out;
    const std::vector<const incident*> open_view = locator_.open_incident_view();
    out.reserve(open_view.size());
    for (const incident* open : open_view) {
        incident_report report;
        report.inc = *open;
        report.severity = evaluator_.evaluate(*open, state, now);
        if (const auto it = live_scores_.find(open->id); it != live_scores_.end()) {
            if (it->second.score > report.severity.score) report.severity = it->second;
        }
        report.zoomed = evaluator_.zoom_in(*open);
        report.actionable = evaluator_.passes_filter(report.severity);
        out.push_back(std::move(report));
    }
    // Ranked view: most severe first (the paper's incident ranking).
    std::sort(out.begin(), out.end(), report_before);
    return out;
}

}  // namespace skynet
