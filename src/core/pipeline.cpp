#include "skynet/core/pipeline.h"

#include <algorithm>
#include <cstdio>

namespace skynet {

std::string incident_report::render() const {
    std::string out = inc.render();
    char buf[128];
    std::snprintf(buf, sizeof buf, "Risk score: %.1f%s\n", severity.score,
                  actionable ? "" : " (below threshold, filtered)");
    out += buf;
    if (zoomed) {
        out += "Zoomed location: " + zoomed->to_string() + "\n";
    }
    return out;
}

skynet_engine::skynet_engine(const topology* topo, const customer_registry* customers,
                             const alert_type_registry* registry, const syslog_classifier* syslog,
                             skynet_config config)
    : pre_(topo, registry, syslog, config.pre),
      locator_(topo, config.loc),
      evaluator_(topo, customers, config.eval) {}

void skynet_engine::ingest(const raw_alert& raw, sim_time now) {
    for (preprocess_event& ev : pre_.process(raw, now)) {
        ++structured_count_;
        if (ev.is_update) {
            locator_.refresh(ev.alert, now);
        } else {
            locator_.insert(ev.alert, now);
        }
    }
}

void skynet_engine::tick(sim_time now, const network_state& state) {
    for (preprocess_event& ev : pre_.flush(now)) {
        ++structured_count_;
        if (ev.is_update) {
            locator_.refresh(ev.alert, now);
        } else {
            locator_.insert(ev.alert, now);
        }
    }

    for (incident& closed : locator_.check(now)) {
        finished_.push_back(finalize(closed, now, state));
    }

    // Live severity: keep the peak score seen while open.
    for (const incident& open : locator_.open_incidents()) {
        const severity_breakdown s = evaluator_.evaluate(open, state, now);
        auto [it, inserted] = live_scores_.try_emplace(open.id, s);
        if (!inserted && s.score > it->second.score) it->second = s;
    }
}

void skynet_engine::finish(sim_time now, const network_state& state) {
    tick(now, state);
    for (incident& closed : locator_.drain(now)) {
        finished_.push_back(finalize(closed, now, state));
    }
}

incident_report skynet_engine::finalize(const incident& inc, sim_time now,
                                        const network_state& state) {
    incident_report report;
    report.inc = inc;
    report.severity = evaluator_.evaluate(inc, state, now);
    if (const auto it = live_scores_.find(inc.id); it != live_scores_.end()) {
        if (it->second.score > report.severity.score) report.severity = it->second;
        live_scores_.erase(it);
    }
    report.zoomed = evaluator_.zoom_in(inc);
    report.actionable = evaluator_.passes_filter(report.severity);
    return report;
}

std::vector<incident_report> skynet_engine::take_reports() {
    std::vector<incident_report> out = std::move(finished_);
    finished_.clear();
    return out;
}

std::vector<incident_report> skynet_engine::open_reports(sim_time now,
                                                         const network_state& state) const {
    std::vector<incident_report> out;
    for (const incident& open : locator_.open_incidents()) {
        incident_report report;
        report.inc = open;
        report.severity = evaluator_.evaluate(open, state, now);
        if (const auto it = live_scores_.find(open.id); it != live_scores_.end()) {
            if (it->second.score > report.severity.score) report.severity = it->second;
        }
        report.zoomed = evaluator_.zoom_in(open);
        report.actionable = evaluator_.passes_filter(report.severity);
        out.push_back(std::move(report));
    }
    // Ranked view: most severe first (the paper's incident ranking).
    std::sort(out.begin(), out.end(), [](const incident_report& a, const incident_report& b) {
        return a.severity.score > b.severity.score;
    });
    return out;
}

}  // namespace skynet
