#include "skynet/core/engine_metrics.h"

#include <cstdio>

namespace skynet {

double latency_histogram::percentile_us(double p) const noexcept {
    if (count_ == 0) return 0.0;
    if (p < 0.0) p = 0.0;
    if (p > 100.0) p = 100.0;
    const double target = p / 100.0 * static_cast<double>(count_);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < bucket_count; ++b) {
        seen += buckets_[b];
        if (static_cast<double>(seen) >= target) {
            return static_cast<double>(std::uint64_t{1} << (b + 1)) / 1000.0;
        }
    }
    return static_cast<double>(max_ns_) / 1000.0;
}

latency_histogram& latency_histogram::operator+=(const latency_histogram& other) noexcept {
    for (std::size_t b = 0; b < bucket_count; ++b) buckets_[b] += other.buckets_[b];
    count_ += other.count_;
    sum_ns_ += other.sum_ns_;
    if (other.max_ns_ > max_ns_) max_ns_ = other.max_ns_;
    return *this;
}

stage_metrics& stage_metrics::operator+=(const stage_metrics& other) noexcept {
    calls += other.calls;
    items += other.items;
    latency += other.latency;
    return *this;
}

engine_metrics& engine_metrics::operator+=(const engine_metrics& other) noexcept {
    preprocess += other.preprocess;
    locate += other.locate;
    evaluate += other.evaluate;
    degraded += other.degraded;
    recovery += other.recovery;
    alerts_in += other.alerts_in;
    batches_in += other.batches_in;
    ticks += other.ticks;
    reports_emitted += other.reports_emitted;
    enqueue_full_waits += other.enqueue_full_waits;
    if (other.max_queue_depth > max_queue_depth) max_queue_depth = other.max_queue_depth;
    busy_ns += other.busy_ns;
    return *this;
}

std::string engine_metrics::render() const {
    std::string out;
    char buf[192];
    auto stage_line = [&](const char* name, const stage_metrics& s) {
        std::snprintf(buf, sizeof buf,
                      "  %-10s %10llu calls %10llu items  mean %8.1fus  p99 %8.1fus  total %8.1fms\n",
                      name, static_cast<unsigned long long>(s.calls),
                      static_cast<unsigned long long>(s.items), s.latency.mean_us(),
                      s.latency.percentile_us(99.0),
                      static_cast<double>(s.latency.total_ns()) / 1e6);
        out += buf;
    };
    std::snprintf(buf, sizeof buf,
                  "engine metrics: %llu alerts in %llu batches, %llu ticks, %llu reports\n",
                  static_cast<unsigned long long>(alerts_in),
                  static_cast<unsigned long long>(batches_in),
                  static_cast<unsigned long long>(ticks),
                  static_cast<unsigned long long>(reports_emitted));
    out += buf;
    stage_line("preprocess", preprocess);
    stage_line("locate", locate);
    stage_line("evaluate", evaluate);
    if (busy_ns > 0 || enqueue_full_waits > 0 || max_queue_depth > 0) {
        std::snprintf(buf, sizeof buf,
                      "  queue: max depth %llu, full-queue waits %llu; worker busy %.1fms\n",
                      static_cast<unsigned long long>(max_queue_depth),
                      static_cast<unsigned long long>(enqueue_full_waits),
                      static_cast<double>(busy_ns) / 1e6);
        out += buf;
    }
    if (degraded.any()) {
        std::snprintf(buf, sizeof buf,
                      "  degraded: %llu rejected, %llu dropped (overflow), %llu skew-clamped, "
                      "%llu sources in dropout, %llu dropped (failed shard)\n",
                      static_cast<unsigned long long>(degraded.alerts_rejected),
                      static_cast<unsigned long long>(degraded.alerts_dropped_overflow),
                      static_cast<unsigned long long>(degraded.skew_clamped),
                      static_cast<unsigned long long>(degraded.sources_in_dropout),
                      static_cast<unsigned long long>(degraded.alerts_dropped_failed_shard));
        out += buf;
    }
    if (recovery.any()) {
        std::snprintf(buf, sizeof buf,
                      "  recovery: %llu journal records (%llu flushes), %llu checkpoints; "
                      "%llu replayed, %llu tail bytes truncated, %llu snapshots skipped\n",
                      static_cast<unsigned long long>(recovery.journal_records_written),
                      static_cast<unsigned long long>(recovery.journal_flushes),
                      static_cast<unsigned long long>(recovery.checkpoints_written),
                      static_cast<unsigned long long>(recovery.records_replayed),
                      static_cast<unsigned long long>(recovery.truncated_tail_bytes),
                      static_cast<unsigned long long>(recovery.snapshots_skipped));
        out += buf;
    }
    return out;
}

}  // namespace skynet
