#include "skynet/core/engine_metrics.h"

#include <cstdio>

namespace skynet {

double latency_histogram::percentile_us(double p) const noexcept {
    if (count_ == 0) return 0.0;
    if (p < 0.0) p = 0.0;
    if (p > 100.0) p = 100.0;
    const double target = p / 100.0 * static_cast<double>(count_);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < bucket_count; ++b) {
        seen += buckets_[b];
        if (static_cast<double>(seen) >= target) {
            return static_cast<double>(std::uint64_t{1} << (b + 1)) / 1000.0;
        }
    }
    return static_cast<double>(max_ns_) / 1000.0;
}

latency_histogram& latency_histogram::operator+=(const latency_histogram& other) noexcept {
    for (std::size_t b = 0; b < bucket_count; ++b) buckets_[b] += other.buckets_[b];
    count_ += other.count_;
    sum_ns_ += other.sum_ns_;
    if (other.max_ns_ > max_ns_) max_ns_ = other.max_ns_;
    return *this;
}

stage_metrics& stage_metrics::operator+=(const stage_metrics& other) noexcept {
    calls += other.calls;
    items += other.items;
    latency += other.latency;
    return *this;
}

engine_metrics& engine_metrics::operator+=(const engine_metrics& other) noexcept {
    preprocess += other.preprocess;
    locate += other.locate;
    evaluate += other.evaluate;
    degraded += other.degraded;
    recovery += other.recovery;
    overload += other.overload;
    steal += other.steal;
    federation += other.federation;
    lifecycle += other.lifecycle;
    alerts_in += other.alerts_in;
    batches_in += other.batches_in;
    ticks += other.ticks;
    reports_emitted += other.reports_emitted;
    enqueue_full_waits += other.enqueue_full_waits;
    if (other.max_queue_depth > max_queue_depth) max_queue_depth = other.max_queue_depth;
    busy_ns += other.busy_ns;
    return *this;
}

std::string engine_metrics::render() const {
    std::string out;
    char buf[192];
    auto stage_line = [&](const char* name, const stage_metrics& s) {
        std::snprintf(buf, sizeof buf,
                      "  %-10s %10llu calls %10llu items  mean %8.1fus  p99 %8.1fus  total %8.1fms\n",
                      name, static_cast<unsigned long long>(s.calls),
                      static_cast<unsigned long long>(s.items), s.latency.mean_us(),
                      s.latency.percentile_us(99.0),
                      static_cast<double>(s.latency.total_ns()) / 1e6);
        out += buf;
    };
    std::snprintf(buf, sizeof buf,
                  "engine metrics: %llu alerts in %llu batches, %llu ticks, %llu reports\n",
                  static_cast<unsigned long long>(alerts_in),
                  static_cast<unsigned long long>(batches_in),
                  static_cast<unsigned long long>(ticks),
                  static_cast<unsigned long long>(reports_emitted));
    out += buf;
    stage_line("preprocess", preprocess);
    stage_line("locate", locate);
    stage_line("evaluate", evaluate);
    if (busy_ns > 0 || enqueue_full_waits > 0 || max_queue_depth > 0) {
        std::snprintf(buf, sizeof buf,
                      "  queue: max depth %llu, full-queue waits %llu; worker busy %.1fms\n",
                      static_cast<unsigned long long>(max_queue_depth),
                      static_cast<unsigned long long>(enqueue_full_waits),
                      static_cast<double>(busy_ns) / 1e6);
        out += buf;
    }
    if (degraded.any()) {
        std::snprintf(buf, sizeof buf,
                      "  degraded: %llu rejected, %llu dropped (overflow), %llu skew-clamped, "
                      "%llu sources in dropout, %llu dropped (failed shard), "
                      "%llu log out-of-order, %llu sketched\n",
                      static_cast<unsigned long long>(degraded.alerts_rejected),
                      static_cast<unsigned long long>(degraded.alerts_dropped_overflow),
                      static_cast<unsigned long long>(degraded.skew_clamped),
                      static_cast<unsigned long long>(degraded.sources_in_dropout),
                      static_cast<unsigned long long>(degraded.alerts_dropped_failed_shard),
                      static_cast<unsigned long long>(degraded.log_out_of_order),
                      static_cast<unsigned long long>(degraded.sketched));
        out += buf;
    }
    if (recovery.any()) {
        std::snprintf(buf, sizeof buf,
                      "  recovery: %llu journal records (%llu flushes), %llu checkpoints; "
                      "%llu replayed, %llu tail bytes truncated, %llu snapshots skipped\n",
                      static_cast<unsigned long long>(recovery.journal_records_written),
                      static_cast<unsigned long long>(recovery.journal_flushes),
                      static_cast<unsigned long long>(recovery.checkpoints_written),
                      static_cast<unsigned long long>(recovery.records_replayed),
                      static_cast<unsigned long long>(recovery.truncated_tail_bytes),
                      static_cast<unsigned long long>(recovery.snapshots_skipped));
        out += buf;
    }
    if (overload.any()) {
        std::snprintf(buf, sizeof buf,
                      "  overload: %llu admitted, %llu shed (%llu dup, %llu other, %llu root-cause, "
                      "%llu failure), %llu quarantined\n",
                      static_cast<unsigned long long>(overload.admitted),
                      static_cast<unsigned long long>(overload.shed_total()),
                      static_cast<unsigned long long>(overload.shed_duplicate),
                      static_cast<unsigned long long>(overload.shed_other),
                      static_cast<unsigned long long>(overload.shed_root_cause),
                      static_cast<unsigned long long>(overload.shed_failure),
                      static_cast<unsigned long long>(overload.quarantined));
        out += buf;
        std::snprintf(buf, sizeof buf,
                      "            breaker %llu trips / %llu reopens / %llu closes (%llu probes); "
                      "watchdog %llu stalls, %llu recovered, %llu written off\n",
                      static_cast<unsigned long long>(overload.breaker_trips),
                      static_cast<unsigned long long>(overload.breaker_reopens),
                      static_cast<unsigned long long>(overload.breaker_closes),
                      static_cast<unsigned long long>(overload.probes_admitted),
                      static_cast<unsigned long long>(overload.stalls_detected),
                      static_cast<unsigned long long>(overload.stalls_recovered),
                      static_cast<unsigned long long>(overload.shards_written_off));
        out += buf;
        if (overload.evicted_node_alerts != 0 || overload.evicted_incidents != 0 ||
            overload.evicted_pending != 0) {
            std::snprintf(buf, sizeof buf,
                          "            evicted: %llu node alerts, %llu incidents, %llu pending\n",
                          static_cast<unsigned long long>(overload.evicted_node_alerts),
                          static_cast<unsigned long long>(overload.evicted_incidents),
                          static_cast<unsigned long long>(overload.evicted_pending));
            out += buf;
        }
    }
    if (steal.any()) {
        std::snprintf(buf, sizeof buf,
                      "  steal: %llu batches (%llu alerts) prepared by thieves; "
                      "%llu attempts, %llu misses, %llu owner waits, %llu parks\n",
                      static_cast<unsigned long long>(steal.batches_stolen),
                      static_cast<unsigned long long>(steal.alerts_stolen),
                      static_cast<unsigned long long>(steal.steal_attempts),
                      static_cast<unsigned long long>(steal.steal_misses),
                      static_cast<unsigned long long>(steal.owner_waits),
                      static_cast<unsigned long long>(steal.worker_parks));
        out += buf;
        std::snprintf(buf, sizeof buf,
                      "         thief prepare %.1fms; interning: %llu entries, "
                      "%llu contended locks\n",
                      static_cast<double>(steal.prepare_ns) / 1e6,
                      static_cast<unsigned long long>(steal.intern_entries),
                      static_cast<unsigned long long>(steal.intern_lock_contention));
        out += buf;
    }
    if (federation.any()) {
        std::snprintf(buf, sizeof buf,
                      "  federation: %llu digests emitted (%llu bytes, acked seq %llu); "
                      "%llu sessions ok, %llu failed, %llu retries\n",
                      static_cast<unsigned long long>(federation.digests_emitted),
                      static_cast<unsigned long long>(federation.digest_bytes),
                      static_cast<unsigned long long>(federation.acked_seq),
                      static_cast<unsigned long long>(federation.sessions_ok),
                      static_cast<unsigned long long>(federation.sessions_failed),
                      static_cast<unsigned long long>(federation.send_retries));
        out += buf;
        std::snprintf(buf, sizeof buf,
                      "              %llu applied, %llu duplicates dropped, %llu gaps; "
                      "regions %llu live / %llu lagging / %llu stale / %llu partitioned\n",
                      static_cast<unsigned long long>(federation.digests_applied),
                      static_cast<unsigned long long>(federation.duplicates_dropped),
                      static_cast<unsigned long long>(federation.gaps_detected),
                      static_cast<unsigned long long>(federation.regions_live),
                      static_cast<unsigned long long>(federation.regions_lagging),
                      static_cast<unsigned long long>(federation.regions_stale),
                      static_cast<unsigned long long>(federation.regions_partitioned));
        out += buf;
    }
    if (lifecycle.any()) {
        std::snprintf(buf, sizeof buf,
                      "  lifecycle: %llu lineages tracked, %llu recurrences linked, "
                      "%llu flapping, %llu re-alerts suppressed; "
                      "%llu auto-closed, %llu reopened, %llu diffs\n",
                      static_cast<unsigned long long>(lifecycle.tracked),
                      static_cast<unsigned long long>(lifecycle.recurrences_linked),
                      static_cast<unsigned long long>(lifecycle.flaps_collapsed),
                      static_cast<unsigned long long>(lifecycle.realerts_suppressed),
                      static_cast<unsigned long long>(lifecycle.auto_closed),
                      static_cast<unsigned long long>(lifecycle.reopened),
                      static_cast<unsigned long long>(lifecycle.diffs_emitted));
        out += buf;
    }
    return out;
}

std::string engine_metrics::to_json() const {
    std::string out;
    out.reserve(2048);
    char buf[160];
    auto u = [&](const char* key, std::uint64_t v, bool last = false) {
        std::snprintf(buf, sizeof buf, "\"%s\":%llu%s", key, static_cast<unsigned long long>(v),
                      last ? "" : ",");
        out += buf;
    };
    auto stage = [&](const char* name, const stage_metrics& s, bool last = false) {
        std::snprintf(buf, sizeof buf,
                      "\"%s\":{\"calls\":%llu,\"items\":%llu,\"mean_us\":%.3f,\"p99_us\":%.3f,"
                      "\"max_us\":%.3f,\"total_ms\":%.3f}%s",
                      name, static_cast<unsigned long long>(s.calls),
                      static_cast<unsigned long long>(s.items), s.latency.mean_us(),
                      s.latency.percentile_us(99.0),
                      static_cast<double>(s.latency.max_ns()) / 1000.0,
                      static_cast<double>(s.latency.total_ns()) / 1e6, last ? "" : ",");
        out += buf;
    };
    out += "{";
    u("alerts_in", alerts_in);
    u("batches_in", batches_in);
    u("ticks", ticks);
    u("reports_emitted", reports_emitted);
    out += "\"stages\":{";
    stage("preprocess", preprocess);
    stage("locate", locate);
    stage("evaluate", evaluate, true);
    out += "},\"queue\":{";
    u("max_depth", max_queue_depth);
    u("full_waits", enqueue_full_waits);
    u("busy_ns", busy_ns, true);
    out += "},\"degraded\":{";
    u("alerts_rejected", degraded.alerts_rejected);
    u("alerts_dropped_overflow", degraded.alerts_dropped_overflow);
    u("skew_clamped", degraded.skew_clamped);
    u("sources_in_dropout", degraded.sources_in_dropout);
    u("alerts_dropped_failed_shard", degraded.alerts_dropped_failed_shard);
    u("log_out_of_order", degraded.log_out_of_order);
    u("sketched", degraded.sketched, true);
    out += "},\"recovery\":{";
    u("journal_records_written", recovery.journal_records_written);
    u("journal_flushes", recovery.journal_flushes);
    u("checkpoints_written", recovery.checkpoints_written);
    u("records_replayed", recovery.records_replayed);
    u("truncated_tail_bytes", recovery.truncated_tail_bytes);
    u("snapshots_skipped", recovery.snapshots_skipped, true);
    out += "},\"overload\":{";
    u("admitted", overload.admitted);
    u("shed_duplicate", overload.shed_duplicate);
    u("shed_other", overload.shed_other);
    u("shed_root_cause", overload.shed_root_cause);
    u("shed_failure", overload.shed_failure);
    u("shed_bytes", overload.shed_bytes);
    u("breaker_trips", overload.breaker_trips);
    u("breaker_reopens", overload.breaker_reopens);
    u("breaker_closes", overload.breaker_closes);
    u("quarantined", overload.quarantined);
    u("probes_admitted", overload.probes_admitted);
    u("stalls_detected", overload.stalls_detected);
    u("stalls_recovered", overload.stalls_recovered);
    u("shards_written_off", overload.shards_written_off);
    u("evicted_node_alerts", overload.evicted_node_alerts);
    u("evicted_incidents", overload.evicted_incidents);
    u("evicted_pending", overload.evicted_pending, true);
    out += "},\"steal\":{";
    u("batches_stolen", steal.batches_stolen);
    u("alerts_stolen", steal.alerts_stolen);
    u("steal_attempts", steal.steal_attempts);
    u("steal_misses", steal.steal_misses);
    u("owner_waits", steal.owner_waits);
    u("worker_parks", steal.worker_parks);
    u("prepare_ns", steal.prepare_ns);
    u("intern_lock_contention", steal.intern_lock_contention);
    u("intern_entries", steal.intern_entries, true);
    out += "},\"federation\":{";
    u("digests_emitted", federation.digests_emitted);
    u("digest_bytes", federation.digest_bytes);
    u("acked_seq", federation.acked_seq);
    u("sessions_ok", federation.sessions_ok);
    u("sessions_failed", federation.sessions_failed);
    u("send_retries", federation.send_retries);
    u("digests_applied", federation.digests_applied);
    u("duplicates_dropped", federation.duplicates_dropped);
    u("gaps_detected", federation.gaps_detected);
    u("regions_live", federation.regions_live);
    u("regions_lagging", federation.regions_lagging);
    u("regions_stale", federation.regions_stale);
    u("regions_partitioned", federation.regions_partitioned, true);
    out += "},\"lifecycle\":{";
    u("tracked", lifecycle.tracked);
    u("recurrences_linked", lifecycle.recurrences_linked);
    u("flaps_collapsed", lifecycle.flaps_collapsed);
    u("realerts_suppressed", lifecycle.realerts_suppressed);
    u("auto_closed", lifecycle.auto_closed);
    u("reopened", lifecycle.reopened);
    u("diffs_emitted", lifecycle.diffs_emitted, true);
    out += "}}";
    return out;
}

}  // namespace skynet
