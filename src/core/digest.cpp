#include "skynet/core/digest.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace skynet {
namespace {

struct type_row {
    std::string source;
    std::string name;
    int count{0};
};

std::vector<type_row> rows_for(const incident& inc, alert_category category) {
    std::map<std::string, type_row> by_type;
    for (const structured_alert& a : inc.alerts) {
        if (a.category != category) continue;
        type_row& row = by_type[a.type_name];
        row.source = std::string(to_string(a.source));
        row.name = a.type_name;
        row.count += a.count;
    }
    std::vector<type_row> out;
    out.reserve(by_type.size());
    for (auto& [name, row] : by_type) out.push_back(std::move(row));
    std::sort(out.begin(), out.end(),
              [](const type_row& a, const type_row& b) { return a.count > b.count; });
    return out;
}

}  // namespace

std::string incident_digest(const incident_report& report, const digest_options& options) {
    std::string out;
    char buf[256];
    const incident& inc = report.inc;

    std::snprintf(buf, sizeof buf, "incident %llu severity %.1f%s\n",
                  static_cast<unsigned long long>(inc.id), report.severity.score,
                  report.actionable ? " [actionable]" : "");
    out += buf;
    out += "location: " + inc.root.to_string() + "\n";
    if (report.zoomed) out += "zoomed: " + report.zoomed->to_string() + "\n";
    out += "window: " + format_time(inc.when.begin) + " .. " + format_time(inc.when.end) +
           " (" + format_duration(inc.when.length()) + ")\n";
    std::snprintf(buf, sizeof buf, "impact: I=%.2f T=%.2f loss=%.3f customers=%d\n",
                  report.severity.impact_factor, report.severity.time_factor,
                  report.severity.avg_ping_loss, report.severity.important_customers);
    out += buf;

    // Categories in diagnostic priority order: root cause first — it
    // survives truncation the longest.
    struct section {
        alert_category category;
        const char* title;
    };
    static constexpr section sections[] = {
        {alert_category::root_cause, "root cause alerts"},
        {alert_category::failure, "failure alerts"},
        {alert_category::abnormal, "abnormal alerts"},
    };
    for (const section& s : sections) {
        const std::vector<type_row> rows = rows_for(inc, s.category);
        if (rows.empty()) continue;
        std::string block = std::string(s.title) + ":\n";
        int listed = 0;
        for (const type_row& row : rows) {
            if (listed++ >= options.max_types_per_category) {
                block += "  ... " + std::to_string(rows.size() - listed + 1) + " more types\n";
                break;
            }
            std::snprintf(buf, sizeof buf, "  [%s] %s x%d\n", row.source.c_str(),
                          row.name.c_str(), row.count);
            block += buf;
        }
        if (out.size() + block.size() > options.max_chars) {
            if (out.size() + 16 <= options.max_chars) out += "...(truncated)\n";
            break;
        }
        out += block;
    }

    if (out.size() > options.max_chars) out.resize(options.max_chars);
    return out;
}

std::string json_escape(std::string_view text) {
    std::string out;
    out.reserve(text.size() + 8);
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string incident_digest_json(const incident_report& report) {
    const incident& inc = report.inc;
    std::string out = "{";
    char buf[256];

    std::snprintf(buf, sizeof buf, "\"id\":%llu,", static_cast<unsigned long long>(inc.id));
    out += buf;
    out += "\"location\":\"" + json_escape(inc.root.to_string()) + "\",";
    if (report.zoomed) {
        out += "\"zoomed\":\"" + json_escape(report.zoomed->to_string()) + "\",";
    }
    std::snprintf(buf, sizeof buf, "\"begin_ms\":%lld,\"end_ms\":%lld,",
                  static_cast<long long>(inc.when.begin), static_cast<long long>(inc.when.end));
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "\"severity\":{\"score\":%.4f,\"impact\":%.4f,\"time_factor\":%.4f,"
                  "\"avg_ping_loss\":%.6f,\"important_customers\":%d},",
                  report.severity.score, report.severity.impact_factor,
                  report.severity.time_factor, report.severity.avg_ping_loss,
                  report.severity.important_customers);
    out += buf;
    out += std::string("\"actionable\":") + (report.actionable ? "true" : "false") + ",";

    out += "\"alerts\":[";
    static constexpr alert_category categories[] = {
        alert_category::root_cause, alert_category::failure, alert_category::abnormal};
    bool first = true;
    for (alert_category cat : categories) {
        for (const type_row& row : rows_for(inc, cat)) {
            if (!first) out += ",";
            first = false;
            std::snprintf(buf, sizeof buf,
                          "{\"category\":\"%s\",\"source\":\"%s\",\"type\":\"%s\",\"count\":%d}",
                          std::string(to_string(cat)).c_str(), json_escape(row.source).c_str(),
                          json_escape(row.name).c_str(), row.count);
            out += buf;
        }
    }
    out += "]}";
    return out;
}

}  // namespace skynet
