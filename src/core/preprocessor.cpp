#include "skynet/core/preprocessor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "skynet/common/error.h"

namespace skynet {

namespace {

/// Canonical alert order used everywhere the preprocessor must pick or
/// emit from a set of consolidation entries: type id, then location
/// path. Independent of hash-map layout and of the order location ids
/// were interned in, so a restored-from-snapshot preprocessor and the
/// original agree bit-for-bit on every future output.
bool canonical_before(const structured_alert& a, const structured_alert& b) {
    if (a.type != b.type) return a.type < b.type;
    return a.loc < b.loc;
}

/// Per-table key salts: the three consolidation tables share one sketch,
/// so the same (type, location) key must land on different cells per
/// table — otherwise an open-table repeat would inflate the persistence
/// count of the same alert.
constexpr std::uint64_t kOpenSalt = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kPersistSalt = 0xc2b2ae3d27d4eb4full;
constexpr std::uint64_t kCorrelSalt = 0x165667b19e3779f9ull;

/// Sketch estimates flow into structured_alert::count, which is int.
int clamp_count(std::uint64_t estimate) noexcept {
    constexpr std::uint64_t cap = std::numeric_limits<int>::max();
    return static_cast<int>(std::min(estimate, cap));
}

}  // namespace

preprocessor::preprocessor(const topology* topo, const alert_type_registry* registry,
                           const syslog_classifier* syslog, preprocessor_config config)
    : topo_(topo), registry_(registry), syslog_(syslog), config_(config),
      policy_(config.sketch) {
    if (topo_ == nullptr || registry_ == nullptr) {
        throw skynet_error("preprocessor: null topology or registry");
    }
}

preprocessor::persist_state preprocessor::export_state() const {
    persist_state out;
    out.stats = stats_;
    out.open.reserve(open_.size());
    for (const auto& [key, open] : open_) {
        out.open.push_back(persist_state::open_entry{.alert = open.alert,
                                                     .last_seen = open.last_seen});
    }
    std::sort(out.open.begin(), out.open.end(), [](const auto& a, const auto& b) {
        return canonical_before(a.alert, b.alert);
    });
    const auto export_pending = [](const std::unordered_map<std::uint64_t, pending_alert>& from,
                                   std::vector<persist_state::pending_entry>& to) {
        to.reserve(from.size());
        for (const auto& [key, p] : from) {
            to.push_back(persist_state::pending_entry{.alert = p.alert,
                                                      .occurrences = p.occurrences,
                                                      .first_seen = p.first_seen,
                                                      .last_seen = p.last_seen,
                                                      .last_counted_ts = p.last_counted_ts});
        }
        std::sort(to.begin(), to.end(), [](const auto& a, const auto& b) {
            return canonical_before(a.alert, b.alert);
        });
    };
    export_pending(pending_persistence_, out.persistence);
    export_pending(pending_correlation_, out.correlation);
    out.sightings.reserve(sightings_.size());
    for (const sighting& s : sightings_) {
        out.sightings.push_back(persist_state::sighting_entry{.loc = s.loc, .at = s.at});
    }
    return out;
}

void preprocessor::import_state(persist_state state) {
    stats_ = state.stats;
    open_.clear();
    for (persist_state::open_entry& e : state.open) {
        const std::uint64_t key = key_of(e.alert);
        open_[key] = open_alert{.alert = std::move(e.alert), .last_seen = e.last_seen};
    }
    const auto import_pending = [](std::vector<persist_state::pending_entry>& from,
                                   std::unordered_map<std::uint64_t, pending_alert>& to) {
        to.clear();
        for (persist_state::pending_entry& e : from) {
            const std::uint64_t key = key_of(e.alert);
            to[key] = pending_alert{.alert = std::move(e.alert),
                                    .occurrences = e.occurrences,
                                    .first_seen = e.first_seen,
                                    .last_seen = e.last_seen,
                                    .last_counted_ts = e.last_counted_ts};
        }
    };
    import_pending(state.persistence, pending_persistence_);
    import_pending(state.correlation, pending_correlation_);
    sightings_.clear();
    for (const persist_state::sighting_entry& s : state.sightings) {
        sightings_.push_back(sighting{.loc = s.loc, .at = s.at});
    }
    // Reset-on-recover: sketch state is approximate and deliberately not
    // part of snapshots. A recovered sketched-regime run re-learns its
    // counts from scratch; the direction of the error is conservative —
    // forgotten repeats re-emit as new alerts rather than being merged
    // away silently. See DESIGN.md "Sketched counting".
    policy_.reset_all();
    sketch_epoch_ = 0;
}

std::optional<structured_alert> preprocessor::to_structured(const raw_alert& raw) const {
    structured_alert s;
    s.source = raw.source;
    s.when = time_range{raw.timestamp, raw.timestamp};
    s.loc = raw.loc;
    s.metric = raw.metric;
    s.device = raw.device;
    s.src_loc = raw.src_loc;
    s.dst_loc = raw.dst_loc;

    // Intern at the boundary: monitors pass ids through, trace-replayed
    // alerts arrive with the sentinel and get interned here once.
    location_table& table = topo_->locations();
    s.loc_id = (raw.loc_id != invalid_location_id) ? raw.loc_id : table.intern(raw.loc);
    if (raw.src_loc) {
        s.src_id = (raw.src_id != invalid_location_id) ? raw.src_id : table.intern(*raw.src_loc);
    }
    if (raw.dst_loc) {
        s.dst_id = (raw.dst_id != invalid_location_id) ? raw.dst_id : table.intern(*raw.dst_loc);
    }

    std::string type_name = raw.kind;
    if (raw.source == data_source::syslog) {
        // Free text: recover the type through the FT-tree templates.
        if (syslog_ == nullptr) return std::nullopt;
        const auto r = syslog_->classify(raw.message);
        if (!r) return std::nullopt;  // benign / unknown log line
        type_name = r->type_name;
    }
    if (type_name.empty()) return std::nullopt;

    const auto id = registry_->find(raw.source, type_name);
    if (!id) return std::nullopt;  // type not in the catalog
    const alert_type& t = registry_->at(*id);
    s.type = t.id;
    s.type_name = t.name;
    s.category = t.category;
    return s;
}

std::uint64_t preprocessor::key_of(const structured_alert& alert) {
    return (static_cast<std::uint64_t>(alert.type) << 32) |
           static_cast<std::uint64_t>(alert.loc_id);
}

bool preprocessor::corroborated(location_id loc, sim_time now) const {
    const location_table& table = topo_->locations();
    for (const sighting& s : sightings_) {
        if (now - s.at > config_.correlation_window) continue;
        // Corroboration counts when the witnesses share scope: one
        // contains the other.
        if (table.contains(s.loc, loc) || table.contains(loc, s.loc)) return true;
    }
    return false;
}

void preprocessor::note_sighting(const structured_alert& alert, sim_time now) {
    if (alert.category == alert_category::failure ||
        alert.category == alert_category::root_cause) {
        sightings_.push_back(sighting{.loc = alert.loc_id, .at = now});
        while (config_.max_sightings != 0 && sightings_.size() > config_.max_sightings) {
            sightings_.pop_front();
            ++evicted_pending_;
        }
    }
}

template <typename Entry>
void preprocessor::enforce_cap(std::unordered_map<std::uint64_t, Entry>& map,
                               std::uint64_t keep_key) {
    while (config_.max_pending_alerts != 0 && map.size() > config_.max_pending_alerts) {
        auto victim = map.end();
        for (auto it = map.begin(); it != map.end(); ++it) {
            if (it->first == keep_key) continue;
            if (victim == map.end() || it->second.last_seen < victim->second.last_seen ||
                (it->second.last_seen == victim->second.last_seen &&
                 canonical_before(it->second.alert, victim->second.alert))) {
                victim = it;
            }
        }
        if (victim == map.end()) return;  // only the protected entry left
        map.erase(victim);
        ++evicted_pending_;
    }
}

void preprocessor::emit(structured_alert alert, sim_time now, std::vector<preprocess_event>& out) {
    note_sighting(alert, now);
    const std::uint64_t key = key_of(alert);
    auto it = open_.find(key);
    if (it == open_.end() && policy_.enabled() && policy_.overflowing(open_.size())) {
        // Sketched dedup: the open table is full of *other* keys, so this
        // key's repeat count lives in the sketch. A zero pre-estimate is
        // exact for count-min, so "new alert" decisions are never wrong;
        // repeats become consolidation updates whose count may be
        // overestimated (never under). No per-key state is stored — the
        // update event carries the incoming alert's own time range.
        const sketch::counted c =
            policy_.sketch_add(key ^ kOpenSalt, static_cast<std::uint64_t>(std::max(1, alert.count)));
        if (c.first) {
            ++stats_.emitted_new;
            out.push_back(preprocess_event{.alert = std::move(alert), .is_update = false});
            return;
        }
        alert.count = clamp_count(c.count);
        ++stats_.merged_identical;
        ++stats_.emitted_update;
        out.push_back(preprocess_event{.alert = std::move(alert), .is_update = true});
        return;
    }
    if (it == open_.end()) {
        it = open_.try_emplace(key).first;
        it->second = open_alert{.alert = alert, .last_seen = now};
        ++stats_.emitted_new;
        out.push_back(preprocess_event{.alert = std::move(alert), .is_update = false});
        enforce_cap(open_, key);
        return;
    }
    if (now - it->second.last_seen > config_.dedup_window) {
        it->second = open_alert{.alert = alert, .last_seen = now};
        ++stats_.emitted_new;
        out.push_back(preprocess_event{.alert = std::move(alert), .is_update = false});
        return;
    }
    // Identical-alert consolidation: refresh the open alert.
    open_alert& open = it->second;
    open.alert.when.extend(alert.when.begin);
    open.alert.when.extend(alert.when.end);
    open.alert.count += alert.count;
    open.alert.metric = std::max(open.alert.metric, alert.metric);
    open.last_seen = now;
    ++stats_.merged_identical;
    ++stats_.emitted_update;
    out.push_back(preprocess_event{.alert = open.alert, .is_update = true});
}

void preprocessor::route(structured_alert alert, sim_time now,
                         std::vector<preprocess_event>& out) {
    // Defense in depth: an inverted time range would corrupt every
    // downstream window computation; refuse it rather than assert.
    if (alert.when.begin > alert.when.end) {
        ++stats_.rejected_malformed;
        return;
    }
    // Single-source persistence rule: end-to-end loss probes and
    // liveness-probe results must recur across *distinct observations*
    // before they count (sporadic loss is ignored; a glitching prober
    // that floods identical device-down alerts in a single sweep counts
    // as one observation, §4.2).
    const bool probe_loss =
        (alert.source == data_source::ping || alert.source == data_source::internet_telemetry) &&
        alert.category == alert_category::failure;
    const bool liveness_probe =
        alert.source == data_source::out_of_band && alert.type_name == "device inaccessible";
    if ((probe_loss || liveness_probe) && config_.persistence_threshold > 1) {
        const std::uint64_t key = key_of(alert);
        auto it = pending_persistence_.find(key);
        const bool inserted = it == pending_persistence_.end();
        if (inserted) {
            if (policy_.enabled() && policy_.overflowing(pending_persistence_.size())) {
                // Sketched persistence: count occurrences in the sketch
                // and release the incoming alert once the estimate
                // crosses the threshold. Overestimation releases a probe
                // blip *earlier* than exact counting would — degraded
                // toward emitting, never toward losing a persistent
                // failure. (The per-poll burst dedup of last_counted_ts
                // is not modeled here; same direction of error.)
                const sketch::counted c = policy_.sketch_add(key ^ kPersistSalt, 1);
                if (c.count < static_cast<std::uint64_t>(config_.persistence_threshold)) {
                    return;  // hold
                }
                emit(std::move(alert), now, out);
                return;
            }
            it = pending_persistence_
                     .try_emplace(key, pending_alert{.alert = alert,
                                                     .occurrences = 0,
                                                     .first_seen = now,
                                                     .last_seen = now})
                     .first;
            enforce_cap(pending_persistence_, key);
        }
        pending_alert& p = it->second;
        if (!inserted && now - p.last_seen > config_.persistence_window) {
            // Stale entry: restart the observation window.
            ++stats_.dropped_sporadic;
            p = pending_alert{.alert = alert, .occurrences = 0, .first_seen = now, .last_seen = now};
        }
        if (alert.when.begin != p.last_counted_ts) {
            ++p.occurrences;
            p.last_counted_ts = alert.when.begin;
        }
        p.last_seen = now;
        p.alert.when.extend(alert.when.begin);
        p.alert.when.extend(alert.when.end);
        p.alert.metric = std::max(p.alert.metric, alert.metric);
        if (p.occurrences < config_.persistence_threshold) return;  // hold
        structured_alert ready = p.alert;
        pending_persistence_.erase(it);
        emit(std::move(ready), now, out);
        return;
    }

    // Cross-source rule: a traffic drop alone is expected behaviour.
    const bool is_traffic_drop = alert.type_name == "traffic drop";
    if (is_traffic_drop && config_.cross_source) {
        if (corroborated(alert.loc_id, now)) {
            // Reclassify: the combination means an abnormal decline.
            if (const auto id = registry_->find(data_source::traffic_stats,
                                                "abnormal traffic decline")) {
                const alert_type& t = registry_->at(*id);
                alert.type = t.id;
                alert.type_name = t.name;
                alert.category = t.category;
            }
            emit(std::move(alert), now, out);
            return;
        }
        const std::uint64_t key = key_of(alert);
        auto it = pending_correlation_.find(key);
        if (it == pending_correlation_.end()) {
            if (policy_.enabled() && policy_.overflowing(pending_correlation_.size())) {
                // Sketched correlation: there is no stored alert to
                // release on later corroboration, so an uncorroborated
                // drop past the cardinality ceiling is discarded now
                // (the exact regime would hold it for up to
                // correlation_window and usually discard it then). The
                // sketch records the occurrence so the degraded marker
                // and estimates reflect the flood.
                (void)policy_.sketch_add(key ^ kCorrelSalt, 1);
                ++stats_.dropped_uncorroborated;
                return;
            }
            it = pending_correlation_
                     .try_emplace(key, pending_alert{.alert = alert,
                                                     .occurrences = 1,
                                                     .first_seen = now,
                                                     .last_seen = now})
                     .first;
            enforce_cap(pending_correlation_, key);
            return;  // waits for corroboration or expiry
        }
        it->second.last_seen = now;
        it->second.alert.when.extend(alert.when.end);
        return;  // waits for corroboration or expiry
    }

    // Related-alert rule: a surge at one location implies surges on the
    // paths around it; merge a surge into an open surge at an adjacent
    // (ancestor/descendant/sibling-parent) location. When several open
    // surges qualify, the canonical-first one absorbs the merge, so the
    // outcome does not depend on hash-map iteration order.
    if (config_.consolidate_related && alert.type_name == "traffic surge") {
        const location_table& table = topo_->locations();
        open_alert* target = nullptr;
        for (auto& [key, open] : open_) {
            if (open.alert.type_name != "traffic surge") continue;
            if (now - open.last_seen > config_.persistence_window) continue;
            const location_id other = open.alert.loc_id;
            const bool adjacent = table.contains(other, alert.loc_id) ||
                                  table.contains(alert.loc_id, other) ||
                                  table.parent_of(other) == table.parent_of(alert.loc_id);
            if (adjacent && other != alert.loc_id &&
                (target == nullptr || canonical_before(open.alert, target->alert))) {
                target = &open;
            }
        }
        if (target != nullptr) {
            target->alert.count += 1;
            target->alert.when.extend(alert.when.end);
            target->last_seen = now;
            ++stats_.merged_related;
            return;
        }
    }

    emit(std::move(alert), now, out);
}

const char* preprocessor::reject_reason(const raw_alert& raw) const {
    if (!std::isfinite(raw.metric)) return "non-finite metric";
    if (raw.timestamp < 0) return "pre-epoch timestamp";
    if (raw.device && *raw.device >= topo_->devices().size()) return "dangling device id";
    if (raw.link && *raw.link >= topo_->links().size()) return "dangling link id";
    const location_table& table = topo_->locations();
    // The sentinel means "not interned yet", which is fine; anything else
    // out of range is a garbled id that downstream tables would walk off.
    const location_id ids[] = {raw.loc_id, raw.src_id, raw.dst_id};
    for (const location_id id : ids) {
        if (id != invalid_location_id && id >= table.size()) return "dangling location id";
    }
    return nullptr;
}

std::vector<preprocess_event> preprocessor::process(const raw_alert& raw, sim_time now) {
    // One source of truth: process() is the prepare/apply pair run
    // back-to-back, so the stolen-batch path cannot drift from this one.
    return apply_prepared(raw, now, prepare(raw, now));
}

prepared_alert preprocessor::prepare(const raw_alert& raw, sim_time now) const {
    prepared_alert p;

    if (reject_reason(raw) != nullptr) {
        p.rejected = true;
        return p;
    }

    // Clock skew: a generation timestamp ahead of the arrival time would
    // invert downstream time ranges; clamp it to the arrival.
    raw_alert clamped;
    const raw_alert* input = &raw;
    if (raw.timestamp > now) {
        clamped = raw;
        clamped.timestamp = now;
        input = &clamped;
        p.skew_clamped = true;
    }

    auto structured = to_structured(*input);
    if (!structured) {
        p.unclassified = true;
        return p;
    }

    // Link alerts split into one alert per endpoint device (§4.1).
    if (config_.split_link_alerts && raw.link.has_value() && !structured->device.has_value()) {
        const link& l = topo_->link_at(*raw.link);
        for (device_id endpoint : {l.a, l.b}) {
            const device& d = topo_->device_at(endpoint);
            if (d.role == device_role::isp) continue;  // outside our hierarchy
            structured_alert split = *structured;
            split.loc = d.loc;
            split.loc_id = d.loc_id;
            split.device = endpoint;
            p.routes[p.route_count++] = std::move(split);
        }
        return p;
    }

    // End-to-end pair alerts are the same shape as link alerts — the
    // "link" is the path between the endpoints — so they split onto both
    // endpoint locations too (§4.1), instead of landing at a coarse
    // common ancestor that would weld unrelated incidents together.
    const location_table& table = topo_->locations();
    if (config_.split_link_alerts && structured->src_loc && structured->dst_loc &&
        table.is_ancestor_of(structured->loc_id, structured->src_id) &&
        table.is_ancestor_of(structured->loc_id, structured->dst_id)) {
        const std::pair<const location*, location_id> endpoints[] = {
            {&*structured->src_loc, structured->src_id},
            {&*structured->dst_loc, structured->dst_id},
        };
        for (const auto& [endpoint, endpoint_id] : endpoints) {
            structured_alert split = *structured;
            split.loc = *endpoint;
            split.loc_id = endpoint_id;
            p.routes[p.route_count++] = std::move(split);
        }
        return p;
    }

    p.routes[p.route_count++] = std::move(*structured);
    return p;
}

std::vector<preprocess_event> preprocessor::apply_prepared(const raw_alert& raw, sim_time now,
                                                           prepared_alert&& prep) {
    ++stats_.raw_in;
    std::vector<preprocess_event> out;

    if (prep.rejected) {
        ++stats_.rejected_malformed;
        return out;
    }
    if (prep.skew_clamped) ++stats_.skew_clamped;
    if (prep.unclassified) {
        ++stats_.dropped_unclassified;
        if (miner_ != nullptr && raw.source == data_source::syslog) {
            miner_->observe(raw.message, now);
        }
        return out;
    }

    for (std::uint8_t i = 0; i < prep.route_count; ++i) {
        route(std::move(prep.routes[i]), now, out);
    }
    return out;
}

std::vector<preprocess_event> preprocessor::flush(sim_time now) {
    std::vector<preprocess_event> out;

    // Resolve pending traffic drops: corroborated ones are upgraded and
    // released, expired loners are discarded. Resolution runs in the
    // canonical alert order (not map order) so the emission sequence —
    // and with it every downstream incident's alert list — is identical
    // across hash layouts and across a snapshot/restore cycle.
    std::vector<std::uint64_t> correlation_keys;
    correlation_keys.reserve(pending_correlation_.size());
    for (const auto& [key, p] : pending_correlation_) correlation_keys.push_back(key);
    std::sort(correlation_keys.begin(), correlation_keys.end(),
              [this](std::uint64_t a, std::uint64_t b) {
                  return canonical_before(pending_correlation_.at(a).alert,
                                          pending_correlation_.at(b).alert);
              });
    for (const std::uint64_t key : correlation_keys) {
        const auto it = pending_correlation_.find(key);
        pending_alert& p = it->second;
        if (corroborated(p.alert.loc_id, now)) {
            structured_alert alert = p.alert;
            if (const auto id =
                    registry_->find(data_source::traffic_stats, "abnormal traffic decline")) {
                const alert_type& t = registry_->at(*id);
                alert.type = t.id;
                alert.type_name = t.name;
                alert.category = t.category;
            }
            pending_correlation_.erase(it);
            emit(std::move(alert), now, out);
        } else if (now - p.first_seen > config_.correlation_window) {
            ++stats_.dropped_uncorroborated;
            pending_correlation_.erase(it);
        }
    }

    // Expire stale persistence buffers (the sporadic blips).
    for (auto it = pending_persistence_.begin(); it != pending_persistence_.end();) {
        if (now - it->second.last_seen > config_.persistence_window) {
            ++stats_.dropped_sporadic;
            it = pending_persistence_.erase(it);
        } else {
            ++it;
        }
    }

    // Expire open alerts past the dedup window.
    for (auto it = open_.begin(); it != open_.end();) {
        if (now - it->second.last_seen > config_.dedup_window) {
            it = open_.erase(it);
        } else {
            ++it;
        }
    }

    // Prune the corroboration history.
    while (!sightings_.empty() && now - sightings_.front().at > config_.correlation_window) {
        sightings_.pop_front();
    }

    // Sketch epoch rollover: the sketched analog of open-table expiry.
    // Every dedup_window after the sketch first activates, the halves
    // rotate — the current window becomes the decaying previous half and
    // estimates fade over two windows instead of cliffing to zero, while
    // stale floods still stop inflating estimates forever. Keyed on sim
    // time only, so replays roll the epoch at identical points.
    if (policy_.sketch_active()) {
        if (sketch_epoch_ == 0) {
            sketch_epoch_ = now;
        } else if (now - sketch_epoch_ >= config_.dedup_window) {
            policy_.rotate_sketch();
            sketch_epoch_ = now;
        }
    }
    return out;
}

}  // namespace skynet
