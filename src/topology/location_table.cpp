#include "skynet/topology/location_table.h"

#include <mutex>

#include "skynet/common/error.h"

namespace skynet {

location_table::location_table() {
    entries_.emplace_back();  // id 0: the root (empty path)
}

location_table::location_table(const location_table& other) {
    std::shared_lock lock(other.mutex_);
    entries_ = other.entries_;
}

location_table& location_table::operator=(const location_table& other) {
    if (this == &other) return *this;
    std::deque<entry> copy;
    {
        std::shared_lock lock(other.mutex_);
        copy = other.entries_;
    }
    std::unique_lock lock(mutex_);
    entries_ = std::move(copy);
    return *this;
}

location_table::location_table(location_table&& other) noexcept {
    std::unique_lock lock(other.mutex_);
    entries_ = std::move(other.entries_);
}

location_table& location_table::operator=(location_table&& other) noexcept {
    if (this == &other) return *this;
    std::scoped_lock lock(mutex_, other.mutex_);
    entries_ = std::move(other.entries_);
    return *this;
}

void location_table::check_id(location_id id) const {
    if (id >= entries_.size()) throw skynet_error("location_table: bad id");
}

location_id location_table::intern(const location& loc) {
    // Fast path: the whole chain already exists.
    {
        std::shared_lock lock(mutex_);
        location_id cur = root_location_id;
        bool hit = true;
        for (const std::string& seg : loc.segments()) {
            const auto it = entries_[cur].children.find(std::string_view(seg));
            if (it == entries_[cur].children.end()) {
                hit = false;
                break;
            }
            cur = it->second;
        }
        if (hit) return cur;
    }
    // Slow path: create the missing suffix under the exclusive lock
    // (re-walking from the root — another thread may have interned part
    // of the chain between the two locks).
    std::unique_lock lock(mutex_);
    location_id cur = root_location_id;
    for (const std::string& seg : loc.segments()) {
        const auto it = entries_[cur].children.find(std::string_view(seg));
        if (it != entries_[cur].children.end()) {
            cur = it->second;
            continue;
        }
        const auto id = static_cast<location_id>(entries_.size());
        entry e;
        e.parent = cur;
        e.depth = entries_[cur].depth + 1;
        e.segment = seg;
        e.path = entries_[cur].path.child(seg);
        entries_.push_back(std::move(e));
        entries_[cur].children.emplace(seg, id);
        cur = id;
    }
    return cur;
}

location_id location_table::intern_child(location_id parent, std::string_view segment) {
    {
        std::shared_lock lock(mutex_);
        check_id(parent);
        const auto it = entries_[parent].children.find(segment);
        if (it != entries_[parent].children.end()) return it->second;
    }
    std::unique_lock lock(mutex_);
    check_id(parent);
    const auto it = entries_[parent].children.find(segment);
    if (it != entries_[parent].children.end()) return it->second;
    const auto id = static_cast<location_id>(entries_.size());
    entry e;
    e.parent = parent;
    e.depth = entries_[parent].depth + 1;
    e.segment = std::string(segment);
    e.path = entries_[parent].path.child(std::string(segment));
    entries_.push_back(std::move(e));
    entries_[parent].children.emplace(std::string(segment), id);
    return id;
}

std::optional<location_id> location_table::find(const location& loc) const {
    std::shared_lock lock(mutex_);
    location_id cur = root_location_id;
    for (const std::string& seg : loc.segments()) {
        const auto it = entries_[cur].children.find(std::string_view(seg));
        if (it == entries_[cur].children.end()) return std::nullopt;
        cur = it->second;
    }
    return cur;
}

const location& location_table::path_of(location_id id) const {
    std::shared_lock lock(mutex_);
    check_id(id);
    return entries_[id].path;
}

std::string_view location_table::segment_of(location_id id) const {
    std::shared_lock lock(mutex_);
    check_id(id);
    return entries_[id].segment;
}

location_id location_table::parent_of(location_id id) const {
    std::shared_lock lock(mutex_);
    check_id(id);
    return entries_[id].parent;
}

std::size_t location_table::depth(location_id id) const {
    std::shared_lock lock(mutex_);
    check_id(id);
    return entries_[id].depth;
}

hierarchy_level location_table::level_of(location_id id) const {
    std::shared_lock lock(mutex_);
    check_id(id);
    const std::size_t d = entries_[id].depth;
    if (d >= depth_of(hierarchy_level::device)) return hierarchy_level::device;
    return static_cast<hierarchy_level>(d);
}

location_id location_table::ancestor_at_unlocked(location_id id, std::size_t want) const {
    location_id cur = id;
    while (entries_[cur].depth > want) cur = entries_[cur].parent;
    return cur;
}

location_id location_table::ancestor_at(location_id id, hierarchy_level level) const {
    std::shared_lock lock(mutex_);
    check_id(id);
    const std::size_t want = depth_of(level);
    if (want >= entries_[id].depth) return id;
    return ancestor_at_unlocked(id, want);
}

bool location_table::contains(location_id anc, location_id desc) const {
    std::shared_lock lock(mutex_);
    check_id(anc);
    check_id(desc);
    if (entries_[anc].depth > entries_[desc].depth) return false;
    return ancestor_at_unlocked(desc, entries_[anc].depth) == anc;
}

bool location_table::is_ancestor_of(location_id anc, location_id desc) const {
    std::shared_lock lock(mutex_);
    check_id(anc);
    check_id(desc);
    if (entries_[anc].depth >= entries_[desc].depth) return false;
    return ancestor_at_unlocked(desc, entries_[anc].depth) == anc;
}

location_id location_table::common_ancestor(location_id a, location_id b) const {
    std::shared_lock lock(mutex_);
    check_id(a);
    check_id(b);
    const std::size_t want = std::min<std::size_t>(entries_[a].depth, entries_[b].depth);
    location_id x = ancestor_at_unlocked(a, want);
    location_id y = ancestor_at_unlocked(b, want);
    while (x != y) {
        x = entries_[x].parent;
        y = entries_[y].parent;
    }
    return x;
}

std::size_t location_table::size() const {
    std::shared_lock lock(mutex_);
    return entries_.size();
}

}  // namespace skynet
