#include "skynet/topology/location_table.h"

#include <algorithm>
#include <bit>
#include <mutex>
#include <utility>

#include "skynet/common/error.h"

namespace skynet {

location_table::child_key::child_key(const child_ref& r) : parent(r.parent), segment(r.segment) {}

std::pair<std::size_t, std::size_t> location_table::block_of(std::size_t id) noexcept {
    // Block b covers ids [kFirstBlock*(2^b - 1), kFirstBlock*(2^(b+1) - 1)).
    const std::size_t q = id / kFirstBlock + 1;
    const std::size_t b = static_cast<std::size_t>(std::bit_width(q)) - 1;
    const std::size_t off = id - kFirstBlock * ((std::size_t{1} << b) - 1);
    return {b, off};
}

const location_table::entry& location_table::at(location_id id) const noexcept {
    const auto [b, off] = block_of(id);
    return blocks_[b].load(std::memory_order_acquire)[off];
}

void location_table::check_id(location_id id) const {
    if (id >= size_.load(std::memory_order_acquire))
        throw skynet_error("location_table: bad id");
}

location_table::location_table() {
    // Entry 0: the root (empty path). Defaults are already right.
    blocks_[0].store(new entry[kFirstBlock], std::memory_order_relaxed);
    size_.store(1, std::memory_order_release);
}

location_table::~location_table() { destroy(); }

void location_table::destroy() noexcept {
    for (auto& slot : blocks_) {
        entry* block = slot.load(std::memory_order_relaxed);
        delete[] block;
        slot.store(nullptr, std::memory_order_relaxed);
    }
    size_.store(0, std::memory_order_relaxed);
}

void location_table::copy_from(const location_table& other) {
    // Snapshot a dense prefix: entries [0, n) are fully published and
    // parents precede children, so replaying appends in id order
    // reproduces identical ids.
    const std::size_t n = other.size_.load(std::memory_order_acquire);
    for (std::size_t id = 1; id < n; ++id) {
        const entry& e = other.at(static_cast<location_id>(id));
        intern_edge(e.parent, e.segment);
    }
}

void location_table::steal_from(location_table&& other) noexcept {
    for (std::size_t b = 0; b < kMaxBlocks; ++b) {
        blocks_[b].store(other.blocks_[b].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
        other.blocks_[b].store(nullptr, std::memory_order_relaxed);
    }
    size_.store(other.size_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    other.size_.store(0, std::memory_order_relaxed);
    children_ = std::move(other.children_);
}

location_table::location_table(const location_table& other) : location_table() {
    copy_from(other);
}

location_table& location_table::operator=(const location_table& other) {
    if (this == &other) return *this;
    destroy();
    children_ = child_index();
    blocks_[0].store(new entry[kFirstBlock], std::memory_order_relaxed);
    size_.store(1, std::memory_order_release);
    copy_from(other);
    return *this;
}

location_table::location_table(location_table&& other) noexcept {
    steal_from(std::move(other));
}

location_table& location_table::operator=(location_table&& other) noexcept {
    if (this == &other) return *this;
    destroy();
    steal_from(std::move(other));
    return *this;
}

location_id location_table::append_entry(location_id parent, std::string_view segment) {
    std::lock_guard<spin_mutex> guard(append_mu_);
    const std::size_t id = size_.load(std::memory_order_relaxed);
    // Capacity of the segmented store: kFirstBlock * (2^kMaxBlocks - 1).
    constexpr std::size_t max_entries =
        kFirstBlock * ((std::size_t{1} << kMaxBlocks) - 1);
    if (id >= max_entries) throw skynet_error("location_table: full");
    const auto [b, off] = block_of(id);
    entry* block = blocks_[b].load(std::memory_order_relaxed);
    if (block == nullptr) {
        block = new entry[kFirstBlock << b];
        blocks_[b].store(block, std::memory_order_release);
    }
    const entry& p = at(parent);
    entry& e = block[off];
    e.parent = parent;
    e.depth = p.depth + 1;
    e.segment = std::string(segment);
    e.path = p.path.child(e.segment);
    // Publish: the release pairs with check_id()'s acquire, so any id a
    // reader can see names a fully-constructed entry.
    size_.store(id + 1, std::memory_order_release);
    return static_cast<location_id>(id);
}

location_id location_table::intern_edge(location_id parent, std::string_view segment) {
    return children_.get_or_insert(child_ref{parent, segment},
                                   [&] { return append_entry(parent, segment); });
}

location_id location_table::intern(const location& loc) {
    location_id cur = root_location_id;
    for (const std::string& seg : loc.segments()) cur = intern_edge(cur, seg);
    return cur;
}

location_id location_table::intern_prefix(const location& loc, std::size_t max_depth) {
    location_id cur = root_location_id;
    std::size_t taken = 0;
    for (const std::string& seg : loc.segments()) {
        if (taken++ >= max_depth) break;
        cur = intern_edge(cur, seg);
    }
    return cur;
}

location_id location_table::intern_child(location_id parent, std::string_view segment) {
    check_id(parent);
    return intern_edge(parent, segment);
}

std::optional<location_id> location_table::find(const location& loc) const {
    location_id cur = root_location_id;
    for (const std::string& seg : loc.segments()) {
        const location_id* hit = children_.find(child_ref{cur, std::string_view(seg)});
        if (hit == nullptr) return std::nullopt;
        cur = *hit;
    }
    return cur;
}

const location& location_table::path_of(location_id id) const {
    check_id(id);
    return at(id).path;
}

std::string_view location_table::segment_of(location_id id) const {
    check_id(id);
    return at(id).segment;
}

location_id location_table::parent_of(location_id id) const {
    check_id(id);
    return at(id).parent;
}

std::size_t location_table::depth(location_id id) const {
    check_id(id);
    return at(id).depth;
}

hierarchy_level location_table::level_of(location_id id) const {
    check_id(id);
    const std::size_t d = at(id).depth;
    if (d >= depth_of(hierarchy_level::device)) return hierarchy_level::device;
    return static_cast<hierarchy_level>(d);
}

location_id location_table::ancestor_at(location_id id, hierarchy_level level) const {
    check_id(id);
    const std::size_t want = depth_of(level);
    location_id cur = id;
    while (at(cur).depth > want) cur = at(cur).parent;
    return cur;
}

bool location_table::contains(location_id anc, location_id desc) const {
    check_id(anc);
    check_id(desc);
    const std::size_t want = at(anc).depth;
    if (want > at(desc).depth) return false;
    location_id cur = desc;
    while (at(cur).depth > want) cur = at(cur).parent;
    return cur == anc;
}

bool location_table::is_ancestor_of(location_id anc, location_id desc) const {
    check_id(anc);
    check_id(desc);
    const std::size_t want = at(anc).depth;
    if (want >= at(desc).depth) return false;
    location_id cur = desc;
    while (at(cur).depth > want) cur = at(cur).parent;
    return cur == anc;
}

location_id location_table::common_ancestor(location_id a, location_id b) const {
    check_id(a);
    check_id(b);
    const std::size_t want = std::min<std::size_t>(at(a).depth, at(b).depth);
    location_id x = a;
    while (at(x).depth > want) x = at(x).parent;
    location_id y = b;
    while (at(y).depth > want) y = at(y).parent;
    while (x != y) {
        x = at(x).parent;
        y = at(y).parent;
    }
    return x;
}

std::size_t location_table::size() const { return size_.load(std::memory_order_acquire); }

std::uint64_t location_table::lock_contention() const noexcept {
    return children_.lock_contention() + append_mu_.contended();
}

}  // namespace skynet
