#include "skynet/topology/location.h"

#include "skynet/common/strings.h"

namespace skynet {

std::string_view to_string(hierarchy_level level) noexcept {
    switch (level) {
        case hierarchy_level::root: return "root";
        case hierarchy_level::region: return "region";
        case hierarchy_level::city: return "city";
        case hierarchy_level::logic_site: return "logic site";
        case hierarchy_level::site: return "site";
        case hierarchy_level::cluster: return "cluster";
        case hierarchy_level::device: return "device";
    }
    return "?";
}

location location::parse(std::string_view text) {
    if (text.empty()) return location{};
    return location(split(text, '|'));
}

hierarchy_level location::level() const noexcept {
    const std::size_t d = segments_.size();
    if (d >= depth_of(hierarchy_level::device)) return hierarchy_level::device;
    return static_cast<hierarchy_level>(d);
}

std::string_view location::leaf() const noexcept {
    if (segments_.empty()) return {};
    return segments_.back();
}

location location::parent() const {
    if (segments_.empty()) return {};
    return location(std::vector<std::string>(segments_.begin(), segments_.end() - 1));
}

location location::ancestor_at(hierarchy_level level) const {
    const std::size_t want = depth_of(level);
    if (want >= segments_.size()) return *this;
    return location(std::vector<std::string>(segments_.begin(),
                                             segments_.begin() + static_cast<std::ptrdiff_t>(want)));
}

bool location::contains(const location& other) const noexcept {
    if (segments_.size() > other.segments_.size()) return false;
    for (std::size_t i = 0; i < segments_.size(); ++i) {
        if (segments_[i] != other.segments_[i]) return false;
    }
    return true;
}

bool location::is_ancestor_of(const location& other) const noexcept {
    return segments_.size() < other.segments_.size() && contains(other);
}

location location::common_ancestor(const location& a, const location& b) {
    std::vector<std::string> out;
    const std::size_t n = std::min(a.segments_.size(), b.segments_.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (a.segments_[i] != b.segments_[i]) break;
        out.push_back(a.segments_[i]);
    }
    return location(std::move(out));
}

location location::child(std::string segment) const {
    std::vector<std::string> out = segments_;
    out.push_back(std::move(segment));
    return location(std::move(out));
}

std::string location::to_string() const { return join(segments_, "|"); }

std::size_t location_hash::operator()(const location& loc) const noexcept {
    // Per-segment hashes folded with a position-dependent combiner
    // (boost::hash_combine's golden-ratio mixer): the running value is
    // shifted into each fold, so permuted segments ("a|b" vs "b|a") and
    // shifted boundaries ("ab|" vs "a|b") land in different buckets.
    std::size_t h = 0x9e3779b97f4a7c15ull ^ loc.depth();
    for (const std::string& seg : loc.segments()) {
        const std::size_t sh = std::hash<std::string_view>{}(seg);
        h ^= sh + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return h;
}

}  // namespace skynet
