#include "skynet/topology/serialization.h"

#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "skynet/common/strings.h"

namespace skynet {

std::string_view role_token(device_role role) noexcept {
    switch (role) {
        case device_role::tor: return "tor";
        case device_role::agg: return "agg";
        case device_role::csr: return "csr";
        case device_role::dcbr: return "dcbr";
        case device_role::isr: return "isr";
        case device_role::bsr: return "bsr";
        case device_role::reflector: return "reflector";
        case device_role::isp: return "isp";
    }
    return "tor";
}

std::optional<device_role> parse_role(std::string_view token) noexcept {
    for (const device_role role :
         {device_role::tor, device_role::agg, device_role::csr, device_role::dcbr,
          device_role::isr, device_role::bsr, device_role::reflector, device_role::isp}) {
        if (token == role_token(role)) return role;
    }
    return std::nullopt;
}

namespace {

/// Location paths may contain spaces (hierarchy segments are free text);
/// the exporter wraps such paths in double quotes so they stay one token.
std::string quoted_path(const location& loc) {
    std::string path = loc.to_string();
    if (path.find_first_of(" \t") != std::string::npos) return '"' + path + '"';
    return path;
}

/// split_whitespace plus double-quote support: a quoted span joins into
/// the surrounding token with its whitespace preserved. Returns nullopt
/// on an unterminated quote.
std::optional<std::vector<std::string>> split_quoted(std::string_view line) {
    std::vector<std::string> tokens;
    std::string current;
    bool in_token = false;
    bool in_quote = false;
    for (const char c : line) {
        if (in_quote) {
            if (c == '"') {
                in_quote = false;
            } else {
                current += c;
            }
        } else if (c == '"') {
            in_quote = true;
            in_token = true;
        } else if (c == ' ' || c == '\t' || c == '\r') {
            if (in_token) {
                tokens.push_back(std::move(current));
                current.clear();
                in_token = false;
            }
        } else {
            current += c;
            in_token = true;
        }
    }
    if (in_quote) return std::nullopt;
    if (in_token) tokens.push_back(std::move(current));
    return tokens;
}

}  // namespace

std::string export_topology(const topology& topo) {
    std::string out = "# skynet topology v1\n";
    char buf[64];

    for (const device& d : topo.devices()) {
        out += "device " + d.name + " " + std::string(role_token(d.role)) + " " +
               quoted_path(d.loc) + "\n";
        if (d.legacy_slow_snmp || d.supports_int) {
            out += "flags " + d.name;
            if (d.legacy_slow_snmp) out += " legacy_snmp";
            if (d.supports_int) out += " int";
            out += "\n";
        }
    }
    for (const device_group& g : topo.groups()) {
        if (g.members.empty()) continue;
        out += "group " + g.name;
        for (device_id m : g.members) out += " " + topo.device_at(m).name;
        out += "\n";
    }
    for (const circuit_set& cs : topo.circuit_sets()) {
        out += "cset " + cs.name + " " + topo.device_at(cs.a).name + " " +
               topo.device_at(cs.b).name + "\n";
    }
    for (const link& l : topo.links()) {
        std::snprintf(buf, sizeof buf, " %g", l.capacity_gbps);
        out += "link " + topo.device_at(l.a).name + " " + topo.device_at(l.b).name + " " +
               (l.cset == invalid_circuit_set ? "-" : topo.circuit_set_at(l.cset).name) + buf +
               (l.internet_entry ? " internet" : "") + "\n";
    }
    return out;
}

topology_parse_result import_topology(std::string_view text) {
    topology_parse_result result;
    std::unordered_map<std::string, circuit_set_id> csets_by_name;
    std::unordered_map<std::string, group_id> groups_by_name;

    std::string_view current_line;
    auto fail = [&result, &current_line](int line, std::string message) {
        result.errors.push_back(topology_parse_error{.line = line,
                                                     .message = std::move(message),
                                                     .text = std::string(current_line)});
    };

    auto find_device = [&](int line, const std::string& name) -> std::optional<device_id> {
        const auto id = result.topo.find_device(name);
        if (!id) fail(line, "unknown device: '" + name + "'");
        return id;
    };

    int line_no = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t nl = text.find('\n', pos);
        std::string_view raw = text.substr(pos, nl == std::string_view::npos ? text.size() - pos
                                                                             : nl - pos);
        pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
        ++line_no;
        current_line = raw;

        if (const std::size_t hash = raw.find('#'); hash != std::string_view::npos) {
            raw = raw.substr(0, hash);
        }
        std::optional<std::vector<std::string>> split = split_quoted(raw);
        if (!split) {
            fail(line_no, "unterminated quote");
            continue;
        }
        std::vector<std::string> tokens = std::move(*split);
        if (tokens.empty()) continue;
        const std::string& kind = tokens[0];

        if (kind == "device") {
            if (tokens.size() != 4) {
                fail(line_no, "device needs: device <name> <role> <location>");
                continue;
            }
            const auto role = parse_role(tokens[2]);
            if (!role) {
                fail(line_no, "unknown role: '" + tokens[2] + "'");
                continue;
            }
            if (result.topo.find_device(tokens[1])) {
                fail(line_no, "duplicate device: '" + tokens[1] + "'");
                continue;
            }
            const location loc = location::parse(tokens[3]);
            if (loc.is_root()) {
                fail(line_no, "device location must not be empty");
                continue;
            }
            (void)result.topo.add_device(tokens[1], *role, loc);
        } else if (kind == "flags") {
            if (tokens.size() < 2) {
                fail(line_no, "flags needs a device name");
                continue;
            }
            const auto id = find_device(line_no, tokens[1]);
            if (!id) continue;
            for (std::size_t i = 2; i < tokens.size(); ++i) {
                if (tokens[i] == "legacy_snmp") {
                    result.topo.set_legacy_slow_snmp(*id, true);
                } else if (tokens[i] == "int") {
                    result.topo.set_supports_int(*id, true);
                } else {
                    fail(line_no, "unknown flag: '" + tokens[i] + "'");
                }
            }
        } else if (kind == "group") {
            if (tokens.size() < 3) {
                fail(line_no, "group needs: group <name> <member> [member...]");
                continue;
            }
            auto [it, inserted] = groups_by_name.try_emplace(tokens[1], invalid_group);
            if (inserted) it->second = result.topo.add_group(tokens[1]);
            for (std::size_t i = 2; i < tokens.size(); ++i) {
                if (const auto id = find_device(line_no, tokens[i])) {
                    result.topo.add_to_group(it->second, *id);
                }
            }
        } else if (kind == "cset") {
            if (tokens.size() != 4) {
                fail(line_no, "cset needs: cset <name> <a> <b>");
                continue;
            }
            const auto a = find_device(line_no, tokens[2]);
            const auto b = find_device(line_no, tokens[3]);
            if (!a || !b) continue;
            if (csets_by_name.contains(tokens[1])) {
                fail(line_no, "duplicate circuit set: '" + tokens[1] + "'");
                continue;
            }
            csets_by_name.emplace(tokens[1], result.topo.add_circuit_set(tokens[1], *a, *b));
        } else if (kind == "link") {
            if (tokens.size() != 5 && tokens.size() != 6) {
                fail(line_no, "link needs: link <a> <b> <cset|-> <capacity> [internet]");
                continue;
            }
            const auto a = find_device(line_no, tokens[1]);
            const auto b = find_device(line_no, tokens[2]);
            if (!a || !b) continue;
            circuit_set_id cset = invalid_circuit_set;
            if (tokens[3] != "-") {
                const auto it = csets_by_name.find(tokens[3]);
                if (it == csets_by_name.end()) {
                    fail(line_no, "unknown circuit set: '" + tokens[3] + "'");
                    continue;
                }
                cset = it->second;
            }
            char* end = nullptr;
            const double capacity = std::strtod(tokens[4].c_str(), &end);
            if (end == tokens[4].c_str() || *end != '\0' || capacity <= 0.0) {
                fail(line_no, "bad capacity: '" + tokens[4] + "'");
                continue;
            }
            bool internet = false;
            if (tokens.size() == 6) {
                if (tokens[5] != "internet") {
                    fail(line_no, "unknown link attribute: '" + tokens[5] + "'");
                    continue;
                }
                internet = true;
            }
            (void)result.topo.add_link(*a, *b, cset, capacity, internet);
        } else {
            fail(line_no, "unknown directive: '" + kind + "'");
        }
    }
    return result;
}

}  // namespace skynet
