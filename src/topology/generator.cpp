#include "skynet/topology/generator.h"

#include <string>
#include <vector>

#include "skynet/common/rng.h"

namespace skynet {
namespace {

std::string seq_name(const std::string& prefix, int i) { return prefix + "-" + std::to_string(i); }

}  // namespace

generator_params generator_params::tiny() {
    generator_params p;
    p.regions = 1;
    p.cities_per_region = 1;
    p.logic_sites_per_city = 1;
    p.sites_per_logic_site = 2;
    p.clusters_per_site = 2;
    p.tors_per_cluster = 2;
    p.aggs_per_cluster = 1;
    p.csrs_per_site = 2;
    p.dcbrs_per_logic_site = 2;
    p.isrs_per_logic_site = 1;
    p.bsrs_per_city = 1;
    p.internet_circuits_per_isr = 4;
    return p;
}

generator_params generator_params::small() { return generator_params{}; }

generator_params generator_params::medium() {
    generator_params p;
    p.regions = 3;
    p.cities_per_region = 2;
    p.logic_sites_per_city = 2;
    p.sites_per_logic_site = 3;
    p.clusters_per_site = 4;
    p.tors_per_cluster = 8;
    p.aggs_per_cluster = 2;
    p.csrs_per_site = 4;
    p.dcbrs_per_logic_site = 2;
    p.isrs_per_logic_site = 2;
    p.bsrs_per_city = 2;
    return p;
}

generator_params generator_params::large() {
    generator_params p;
    p.regions = 4;
    p.cities_per_region = 3;
    p.logic_sites_per_city = 2;
    p.sites_per_logic_site = 4;
    p.clusters_per_site = 8;
    p.tors_per_cluster = 16;
    p.aggs_per_cluster = 4;
    p.csrs_per_site = 4;
    p.dcbrs_per_logic_site = 4;
    p.isrs_per_logic_site = 2;
    p.bsrs_per_city = 4;
    return p;
}

topology generate_topology(const generator_params& params) {
    topology topo;
    rng rand(params.seed);

    // One external ISP peer per region, attached under the synthetic "ISP"
    // branch of the hierarchy (Figure 5b shows ISP as a sibling of the
    // regions).
    std::vector<device_id> isps;
    for (int r = 0; r < params.regions; ++r) {
        const std::string name = seq_name("ISP", r + 1);
        isps.push_back(topo.add_device(name, device_role::isp, location{"ISP", name}));
    }

    std::vector<device_id> all_bsrs;  // for inter-region WAN meshing
    std::vector<location> cities;     // parallel to bsrs_by_city
    std::vector<std::vector<device_id>> bsrs_by_city;

    for (int r = 0; r < params.regions; ++r) {
        const std::string region_name = seq_name("Region", r + 1);
        const location region_loc{region_name};

        for (int c = 0; c < params.cities_per_region; ++c) {
            const std::string city_name = region_name + "/" + seq_name("City", c + 1);
            const location city_loc = region_loc.child(city_name);

            // City backbone routers.
            const group_id bsr_group = topo.add_group(city_name + "-BSR");
            std::vector<device_id> bsrs;
            for (int b = 0; b < params.bsrs_per_city; ++b) {
                const std::string name = city_name + "-" + seq_name("BSR", b + 1);
                const device_id id =
                    topo.add_device(name, device_role::bsr, city_loc.child(name));
                topo.add_to_group(bsr_group, id);
                bsrs.push_back(id);
                all_bsrs.push_back(id);
            }
            cities.push_back(city_loc);
            bsrs_by_city.push_back(bsrs);

            for (int ls = 0; ls < params.logic_sites_per_city; ++ls) {
                const std::string ls_name = city_name + "/" + seq_name("LS", ls + 1);
                const location ls_loc = city_loc.child(ls_name);

                // Data-center border routers.
                const group_id dcbr_group = topo.add_group(ls_name + "-DCBR");
                std::vector<device_id> dcbrs;
                for (int d = 0; d < params.dcbrs_per_logic_site; ++d) {
                    const std::string name = ls_name + "-" + seq_name("DCBR", d + 1);
                    const device_id id =
                        topo.add_device(name, device_role::dcbr, ls_loc.child(name));
                    topo.add_to_group(dcbr_group, id);
                    dcbrs.push_back(id);
                }

                // Internet switch routers with internet-entry bundles.
                const group_id isr_group = topo.add_group(ls_name + "-ISR");
                std::vector<device_id> isrs;
                for (int i = 0; i < params.isrs_per_logic_site; ++i) {
                    const std::string name = ls_name + "-" + seq_name("ISR", i + 1);
                    const device_id id =
                        topo.add_device(name, device_role::isr, ls_loc.child(name));
                    topo.add_to_group(isr_group, id);
                    isrs.push_back(id);

                    const circuit_set_id cs =
                        topo.add_circuit_set(name + "<->" + topo.device_at(isps[r]).name, id,
                                             isps[r]);
                    for (int k = 0; k < params.internet_circuits_per_isr; ++k) {
                        topo.add_link(id, isps[r], cs, 100.0, /*internet_entry=*/true);
                    }
                }

                // Route reflector.
                if (params.add_reflectors) {
                    const std::string name = ls_name + "-RR-1";
                    const device_id rr =
                        topo.add_device(name, device_role::reflector, ls_loc.child(name));
                    const group_id rr_group = topo.add_group(ls_name + "-RR");
                    topo.add_to_group(rr_group, rr);
                    for (device_id d : dcbrs) {
                        const circuit_set_id cs =
                            topo.add_circuit_set(name + "<->" + topo.device_at(d).name, rr, d);
                        topo.add_link(rr, d, cs, 10.0);
                    }
                }

                // DCBR uplinks: to every ISR of the logic site and every
                // BSR of the city.
                for (device_id d : dcbrs) {
                    for (device_id i : isrs) {
                        const circuit_set_id cs = topo.add_circuit_set(
                            topo.device_at(d).name + "<->" + topo.device_at(i).name, d, i);
                        for (int k = 0; k < params.circuits_per_agg_set; ++k) {
                            topo.add_link(d, i, cs, 400.0);
                        }
                    }
                    for (device_id b : bsrs) {
                        const circuit_set_id cs = topo.add_circuit_set(
                            topo.device_at(d).name + "<->" + topo.device_at(b).name, d, b);
                        for (int k = 0; k < params.circuits_per_agg_set; ++k) {
                            topo.add_link(d, b, cs, 400.0);
                        }
                    }
                }

                for (int s = 0; s < params.sites_per_logic_site; ++s) {
                    const std::string site_name = ls_name + "/" + seq_name("Site", s + 1);
                    const location site_loc = ls_loc.child(site_name);

                    // Site core switch routers.
                    const group_id csr_group = topo.add_group(site_name + "-CSR");
                    std::vector<device_id> csrs;
                    for (int k = 0; k < params.csrs_per_site; ++k) {
                        const std::string name = site_name + "-" + seq_name("CSR", k + 1);
                        const device_id id =
                            topo.add_device(name, device_role::csr, site_loc.child(name));
                        topo.add_to_group(csr_group, id);
                        csrs.push_back(id);
                        for (device_id d : dcbrs) {
                            const circuit_set_id cs = topo.add_circuit_set(
                                name + "<->" + topo.device_at(d).name, id, d);
                            for (int q = 0; q < params.circuits_per_agg_set; ++q) {
                                topo.add_link(id, d, cs, 400.0);
                            }
                        }
                    }

                    for (int cl = 0; cl < params.clusters_per_site; ++cl) {
                        const std::string cluster_name =
                            site_name + "/" + seq_name("Cluster", cl + 1);
                        const location cluster_loc = site_loc.child(cluster_name);

                        const group_id agg_group = topo.add_group(cluster_name + "-AGG");
                        std::vector<device_id> aggs;
                        for (int a = 0; a < params.aggs_per_cluster; ++a) {
                            const std::string name = cluster_name + "-" + seq_name("AGG", a + 1);
                            const device_id id =
                                topo.add_device(name, device_role::agg, cluster_loc.child(name));
                            topo.add_to_group(agg_group, id);
                            aggs.push_back(id);
                            for (device_id k : csrs) {
                                const circuit_set_id cs = topo.add_circuit_set(
                                    name + "<->" + topo.device_at(k).name, id, k);
                                for (int q = 0; q < params.circuits_per_agg_set; ++q) {
                                    topo.add_link(id, k, cs, 100.0);
                                }
                            }
                        }

                        const group_id tor_group = topo.add_group(cluster_name + "-TOR");
                        for (int t = 0; t < params.tors_per_cluster; ++t) {
                            const std::string name = cluster_name + "-" + seq_name("TOR", t + 1);
                            const device_id id =
                                topo.add_device(name, device_role::tor, cluster_loc.child(name));
                            topo.add_to_group(tor_group, id);
                            for (device_id a : aggs) {
                                const circuit_set_id cs = topo.add_circuit_set(
                                    name + "<->" + topo.device_at(a).name, id, a);
                                topo.add_link(id, a, cs, 25.0);
                            }
                        }
                    }
                }
            }
        }
    }

    // WAN: full mesh among a city's BSRs and ring+chords across cities.
    for (std::size_t i = 0; i < cities.size(); ++i) {
        for (std::size_t j = i + 1; j < cities.size(); ++j) {
            // Connect the first BSR of each city pair; within the same
            // region connect all pairs for denser redundancy.
            const location region_i = cities[i].ancestor_at(hierarchy_level::region);
            const location region_j = cities[j].ancestor_at(hierarchy_level::region);
            const bool same_region = region_i == region_j;
            const bool ring_neighbor = (j == i + 1) || (i == 0 && j == cities.size() - 1);
            if (!same_region && !ring_neighbor) continue;

            const std::size_t pairs = same_region ? bsrs_by_city[i].size() : 1;
            for (std::size_t p = 0; p < pairs && p < bsrs_by_city[j].size(); ++p) {
                const device_id a = bsrs_by_city[i][p];
                const device_id b = bsrs_by_city[j][p];
                const circuit_set_id cs = topo.add_circuit_set(
                    topo.device_at(a).name + "<->" + topo.device_at(b).name, a, b);
                for (int k = 0; k < params.circuits_per_wan_set; ++k) {
                    topo.add_link(a, b, cs, 400.0);
                }
            }
        }
    }

    // Device capability flags.
    for (const device& d : topo.devices()) {
        if (d.role == device_role::isp) continue;
        if (rand.chance(params.legacy_snmp_fraction)) topo.set_legacy_slow_snmp(d.id, true);
        if (rand.chance(params.int_support_fraction)) topo.set_supports_int(d.id, true);
    }

    return topo;
}

}  // namespace skynet
