#include "skynet/topology/topology.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "skynet/common/error.h"

namespace skynet {

std::string_view to_string(device_role role) noexcept {
    switch (role) {
        case device_role::tor: return "TOR";
        case device_role::agg: return "AGG";
        case device_role::csr: return "CSR";
        case device_role::dcbr: return "DCBR";
        case device_role::isr: return "ISR";
        case device_role::bsr: return "BSR";
        case device_role::reflector: return "RR";
        case device_role::isp: return "ISP";
    }
    return "?";
}

device_id topology::add_device(std::string name, device_role role, location loc) {
    const auto id = static_cast<device_id>(devices_.size());
    if (device_by_name_.contains(name)) {
        throw skynet_error("duplicate device name: " + name);
    }
    device_by_name_.emplace(name, id);
    const location_id lid = locations_.intern(loc);
    devices_.push_back(device{.id = id,
                              .name = std::move(name),
                              .role = role,
                              .loc = std::move(loc),
                              .loc_id = lid,
                              .group = invalid_group,
                              .legacy_slow_snmp = false,
                              .supports_int = false});
    links_by_device_.emplace_back();
    csets_by_device_.emplace_back();
    return id;
}

link_id topology::add_link(device_id a, device_id b, circuit_set_id cset, double capacity_gbps,
                           bool internet_entry) {
    if (a >= devices_.size() || b >= devices_.size()) throw skynet_error("add_link: bad endpoint");
    const auto id = static_cast<link_id>(links_.size());
    links_.push_back(link{.id = id,
                          .a = a,
                          .b = b,
                          .cset = cset,
                          .capacity_gbps = capacity_gbps,
                          .internet_entry = internet_entry});
    links_by_device_[a].push_back(id);
    links_by_device_[b].push_back(id);
    if (cset != invalid_circuit_set) {
        if (cset >= csets_.size()) throw skynet_error("add_link: bad circuit set");
        csets_[cset].circuits.push_back(id);
    }
    return id;
}

circuit_set_id topology::add_circuit_set(std::string name, device_id a, device_id b) {
    if (a >= devices_.size() || b >= devices_.size()) {
        throw skynet_error("add_circuit_set: bad endpoint");
    }
    const auto id = static_cast<circuit_set_id>(csets_.size());
    csets_.push_back(circuit_set{.id = id, .name = std::move(name), .a = a, .b = b, .circuits = {}});
    csets_by_device_[a].push_back(id);
    csets_by_device_[b].push_back(id);
    return id;
}

group_id topology::add_group(std::string name) {
    const auto id = static_cast<group_id>(groups_.size());
    groups_.push_back(device_group{.id = id, .name = std::move(name), .members = {}});
    return id;
}

void topology::add_to_group(group_id g, device_id d) {
    if (g >= groups_.size() || d >= devices_.size()) throw skynet_error("add_to_group: bad id");
    groups_[g].members.push_back(d);
    devices_[d].group = g;
}

void topology::set_legacy_slow_snmp(device_id d, bool value) {
    if (d >= devices_.size()) throw skynet_error("set_legacy_slow_snmp: bad id");
    devices_[d].legacy_slow_snmp = value;
}

void topology::set_supports_int(device_id d, bool value) {
    if (d >= devices_.size()) throw skynet_error("set_supports_int: bad id");
    devices_[d].supports_int = value;
}

const device& topology::device_at(device_id id) const {
    if (id >= devices_.size()) throw skynet_error("device_at: bad id");
    return devices_[id];
}

const link& topology::link_at(link_id id) const {
    if (id >= links_.size()) throw skynet_error("link_at: bad id");
    return links_[id];
}

const circuit_set& topology::circuit_set_at(circuit_set_id id) const {
    if (id >= csets_.size()) throw skynet_error("circuit_set_at: bad id");
    return csets_[id];
}

const device_group& topology::group_at(group_id id) const {
    if (id >= groups_.size()) throw skynet_error("group_at: bad id");
    return groups_[id];
}

std::optional<device_id> topology::find_device(std::string_view name) const {
    const auto it = device_by_name_.find(std::string(name));
    if (it == device_by_name_.end()) return std::nullopt;
    return it->second;
}

std::vector<device_id> topology::devices_under(const location& loc) const {
    std::vector<device_id> out;
    for (const device& d : devices_) {
        if (loc.contains(d.loc)) out.push_back(d.id);
    }
    return out;
}

std::vector<device_id> topology::devices_under(location_id scope) const {
    std::vector<device_id> out;
    for (const device& d : devices_) {
        if (locations_.contains(scope, d.loc_id)) out.push_back(d.id);
    }
    return out;
}

std::vector<location> topology::clusters_under(const location& loc) const {
    std::unordered_set<location, location_hash> seen;
    std::vector<location> out;
    for (const device& d : devices_) {
        if (!loc.contains(d.loc)) continue;
        if (d.loc.depth() <= depth_of(hierarchy_level::cluster)) continue;
        location cluster = d.loc.ancestor_at(hierarchy_level::cluster);
        if (seen.insert(cluster).second) out.push_back(cluster);
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<location_id> topology::cluster_ids_under(location_id scope) const {
    std::unordered_set<location_id> seen;
    std::vector<location_id> out;
    for (const device& d : devices_) {
        if (!locations_.contains(scope, d.loc_id)) continue;
        if (locations_.depth(d.loc_id) <= depth_of(hierarchy_level::cluster)) continue;
        const location_id cluster = locations_.ancestor_at(d.loc_id, hierarchy_level::cluster);
        if (seen.insert(cluster).second) out.push_back(cluster);
    }
    std::sort(out.begin(), out.end(), [this](location_id a, location_id b) {
        return locations_.path_of(a) < locations_.path_of(b);
    });
    return out;
}

std::span<const link_id> topology::links_of(device_id d) const {
    if (d >= devices_.size()) throw skynet_error("links_of: bad id");
    return links_by_device_[d];
}

std::vector<device_id> topology::neighbors(device_id d) const {
    std::vector<device_id> out;
    for (link_id lid : links_of(d)) {
        const link& l = links_[lid];
        const device_id other = (l.a == d) ? l.b : l.a;
        if (std::find(out.begin(), out.end(), other) == out.end()) out.push_back(other);
    }
    return out;
}

std::span<const circuit_set_id> topology::circuit_sets_of(device_id d) const {
    if (d >= devices_.size()) throw skynet_error("circuit_sets_of: bad id");
    return csets_by_device_[d];
}

bool topology::adjacent(device_id a, device_id b) const {
    for (link_id lid : links_of(a)) {
        const link& l = links_[lid];
        if (l.a == b || l.b == b) return true;
    }
    return false;
}

std::vector<std::vector<device_id>> topology::connected_components(
    std::span<const device_id> members) const {
    std::unordered_set<device_id> pool(members.begin(), members.end());
    std::vector<std::vector<device_id>> out;

    auto same_cluster = [this](device_id x, device_id y) {
        const location_id cx = locations_.ancestor_at(devices_[x].loc_id, hierarchy_level::cluster);
        const location_id cy = locations_.ancestor_at(devices_[y].loc_id, hierarchy_level::cluster);
        return locations_.depth(cx) == depth_of(hierarchy_level::cluster) && cx == cy;
    };

    while (!pool.empty()) {
        const device_id seed = *pool.begin();
        pool.erase(pool.begin());
        std::vector<device_id> component{seed};
        std::deque<device_id> frontier{seed};
        while (!frontier.empty()) {
            const device_id cur = frontier.front();
            frontier.pop_front();
            // Direct links into the remaining pool.
            std::vector<device_id> found;
            for (link_id lid : links_of(cur)) {
                const link& l = links_[lid];
                const device_id other = (l.a == cur) ? l.b : l.a;
                if (pool.contains(other)) found.push_back(other);
            }
            // Shared-cluster fabric.
            for (device_id candidate : pool) {
                if (same_cluster(cur, candidate)) found.push_back(candidate);
            }
            for (device_id f : found) {
                if (pool.erase(f) > 0) {
                    component.push_back(f);
                    frontier.push_back(f);
                }
            }
        }
        std::sort(component.begin(), component.end());
        out.push_back(std::move(component));
    }
    std::sort(out.begin(), out.end(),
              [](const auto& x, const auto& y) { return x.front() < y.front(); });
    return out;
}

std::optional<int> topology::hop_distance(device_id a, device_id b) const {
    if (a >= devices_.size() || b >= devices_.size()) throw skynet_error("hop_distance: bad id");
    if (a == b) return 0;
    std::vector<int> dist(devices_.size(), -1);
    dist[a] = 0;
    std::deque<device_id> frontier{a};
    while (!frontier.empty()) {
        const device_id cur = frontier.front();
        frontier.pop_front();
        for (link_id lid : links_of(cur)) {
            const link& l = links_[lid];
            const device_id other = (l.a == cur) ? l.b : l.a;
            if (dist[other] != -1) continue;
            dist[other] = dist[cur] + 1;
            if (other == b) return dist[other];
            frontier.push_back(other);
        }
    }
    return std::nullopt;
}

}  // namespace skynet
