#include "skynet/sim/network_state.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>

#include "skynet/common/error.h"

namespace skynet {

network_state::network_state(const topology* topo, const customer_registry* customers)
    : topo_(topo), customers_(customers) {
    if (topo_ == nullptr || customers_ == nullptr) {
        throw skynet_error("network_state: null topology or customer registry");
    }
    devices_.resize(topo_->devices().size());
    links_.resize(topo_->links().size());
    offered_.resize(topo_->circuit_sets().size(), 0.0);
    demand_.resize(topo_->circuit_sets().size(), 0.0);
    flow_rates_.resize(customers_->sla_flows().size(), 0.0);
    reset_traffic();
}

device_health& network_state::device_state(device_id id) {
    if (id >= devices_.size()) throw skynet_error("network_state::device: bad id");
    return devices_[id];
}
const device_health& network_state::device_state(device_id id) const {
    if (id >= devices_.size()) throw skynet_error("network_state::device: bad id");
    return devices_[id];
}
link_health& network_state::link_state(link_id id) {
    if (id >= links_.size()) throw skynet_error("network_state::link: bad id");
    return links_[id];
}
const link_health& network_state::link_state(link_id id) const {
    if (id >= links_.size()) throw skynet_error("network_state::link: bad id");
    return links_[id];
}

bool network_state::link_usable(link_id id) const {
    const link& l = topo_->link_at(id);
    if (!links_[id].up) return false;
    const device_health& da = devices_[l.a];
    const device_health& db = devices_[l.b];
    return da.alive && !da.isolated && db.alive && !db.isolated;
}

double network_state::break_ratio(circuit_set_id cset) const {
    const circuit_set& cs = topo_->circuit_set_at(cset);
    if (cs.circuits.empty()) return 0.0;
    int broken = 0;
    for (link_id lid : cs.circuits) {
        if (!link_usable(lid)) ++broken;
    }
    return static_cast<double>(broken) / static_cast<double>(cs.circuits.size());
}

double network_state::live_capacity_gbps(circuit_set_id cset) const {
    const circuit_set& cs = topo_->circuit_set_at(cset);
    double cap = 0.0;
    for (link_id lid : cs.circuits) {
        if (link_usable(lid)) cap += topo_->link_at(lid).capacity_gbps;
    }
    return cap;
}

double network_state::offered_gbps(circuit_set_id cset) const {
    if (cset >= offered_.size()) throw skynet_error("offered_gbps: bad id");
    return offered_[cset];
}

void network_state::set_offered_gbps(circuit_set_id cset, double gbps) {
    if (cset >= offered_.size()) throw skynet_error("set_offered_gbps: bad id");
    demand_[cset] = std::max(0.0, gbps);
    offered_[cset] = demand_[cset];
}

double network_state::utilization(circuit_set_id cset) const {
    const double cap = live_capacity_gbps(cset);
    const double load = offered_gbps(cset);
    if (cap <= 0.0) return load > 0.0 ? 100.0 : 0.0;
    return load / cap;
}

double network_state::congestion_loss(circuit_set_id cset) const {
    const double util = utilization(cset);
    if (util <= congestion_knee) return 0.0;
    if (util >= 1.0) {
        // Everything beyond capacity is dropped.
        return std::min(0.99, (util - 1.0 + 0.02) / util);
    }
    // Queue-tail drops ramp from 0 at the knee to ~2 % at full load.
    return 0.02 * (util - congestion_knee) / (1.0 - congestion_knee);
}

double network_state::traversal_loss(circuit_set_id cset) const {
    const circuit_set& cs = topo_->circuit_set_at(cset);
    double corruption = 0.0;
    int usable = 0;
    for (link_id lid : cs.circuits) {
        if (!link_usable(lid)) continue;
        corruption += links_[lid].corruption_loss;
        ++usable;
    }
    if (usable > 0) corruption /= usable;
    // Loss beyond the ISP boundary is invisible to our sampling points
    // (sFlow/INT run on our devices); only end-to-end internet probes
    // see it.
    double silent = 0.0;
    for (device_id endpoint : {cs.a, cs.b}) {
        if (topo_->device_at(endpoint).role != device_role::isp) {
            silent += devices_[endpoint].silent_loss;
        }
    }
    const double total = congestion_loss(cset) + corruption + silent;
    return std::min(0.99, total);
}

double network_state::flow_rate_gbps(sla_flow_id id) const {
    if (id >= flow_rates_.size()) throw skynet_error("flow_rate_gbps: bad id");
    return flow_rates_[id];
}

void network_state::set_flow_rate_gbps(sla_flow_id id, double gbps) {
    if (id >= flow_rates_.size()) throw skynet_error("set_flow_rate_gbps: bad id");
    flow_rates_[id] = std::max(0.0, gbps);
}

double network_state::sla_overload_ratio(circuit_set_id cset) const {
    const std::span<const sla_flow_id> flows = customers_->flows_on(cset);
    if (flows.empty()) return 0.0;
    const bool loss_violated = traversal_loss(cset) > sla_loss_limit;
    int over = 0;
    for (sla_flow_id f : flows) {
        if (loss_violated || flow_rates_[f] > customers_->flow_at(f).committed_gbps) ++over;
    }
    return static_cast<double>(over) / static_cast<double>(flows.size());
}

double network_state::max_sla_overload(std::span<const circuit_set_id> csets) const {
    double best = 0.0;
    for (circuit_set_id cs : csets) {
        const std::span<const sla_flow_id> flows = customers_->flows_on(cs);
        if (flows.empty()) continue;
        // Loss violation: the loss ratio itself (comparable to R_k).
        const double loss = traversal_loss(cs);
        if (loss > sla_loss_limit) {
            best = std::max(best, std::clamp(loss, 0.0, 1.0));
        }
        for (sla_flow_id f : flows) {
            const double committed = customers_->flow_at(f).committed_gbps;
            if (committed <= 0.0) continue;
            const double overshoot = flow_rates_[f] / committed - 1.0;
            best = std::max(best, std::clamp(overshoot, 0.0, 1.0));
        }
    }
    return best;
}

network_state::probe_result network_state::probe(device_id src, device_id dst) const {
    probe_result result;
    if (src >= devices_.size() || dst >= devices_.size()) {
        throw skynet_error("probe: bad device id");
    }
    if (!devices_[src].alive || !devices_[dst].alive) return result;
    if (src == dst) {
        result.reachable = true;
        result.hops = {src};
        return result;
    }

    // BFS over usable links; parent tracking for path recovery.
    std::vector<link_id> via(devices_.size(), invalid_link);
    std::vector<device_id> parent(devices_.size(), invalid_device);
    std::vector<bool> seen(devices_.size(), false);
    seen[src] = true;
    std::deque<device_id> frontier{src};
    bool found = false;
    while (!frontier.empty() && !found) {
        const device_id cur = frontier.front();
        frontier.pop_front();
        for (link_id lid : topo_->links_of(cur)) {
            if (!link_usable(lid)) continue;
            const link& l = topo_->link_at(lid);
            const device_id other = (l.a == cur) ? l.b : l.a;
            if (seen[other]) continue;
            seen[other] = true;
            parent[other] = cur;
            via[other] = lid;
            if (other == dst) {
                found = true;
                break;
            }
            frontier.push_back(other);
        }
    }
    if (!found) return result;

    // Accumulate loss and latency along the recovered path.
    result.reachable = true;
    double pass = 1.0;
    double latency = 0.0;
    device_id cur = dst;
    while (cur != src) {
        result.hops.push_back(cur);
        const link_id lid = via[cur];
        const link& l = topo_->link_at(lid);
        const circuit_set_id cset = l.cset;
        double hop_loss = links_[lid].corruption_loss + devices_[cur].silent_loss;
        double hop_latency = 0.05;  // base per-hop forwarding delay (ms)
        if (cset != invalid_circuit_set) {
            hop_loss += congestion_loss(cset);
            const double util = utilization(cset);
            if (util > 0.8) hop_latency += 2.0 * (util - 0.8) * 10.0;  // queueing delay
        }
        pass *= 1.0 - std::min(0.99, hop_loss);
        latency += hop_latency;
        cur = parent[cur];
    }
    result.hops.push_back(src);
    std::reverse(result.hops.begin(), result.hops.end());
    result.loss = 1.0 - pass;
    result.latency_ms = latency;
    return result;
}

std::optional<device_id> network_state::representative(const location& cluster) const {
    // Prefer an alive ToR; fall back to any device under the location.
    std::optional<device_id> any;
    for (const device& d : topo_->devices()) {
        if (!cluster.contains(d.loc)) continue;
        if (!any) any = d.id;
        if (d.role == device_role::tor && devices_[d.id].alive) return d.id;
    }
    return any;
}

std::optional<device_id> network_state::representative(location_id cluster) const {
    const location_table& table = topo_->locations();
    std::optional<device_id> any;
    for (const device& d : topo_->devices()) {
        if (!table.contains(cluster, d.loc_id)) continue;
        if (!any) any = d.id;
        if (d.role == device_role::tor && devices_[d.id].alive) return d.id;
    }
    return any;
}

void network_state::reset_traffic(double baseline_util) {
    for (const circuit_set& cs : topo_->circuit_sets()) {
        double cap = 0.0;
        for (link_id lid : cs.circuits) cap += topo_->link_at(lid).capacity_gbps;
        demand_[cs.id] = cap * baseline_util;
        offered_[cs.id] = demand_[cs.id];
    }
    for (const sla_flow& f : customers_->sla_flows()) {
        flow_rates_[f.id] = f.committed_gbps * 0.7;
    }
}

void network_state::clear_route_incidents(const location& scope) {
    std::erase_if(route_incidents_,
                  [&scope](const route_incident& r) { return scope.contains(r.where); });
}

void network_state::apply_traffic_shift() {
    // Load of circuit sets with zero live capacity spills onto sibling
    // sets: other sets sharing an endpoint device's group peers. This is
    // the backup-path congestion mechanism of §2.2 — half the internet
    // entry dies, the survivors melt.
    for (const circuit_set& cs : topo_->circuit_sets()) {
        offered_[cs.id] = demand_[cs.id];
    }
    for (const circuit_set& cs : topo_->circuit_sets()) {
        const double cap = live_capacity_gbps(cs.id);
        if (cap > 0.0) continue;
        const double displaced = demand_[cs.id];
        if (displaced <= 0.0) continue;

        // Sibling sets: same endpoint pair roles, endpoints in the same
        // groups. E.g. TOR1<->AGG1 dead, shift to TOR1<->AGG2.
        std::vector<circuit_set_id> siblings;
        for (device_id endpoint : {cs.a, cs.b}) {
            for (circuit_set_id other_id : topo_->circuit_sets_of(endpoint)) {
                if (other_id == cs.id) continue;
                if (live_capacity_gbps(other_id) <= 0.0) continue;
                const circuit_set& other = topo_->circuit_set_at(other_id);
                const device_id far_mine = (cs.a == endpoint) ? cs.b : cs.a;
                const device_id far_other = (other.a == endpoint) ? other.b : other.a;
                // A real backup reaches an interchangeable peer device.
                if (topo_->device_at(far_mine).group != invalid_group &&
                    topo_->device_at(far_mine).group == topo_->device_at(far_other).group) {
                    siblings.push_back(other_id);
                }
            }
        }
        if (siblings.empty()) continue;
        const double share = displaced / static_cast<double>(siblings.size());
        for (circuit_set_id s : siblings) offered_[s] += share;
    }
}

}  // namespace skynet
