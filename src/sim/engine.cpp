#include "skynet/sim/engine.h"

#include "skynet/common/error.h"

namespace skynet {

simulation_engine::simulation_engine(const topology* topo, const customer_registry* customers,
                                     engine_params params)
    : topo_(topo), state_(topo, customers), rand_(params.seed), params_(params) {}

void simulation_engine::add_monitor(std::unique_ptr<monitor_tool> tool) {
    // Stagger the first poll across the tool's period — real sweeps are
    // not phase-aligned, and a 5-minute patrol that always fired at the
    // same instant as every other tool would systematically miss short
    // failures.
    const sim_duration phase = rand_.uniform_int(0, tool->period());
    monitors_.push_back(monitor_slot{.tool = std::move(tool), .next_due = clock_.now() + phase});
}

void simulation_engine::add_default_monitors(monitor_options opts) {
    for (auto& tool : make_all_monitors(*topo_, opts)) {
        add_monitor(std::move(tool));
    }
}

void simulation_engine::inject(std::unique_ptr<scenario> s, sim_time start,
                               sim_duration duration) {
    if (s == nullptr) throw skynet_error("inject: null scenario");
    scenario_record record{.name = s->name(),
                           .cause = s->cause(),
                           .scope = s->scope(),
                           .scopes = s->scopes(),
                           .active = time_range{start, start + duration},
                           .severe = s->severe(),
                           .benign = s->benign(),
                           .must_detect = s->must_detect(),
                           .culprit = s->culprit()};
    records_.push_back(std::move(record));
    scheduled_.push_back(scheduled{.s = std::move(s),
                                   .start = start,
                                   .end = start + duration,
                                   .started = false,
                                   .finished = false,
                                   .record = records_.size() - 1});
}

sim_duration simulation_engine::delivery_delay(const raw_alert& alert) {
    if (alert.source == data_source::snmp && alert.device &&
        topo_->device_at(*alert.device).legacy_slow_snmp) {
        // Weak-CPU devices hold SNMP notifications for up to ~2 minutes.
        return rand_.uniform_int(seconds(20), params_.legacy_snmp_max_delay);
    }
    // Everything else: collection-path jitter up to a couple of seconds.
    return rand_.uniform_int(0, seconds(2));
}

void simulation_engine::run_until(sim_time end, const alert_sink& sink, const tick_hook& hook) {
    if (!sink) {
        run_until_batched(end, nullptr, hook);
        return;
    }
    run_until_batched(
        end,
        [&sink](std::span<const traced_alert> delivered) {
            for (const traced_alert& t : delivered) sink(t.alert, t.arrival);
        },
        hook);
}

void simulation_engine::run_until_batched(sim_time end, const batch_sink& sink,
                                          const tick_hook& hook) {
    std::vector<raw_alert> batch;
    std::vector<traced_alert> delivered;
    while (clock_.now() < end) {
        const sim_time now = clock_.now();

        // Scenario lifecycle.
        bool state_changed = false;
        for (scheduled& sc : scheduled_) {
            if (!sc.started && now >= sc.start && now < sc.end) {
                sc.s->on_start(state_, rand_, now);
                sc.started = true;
                state_changed = true;
            }
            if (sc.started && !sc.finished) {
                if (now >= sc.end) {
                    sc.s->on_end(state_, rand_, now);
                    sc.finished = true;
                    state_changed = true;
                } else {
                    sc.s->on_tick(state_, rand_, now);
                    state_changed = true;
                }
            }
        }
        if (state_changed) state_.apply_traffic_shift();

        // Monitors whose period elapsed.
        for (monitor_slot& slot : monitors_) {
            if (now < slot.next_due) continue;
            slot.next_due = now + slot.tool->period();
            batch.clear();
            slot.tool->poll(state_, now, rand_, batch);
            for (raw_alert& alert : batch) {
                queue_.push(pending_delivery{.arrival = now + delivery_delay(alert),
                                             .seq = seq_++,
                                             .alert = std::move(alert)});
            }
        }

        // Deliver everything that has arrived by the end of this tick,
        // as one ordered batch.
        const sim_time tick_end = now + params_.tick;
        delivered.clear();
        while (!queue_.empty() && queue_.top().arrival <= tick_end) {
            const pending_delivery& top = queue_.top();
            if (sink) {
                delivered.push_back(traced_alert{.alert = top.alert, .arrival = top.arrival});
            }
            queue_.pop();
        }
        if (sink && !delivered.empty()) sink(delivered);

        clock_.advance(params_.tick);
        if (hook) hook(clock_.now());
    }
}

}  // namespace skynet
