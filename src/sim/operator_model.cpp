#include "skynet/sim/operator_model.h"

#include <algorithm>
#include <cmath>

namespace skynet {

double mitigation_time_manual(const episode_observation& obs,
                              const operator_model_params& params, rng& rand) {
    // Triage: skim alerts until the root-cause alert is found. On
    // average it sits somewhere in the middle of what the operator can
    // read; floods beyond capacity mean it is probably never reached.
    const int triaged = std::min(obs.raw_alerts, params.triage_capacity);
    double t = params.seconds_per_alert * static_cast<double>(triaged) *
               rand.uniform_real(0.4, 1.0);

    // Wrong hypotheses: the §2.2 pattern — isolate devices, suspect
    // cables, only later find the congestion alert.
    const double expected_wrong =
        std::min(static_cast<double>(params.max_wrong_paths),
                 params.wrong_path_per_1000_alerts * static_cast<double>(obs.raw_alerts) / 1000.0);
    int wrong = 0;
    for (int i = 0; i < params.max_wrong_paths; ++i) {
        if (rand.chance(expected_wrong / params.max_wrong_paths)) ++wrong;
    }
    t += static_cast<double>(wrong) * params.wrong_path_seconds * rand.uniform_real(0.6, 1.2);

    // Root cause buried beyond triage capacity, or absent entirely:
    // ad-hoc spelunking through devices.
    const bool buried = obs.raw_alerts > params.triage_capacity;
    if (!obs.root_cause_alert_present || buried) {
        t += params.undetected_penalty_seconds * rand.uniform_real(0.5, 1.5);
    }

    t += params.action_seconds * rand.uniform_real(0.8, 1.4);
    return t;
}

double mitigation_time_skynet(const episode_observation& obs,
                              const operator_model_params& params, rng& rand) {
    // The operator reads the ranked incident reports; the top one is
    // usually the failure.
    const int reports = std::max(1, obs.incident_reports);
    double t = params.seconds_per_report * static_cast<double>(std::min(reports, 10)) *
               rand.uniform_real(0.5, 1.0);

    if (!obs.root_cause_surfaced) {
        // SkyNet still narrowed the scope; the operator inspects the
        // incident area manually, which is far cheaper than a blind sweep.
        t += params.undetected_penalty_seconds * 0.25 * rand.uniform_real(0.5, 1.2);
    }
    if (!obs.zoomed) {
        // No refined location: walk the incident subtree device by device.
        t += 240.0 * rand.uniform_real(0.5, 1.5);
    }

    t += params.action_seconds * rand.uniform_real(0.8, 1.4);
    return t;
}

}  // namespace skynet
