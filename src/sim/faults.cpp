#include "skynet/sim/faults.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>

#include "skynet/common/strings.h"

namespace skynet {

namespace {

/// splitmix64 finalizer: the stateless hash behind random dropout
/// windows, so "is source S dark at time T" never depends on how many
/// rng draws earlier alerts consumed.
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

[[nodiscard]] bool rate_ok(double r) { return r >= 0.0 && r <= 1.0 && std::isfinite(r); }

/// Parses "120ms" / "45s" / "2m" / bare milliseconds.
[[nodiscard]] std::optional<sim_duration> parse_duration_token(std::string_view token) {
    sim_duration scale = 1;
    if (token.ends_with("ms")) {
        token.remove_suffix(2);
    } else if (token.ends_with("s")) {
        scale = seconds(1);
        token.remove_suffix(1);
    } else if (token.ends_with("m")) {
        scale = minutes(1);
        token.remove_suffix(1);
    }
    if (token.empty()) return std::nullopt;
    std::int64_t value = 0;
    for (const char c : token) {
        if (c < '0' || c > '9') return std::nullopt;
        value = value * 10 + (c - '0');
    }
    return value * scale;
}

[[nodiscard]] std::string_view trim_token(std::string_view s) {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
    return s;
}

[[nodiscard]] std::optional<double> parse_rate_token(std::string_view token) {
    if (token.empty()) return std::nullopt;
    char* end = nullptr;
    const std::string buf(token);
    const double value = std::strtod(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size() || !rate_ok(value)) return std::nullopt;
    return value;
}

}  // namespace

bool fault_spec::any() const noexcept {
    return !dropouts.empty() || dropout_rate > 0.0 || duplicate_rate > 0.0 ||
           reorder_rate > 0.0 || corrupt_rate > 0.0 || (skew_rate > 0.0 && max_skew > 0) ||
           pressure_rate > 0.0 || !stalls.empty() || stall_rate > 0.0;
}

error fault_spec::validate() const {
    if (!rate_ok(dropout_rate)) return error("faults: dropout rate outside [0,1]");
    if (!rate_ok(duplicate_rate)) return error("faults: dup rate outside [0,1]");
    if (!rate_ok(reorder_rate)) return error("faults: reorder rate outside [0,1]");
    if (!rate_ok(corrupt_rate)) return error("faults: corrupt rate outside [0,1]");
    if (!rate_ok(skew_rate)) return error("faults: skew_rate outside [0,1]");
    if (!rate_ok(pressure_rate)) return error("faults: pressure rate outside [0,1]");
    if (!rate_ok(stall_rate)) return error("faults: stall rate outside [0,1]");
    for (const stall_point& p : stalls) {
        if (p.ordinal == 0) return error("faults: stall ordinal is 1-based, got 0");
    }
    if (dropout_period <= 0) return error("faults: dropout_period must be positive");
    if (reorder_max_delay < 0) return error("faults: negative reorder_max_delay");
    if (max_skew < 0) return error("faults: negative skew bound");
    for (const dropout_window& w : dropouts) {
        if (w.from < 0 || w.duration < 0) return error("faults: negative dropout window");
    }
    return error{};
}

fault_parse_result parse_fault_spec(std::string_view text) {
    fault_parse_result result;
    auto fail = [&](std::string_view clause, std::string message) {
        result.errors.push_back(
            fault_parse_error{.clause = std::string(clause), .message = std::move(message)});
    };

    for (const std::string& clause : split(text, ';')) {
        for (const std::string& raw_part : split(clause, ',')) {
            const std::string_view part = trim_token(raw_part);
            if (part.empty()) continue;

            // drop:<source>@<from>+<for> — a scripted dropout window.
            if (part.starts_with("drop:")) {
                const std::string_view body = part.substr(5);
                const std::size_t at = body.find('@');
                const std::size_t plus = body.find('+', at == std::string_view::npos ? 0 : at);
                if (at == std::string_view::npos || plus == std::string_view::npos) {
                    fail(part, "expected drop:<source>@<from>+<for>");
                    continue;
                }
                const auto source = parse_source(body.substr(0, at));
                const auto from = parse_duration_token(body.substr(at + 1, plus - at - 1));
                const auto dur = parse_duration_token(body.substr(plus + 1));
                if (!source || !from || !dur) {
                    fail(part, "bad source or duration in drop clause");
                    continue;
                }
                result.spec.dropouts.push_back(
                    dropout_window{.source = *source, .from = *from, .duration = *dur});
                continue;
            }

            // stall:<shard>@<ordinal> — a scripted worker stall.
            if (part.starts_with("stall:")) {
                const std::string_view body = part.substr(6);
                const std::size_t at = body.find('@');
                if (at == std::string_view::npos) {
                    fail(part, "expected stall:<shard>@<ordinal>");
                    continue;
                }
                const auto shard = parse_duration_token(body.substr(0, at));
                const auto ordinal = parse_duration_token(body.substr(at + 1));
                if (!shard || !ordinal || *ordinal < 1) {
                    fail(part, "bad shard or ordinal in stall clause");
                    continue;
                }
                result.spec.stalls.push_back(
                    stall_point{.shard = static_cast<std::size_t>(*shard),
                                .ordinal = static_cast<std::uint64_t>(*ordinal)});
                continue;
            }

            const std::size_t eq = part.find('=');
            if (eq == std::string_view::npos) {
                fail(part, "expected key=value");
                continue;
            }
            const std::string_view key = trim_token(part.substr(0, eq));
            const std::string_view value = trim_token(part.substr(eq + 1));
            const auto rate = parse_rate_token(value);
            const auto duration = parse_duration_token(value);

            if (key == "seed") {
                if (!duration || *duration < 0) {
                    fail(part, "bad seed");
                } else {
                    result.spec.seed = static_cast<std::uint64_t>(*duration);
                }
            } else if (key == "dropout") {
                if (rate) result.spec.dropout_rate = *rate;
                else fail(part, "dropout rate outside [0,1]");
            } else if (key == "dropout_period") {
                if (duration && *duration > 0) result.spec.dropout_period = *duration;
                else fail(part, "bad dropout_period");
            } else if (key == "dup") {
                if (rate) result.spec.duplicate_rate = *rate;
                else fail(part, "dup rate outside [0,1]");
            } else if (key == "reorder") {
                if (rate) result.spec.reorder_rate = *rate;
                else fail(part, "reorder rate outside [0,1]");
            } else if (key == "reorder_max") {
                if (duration) result.spec.reorder_max_delay = *duration;
                else fail(part, "bad reorder_max");
            } else if (key == "skew") {
                if (duration) result.spec.max_skew = *duration;
                else fail(part, "bad skew bound");
            } else if (key == "skew_rate") {
                if (rate) result.spec.skew_rate = *rate;
                else fail(part, "skew_rate outside [0,1]");
            } else if (key == "corrupt") {
                if (rate) result.spec.corrupt_rate = *rate;
                else fail(part, "corrupt rate outside [0,1]");
            } else if (key == "pressure") {
                if (rate) result.spec.pressure_rate = *rate;
                else fail(part, "pressure rate outside [0,1]");
            } else if (key == "stall") {
                if (rate) result.spec.stall_rate = *rate;
                else fail(part, "stall rate outside [0,1]");
            } else {
                fail(part, "unknown fault clause");
            }
        }
    }
    if (result.ok()) {
        if (error e = result.spec.validate()) fail(text, e.message());
    }
    return result;
}

fault_injector::fault_injector(fault_spec spec) : spec_(std::move(spec)), rand_(spec_.seed) {
    if (error e = spec_.validate()) throw skynet_error("fault_injector: " + e.message());
}

bool fault_injector::in_dropout(data_source source, sim_time at) {
    bool dark = false;
    for (const dropout_window& w : spec_.dropouts) {
        if (w.source == source && at >= w.from && at < w.from + w.duration) {
            dark = true;
            break;
        }
    }
    if (!dark && spec_.dropout_rate > 0.0) {
        const std::uint64_t window = static_cast<std::uint64_t>(at / spec_.dropout_period);
        const std::uint64_t h = mix64(spec_.seed ^ mix64(window * 64 +
                                                         static_cast<std::uint64_t>(source)));
        // Map the top 53 bits to [0,1): a stateless per-(source, window)
        // coin independent of stream order.
        const double coin = static_cast<double>(h >> 11) * 0x1.0p-53;
        dark = coin < spec_.dropout_rate;
    }
    if (dark) {
        const std::uint32_t bit = 1u << static_cast<std::uint32_t>(source);
        if ((dropout_seen_mask_ & bit) == 0) {
            dropout_seen_mask_ |= bit;
            ++stats_.sources_in_dropout;
        }
    }
    return dark;
}

void fault_injector::corrupt(raw_alert& alert) {
    switch (rand_.uniform_int(0, 4)) {
        case 0:  // unknown type: the registry lookup must reject, not assert
            alert.kind = "####garbled";
            break;
        case 1:  // dangling device reference (out of the topology's range)
            alert.device = std::numeric_limits<device_id>::max() - 7;
            break;
        case 2:  // dangling link reference
            alert.link = std::numeric_limits<link_id>::max() - 7;
            break;
        case 3:  // non-finite metric
            alert.metric = std::numeric_limits<double>::quiet_NaN();
            break;
        default:  // garbage (pre-epoch) generation timestamp
            alert.timestamp = -alert.timestamp - 1;
            break;
    }
}

void fault_injector::pop_due(sim_time now, std::vector<traced_alert>& out) {
    while (!held_.empty() && held_.top().due <= now) {
        traced_alert t = held_.top().t;
        t.arrival = held_.top().due;
        held_.pop();
        out.push_back(std::move(t));
    }
}

void fault_injector::feed(const traced_alert& t, std::vector<traced_alert>& out) {
    ++stats_.alerts_in;
    // Release anything whose reorder delay has elapsed *before* this
    // delivery, so output arrival times stay (nearly) monotone.
    pop_due(t.arrival, out);

    if (in_dropout(t.alert.source, t.arrival)) {
        ++stats_.dropped_dropout;
        return;
    }

    traced_alert faulted = t;
    if (spec_.skew_rate > 0.0 && spec_.max_skew > 0 && rand_.chance(spec_.skew_rate)) {
        faulted.alert.timestamp += rand_.uniform_int(-spec_.max_skew, spec_.max_skew);
        ++stats_.skewed;
    }
    if (spec_.corrupt_rate > 0.0 && rand_.chance(spec_.corrupt_rate)) {
        corrupt(faulted.alert);
        ++stats_.corrupted;
    }

    if (spec_.reorder_rate > 0.0 && rand_.chance(spec_.reorder_rate)) {
        const sim_duration delay = rand_.uniform_int(1, std::max<sim_duration>(
                                                           1, spec_.reorder_max_delay));
        held_.push(held_alert{.due = faulted.arrival + delay, .seq = seq_++, .t = faulted});
        ++stats_.reordered;
        return;
    }

    out.push_back(faulted);
    if (spec_.duplicate_rate > 0.0 && rand_.chance(spec_.duplicate_rate)) {
        out.push_back(faulted);
        ++stats_.duplicated;
    }
}

std::vector<traced_alert> fault_injector::apply(std::span<const traced_alert> batch) {
    std::vector<traced_alert> out;
    out.reserve(batch.size());
    for (const traced_alert& t : batch) feed(t, out);
    return out;
}

std::vector<traced_alert> fault_injector::release(sim_time now) {
    std::vector<traced_alert> out;
    pop_due(now, out);
    return out;
}

std::vector<traced_alert> fault_injector::drain() {
    std::vector<traced_alert> out;
    pop_due(std::numeric_limits<sim_time>::max(), out);
    return out;
}

std::function<bool()> fault_injector::queue_pressure_hook() {
    if (spec_.pressure_rate <= 0.0) return {};
    // Independent generator: the hook's draws must not perturb the alert
    // stream, and the stream's draws must not perturb the hook.
    auto pressure_rng = std::make_shared<rng>(mix64(spec_.seed ^ 0x70726573u));
    const double rate = spec_.pressure_rate;
    return [pressure_rng, rate]() { return pressure_rng->chance(rate); };
}

std::function<bool(std::size_t, std::uint64_t)> fault_injector::worker_stall_hook() const {
    if (spec_.stalls.empty() && spec_.stall_rate <= 0.0) return {};
    // Captured by value: the hook outlives no one, and being stateless it
    // is safe to call from every worker thread concurrently.
    const std::vector<stall_point> stalls = spec_.stalls;
    const double rate = spec_.stall_rate;
    const std::uint64_t seed = spec_.seed;
    return [stalls, rate, seed](std::size_t shard, std::uint64_t ordinal) {
        for (const stall_point& p : stalls) {
            if (p.shard == shard && p.ordinal == ordinal) return true;
        }
        if (rate <= 0.0) return false;
        const std::uint64_t h =
            mix64(seed ^ 0x7374616cull ^ mix64(ordinal * 64 + static_cast<std::uint64_t>(shard)));
        const double coin = static_cast<double>(h >> 11) * 0x1.0p-53;
        return coin < rate;
    };
}

}  // namespace skynet
