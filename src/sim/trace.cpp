#include "skynet/sim/trace.h"

#include <charconv>
#include <cstdio>

#include "skynet/common/strings.h"

namespace skynet {
namespace {

constexpr char field_sep = '\t';

std::string opt_location(const std::optional<location>& loc) {
    return loc && !loc->is_root() ? loc->to_string() : std::string("-");
}

std::string opt_id(const std::optional<std::uint32_t>& id) {
    return id ? std::to_string(*id) : std::string("-");
}

/// Replaces tabs/newlines in free text so the line format survives.
std::string sanitize(std::string_view text) {
    std::string out(text);
    for (char& c : out) {
        if (c == '\t' || c == '\n' || c == '\r') c = ' ';
    }
    return out;
}

bool parse_int(std::string_view token, std::int64_t& out) {
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), out);
    return ec == std::errc() && ptr == token.data() + token.size();
}

bool parse_double(std::string_view token, double& out) {
    char* end = nullptr;
    const std::string copy(token);
    out = std::strtod(copy.c_str(), &end);
    return end == copy.c_str() + copy.size() && !copy.empty();
}

std::optional<std::uint32_t> parse_opt_id(std::string_view token, bool& ok) {
    ok = true;
    if (token == "-") return std::nullopt;
    std::int64_t value = 0;
    if (!parse_int(token, value) || value < 0) {
        ok = false;
        return std::nullopt;
    }
    return static_cast<std::uint32_t>(value);
}

}  // namespace

std::string_view source_token(data_source source) noexcept {
    switch (source) {
        case data_source::ping: return "ping";
        case data_source::traceroute: return "traceroute";
        case data_source::out_of_band: return "oob";
        case data_source::traffic_stats: return "traffic";
        case data_source::internet_telemetry: return "internet";
        case data_source::syslog: return "syslog";
        case data_source::snmp: return "snmp";
        case data_source::inband_telemetry: return "int";
        case data_source::ptp: return "ptp";
        case data_source::route_monitoring: return "route";
        case data_source::modification_events: return "modification";
        case data_source::patrol_inspection: return "patrol";
    }
    return "ping";
}

std::optional<data_source> parse_source(std::string_view token) noexcept {
    for (const data_source source : all_data_sources()) {
        if (token == source_token(source)) return source;
    }
    return std::nullopt;
}

std::string serialize_alert_record(const raw_alert& alert, sim_time arrival) {
    std::string out;
    out += std::to_string(arrival);
    out += field_sep;
    out += source_token(alert.source);
    out += field_sep;
    out += std::to_string(alert.timestamp);
    out += field_sep;
    out += alert.kind.empty() ? "-" : sanitize(alert.kind);
    out += field_sep;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", alert.metric);
    out += buf;
    out += field_sep;
    out += alert.loc.is_root() ? "-" : alert.loc.to_string();
    out += field_sep;
    out += opt_id(alert.device);
    out += field_sep;
    out += opt_id(alert.link);
    out += field_sep;
    out += opt_location(alert.src_loc);
    out += field_sep;
    out += opt_location(alert.dst_loc);
    out += field_sep;
    out += sanitize(alert.message);
    return out;
}

std::string serialize_trace(std::span<const traced_alert> alerts) {
    std::string out = "# skynet alert trace v1\n";
    for (const traced_alert& t : alerts) {
        out += serialize_alert_record(t.alert, t.arrival);
        out += '\n';
    }
    return out;
}

trace_parse_result parse_trace(std::string_view text) {
    trace_parse_result result;
    auto fail = [&result](int line, std::string message) {
        result.errors.push_back(trace_parse_error{.line = line, .message = std::move(message)});
    };

    int line_no = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t nl = text.find('\n', pos);
        const std::string_view line =
            text.substr(pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
        pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
        ++line_no;
        if (line.empty() || line.front() == '#') continue;

        const std::vector<std::string> fields = split(line, field_sep);
        if (fields.size() != 11) {
            fail(line_no, "expected 11 tab-separated fields, got " +
                              std::to_string(fields.size()));
            continue;
        }

        traced_alert t;
        std::int64_t arrival = 0;
        std::int64_t timestamp = 0;
        if (!parse_int(fields[0], arrival)) {
            fail(line_no, "bad arrival: '" + fields[0] + "'");
            continue;
        }
        const auto source = parse_source(fields[1]);
        if (!source) {
            fail(line_no, "unknown source: '" + fields[1] + "'");
            continue;
        }
        if (!parse_int(fields[2], timestamp)) {
            fail(line_no, "bad timestamp: '" + fields[2] + "'");
            continue;
        }
        double metric = 0.0;
        if (!parse_double(fields[4], metric)) {
            fail(line_no, "bad metric: '" + fields[4] + "'");
            continue;
        }
        bool ok_device = true;
        bool ok_link = true;
        const auto device = parse_opt_id(fields[6], ok_device);
        const auto link = parse_opt_id(fields[7], ok_link);
        if (!ok_device || !ok_link) {
            fail(line_no, "bad device/link id");
            continue;
        }

        t.arrival = arrival;
        t.alert.source = *source;
        t.alert.timestamp = timestamp;
        t.alert.kind = fields[3] == "-" ? std::string() : fields[3];
        t.alert.metric = metric;
        t.alert.loc = fields[5] == "-" ? location{} : location::parse(fields[5]);
        t.alert.device = device;
        t.alert.link = link;
        if (fields[8] != "-") t.alert.src_loc = location::parse(fields[8]);
        if (fields[9] != "-") t.alert.dst_loc = location::parse(fields[9]);
        t.alert.message = fields[10];
        result.alerts.push_back(std::move(t));
    }
    return result;
}

}  // namespace skynet
