#include "skynet/sim/scenario.h"

#include <algorithm>
#include <array>
#include <unordered_set>

#include "skynet/common/error.h"

namespace skynet {

std::string_view to_string(root_cause cause) noexcept {
    switch (cause) {
        case root_cause::device_hardware: return "device hardware error";
        case root_cause::link_error: return "link error";
        case root_cause::modification_error: return "network modification error";
        case root_cause::device_software: return "device software error";
        case root_cause::infrastructure: return "infrastructure error";
        case root_cause::route_error: return "route error";
        case root_cause::security: return "security error";
        case root_cause::configuration: return "configuration error";
    }
    return "?";
}

double root_cause_share(root_cause cause) noexcept {
    switch (cause) {
        case root_cause::device_hardware: return 0.426;
        case root_cause::link_error: return 0.185;
        case root_cause::modification_error: return 0.167;
        case root_cause::device_software: return 0.093;
        case root_cause::infrastructure: return 0.093;
        case root_cause::route_error: return 0.019;
        case root_cause::security: return 0.019;
        case root_cause::configuration: return 0.019;
    }
    return 0.0;
}

root_cause sample_root_cause(rng& rand) {
    static constexpr std::array<root_cause, root_cause_count> causes = {
        root_cause::device_hardware, root_cause::link_error,  root_cause::modification_error,
        root_cause::device_software, root_cause::infrastructure, root_cause::route_error,
        root_cause::security,        root_cause::configuration,
    };
    std::array<double, root_cause_count> weights{};
    for (std::size_t i = 0; i < causes.size(); ++i) weights[i] = root_cause_share(causes[i]);
    return causes[rand.weighted_index(weights)];
}

namespace {

/// Picks a random device excluding ISP peers; `roles` restricts when
/// non-empty.
device_id pick_device(const topology& topo, rng& rand, std::vector<device_role> roles = {}) {
    std::vector<device_id> candidates;
    for (const device& d : topo.devices()) {
        if (d.role == device_role::isp) continue;
        if (!roles.empty() && std::find(roles.begin(), roles.end(), d.role) == roles.end()) {
            continue;
        }
        candidates.push_back(d.id);
    }
    if (candidates.empty()) throw skynet_error("pick_device: no candidates");
    return rand.pick(candidates);
}

location random_logic_site(const topology& topo, rng& rand) {
    std::vector<location> sites;
    std::unordered_set<location, location_hash> seen;
    for (const device& d : topo.devices()) {
        if (d.loc.depth() <= depth_of(hierarchy_level::logic_site)) continue;
        location ls = d.loc.ancestor_at(hierarchy_level::logic_site);
        if (ls.segments().front() == "ISP") continue;
        if (seen.insert(ls).second) sites.push_back(ls);
    }
    if (sites.empty()) throw skynet_error("random_logic_site: none");
    return rand.pick(sites);
}

// ---------------------------------------------------------------------------
// Device hardware failure (42.6 %). Gray failure first (silent loss, BGP
// jitter), the hardware-error syslog only minutes later (§7.3); the
// severe variant eventually kills the device outright.
class device_hardware_failure final : public scenario {
public:
    device_hardware_failure(const topology& topo, rng& rand, bool severe) : severe_(severe) {
        victim_ = severe ? pick_device(topo, rand,
                                       {device_role::csr, device_role::dcbr, device_role::bsr})
                         : pick_device(topo, rand);
        loc_ = topo.device_at(victim_).loc;
        report_delay_ = minutes(rand.uniform_int(2, 5));
        die_delay_ = report_delay_ + minutes(rand.uniform_int(1, 3));
    }

    std::string name() const override { return "device-hardware:" + std::string(loc_.leaf()); }
    root_cause cause() const override { return root_cause::device_hardware; }
    location scope() const override { return severe_ ? loc_.parent() : loc_; }
    bool severe() const override { return severe_; }
    std::optional<device_id> culprit() const override { return victim_; }

    void on_start(network_state& state, rng& rand, sim_time now) override {
        started_ = now;
        device_health& h = state.device_state(victim_);
        h.silent_loss = severe_ ? rand.uniform_real(0.15, 0.4) : rand.uniform_real(0.03, 0.15);
        h.bgp_flapping = true;
        h.cpu = std::max(h.cpu, rand.uniform_real(0.7, 0.95));
    }

    void on_tick(network_state& state, rng&, sim_time now) override {
        device_health& h = state.device_state(victim_);
        if (now - started_ >= report_delay_) h.hardware_fault = true;
        if (severe_ && now - started_ >= die_delay_) h.alive = false;
    }

    void on_end(network_state& state, rng&, sim_time) override {
        state.device_state(victim_) = device_health{};
    }

private:
    device_id victim_{invalid_device};
    location loc_;
    bool severe_;
    sim_time started_{0};
    sim_duration report_delay_{0};
    sim_duration die_delay_{0};
};

// ---------------------------------------------------------------------------
// Link error (18.5 %): circuits break or corrupt. Severe variant takes a
// whole circuit set down (plus a sibling), spilling load.
class link_failure final : public scenario {
public:
    link_failure(const topology& topo, rng& rand, bool severe) : severe_(severe) {
        // Pick among aggregation-tier sets (they have >1 circuit).
        std::vector<circuit_set_id> candidates;
        for (const circuit_set& cs : topo.circuit_sets()) {
            if (cs.circuits.size() >= 2) candidates.push_back(cs.id);
        }
        if (candidates.empty()) {
            for (const circuit_set& cs : topo.circuit_sets()) candidates.push_back(cs.id);
        }
        const circuit_set& cs = topo.circuit_set_at(rand.pick(candidates));
        corruption_ = rand.chance(0.3);
        if (corruption_ && severe_) {
            // A failing linecard: every bundle of the device corrupts —
            // the wide blast radius that makes a corruption event severe.
            for (circuit_set_id other : topo.circuit_sets_of(cs.a)) {
                for (link_id lid : topo.circuit_set_at(other).circuits) {
                    victims_.push_back(lid);
                }
            }
            loc_ = topo.device_at(cs.a).loc.parent();
        } else {
            const std::size_t n = cs.circuits.size();
            const std::size_t kill = severe_ ? n : std::max<std::size_t>(1, n / 4);
            for (std::size_t i = 0; i < kill; ++i) victims_.push_back(cs.circuits[i]);
            loc_ = location::common_ancestor(topo.device_at(cs.a).loc, topo.device_at(cs.b).loc);
            if (loc_.is_root()) loc_ = topo.device_at(cs.a).loc.parent();
        }
        endpoint_a_ = cs.a;
    }

    std::string name() const override {
        return std::string(corruption_ ? "link-corruption:" : "link-break:") +
               std::string(loc_.leaf());
    }
    root_cause cause() const override { return root_cause::link_error; }
    location scope() const override { return loc_; }
    bool severe() const override { return severe_; }
    bool must_detect() const override {
        // A partial break of a redundant bundle reroutes cleanly: link-down
        // tickets, no incident. Corruption keeps hurting packets, and a
        // full break displaces traffic — both must surface.
        return severe_ || corruption_;
    }
    std::optional<device_id> culprit() const override { return endpoint_a_; }

    void on_start(network_state& state, rng& rand, sim_time) override {
        for (link_id lid : victims_) {
            link_health& l = state.link_state(lid);
            if (corruption_) {
                l.corruption_loss = rand.uniform_real(0.02, 0.2);
            } else {
                l.up = false;
            }
        }
    }

    void on_end(network_state& state, rng&, sim_time) override {
        for (link_id lid : victims_) state.link_state(lid) = link_health{};
    }

private:
    std::vector<link_id> victims_;
    location loc_;
    device_id endpoint_a_{invalid_device};
    bool severe_;
    bool corruption_{false};
};

// ---------------------------------------------------------------------------
// Internet entry cut (§2.2): a fraction of a logic site's internet-entry
// circuits fail simultaneously; survivors congest.
class internet_entry_cut final : public scenario {
public:
    internet_entry_cut(const topology& topo, location logic_site, double fraction)
        : loc_(std::move(logic_site)), fraction_(fraction) {
        for (const link& l : topo.links()) {
            if (!l.internet_entry) continue;
            const device& a = topo.device_at(l.a);
            const device& b = topo.device_at(l.b);
            const device& isr = a.role == device_role::isr ? a : b;
            if (loc_.contains(isr.loc)) entry_links_.push_back(l.id);
        }
        if (entry_links_.empty()) throw skynet_error("internet_entry_cut: no entry links");
        entry_sets_.reserve(entry_links_.size());
        for (link_id lid : entry_links_) {
            const circuit_set_id cs = topo.link_at(lid).cset;
            if (std::find(entry_sets_.begin(), entry_sets_.end(), cs) == entry_sets_.end()) {
                entry_sets_.push_back(cs);
            }
        }
    }

    std::string name() const override { return "internet-entry-cut:" + std::string(loc_.leaf()); }
    root_cause cause() const override { return root_cause::link_error; }
    location scope() const override { return loc_; }
    bool severe() const override { return true; }

    void on_start(network_state& state, rng& rand, sim_time) override {
        const std::size_t kill =
            std::max<std::size_t>(1, static_cast<std::size_t>(
                                         static_cast<double>(entry_links_.size()) * fraction_));
        std::vector<link_id> pool = entry_links_;
        for (std::size_t i = 0; i < kill; ++i) {
            const std::size_t pick = rand.index(pool.size());
            state.link_state(pool[pick]).up = false;
            victims_.push_back(pool[pick]);
            pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
        }
        // Entry traffic is near peak when the cut hits — this is what
        // melts the survivors.
        for (circuit_set_id cs : entry_sets_) {
            saved_offered_.emplace_back(cs, state.offered_gbps(cs));
            state.set_offered_gbps(cs, state.offered_gbps(cs) * 1.5);
        }
    }

    void on_end(network_state& state, rng&, sim_time) override {
        for (link_id lid : victims_) state.link_state(lid) = link_health{};
        for (const auto& [cs, gbps] : saved_offered_) state.set_offered_gbps(cs, gbps);
    }

private:
    location loc_;
    double fraction_;
    std::vector<link_id> entry_links_;
    std::vector<circuit_set_id> entry_sets_;
    std::vector<link_id> victims_;
    std::vector<std::pair<circuit_set_id, double>> saved_offered_;
};

// ---------------------------------------------------------------------------
// Network modification error (16.7 %): a change pushed to a device group
// goes wrong — interfaces admin-down, control plane withdrawn — until the
// scenario's end models the rollback.
class modification_error final : public scenario {
public:
    modification_error(const topology& topo, rng& rand, bool severe) : severe_(severe) {
        const std::vector<device_role> roles =
            severe ? std::vector<device_role>{device_role::dcbr, device_role::csr}
                   : std::vector<device_role>{device_role::agg, device_role::csr};
        const device_id seed = pick_device(topo, rand, roles);
        const device& d = topo.device_at(seed);
        if (severe_ && d.group != invalid_group) {
            victims_ = topo.group_at(d.group).members;
        } else {
            victims_ = {seed};
        }
        loc_ = severe_ ? d.loc.parent() : d.loc;
        for (device_id v : victims_) {
            const auto links = topo.links_of(v);
            // The faulty change downs a third of each victim's interfaces.
            const std::size_t kill = std::max<std::size_t>(1, links.size() / 3);
            for (std::size_t i = 0; i < kill; ++i) downed_.push_back(links[i]);
        }
    }

    std::string name() const override { return "modification-error:" + std::string(loc_.leaf()); }
    root_cause cause() const override { return root_cause::modification_error; }
    location scope() const override { return loc_; }
    bool severe() const override { return severe_; }
    std::optional<device_id> culprit() const override { return victims_.front(); }

    void on_start(network_state& state, rng&, sim_time now) override {
        for (device_id v : victims_) state.device_state(v).control_plane_ok = false;
        for (link_id l : downed_) state.link_state(l).up = false;
        state.modifications().push_back(
            modification_event{.where = loc_,
                               .where_id = state.topo().locations().intern(loc_),
                               .failed = true,
                               .rolled_back = false,
                               .at = now});
    }

    void on_end(network_state& state, rng&, sim_time now) override {
        for (device_id v : victims_) state.device_state(v).control_plane_ok = true;
        for (link_id l : downed_) state.link_state(l) = link_health{};
        state.modifications().push_back(
            modification_event{.where = loc_,
                               .where_id = state.topo().locations().intern(loc_),
                               .failed = false,
                               .rolled_back = true,
                               .at = now});
    }

private:
    std::vector<device_id> victims_;
    std::vector<link_id> downed_;
    location loc_;
    bool severe_;
};

// ---------------------------------------------------------------------------
// Device software error (9.3 %): process crash / OOM; control plane dies,
// partial blackholing, RAM pegged.
class device_software_failure final : public scenario {
public:
    device_software_failure(const topology& topo, rng& rand, bool severe) : severe_(severe) {
        victim_ = severe ? pick_device(topo, rand, {device_role::dcbr, device_role::isr})
                         : pick_device(topo, rand);
        loc_ = topo.device_at(victim_).loc;
    }

    std::string name() const override { return "device-software:" + std::string(loc_.leaf()); }
    root_cause cause() const override { return root_cause::device_software; }
    location scope() const override { return severe_ ? loc_.parent() : loc_; }
    bool severe() const override { return severe_; }
    std::optional<device_id> culprit() const override { return victim_; }

    void on_start(network_state& state, rng& rand, sim_time) override {
        device_health& h = state.device_state(victim_);
        h.software_fault = true;
        h.control_plane_ok = false;
        h.ram = 0.98;
        h.silent_loss = severe_ ? rand.uniform_real(0.1, 0.3) : rand.uniform_real(0.01, 0.08);
        h.bgp_flapping = true;
    }

    void on_end(network_state& state, rng&, sim_time) override {
        state.device_state(victim_) = device_health{};
    }

private:
    device_id victim_{invalid_device};
    location loc_;
    bool severe_;
};

// ---------------------------------------------------------------------------
// Infrastructure error (9.3 %): power/cooling takes out a cluster (minor)
// or a whole site (severe).
class infrastructure_failure final : public scenario {
public:
    infrastructure_failure(const topology& topo, rng& rand, bool severe) : severe_(severe) {
        const device_id seed = pick_device(topo, rand, {device_role::tor});
        const device& d = topo.device_at(seed);
        loc_ = d.loc.ancestor_at(severe ? hierarchy_level::site : hierarchy_level::cluster);
        victims_ = topo.devices_under(loc_);
    }

    std::string name() const override { return "infrastructure:" + std::string(loc_.leaf()); }
    root_cause cause() const override { return root_cause::infrastructure; }
    location scope() const override { return loc_; }
    bool severe() const override { return severe_; }

    void on_start(network_state& state, rng& rand, sim_time) override {
        for (device_id v : victims_) {
            // Power loss kills most devices in scope; the rest overheat.
            device_health& h = state.device_state(v);
            if (rand.chance(0.8)) {
                h.alive = false;
            } else {
                h.cpu = 0.97;
                h.clock_synced = false;
            }
        }
    }

    void on_end(network_state& state, rng&, sim_time) override {
        for (device_id v : victims_) state.device_state(v) = device_health{};
    }

private:
    std::vector<device_id> victims_;
    location loc_;
    bool severe_;
};

// ---------------------------------------------------------------------------
// Route error (1.9 %): control-plane anomaly. Minor: leak/churn visible
// only to route monitoring (data plane intact — the coverage blind spot
// of every other tool). Severe: default-route loss blackholing a logic
// site's internet traffic.
class route_error final : public scenario {
public:
    route_error(const topology& topo, rng& rand, bool severe)
        : severe_(severe), hijack_(severe && rand.chance(0.5)),
          loc_(random_logic_site(topo, rand)) {
        for (const device& d : topo.devices()) {
            if (d.role == device_role::isr && loc_.contains(d.loc)) isrs_.push_back(d.id);
            if (d.role == device_role::dcbr && loc_.contains(d.loc)) dcbrs_.push_back(d.id);
        }
        // The regional ISP peer: a hijack diverts traffic beyond it.
        if (!isrs_.empty()) {
            for (link_id lid : topo.links_of(isrs_.front())) {
                const link& l = topo.link_at(lid);
                if (!l.internet_entry) continue;
                isp_ = topo.device_at(l.a).role == device_role::isp ? l.a : l.b;
                break;
            }
        }
    }

    std::string name() const override { return "route-error:" + std::string(loc_.leaf()); }
    root_cause cause() const override { return root_cause::route_error; }
    location scope() const override { return loc_; }
    bool severe() const override { return severe_; }

    void on_start(network_state& state, rng& rand, sim_time now) override {
        const auto kind = severe_ ? (hijack_ ? route_incident::kind::hijack
                                             : route_incident::kind::default_route_loss)
                                  : (rand.chance(0.5) ? route_incident::kind::leak
                                                      : route_incident::kind::aggregate_route_loss);
        const location_id lid = state.topo().locations().intern(loc_);
        state.route_incidents().push_back(
            route_incident{.what = kind, .where = loc_, .where_id = lid, .since = now});
        // Route errors churn the control plane while they last, and the
        // suboptimal detour paths leak a little traffic at the borders —
        // the multi-signal footprint that lets SkyNet see them at all.
        state.route_incidents().push_back(route_incident{
            .what = route_incident::kind::churn, .where = loc_, .where_id = lid, .since = now});
        if (hijack_) {
            // A more-specific hijack diverts internet-bound traffic
            // beyond our border: the control plane looks healthy, our
            // internal samplers see nothing — only route monitoring and
            // end-to-end internet probes notice (§2.1's deepest blind
            // spot).
            if (isp_ != invalid_device) state.device_state(isp_).silent_loss = 0.6;
            return;
        }
        for (device_id d : dcbrs_) {
            state.device_state(d).bgp_flapping = true;
            state.device_state(d).silent_loss = severe_ ? 0.05 : 0.03;
        }
        if (severe_) {
            // Losing the default route blackholes internet-bound traffic
            // at the ISRs.
            for (device_id isr : isrs_) {
                state.device_state(isr).silent_loss = 0.6;
                state.device_state(isr).control_plane_ok = false;
            }
        }
    }

    void on_end(network_state& state, rng&, sim_time) override {
        state.clear_route_incidents(loc_);
        if (isp_ != invalid_device) state.device_state(isp_).silent_loss = 0.0;
        for (device_id isr : isrs_) state.device_state(isr) = device_health{};
        for (device_id d : dcbrs_) state.device_state(d) = device_health{};
    }

private:
    bool severe_;
    bool hijack_;
    location loc_;
    std::vector<device_id> isrs_;
    std::vector<device_id> dcbrs_;
    device_id isp_{invalid_device};
};

// ---------------------------------------------------------------------------
// Security error (1.9 %): DDoS at one or more logic sites' internet
// entries. `sites` > 1 reproduces the five-site attack of §5.1.
class security_ddos final : public scenario {
public:
    security_ddos(const topology& topo, rng& rand, int sites) {
        std::unordered_set<location, location_hash> chosen;
        for (int attempt = 0; attempt < sites * 20 && static_cast<int>(sites_.size()) < sites;
             ++attempt) {
            location ls = random_logic_site(topo, rand);
            if (chosen.insert(ls).second) sites_.push_back(ls);
        }
        for (const location& ls : sites_) {
            for (const circuit_set& cs : topo.circuit_sets()) {
                const device& a = topo.device_at(cs.a);
                const device& b = topo.device_at(cs.b);
                const bool internet =
                    a.role == device_role::isp || b.role == device_role::isp;
                if (!internet) continue;
                const device& isr = a.role == device_role::isr ? a : b;
                if (ls.contains(isr.loc)) targets_.push_back(cs.id);
            }
        }
    }

    std::string name() const override {
        return "ddos:" + std::to_string(sites_.size()) + "-sites";
    }
    root_cause cause() const override { return root_cause::security; }
    location scope() const override {
        if (sites_.size() == 1) return sites_.front();
        location common = sites_.front();
        for (const location& ls : sites_) common = location::common_ancestor(common, ls);
        // Attacks spanning regions have no meaningful common ancestor;
        // the primary site stands in (scopes() carries the full list).
        return common.is_root() ? sites_.front() : common;
    }
    std::vector<location> scopes() const override { return sites_; }
    bool severe() const override { return sites_.size() > 1 || targets_.size() > 2; }
    [[nodiscard]] const std::vector<location>& attacked_sites() const noexcept { return sites_; }

    void on_start(network_state& state, rng& rand, sim_time) override {
        for (circuit_set_id cs : targets_) {
            saved_.emplace_back(cs, state.offered_gbps(cs));
            state.set_offered_gbps(cs, state.offered_gbps(cs) * rand.uniform_real(4.0, 8.0));
        }
        // Attack traffic also overloads customer SLA flows on the entries.
        for (circuit_set_id cs : targets_) {
            for (sla_flow_id f : state.customers().flows_on(cs)) {
                state.set_flow_rate_gbps(
                    f, state.customers().flow_at(f).committed_gbps * rand.uniform_real(1.2, 2.0));
            }
        }
    }

    void on_end(network_state& state, rng&, sim_time) override {
        for (const auto& [cs, gbps] : saved_) state.set_offered_gbps(cs, gbps);
        for (circuit_set_id cs : targets_) {
            for (sla_flow_id f : state.customers().flows_on(cs)) {
                state.set_flow_rate_gbps(f,
                                         state.customers().flow_at(f).committed_gbps * 0.7);
            }
        }
    }

private:
    std::vector<location> sites_;
    std::vector<circuit_set_id> targets_;
    std::vector<std::pair<circuit_set_id, double>> saved_;
};

// ---------------------------------------------------------------------------
// Configuration error (1.9 %): a bad manual config on one device —
// interface admin-downed, another left with an MTU/duplex mismatch
// producing CRC errors.
class configuration_error final : public scenario {
public:
    configuration_error(const topology& topo, rng& rand, bool severe) : severe_(severe) {
        victim_ = pick_device(topo, rand, {device_role::agg, device_role::csr});
        loc_ = topo.device_at(victim_).loc;
        const auto links = topo.links_of(victim_);
        if (!links.empty()) downed_ = links[rand.index(links.size())];
        if (links.size() > 1) {
            link_id other = links[rand.index(links.size())];
            if (other != downed_) corrupted_ = other;
        }
    }

    std::string name() const override { return "config-error:" + std::string(loc_.leaf()); }
    root_cause cause() const override { return root_cause::configuration; }
    location scope() const override { return loc_; }
    bool severe() const override { return severe_; }
    std::optional<device_id> culprit() const override { return victim_; }

    void on_start(network_state& state, rng& rand, sim_time) override {
        if (downed_ != invalid_link) state.link_state(downed_).up = false;
        if (corrupted_ != invalid_link) {
            state.link_state(corrupted_).corruption_loss = rand.uniform_real(0.01, 0.1);
        }
    }

    void on_end(network_state& state, rng&, sim_time) override {
        if (downed_ != invalid_link) state.link_state(downed_) = link_health{};
        if (corrupted_ != invalid_link) state.link_state(corrupted_) = link_health{};
    }

private:
    device_id victim_{invalid_device};
    location loc_;
    link_id downed_{invalid_link};
    link_id corrupted_{invalid_link};
    bool severe_;
};

// ---------------------------------------------------------------------------
// WAN partition: a long-haul conduit cut severs every circuit between two
// cities simultaneously. The surviving inter-city paths absorb the
// displaced traffic.
class wan_partition final : public scenario {
public:
    wan_partition(const topology& topo, rng& rand) {
        // Collect BSR<->BSR bundles grouped by city pair; cut one pair.
        std::vector<circuit_set_id> wan_sets;
        for (const circuit_set& cs : topo.circuit_sets()) {
            if (topo.device_at(cs.a).role == device_role::bsr &&
                topo.device_at(cs.b).role == device_role::bsr) {
                wan_sets.push_back(cs.id);
            }
        }
        if (wan_sets.empty()) throw skynet_error("wan_partition: no WAN bundles");
        const circuit_set& seed = topo.circuit_set_at(rand.pick(wan_sets));
        const location city_a = topo.device_at(seed.a).loc.ancestor_at(hierarchy_level::city);
        const location city_b = topo.device_at(seed.b).loc.ancestor_at(hierarchy_level::city);
        // Every circuit between the two cities goes with the conduit.
        for (circuit_set_id cs_id : wan_sets) {
            const circuit_set& cs = topo.circuit_set_at(cs_id);
            const location ca = topo.device_at(cs.a).loc.ancestor_at(hierarchy_level::city);
            const location cb = topo.device_at(cs.b).loc.ancestor_at(hierarchy_level::city);
            const bool same_pair = (ca == city_a && cb == city_b) || (ca == city_b && cb == city_a);
            if (!same_pair) continue;
            for (link_id lid : cs.circuits) victims_.push_back(lid);
        }
        scopes_ = {city_a, city_b};
        loc_ = location::common_ancestor(city_a, city_b);
        if (loc_.is_root()) loc_ = city_a;
    }

    std::string name() const override { return "wan-partition:" + std::string(loc_.leaf()); }
    root_cause cause() const override { return root_cause::link_error; }
    location scope() const override { return loc_; }
    std::vector<location> scopes() const override { return scopes_; }
    bool severe() const override { return true; }

    void on_start(network_state& state, rng&, sim_time) override {
        for (link_id lid : victims_) state.link_state(lid).up = false;
    }
    void on_end(network_state& state, rng&, sim_time) override {
        for (link_id lid : victims_) state.link_state(lid) = link_health{};
    }

private:
    std::vector<link_id> victims_;
    std::vector<location> scopes_;
    location loc_;
};

// ---------------------------------------------------------------------------
// Benign flash crowd: legitimate user load heats CPUs and surges traffic
// in one cluster. Many alerts (high cpu on several devices, traffic
// surges), zero failure — the false-positive bait of the Figure 9
// "type+location" ablation.
class flash_crowd final : public scenario {
public:
    flash_crowd(const topology& topo, rng& rand) {
        const device_id seed = pick_device(topo, rand, {device_role::tor});
        loc_ = topo.device_at(seed).loc.ancestor_at(hierarchy_level::cluster);
        victims_ = topo.devices_under(loc_);
        for (device_id v : victims_) {
            for (circuit_set_id cs : topo.circuit_sets_of(v)) {
                if (std::find(csets_.begin(), csets_.end(), cs) == csets_.end()) {
                    csets_.push_back(cs);
                }
            }
        }
    }

    std::string name() const override { return "flash-crowd:" + std::string(loc_.leaf()); }
    root_cause cause() const override { return root_cause::security; }
    location scope() const override { return loc_; }
    bool severe() const override { return false; }
    bool benign() const override { return true; }

    void on_start(network_state& state, rng& rand, sim_time) override {
        for (device_id v : victims_) {
            saved_cpu_.emplace_back(v, state.device_state(v).cpu);
            state.device_state(v).cpu = rand.uniform_real(0.91, 0.94);
        }
        for (circuit_set_id cs : csets_) {
            saved_offered_.emplace_back(cs, state.offered_gbps(cs));
            // Stay below the congestion knee: load rises, nothing drops.
            state.set_offered_gbps(cs, state.offered_gbps(cs) * 1.7);
        }
    }

    void on_end(network_state& state, rng&, sim_time) override {
        for (const auto& [v, cpu] : saved_cpu_) state.device_state(v).cpu = cpu;
        for (const auto& [cs, gbps] : saved_offered_) state.set_offered_gbps(cs, gbps);
    }

private:
    location loc_;
    std::vector<device_id> victims_;
    std::vector<circuit_set_id> csets_;
    std::vector<std::pair<device_id, double>> saved_cpu_;
    std::vector<std::pair<circuit_set_id, double>> saved_offered_;
};

// ---------------------------------------------------------------------------
// Gray failure: silent loss only. No hardware_fault syslog, no BGP
// flapping, control plane answers — the device looks healthy on every
// surface except end-to-end loss probes. The thin, intermittent alert
// evidence this produces is the hardest case for incident lifetime
// decisions (is it over, or just quiet?).
class gray_failure final : public scenario {
public:
    gray_failure(const topology& topo, rng& rand, bool severe) : severe_(severe) {
        victim_ = severe ? pick_device(topo, rand, {device_role::csr, device_role::agg})
                         : pick_device(topo, rand);
        loc_ = topo.device_at(victim_).loc;
    }

    std::string name() const override { return "gray-failure:" + std::string(loc_.leaf()); }
    root_cause cause() const override { return root_cause::device_hardware; }
    location scope() const override { return severe_ ? loc_.parent() : loc_; }
    bool severe() const override { return severe_; }
    std::optional<device_id> culprit() const override { return victim_; }

    void on_start(network_state& state, rng& rand, sim_time) override {
        // Loss and nothing else; every other health field stays default.
        state.device_state(victim_).silent_loss =
            severe_ ? rand.uniform_real(0.12, 0.25) : rand.uniform_real(0.04, 0.08);
    }

    void on_end(network_state& state, rng&, sim_time) override {
        state.device_state(victim_) = device_health{};
    }

private:
    device_id victim_{invalid_device};
    location loc_;
    bool severe_;
};

// ---------------------------------------------------------------------------
// Flapping link: a circuit bundle cycles down/up with a fixed period.
// Every down phase floods link-down alerts at the same root; every up
// phase heals cleanly — the canonical input for flap suppression.
class flapping_link final : public scenario {
public:
    flapping_link(const topology& topo, rng& rand, bool severe)
        : severe_(severe), period_(minutes(2)) {
        std::vector<circuit_set_id> candidates;
        for (const circuit_set& cs : topo.circuit_sets()) {
            if (cs.circuits.size() >= 2) candidates.push_back(cs.id);
        }
        if (candidates.empty()) {
            for (const circuit_set& cs : topo.circuit_sets()) candidates.push_back(cs.id);
        }
        const circuit_set& cs = topo.circuit_set_at(rand.pick(candidates));
        const std::size_t n = cs.circuits.size();
        const std::size_t kill = severe_ ? n : std::max<std::size_t>(1, n / 2);
        for (std::size_t i = 0; i < kill; ++i) victims_.push_back(cs.circuits[i]);
        loc_ = location::common_ancestor(topo.device_at(cs.a).loc, topo.device_at(cs.b).loc);
        if (loc_.is_root()) loc_ = topo.device_at(cs.a).loc.parent();
        endpoint_a_ = cs.a;
    }

    std::string name() const override { return "flapping-link:" + std::string(loc_.leaf()); }
    root_cause cause() const override { return root_cause::link_error; }
    location scope() const override { return loc_; }
    bool severe() const override { return severe_; }
    std::optional<device_id> culprit() const override { return endpoint_a_; }

    void on_start(network_state& state, rng&, sim_time now) override {
        started_ = now;
        set_down(state, true);
    }

    void on_tick(network_state& state, rng&, sim_time now) override {
        // Phase 0 (down) first, alternating every period_.
        const bool want_down = ((now - started_) / period_) % 2 == 0;
        if (want_down != down_) set_down(state, want_down);
    }

    void on_end(network_state& state, rng&, sim_time) override {
        for (link_id lid : victims_) state.link_state(lid) = link_health{};
        down_ = false;
    }

private:
    void set_down(network_state& state, bool down) {
        for (link_id lid : victims_) state.link_state(lid).up = !down;
        down_ = down;
    }

    std::vector<link_id> victims_;
    location loc_;
    device_id endpoint_a_{invalid_device};
    bool severe_;
    bool down_{false};
    sim_time started_{0};
    sim_duration period_;
};

// ---------------------------------------------------------------------------
// Overlapping multi-root-cause storm: independent failures of distinct
// classes at disjoint roots, all active at once. The scopes are kept
// non-overlapping so ground truth is unambiguous: one managed incident
// per root, nothing merged, nothing duplicated.
class multi_cause_storm final : public scenario {
public:
    multi_cause_storm(const topology& topo, rng& rand, bool severe) {
        const auto overlaps = [&](const location& l) {
            for (const auto& p : parts_) {
                for (const location& s : p->scopes()) {
                    if (s.contains(l) || l.contains(s)) return true;
                }
            }
            return false;
        };
        const auto add = [&](auto&& make_part) {
            // Scenario constructors pick victims with the rng; retry a
            // few times for a disjoint root, keep the last try regardless
            // (a storm with an overlap beats no storm at all).
            for (int attempt = 0;; ++attempt) {
                auto part = make_part();
                if (attempt >= 19 || !overlaps(part->scope())) {
                    parts_.push_back(std::move(part));
                    return;
                }
            }
        };
        add([&] { return make_infrastructure_failure(topo, rand, severe); });
        add([&] { return make_link_failure(topo, rand, severe); });
        add([&] { return make_device_software_failure(topo, rand, severe); });
    }

    std::string name() const override {
        return "storm:" + std::to_string(parts_.size()) + "-causes";
    }
    root_cause cause() const override { return parts_.front()->cause(); }
    location scope() const override { return parts_.front()->scope(); }
    std::vector<location> scopes() const override {
        std::vector<location> all;
        for (const auto& p : parts_) {
            for (location& s : p->scopes()) all.push_back(std::move(s));
        }
        return all;
    }
    bool severe() const override { return true; }

    void on_start(network_state& state, rng& rand, sim_time now) override {
        for (auto& p : parts_) p->on_start(state, rand, now);
    }
    void on_tick(network_state& state, rng& rand, sim_time now) override {
        for (auto& p : parts_) p->on_tick(state, rand, now);
    }
    void on_end(network_state& state, rng& rand, sim_time now) override {
        for (auto& p : parts_) p->on_end(state, rand, now);
    }

private:
    std::vector<std::unique_ptr<scenario>> parts_;
};

// ---------------------------------------------------------------------------
// Maintenance window: a cluster drains and its devices reboot one after
// another (30s apart). Symptom-wise indistinguishable from an
// infrastructure failure in miniature, but expected: benign() marks any
// incident here a false positive, and the rolling reboots probe that the
// life-cycle layer keeps the window collapsed instead of re-alerting per
// device.
class maintenance_window final : public scenario {
public:
    maintenance_window(const topology& topo, rng& rand) {
        const device_id seed = pick_device(topo, rand, {device_role::tor});
        loc_ = topo.device_at(seed).loc.ancestor_at(hierarchy_level::cluster);
        victims_ = topo.devices_under(loc_);
    }

    std::string name() const override { return "maintenance:" + std::string(loc_.leaf()); }
    root_cause cause() const override { return root_cause::modification_error; }
    location scope() const override { return loc_; }
    bool severe() const override { return false; }
    bool benign() const override { return true; }

    void on_start(network_state& state, rng&, sim_time now) override {
        started_ = now;
        advance(state, now);
    }

    void on_tick(network_state& state, rng&, sim_time now) override { advance(state, now); }

    void on_end(network_state& state, rng&, sim_time) override {
        for (device_id v : victims_) state.device_state(v) = device_health{};
    }

private:
    /// Device i reboots during [started_ + i*gap, started_ + (i+1)*gap).
    void advance(network_state& state, sim_time now) {
        for (std::size_t i = 0; i < victims_.size(); ++i) {
            const sim_time begin = started_ + static_cast<sim_duration>(i) * gap_;
            const bool rebooting = now >= begin && now < begin + gap_;
            device_health& h = state.device_state(victims_[i]);
            h.alive = !rebooting;
            h.control_plane_ok = !rebooting;
        }
    }

    location loc_;
    std::vector<device_id> victims_;
    sim_time started_{0};
    sim_duration gap_{seconds(30)};
};

// ---------------------------------------------------------------------------
// Slow-burn degradation: corruption loss on a circuit bundle creeps up a
// little every tick — harmless at first, SLA-breaking by the end, never
// a step change. Detection latency and the auto-close quiet period both
// get exercised at the worst possible gradient.
class slow_burn_degradation final : public scenario {
public:
    slow_burn_degradation(const topology& topo, rng& rand, bool severe)
        : severe_(severe), ramp_(minutes(6)) {
        std::vector<circuit_set_id> candidates;
        for (const circuit_set& cs : topo.circuit_sets()) {
            if (cs.circuits.size() >= 2) candidates.push_back(cs.id);
        }
        if (candidates.empty()) {
            for (const circuit_set& cs : topo.circuit_sets()) candidates.push_back(cs.id);
        }
        const circuit_set& cs = topo.circuit_set_at(rand.pick(candidates));
        const std::size_t n = severe_ ? cs.circuits.size() : 1;
        for (std::size_t i = 0; i < n; ++i) victims_.push_back(cs.circuits[i]);
        loc_ = location::common_ancestor(topo.device_at(cs.a).loc, topo.device_at(cs.b).loc);
        if (loc_.is_root()) loc_ = topo.device_at(cs.a).loc.parent();
        endpoint_a_ = cs.a;
    }

    std::string name() const override { return "slow-burn:" + std::string(loc_.leaf()); }
    root_cause cause() const override { return root_cause::link_error; }
    location scope() const override { return loc_; }
    bool severe() const override { return severe_; }
    std::optional<device_id> culprit() const override { return endpoint_a_; }

    void on_start(network_state& state, rng&, sim_time now) override {
        started_ = now;
        apply(state, now);
    }

    void on_tick(network_state& state, rng&, sim_time now) override { apply(state, now); }

    void on_end(network_state& state, rng&, sim_time) override {
        for (link_id lid : victims_) state.link_state(lid) = link_health{};
    }

private:
    void apply(network_state& state, sim_time now) {
        const double cap = severe_ ? 0.15 : 0.05;
        const double frac = std::min(
            1.0, static_cast<double>(now - started_) / static_cast<double>(ramp_));
        const double loss = 0.002 + frac * (cap - 0.002);
        for (link_id lid : victims_) state.link_state(lid).corruption_loss = loss;
    }

    std::vector<link_id> victims_;
    location loc_;
    device_id endpoint_a_{invalid_device};
    bool severe_;
    sim_time started_{0};
    sim_duration ramp_;
};

}  // namespace

std::unique_ptr<scenario> make_gray_failure(const topology& topo, rng& rand, bool severe) {
    return std::make_unique<gray_failure>(topo, rand, severe);
}

std::unique_ptr<scenario> make_flapping_link(const topology& topo, rng& rand, bool severe) {
    return std::make_unique<flapping_link>(topo, rand, severe);
}

std::unique_ptr<scenario> make_multi_cause_storm(const topology& topo, rng& rand, bool severe) {
    return std::make_unique<multi_cause_storm>(topo, rand, severe);
}

std::unique_ptr<scenario> make_maintenance_window(const topology& topo, rng& rand) {
    return std::make_unique<maintenance_window>(topo, rand);
}

std::unique_ptr<scenario> make_slow_burn_degradation(const topology& topo, rng& rand,
                                                     bool severe) {
    return std::make_unique<slow_burn_degradation>(topo, rand, severe);
}

std::unique_ptr<scenario> make_flash_crowd(const topology& topo, rng& rand) {
    return std::make_unique<flash_crowd>(topo, rand);
}

std::unique_ptr<scenario> make_wan_partition(const topology& topo, rng& rand) {
    return std::make_unique<wan_partition>(topo, rand);
}

std::unique_ptr<scenario> make_device_hardware_failure(const topology& topo, rng& rand,
                                                       bool severe) {
    return std::make_unique<device_hardware_failure>(topo, rand, severe);
}
std::unique_ptr<scenario> make_link_failure(const topology& topo, rng& rand, bool severe) {
    return std::make_unique<link_failure>(topo, rand, severe);
}
std::unique_ptr<scenario> make_internet_entry_cut(const topology& topo, const location& logic_site,
                                                  double fraction) {
    return std::make_unique<internet_entry_cut>(topo, logic_site, fraction);
}
std::unique_ptr<scenario> make_modification_error(const topology& topo, rng& rand, bool severe) {
    return std::make_unique<modification_error>(topo, rand, severe);
}
std::unique_ptr<scenario> make_device_software_failure(const topology& topo, rng& rand,
                                                       bool severe) {
    return std::make_unique<device_software_failure>(topo, rand, severe);
}
std::unique_ptr<scenario> make_infrastructure_failure(const topology& topo, rng& rand,
                                                      bool severe) {
    return std::make_unique<infrastructure_failure>(topo, rand, severe);
}
std::unique_ptr<scenario> make_route_error(const topology& topo, rng& rand, bool severe) {
    return std::make_unique<route_error>(topo, rand, severe);
}
std::unique_ptr<scenario> make_security_ddos(const topology& topo, rng& rand, int sites) {
    return std::make_unique<security_ddos>(topo, rand, sites);
}
std::unique_ptr<scenario> make_configuration_error(const topology& topo, rng& rand, bool severe) {
    return std::make_unique<configuration_error>(topo, rand, severe);
}

std::unique_ptr<scenario> make_scenario(root_cause cause, const topology& topo, rng& rand,
                                        bool severe) {
    switch (cause) {
        case root_cause::device_hardware: return make_device_hardware_failure(topo, rand, severe);
        case root_cause::link_error:
            if (severe && rand.chance(0.5)) {
                return make_internet_entry_cut(topo, random_logic_site(topo, rand),
                                               rand.uniform_real(0.4, 0.6));
            }
            return make_link_failure(topo, rand, severe);
        case root_cause::modification_error: return make_modification_error(topo, rand, severe);
        case root_cause::device_software: return make_device_software_failure(topo, rand, severe);
        case root_cause::infrastructure: return make_infrastructure_failure(topo, rand, severe);
        case root_cause::route_error: return make_route_error(topo, rand, severe);
        case root_cause::security:
            return make_security_ddos(topo, rand, severe ? static_cast<int>(rand.uniform_int(2, 5))
                                                         : 1);
        case root_cause::configuration: return make_configuration_error(topo, rand, severe);
    }
    throw skynet_error("make_scenario: unknown cause");
}

std::unique_ptr<scenario> make_random_scenario(const topology& topo, rng& rand, bool severe) {
    return make_scenario(sample_root_cause(rand), topo, rand, severe);
}

}  // namespace skynet
