#include "skynet/sketch/counting.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "skynet/common/error.h"

namespace skynet::sketch {

namespace {

/// splitmix64 finalizer: one multiply-xor round per row turns the row
/// seed + key into an independent-enough hash for count-min's pairwise
/// independence needs. Fixed constants, so every run of every binary
/// agrees on cell placement.
std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

constexpr std::uint64_t kRowSeeds[count_min_sketch::max_depth] = {
    0x8bad'f00d'0000'0001ull, 0x8bad'f00d'0000'0002ull, 0x8bad'f00d'0000'0003ull,
    0x8bad'f00d'0000'0004ull, 0x8bad'f00d'0000'0005ull, 0x8bad'f00d'0000'0006ull,
    0x8bad'f00d'0000'0007ull, 0x8bad'f00d'0000'0008ull,
};

}  // namespace

std::string_view to_string(counting_mode mode) noexcept {
    switch (mode) {
        case counting_mode::off: return "off";
        case counting_mode::auto_switch: return "auto";
        case counting_mode::always: return "on";
    }
    return "?";
}

std::optional<counting_mode> parse_counting_mode(std::string_view text) noexcept {
    if (text == "off") return counting_mode::off;
    if (text == "auto") return counting_mode::auto_switch;
    if (text == "on") return counting_mode::always;
    return std::nullopt;
}

double sketch_config::epsilon() const noexcept {
    return width == 0 ? 0.0 : std::exp(1.0) / static_cast<double>(width);
}

double sketch_config::delta() const noexcept {
    return std::exp(-static_cast<double>(depth));
}

const char* sketch_config::check() const noexcept {
    if (!enabled()) return nullptr;  // off: the other knobs are inert
    if (threshold == 0 && mode == counting_mode::auto_switch) {
        return "sketch threshold must be >= 1 (0 would sketch everything; use mode on)";
    }
    if (width < 2 || (width & (width - 1)) != 0) {
        return "sketch width must be a power of two >= 2";
    }
    if (depth < 1 || depth > count_min_sketch::max_depth) {
        return "sketch depth must be in [1, 8]";
    }
    return nullptr;
}

void sketch_config::validate() const {
    if (const char* msg = check()) throw skynet_error(std::string("sketch: ") + msg);
}

std::uint64_t hash64(std::string_view text) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
    for (const char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;  // FNV prime
    }
    return h;
}

count_min_sketch::count_min_sketch(std::size_t width, std::size_t depth)
    : width_(width), depth_(depth), mask_(width - 1) {
    if (width < 2 || (width & (width - 1)) != 0) {
        throw skynet_error("count_min_sketch: width must be a power of two >= 2");
    }
    if (depth < 1 || depth > max_depth) {
        throw skynet_error("count_min_sketch: depth must be in [1, 8]");
    }
    // make_unique value-initializes: all cells start at zero.
    cells_ = std::make_unique<std::atomic<std::uint64_t>[]>(width_ * depth_);
}

count_min_sketch::count_min_sketch(const count_min_sketch& other)
    : width_(other.width_), depth_(other.depth_), mask_(other.mask_) {
    if (other.cells_ != nullptr) {
        const std::size_t n = width_ * depth_;
        cells_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
        for (std::size_t i = 0; i < n; ++i) {
            cells_[i].store(other.cells_[i].load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
        }
    }
}

count_min_sketch& count_min_sketch::operator=(const count_min_sketch& other) {
    if (this != &other) *this = count_min_sketch(other);
    return *this;
}

std::size_t count_min_sketch::cell_of(std::size_t row, std::uint64_t key) const noexcept {
    return row * width_ + static_cast<std::size_t>(mix(key ^ kRowSeeds[row]) & mask_);
}

std::uint64_t count_min_sketch::add(std::uint64_t key, std::uint64_t n) noexcept {
    std::size_t idx[max_depth];
    std::uint64_t est = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t r = 0; r < depth_; ++r) {
        idx[r] = cell_of(r, key);
        est = std::min(est, cells_[idx[r]].load(std::memory_order_relaxed));
    }
    const std::uint64_t updated = est + n;
    for (std::size_t r = 0; r < depth_; ++r) {
        // Conservative update: only the cells below the new estimate
        // move, and only upward — cells shared with hotter keys are left
        // alone, so their estimates do not inflate. Correct only with a
        // single writer (a racing writer could publish a smaller value).
        if (cells_[idx[r]].load(std::memory_order_relaxed) < updated) {
            cells_[idx[r]].store(updated, std::memory_order_relaxed);
        }
    }
    return updated;
}

void count_min_sketch::add_concurrent(std::uint64_t key, std::uint64_t n) noexcept {
    for (std::size_t r = 0; r < depth_; ++r) {
        cells_[cell_of(r, key)].fetch_add(n, std::memory_order_relaxed);
    }
}

std::uint64_t count_min_sketch::estimate(std::uint64_t key) const noexcept {
    if (cells_ == nullptr) return 0;
    std::uint64_t est = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t r = 0; r < depth_; ++r) {
        est = std::min(est, cells_[cell_of(r, key)].load(std::memory_order_relaxed));
    }
    return est;
}

void count_min_sketch::clear() noexcept {
    const std::size_t n = width_ * depth_;
    for (std::size_t i = 0; i < n; ++i) cells_[i].store(0, std::memory_order_relaxed);
}

counting_policy::counting_policy(sketch_config cfg) : cfg_(cfg) { cfg_.validate(); }

void counting_policy::ensure_sketch() {
    if (sketch_.width() == 0) sketch_ = count_min_sketch(cfg_.width, cfg_.depth);
}

counted counting_policy::sketch_add(std::uint64_t key, std::uint64_t n) {
    ensure_sketch();
    // Estimates span both rotation halves; the add lands in the current
    // one, so `first` stays reliable (a key still decaying in the
    // previous half is not re-reported as new).
    const std::uint64_t carry = prev_.estimate(key);
    const std::uint64_t before = sketch_.estimate(key) + carry;
    const std::uint64_t after = sketch_.add(key, n) + carry;
    ++sketched_adds_;
    sketch_active_ = true;
    return counted{.count = after, .first = before == 0, .sketched = true};
}

std::uint64_t counting_policy::sketch_estimate(std::uint64_t key) const noexcept {
    return sketch_.estimate(key) + prev_.estimate(key);
}

counted counting_policy::add(std::uint64_t key, std::uint64_t n) {
    const auto it = exact_.find(key);
    if (it != exact_.end()) {
        it->second += n;
        return counted{.count = it->second, .first = false, .sketched = false};
    }
    if (!enabled() || !overflowing(exact_.size())) {
        exact_.emplace(key, n);
        return counted{.count = n, .first = true, .sketched = false};
    }
    return sketch_add(key, n);
}

std::uint64_t counting_policy::count(std::uint64_t key) const noexcept {
    const auto it = exact_.find(key);
    if (it != exact_.end()) return it->second;
    return sketch_.estimate(key) + prev_.estimate(key);
}

std::size_t counting_policy::memory_bytes() const noexcept {
    return sketch_.memory_bytes() + prev_.memory_bytes() +
           exact_.size() * (sizeof(std::uint64_t) * 2 + sizeof(void*) * 2);
}

void counting_policy::rotate_sketch() noexcept {
    if (sketch_.width() == 0 && prev_.width() == 0) return;  // never touched
    std::swap(sketch_, prev_);
    // After the swap the current half holds the *old* previous window
    // (or is still unallocated on the very first rotation); zero it so
    // new adds start a fresh window on top of the decaying one.
    if (sketch_.width() != 0) sketch_.clear();
}

void counting_policy::clear_sketch() noexcept {
    if (sketch_.width() != 0) sketch_.clear();
    if (prev_.width() != 0) prev_.clear();
    sketch_active_ = false;
}

void counting_policy::reset_counts() noexcept {
    exact_.clear();
    clear_sketch();
}

void counting_policy::reset_all() noexcept {
    reset_counts();
    sketched_adds_ = 0;
}

}  // namespace skynet::sketch
