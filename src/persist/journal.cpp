#include "skynet/persist/journal.h"

#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "skynet/common/error.h"
#include "skynet/persist/crc32c.h"

namespace skynet::persist {

namespace {

constexpr std::size_t header_bytes = record_header_bytes;

void put_u32(std::string& out, std::uint32_t v) {
    out.push_back(static_cast<char>(v & 0xFF));
    out.push_back(static_cast<char>((v >> 8) & 0xFF));
    out.push_back(static_cast<char>((v >> 16) & 0xFF));
    out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::uint32_t get_u32(const char* p) {
    const auto* b = reinterpret_cast<const unsigned char*>(p);
    return static_cast<std::uint32_t>(b[0]) | (static_cast<std::uint32_t>(b[1]) << 8) |
           (static_cast<std::uint32_t>(b[2]) << 16) | (static_cast<std::uint32_t>(b[3]) << 24);
}

void put_u64(std::string& out, std::uint64_t v) {
    put_u32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
    put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_str(std::string& out, std::string_view s) {
    put_u32(out, static_cast<std::uint32_t>(s.size()));
    out += s;
}

// --- binary batch codec -------------------------------------------------------
// Text formats cost too much on the hot ingest path (double formatting
// alone blows the journal-overhead budget), so batches use a direct
// little-endian encoding. Doubles travel as bit patterns — replay is
// bit-exact with no round-trip caveats. Interned ids are deliberately
// not stored: like trace-file alerts, journal alerts arrive with the
// sentinel and the ingesting preprocessor re-interns them.

constexpr std::uint8_t flag_device = 1u << 0;
constexpr std::uint8_t flag_link = 1u << 1;
constexpr std::uint8_t flag_src = 1u << 2;
constexpr std::uint8_t flag_dst = 1u << 3;

void put_loc(std::string& out, const location& loc) {
    put_u32(out, static_cast<std::uint32_t>(loc.segments().size()));
    for (const std::string& seg : loc.segments()) put_str(out, seg);
}

}  // namespace

std::string encode_barrier_payload(sim_time now) {
    std::string payload;
    put_u64(payload, static_cast<std::uint64_t>(now));
    return payload;
}

bool decode_barrier_payload(std::string_view payload, sim_time& now) {
    if (payload.size() != 8) return false;
    const std::uint64_t lo = get_u32(payload.data());
    const std::uint64_t hi = get_u32(payload.data() + 4);
    now = static_cast<sim_time>(lo | (hi << 32));
    return true;
}

void encode_batch_payload(std::string& out, std::span<const traced_alert> batch) {
    out.clear();
    out.reserve(4 + batch.size() * 96);
    put_u32(out, static_cast<std::uint32_t>(batch.size()));
    for (const traced_alert& t : batch) {
        const raw_alert& a = t.alert;
        put_u64(out, static_cast<std::uint64_t>(t.arrival));
        out.push_back(static_cast<char>(a.source));
        put_u64(out, static_cast<std::uint64_t>(a.timestamp));
        put_str(out, a.kind);
        put_str(out, a.message);
        put_loc(out, a.loc);
        std::uint8_t flags = 0;
        if (a.device) flags |= flag_device;
        if (a.link) flags |= flag_link;
        if (a.src_loc) flags |= flag_src;
        if (a.dst_loc) flags |= flag_dst;
        out.push_back(static_cast<char>(flags));
        if (a.device) put_u32(out, *a.device);
        if (a.link) put_u32(out, *a.link);
        put_u64(out, std::bit_cast<std::uint64_t>(a.metric));
        if (a.src_loc) put_loc(out, *a.src_loc);
        if (a.dst_loc) put_loc(out, *a.dst_loc);
    }
}

namespace {

/// Bounds-checked reader over a batch payload; any overrun flips `ok`.
struct payload_cursor {
    std::string_view bytes;
    std::size_t pos{0};
    bool ok{true};

    [[nodiscard]] bool take(std::size_t n) {
        if (!ok || bytes.size() - pos < n) {
            ok = false;
            return false;
        }
        return true;
    }
    std::uint8_t u8() {
        if (!take(1)) return 0;
        return static_cast<std::uint8_t>(bytes[pos++]);
    }
    std::uint32_t u32() {
        if (!take(4)) return 0;
        const std::uint32_t v = get_u32(bytes.data() + pos);
        pos += 4;
        return v;
    }
    std::uint64_t u64() {
        const std::uint64_t lo = u32();
        const std::uint64_t hi = u32();
        return lo | (hi << 32);
    }
    std::string_view str() {
        const std::uint32_t len = u32();
        if (!take(len)) return {};
        const std::string_view s = bytes.substr(pos, len);
        pos += len;
        return s;
    }
    location loc() {
        const std::uint32_t nsegs = u32();
        if (!ok || nsegs > bytes.size() - pos) {  // each segment costs >= 4 bytes
            ok = false;
            return {};
        }
        std::vector<std::string> segments;
        segments.reserve(nsegs);
        for (std::uint32_t i = 0; i < nsegs && ok; ++i) segments.emplace_back(str());
        return location(std::move(segments));
    }
};

}  // namespace

bool decode_batch_payload(std::string_view payload, std::vector<traced_alert>& out) {
    payload_cursor c{.bytes = payload};
    const std::uint32_t count = c.u32();
    if (!c.ok || count > payload.size()) return false;  // count can't exceed bytes
    out.reserve(count);
    for (std::uint32_t i = 0; i < count && c.ok; ++i) {
        traced_alert t;
        t.arrival = static_cast<sim_time>(c.u64());
        raw_alert& a = t.alert;
        a.source = static_cast<data_source>(c.u8());
        a.timestamp = static_cast<sim_time>(c.u64());
        a.kind = std::string(c.str());
        a.message = std::string(c.str());
        a.loc = c.loc();
        const std::uint8_t flags = c.u8();
        if (flags & flag_device) a.device = c.u32();
        if (flags & flag_link) a.link = c.u32();
        a.metric = std::bit_cast<double>(c.u64());
        if (flags & flag_src) a.src_loc = c.loc();
        if (flags & flag_dst) a.dst_loc = c.loc();
        if (!c.ok) break;
        out.push_back(std::move(t));
    }
    return c.ok && c.pos == payload.size();
}

journal_writer::journal_writer(const std::string& path, std::size_t flush_every)
    : flush_every_(flush_every == 0 ? 1 : flush_every) {
    // "a+b" so an existing valid prefix is preserved on resume.
    file_ = std::fopen(path.c_str(), "a+b");
    if (file_ == nullptr) {
        throw skynet_error("journal: cannot open " + path);
    }
    std::fseek(file_, 0, SEEK_END);
    const long size = std::ftell(file_);
    if (size <= 0) {
        std::fwrite(journal_magic.data(), 1, journal_magic.size(), file_);
        std::fflush(file_);
        offset_ = journal_magic.size();
    } else {
        offset_ = static_cast<std::uint64_t>(size);
    }
}

journal_writer::~journal_writer() {
    if (file_ != nullptr) {
        std::fflush(file_);
        std::fclose(file_);
    }
}

void journal_writer::append(record_type type, std::string_view payload, bool force_flush) {
    std::string header;
    header.reserve(header_bytes);
    header.push_back(static_cast<char>(type));
    put_u32(header, static_cast<std::uint32_t>(payload.size()));
    put_u32(header, crc32c(payload));
    std::fwrite(header.data(), 1, header.size(), file_);
    std::fwrite(payload.data(), 1, payload.size(), file_);
    offset_ += header_bytes + payload.size();
    ++records_;
    if (force_flush || ++unflushed_ >= flush_every_) flush();
}

void journal_writer::append_batch(std::span<const traced_alert> batch) {
    encode_batch_payload(payload_buf_, batch);
    append(record_type::batch, payload_buf_, /*force_flush=*/false);
}

void journal_writer::append_barrier(record_type type, sim_time now) {
    // Group-commit: barriers ride the flush_every cadence like batches;
    // the durable session flushes explicitly where durability is load-
    // bearing (checkpoints, finish, crash drill). A finish barrier ends
    // the stream, so it flushes here.
    append(type, encode_barrier_payload(now), /*force_flush=*/type == record_type::finish);
}

void journal_writer::flush() {
    std::fflush(file_);
    unflushed_ = 0;
    ++flushes_;
}

journal_read_result read_journal(const std::string& path, std::uint64_t from) {
    journal_read_result result;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        result.missing = true;
        return result;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

    std::uint64_t pos = from;
    if (pos == 0) {
        if (bytes.size() < journal_magic.size() ||
            std::string_view(bytes).substr(0, journal_magic.size()) != journal_magic) {
            // Nothing trustworthy past a bad magic: the whole file is tail.
            result.truncated_tail_bytes = bytes.size();
            result.truncation_reason = "bad journal magic";
            return result;
        }
        pos = journal_magic.size();
    } else if (pos > bytes.size()) {
        result.truncation_reason = "journal shorter than resume offset";
        return result;
    }
    result.valid_bytes = pos;

    while (pos < bytes.size()) {
        if (bytes.size() - pos < header_bytes) {
            result.truncation_reason = "torn record header";
            break;
        }
        const auto type = static_cast<record_type>(static_cast<unsigned char>(bytes[pos]));
        const std::uint32_t len = get_u32(bytes.data() + pos + 1);
        const std::uint32_t crc = get_u32(bytes.data() + pos + 5);
        if (type != record_type::batch && type != record_type::tick &&
            type != record_type::finish) {
            result.truncation_reason = "unknown record type";
            break;
        }
        if (bytes.size() - pos - header_bytes < len) {
            result.truncation_reason = "torn record payload";
            break;
        }
        const std::string_view payload(bytes.data() + pos + header_bytes, len);
        if (crc32c(payload) != crc) {
            result.truncation_reason = "payload checksum mismatch";
            break;
        }

        journal_record record;
        record.type = type;
        if (type == record_type::batch) {
            if (!decode_batch_payload(payload, record.batch)) {
                // The CRC matched, so this is a writer/reader version
                // mismatch, not a torn write — still cut here, the
                // record cannot be replayed faithfully.
                result.truncation_reason = "unparseable batch payload";
                break;
            }
        } else {
            if (!decode_barrier_payload(payload, record.now)) {
                result.truncation_reason = "barrier payload size mismatch";
                break;
            }
        }
        result.records.push_back(std::move(record));
        pos += header_bytes + len;
        result.valid_bytes = pos;
    }
    result.truncated_tail_bytes = bytes.size() - result.valid_bytes;
    return result;
}

bool truncate_journal(const std::string& path, std::uint64_t valid_bytes) {
    std::error_code ec;
    std::filesystem::resize_file(path, valid_bytes, ec);
    return !ec;
}

}  // namespace skynet::persist
