#include "skynet/persist/recovery.h"

#include <functional>
#include <utility>

#include "skynet/common/error.h"

namespace skynet::persist {

namespace {

/// Engine-shape-independent view recover_impl drives.
struct engine_hooks {
    std::function<error(sharded_engine::persist_state)> import;
    std::function<void(std::span<const traced_alert>)> ingest;
    std::function<void(sim_time, const network_state&)> tick;
    std::function<void(sim_time, const network_state&)> finish;
    /// Fired after each replayed barrier; drains the engine's reports
    /// into the life-cycle manager / the caller's replay_closed hook.
    std::function<void(sim_time, const network_state&)> barrier_done;
};

/// Re-interns the snapshot's paths in id order. The fresh topology
/// already interned its construction-time paths in the same order (the
/// table invariant), so every id must come back exactly as stored — a
/// mismatch means the snapshot belongs to a different topology.
void restore_locations(location_table& table, const std::vector<std::string>& paths) {
    for (std::size_t i = 0; i < paths.size(); ++i) {
        const location_id id = table.intern(location::parse(paths[i]));
        if (id != static_cast<location_id>(i + 1)) {
            throw skynet_error("recover: location table mismatch at id " + std::to_string(i + 1) +
                               " ('" + paths[i] + "' interned as " + std::to_string(id) +
                               "); snapshot was taken against a different topology");
        }
    }
}

recovery_result recover_impl(const engine_hooks& hooks, location_table& locations,
                             incident_log* log, const recovery_options& opts) {
    recovery_result r;
    const std::string journal_path = opts.dir + "/" + journal_filename;

    journal_read_result scan = read_journal(journal_path);
    r.journal_valid_bytes = scan.valid_bytes;
    r.metrics.truncated_tail_bytes = scan.truncated_tail_bytes;
    if (scan.missing) {
        r.notes.push_back("journal missing; recovering from snapshots alone");
    } else if (!scan.truncation_reason.empty()) {
        r.notes.push_back("journal: " + scan.truncation_reason + " (" +
                          std::to_string(scan.truncated_tail_bytes) + " tail bytes dropped)");
        if (opts.repair_journal && !truncate_journal(journal_path, scan.valid_bytes)) {
            r.notes.push_back("journal: tail trim failed; resume-append unsafe");
        }
    }

    snapshot_pick pick = load_newest_snapshot(opts.dir, scan.valid_bytes);
    for (const skipped_snapshot& s : pick.skipped) {
        ++r.metrics.snapshots_skipped;
        r.notes.push_back("skipped " + s.file + ": " + s.reason);
    }

    std::uint64_t replay_from = 0;
    if (pick.data) {
        snapshot_data& snap = *pick.data;
        restore_locations(locations, snap.locations);
        replay_from = snap.journal_bytes;
        r.journal_records = snap.journal_records;
        r.next_snapshot_seq = snap.seq + 1;
        r.last_barrier_time = snap.barrier_time;
        r.notes.push_back("restored " + pick.file + " (seq " + std::to_string(snap.seq) +
                          ", journal offset " + std::to_string(snap.journal_bytes) + ")");
        if (log != nullptr) log->restore(std::move(snap.log));
        if (opts.controller != nullptr) opts.controller->import_state(snap.overload);
        if (opts.lifecycle != nullptr) opts.lifecycle->import_state(std::move(snap.lifecycle));
        if (error e = hooks.import(std::move(snap.engines))) {
            throw skynet_error("recover: " + e.message());
        }
    } else {
        r.notes.push_back("no usable snapshot; replaying the whole journal");
        if (log != nullptr) log->restore({});
    }

    if (!scan.missing) {
        // Records between the snapshot's offset and the valid end.
        journal_read_result suffix =
            replay_from == 0 ? std::move(scan) : read_journal(journal_path, replay_from);
        for (journal_record& rec : suffix.records) {
            switch (rec.type) {
                case record_type::batch:
                    hooks.ingest(std::span<const traced_alert>(rec.batch));
                    break;
                case record_type::tick:
                case record_type::finish:
                    if (opts.tick_state == nullptr) {
                        throw skynet_error(
                            "recover: journal suffix contains barriers but no tick_state was "
                            "provided");
                    }
                    if (rec.type == record_type::tick) {
                        hooks.tick(rec.now, *opts.tick_state);
                    } else {
                        hooks.finish(rec.now, *opts.tick_state);
                        r.saw_finish = true;
                    }
                    if (hooks.barrier_done) hooks.barrier_done(rec.now, *opts.tick_state);
                    r.last_barrier_time = rec.now;
                    break;
            }
            ++r.metrics.records_replayed;
        }
        r.journal_records += suffix.records.size();
    }
    return r;
}

/// Drains the reports the engine closed at a replayed barrier into the
/// life-cycle manager and/or the caller's replay_closed hook — the
/// recovered manager then diffs/suppresses exactly as the uninterrupted
/// run did.
template <typename Engine>
std::function<void(sim_time, const network_state&)> make_barrier_done(
    Engine& engine, const recovery_options& opts) {
    if (opts.lifecycle == nullptr && !opts.replay_closed) return {};
    return [&engine, &opts](sim_time now, const network_state& s) {
        std::vector<incident_report> closed = engine.take_reports();
        if (opts.lifecycle != nullptr) {
            const std::vector<incident_report> open = engine.open_reports(now, s);
            opts.lifecycle->on_barrier(now, closed, open, &s);
        }
        if (opts.replay_closed) opts.replay_closed(now, closed);
    };
}

}  // namespace

recovery_result recover(skynet_engine& engine, location_table& locations, incident_log* log,
                        const recovery_options& opts) {
    engine_hooks hooks;
    hooks.import = [&engine](sharded_engine::persist_state state) -> error {
        if (state.shards.size() != 1) {
            return error("snapshot holds " + std::to_string(state.shards.size()) +
                         " shard states; sequential engine expects 1");
        }
        engine.import_state(std::move(state.shards[0]));
        return error{};
    };
    hooks.ingest = [&engine](std::span<const traced_alert> batch) { engine.ingest_batch(batch); };
    hooks.tick = [&engine](sim_time now, const network_state& s) { engine.tick(now, s); };
    hooks.finish = [&engine](sim_time now, const network_state& s) { engine.finish(now, s); };
    hooks.barrier_done = make_barrier_done(engine, opts);
    return recover_impl(hooks, locations, log, opts);
}

recovery_result recover(sharded_engine& engine, location_table& locations, incident_log* log,
                        const recovery_options& opts) {
    engine_hooks hooks;
    hooks.import = [&engine](sharded_engine::persist_state state) -> error {
        if (state.shards.size() != engine.shard_count()) {
            return error("snapshot holds " + std::to_string(state.shards.size()) +
                         " shard states; engine has " + std::to_string(engine.shard_count()));
        }
        engine.import_state(std::move(state));
        return error{};
    };
    hooks.ingest = [&engine](std::span<const traced_alert> batch) { engine.ingest_batch(batch); };
    hooks.tick = [&engine](sim_time now, const network_state& s) { engine.tick(now, s); };
    hooks.finish = [&engine](sim_time now, const network_state& s) { engine.finish(now, s); };
    hooks.barrier_done = make_barrier_done(engine, opts);
    return recover_impl(hooks, locations, log, opts);
}

}  // namespace skynet::persist
