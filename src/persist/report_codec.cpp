#include "skynet/persist/report_codec.h"

#include <bit>
#include <charconv>
#include <cstdio>
#include <system_error>

#include "skynet/sim/trace.h"

namespace skynet::persist::codec {

// ---------------------------------------------------------------- writing

void put(std::string& out, std::string_view field) {
    out += '\t';
    out += field;
}

void put_u64(std::string& out, std::uint64_t v) { put(out, std::to_string(v)); }
void put_i64(std::string& out, std::int64_t v) { put(out, std::to_string(v)); }

void put_double(std::string& out, double v) {
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(v)));
    put(out, buf);
}

void put_alert(std::string& out, const structured_alert& a) {
    put_u64(out, a.type);
    put(out, a.type_name);
    put(out, source_token(a.source));
    switch (a.category) {
        case alert_category::failure: put(out, "f"); break;
        case alert_category::abnormal: put(out, "a"); break;
        case alert_category::root_cause: put(out, "r"); break;
    }
    put_i64(out, a.when.begin);
    put_i64(out, a.when.end);
    put_u64(out, a.loc_id);
    put_i64(out, a.count);
    put_double(out, a.metric);
    put(out, a.device ? std::to_string(*a.device) : "-");
    put_u64(out, a.src_id);
    put_u64(out, a.dst_id);
    put(out, a.loc.to_string());
    put(out, a.src_loc ? a.src_loc->to_string() : "-");
    put(out, a.dst_loc ? a.dst_loc->to_string() : "-");
}

void put_severity(std::string& out, const severity_breakdown& s) {
    put_double(out, s.impact_factor);
    put_double(out, s.time_factor);
    put_double(out, s.score);
    put_double(out, s.avg_ping_loss);
    put_double(out, s.max_sla_overload);
    put_i64(out, s.important_customers);
    put_i64(out, s.duration);
    put_i64(out, s.circuit_sets);
}

void put_incident(std::string& out, const incident& inc) {
    out += "INC";
    put_u64(out, inc.id);
    put_u64(out, inc.root_id);
    put_i64(out, inc.when.begin);
    put_i64(out, inc.when.end);
    put(out, inc.closed ? "1" : "0");
    put_u64(out, inc.alerts.size());
    put(out, inc.root.to_string());
    out += '\n';
    for (const structured_alert& a : inc.alerts) {
        out += "IA";
        put_alert(out, a);
        out += '\n';
    }
}

void put_report(std::string& out, const incident_report& r) {
    out += "REP";
    put(out, r.actionable ? "1" : "0");
    put(out, r.zoomed ? r.zoomed->to_string() : "-");
    put_severity(out, r.severity);
    out += '\n';
    put_incident(out, r.inc);
}

// ---------------------------------------------------------------- parsing

std::vector<std::string_view> split_tabs(std::string_view line) {
    std::vector<std::string_view> fields;
    std::size_t start = 0;
    while (true) {
        const std::size_t tab = line.find('\t', start);
        if (tab == std::string_view::npos) {
            fields.push_back(line.substr(start));
            return fields;
        }
        fields.push_back(line.substr(start, tab - start));
        start = tab + 1;
    }
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
    const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
    return ec == std::errc{} && p == s.data() + s.size();
}

bool parse_i64(std::string_view s, std::int64_t& out) {
    const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
    return ec == std::errc{} && p == s.data() + s.size();
}

bool parse_double_hex(std::string_view s, double& out) {
    std::uint64_t bits = 0;
    const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), bits, 16);
    if (ec != std::errc{} || p != s.data() + s.size()) return false;
    out = std::bit_cast<double>(bits);
    return true;
}

bool cursor::fail(const std::string& message) {
    if (err.empty()) err = "line " + std::to_string(line_no) + ": " + message;
    return false;
}

bool cursor::next(std::vector<std::string_view>& fields) {
    if (!err.empty()) return false;
    if (pos >= text.size()) {
        ++line_no;
        return fail("unexpected end of snapshot");
    }
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    fields = split_tabs(text.substr(pos, end - pos));
    pos = end + 1;
    ++line_no;
    return true;
}

bool cursor::expect(std::string_view tag, std::size_t n, std::vector<std::string_view>& fields) {
    if (!next(fields)) return false;
    if (fields.empty() || fields[0] != tag) {
        return fail("expected '" + std::string(tag) + "' record");
    }
    if (fields.size() != n + 1) {
        return fail("'" + std::string(tag) + "' field count: got " +
                    std::to_string(fields.size() - 1) + ", want " + std::to_string(n));
    }
    return true;
}

bool cursor::u64(std::string_view s, std::uint64_t& out) {
    return parse_u64(s, out) || fail("bad integer '" + std::string(s) + "'");
}

bool cursor::i64(std::string_view s, std::int64_t& out) {
    return parse_i64(s, out) || fail("bad integer '" + std::string(s) + "'");
}

bool cursor::u32(std::string_view s, std::uint32_t& out) {
    std::uint64_t wide = 0;
    if (!parse_u64(s, wide) || wide > 0xFFFFFFFFull) {
        return fail("bad u32 '" + std::string(s) + "'");
    }
    out = static_cast<std::uint32_t>(wide);
    return true;
}

bool cursor::dbl(std::string_view s, double& out) {
    return parse_double_hex(s, out) || fail("bad double bits '" + std::string(s) + "'");
}

bool cursor::flag(std::string_view s, bool& out) {
    if (s == "0") out = false;
    else if (s == "1") out = true;
    else return fail("bad flag '" + std::string(s) + "'");
    return true;
}

bool get_alert(cursor& c, const std::vector<std::string_view>& fields, std::size_t at,
               structured_alert& a) {
    std::uint64_t count = 0;
    if (!c.u32(fields[at + 0], a.type)) return false;
    a.type_name = std::string(fields[at + 1]);
    if (const auto src = parse_source(fields[at + 2])) a.source = *src;
    else return c.fail("bad source '" + std::string(fields[at + 2]) + "'");
    if (fields[at + 3] == "f") a.category = alert_category::failure;
    else if (fields[at + 3] == "a") a.category = alert_category::abnormal;
    else if (fields[at + 3] == "r") a.category = alert_category::root_cause;
    else return c.fail("bad category '" + std::string(fields[at + 3]) + "'");
    if (!c.i64(fields[at + 4], a.when.begin)) return false;
    if (!c.i64(fields[at + 5], a.when.end)) return false;
    if (!c.u32(fields[at + 6], a.loc_id)) return false;
    if (!c.u64(fields[at + 7], count)) return false;
    a.count = static_cast<int>(count);
    if (!c.dbl(fields[at + 8], a.metric)) return false;
    if (fields[at + 9] == "-") {
        a.device = std::nullopt;
    } else {
        std::uint32_t dev = 0;
        if (!c.u32(fields[at + 9], dev)) return false;
        a.device = dev;
    }
    if (!c.u32(fields[at + 10], a.src_id)) return false;
    if (!c.u32(fields[at + 11], a.dst_id)) return false;
    a.loc = location::parse(fields[at + 12]);
    a.src_loc = fields[at + 13] == "-" ? std::nullopt
                                       : std::optional(location::parse(fields[at + 13]));
    a.dst_loc = fields[at + 14] == "-" ? std::nullopt
                                       : std::optional(location::parse(fields[at + 14]));
    return true;
}

bool get_severity(cursor& c, const std::vector<std::string_view>& fields, std::size_t at,
                  severity_breakdown& s) {
    std::int64_t important = 0;
    std::int64_t csets = 0;
    if (!c.dbl(fields[at + 0], s.impact_factor)) return false;
    if (!c.dbl(fields[at + 1], s.time_factor)) return false;
    if (!c.dbl(fields[at + 2], s.score)) return false;
    if (!c.dbl(fields[at + 3], s.avg_ping_loss)) return false;
    if (!c.dbl(fields[at + 4], s.max_sla_overload)) return false;
    if (!c.i64(fields[at + 5], important)) return false;
    if (!c.i64(fields[at + 6], s.duration)) return false;
    if (!c.i64(fields[at + 7], csets)) return false;
    s.important_customers = static_cast<int>(important);
    s.circuit_sets = static_cast<int>(csets);
    return true;
}

bool get_incident(cursor& c, incident& inc) {
    std::vector<std::string_view> f;
    if (!c.expect("INC", 7, f)) return false;
    std::uint64_t n_alerts = 0;
    bool closed = false;
    if (!c.u64(f[1], inc.id)) return false;
    if (!c.u32(f[2], inc.root_id)) return false;
    if (!c.i64(f[3], inc.when.begin)) return false;
    if (!c.i64(f[4], inc.when.end)) return false;
    if (!c.flag(f[5], closed)) return false;
    if (!c.u64(f[6], n_alerts)) return false;
    inc.root = location::parse(f[7]);
    inc.closed = closed;
    inc.alerts.clear();
    inc.alerts.reserve(n_alerts);
    for (std::uint64_t i = 0; i < n_alerts; ++i) {
        if (!c.expect("IA", alert_fields, f)) return false;
        structured_alert a;
        if (!get_alert(c, f, 1, a)) return false;
        inc.alerts.push_back(std::move(a));
    }
    return true;
}

bool get_report(cursor& c, incident_report& r) {
    std::vector<std::string_view> f;
    if (!c.expect("REP", 10, f)) return false;
    bool actionable = false;
    if (!c.flag(f[1], actionable)) return false;
    r.actionable = actionable;
    r.zoomed = f[2] == "-" ? std::nullopt : std::optional(location::parse(f[2]));
    if (!get_severity(c, f, 3, r.severity)) return false;
    return get_incident(c, r.inc);
}

}  // namespace skynet::persist::codec
