#include "skynet/persist/snapshot.h"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "skynet/persist/crc32c.h"
#include "skynet/persist/report_codec.h"
#include "skynet/sim/trace.h"

namespace skynet::persist {

namespace {

// The alert/severity/incident/report codec and the line cursor live in
// persist::codec (shared with the federation digests); this file keeps only
// the snapshot-specific record shapes layered on top of them.
using namespace codec;

// ---------------------------------------------------------------- writing

void put_node(std::string& out, const locator::persist_state::node_state& n) {
    out += "N";
    put_u64(out, n.loc);
    put_i64(out, n.last_update);
    put_u64(out, n.alerts.size());
    out += '\n';
    for (const locator::stored_alert& a : n.alerts) {
        out += "A";
        put_i64(out, a.inserted);
        put_alert(out, a.alert);
        out += '\n';
    }
}

void put_pending(std::string& out, char tag,
                 const preprocessor::persist_state::pending_entry& p) {
    out += tag;
    put_i64(out, p.occurrences);
    put_i64(out, p.first_seen);
    put_i64(out, p.last_seen);
    put_i64(out, p.last_counted_ts);
    put_alert(out, p.alert);
    out += '\n';
}

void put_engine(std::string& out, std::size_t index, const skynet_engine::persist_state& e) {
    out += "engine";
    put_u64(out, index);
    out += '\n';

    const preprocessor_stats& st = e.pre.stats;
    out += "stats";
    put_i64(out, st.raw_in);
    put_i64(out, st.emitted_new);
    put_i64(out, st.emitted_update);
    put_i64(out, st.merged_identical);
    put_i64(out, st.dropped_sporadic);
    put_i64(out, st.dropped_unclassified);
    put_i64(out, st.dropped_uncorroborated);
    put_i64(out, st.merged_related);
    put_i64(out, st.rejected_malformed);
    put_i64(out, st.skew_clamped);
    out += '\n';

    out += "count";
    put_i64(out, e.structured_count);
    out += '\n';

    out += "open";
    put_u64(out, e.pre.open.size());
    out += '\n';
    for (const auto& o : e.pre.open) {
        out += "O";
        put_i64(out, o.last_seen);
        put_alert(out, o.alert);
        out += '\n';
    }

    out += "persistence";
    put_u64(out, e.pre.persistence.size());
    out += '\n';
    for (const auto& p : e.pre.persistence) put_pending(out, 'P', p);

    out += "correlation";
    put_u64(out, e.pre.correlation.size());
    out += '\n';
    for (const auto& c : e.pre.correlation) put_pending(out, 'C', c);

    out += "sightings";
    put_u64(out, e.pre.sightings.size());
    out += '\n';
    for (const auto& s : e.pre.sightings) {
        out += "S";
        put_u64(out, s.loc);
        put_i64(out, s.at);
        out += '\n';
    }

    out += "nodes";
    put_u64(out, e.loc.nodes.size());
    out += '\n';
    for (const auto& n : e.loc.nodes) put_node(out, n);

    out += "incidents";
    put_u64(out, e.loc.incidents.size());
    out += '\n';
    for (const auto& entry : e.loc.incidents) {
        out += "I";
        put_u64(out, entry.root_id);
        put_i64(out, entry.update_time);
        put_u64(out, entry.nodes.size());
        out += '\n';
        put_incident(out, entry.inc);
        for (const auto& n : entry.nodes) put_node(out, n);
    }

    out += "next_incident";
    put_u64(out, e.loc.next_incident_id);
    out += '\n';

    out += "scores";
    put_u64(out, e.live_scores.size());
    out += '\n';
    for (const auto& [id, sev] : e.live_scores) {
        out += "Y";
        put_u64(out, id);
        put_severity(out, sev);
        out += '\n';
    }

    out += "finished";
    put_u64(out, e.finished.size());
    out += '\n';
    for (const incident_report& r : e.finished) put_report(out, r);
}

// ---------------------------------------------------------------- parsing

bool get_node(cursor& c, locator::persist_state::node_state& n) {
    std::vector<std::string_view> f;
    if (!c.expect("N", 3, f)) return false;
    std::uint64_t n_alerts = 0;
    if (!c.u32(f[1], n.loc)) return false;
    if (!c.i64(f[2], n.last_update)) return false;
    if (!c.u64(f[3], n_alerts)) return false;
    n.alerts.clear();
    n.alerts.reserve(n_alerts);
    for (std::uint64_t i = 0; i < n_alerts; ++i) {
        if (!c.expect("A", alert_fields + 1, f)) return false;
        locator::stored_alert a;
        if (!c.i64(f[1], a.inserted)) return false;
        if (!get_alert(c, f, 2, a.alert)) return false;
        n.alerts.push_back(std::move(a));
    }
    return true;
}

bool get_pending(cursor& c, std::string_view tag,
                 preprocessor::persist_state::pending_entry& p) {
    std::vector<std::string_view> f;
    if (!c.expect(tag, alert_fields + 4, f)) return false;
    std::int64_t occ = 0;
    if (!c.i64(f[1], occ)) return false;
    if (!c.i64(f[2], p.first_seen)) return false;
    if (!c.i64(f[3], p.last_seen)) return false;
    if (!c.i64(f[4], p.last_counted_ts)) return false;
    p.occurrences = static_cast<int>(occ);
    return get_alert(c, f, 5, p.alert);
}

bool get_count(cursor& c, std::string_view tag, std::uint64_t& n) {
    std::vector<std::string_view> f;
    if (!c.expect(tag, 1, f)) return false;
    return c.u64(f[1], n);
}

bool get_engine(cursor& c, skynet_engine::persist_state& e) {
    std::vector<std::string_view> f;
    if (!c.expect("stats", 10, f)) return false;
    preprocessor_stats& st = e.pre.stats;
    if (!c.i64(f[1], st.raw_in) || !c.i64(f[2], st.emitted_new) ||
        !c.i64(f[3], st.emitted_update) || !c.i64(f[4], st.merged_identical) ||
        !c.i64(f[5], st.dropped_sporadic) || !c.i64(f[6], st.dropped_unclassified) ||
        !c.i64(f[7], st.dropped_uncorroborated) || !c.i64(f[8], st.merged_related) ||
        !c.i64(f[9], st.rejected_malformed) || !c.i64(f[10], st.skew_clamped)) {
        return false;
    }

    if (!c.expect("count", 1, f)) return false;
    if (!c.i64(f[1], e.structured_count)) return false;

    std::uint64_t n = 0;
    if (!get_count(c, "open", n)) return false;
    e.pre.open.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        if (!c.expect("O", alert_fields + 1, f)) return false;
        preprocessor::persist_state::open_entry o;
        if (!c.i64(f[1], o.last_seen)) return false;
        if (!get_alert(c, f, 2, o.alert)) return false;
        e.pre.open.push_back(std::move(o));
    }

    if (!get_count(c, "persistence", n)) return false;
    e.pre.persistence.resize(n);
    for (auto& p : e.pre.persistence) {
        if (!get_pending(c, "P", p)) return false;
    }

    if (!get_count(c, "correlation", n)) return false;
    e.pre.correlation.resize(n);
    for (auto& p : e.pre.correlation) {
        if (!get_pending(c, "C", p)) return false;
    }

    if (!get_count(c, "sightings", n)) return false;
    e.pre.sightings.resize(n);
    for (auto& s : e.pre.sightings) {
        if (!c.expect("S", 2, f)) return false;
        if (!c.u32(f[1], s.loc)) return false;
        if (!c.i64(f[2], s.at)) return false;
    }

    if (!get_count(c, "nodes", n)) return false;
    e.loc.nodes.resize(n);
    for (auto& node : e.loc.nodes) {
        if (!get_node(c, node)) return false;
    }

    if (!get_count(c, "incidents", n)) return false;
    e.loc.incidents.resize(n);
    for (auto& entry : e.loc.incidents) {
        if (!c.expect("I", 3, f)) return false;
        std::uint64_t n_nodes = 0;
        if (!c.u32(f[1], entry.root_id)) return false;
        if (!c.i64(f[2], entry.update_time)) return false;
        if (!c.u64(f[3], n_nodes)) return false;
        if (!get_incident(c, entry.inc)) return false;
        entry.nodes.resize(n_nodes);
        for (auto& node : entry.nodes) {
            if (!get_node(c, node)) return false;
        }
    }

    if (!c.expect("next_incident", 1, f)) return false;
    if (!c.u64(f[1], e.loc.next_incident_id)) return false;

    if (!get_count(c, "scores", n)) return false;
    e.live_scores.resize(n);
    for (auto& [id, sev] : e.live_scores) {
        if (!c.expect("Y", 9, f)) return false;
        if (!c.u64(f[1], id)) return false;
        if (!get_severity(c, f, 2, sev)) return false;
    }

    if (!get_count(c, "finished", n)) return false;
    e.finished.resize(n);
    for (auto& r : e.finished) {
        if (!get_report(c, r)) return false;
    }
    return true;
}

}  // namespace

std::string render_snapshot(const snapshot_data& data) {
    std::string out(snapshot_header);
    out += '\n';

    out += "meta";
    put_u64(out, data.seq);
    put_u64(out, data.journal_bytes);
    put_u64(out, data.journal_records);
    put_i64(out, data.barrier_time);
    put_u64(out, data.engines.next_region_shard);
    out += '\n';

    out += "locations";
    put_u64(out, data.locations.size());
    out += '\n';
    for (const std::string& path : data.locations) {
        out += "L";
        put(out, path);
        out += '\n';
    }

    out += "regions";
    put_u64(out, data.engines.regions.size());
    out += '\n';
    for (const auto& [region, shard] : data.engines.regions) {
        out += "R";
        put_u64(out, region);
        put_u64(out, shard);
        out += '\n';
    }

    out += "engines";
    put_u64(out, data.engines.shards.size());
    out += '\n';
    for (std::size_t i = 0; i < data.engines.shards.size(); ++i) {
        put_engine(out, i, data.engines.shards[i]);
    }

    const overload::controller::persist_state& ov = data.overload;
    out += "overload";
    put_u64(out, ov.window_alerts);
    put_u64(out, ov.window_bytes);
    put_u64(out, ov.dedup_keys.size());
    put_u64(out, ov.breakers.size());
    out += '\n';
    for (const std::string& key : ov.dedup_keys) {
        out += "D";
        put(out, key);
        out += '\n';
    }
    for (const overload::breaker_status& b : ov.breakers) {
        out += "B";
        put_u64(out, static_cast<std::uint64_t>(b.state));
        put_u64(out, b.window_good);
        put_u64(out, b.window_bad);
        put_i64(out, b.window_start);
        put_i64(out, b.reopen_at);
        put_i64(out, b.backoff);
        put_u64(out, b.probes_left);
        put_u64(out, b.trips);
        put_u64(out, b.quarantined);
        out += '\n';
    }
    const overload_metrics& oc = ov.counters;
    out += "ocounters";
    put_u64(out, oc.admitted);
    put_u64(out, oc.shed_duplicate);
    put_u64(out, oc.shed_other);
    put_u64(out, oc.shed_root_cause);
    put_u64(out, oc.shed_failure);
    put_u64(out, oc.shed_bytes);
    put_u64(out, oc.breaker_trips);
    put_u64(out, oc.breaker_reopens);
    put_u64(out, oc.breaker_closes);
    put_u64(out, oc.quarantined);
    put_u64(out, oc.probes_admitted);
    out += '\n';

    const lifecycle::manager::persist_state& lc = data.lifecycle;
    out += "lifecycle";
    put_i64(out, lc.last_barrier);
    put_u64(out, lc.lineages.size());
    put_u64(out, lc.collected.size());
    out += '\n';
    const lifecycle_metrics& lm = lc.counters;
    out += "lcounters";
    put_u64(out, lm.tracked);
    put_u64(out, lm.recurrences_linked);
    put_u64(out, lm.flaps_collapsed);
    put_u64(out, lm.realerts_suppressed);
    put_u64(out, lm.auto_closed);
    put_u64(out, lm.reopened);
    put_u64(out, lm.diffs_emitted);
    out += '\n';
    for (const lifecycle::lineage& ln : lc.lineages) {
        out += "LIN";
        put_u64(out, ln.id);
        put(out, ln.root);
        put_u64(out, static_cast<std::uint64_t>(ln.state));
        put_u64(out, ln.occurrences);
        put_u64(out, ln.suppressed_realerts);
        put_i64(out, ln.first_seen);
        put_i64(out, ln.last_activity);
        put_i64(out, ln.last_closed);
        put_double(out, ln.last_score);
        put_double(out, ln.peak_score);
        put(out, ln.engine_open ? "1" : "0");
        put_u64(out, ln.types.size());
        put_u64(out, ln.members.size());
        out += '\n';
        for (std::uint32_t t : ln.types) {
            out += "LT";
            put_u64(out, t);
            out += '\n';
        }
        for (std::uint64_t m : ln.members) {
            out += "LM";
            put_u64(out, m);
            out += '\n';
        }
    }
    for (const incident_report& r : lc.collected) put_report(out, r);
    const lifecycle::barrier_diff& ld = lc.last_diff;
    out += "ldiff";
    put_i64(out, ld.at);
    put_u64(out, ld.opened.size());
    put_u64(out, ld.escalated.size());
    put_u64(out, ld.deescalated.size());
    put_u64(out, ld.resolved.size());
    put_u64(out, ld.flapping.size());
    out += '\n';
    auto put_entries = [&out](const std::vector<lifecycle::diff_entry>& entries) {
        for (const lifecycle::diff_entry& e : entries) {
            out += "LD";
            put_u64(out, e.lineage);
            put(out, e.root);
            put_double(out, e.score);
            put_double(out, e.prev_score);
            put_u64(out, e.occurrences);
            out += '\n';
        }
    };
    put_entries(ld.opened);
    put_entries(ld.escalated);
    put_entries(ld.deescalated);
    put_entries(ld.resolved);
    put_entries(ld.flapping);

    out += "log";
    put_u64(out, data.log.size());
    out += '\n';
    for (const incident_log::entry& e : data.log) {
        out += "E";
        put_i64(out, e.closed_at);
        put(out, e.attributed_to_failure ? (*e.attributed_to_failure ? "1" : "0") : "-");
        out += '\n';
        put_report(out, e.report);
    }

    char trailer[20];
    std::snprintf(trailer, sizeof trailer, "crc\t%08x\n", crc32c(out));
    out += trailer;
    return out;
}

snapshot_parse_result parse_snapshot(std::string_view text) {
    snapshot_parse_result result;

    // Locate and verify the CRC trailer first: any flipped bit in the
    // body invalidates the file before structural parsing begins.
    const std::size_t crc_at = text.rfind("crc\t");
    if (crc_at == std::string_view::npos || (crc_at != 0 && text[crc_at - 1] != '\n')) {
        result.error = "missing crc trailer";
        return result;
    }
    std::string_view crc_field = text.substr(crc_at + 4);
    while (!crc_field.empty() && (crc_field.back() == '\n' || crc_field.back() == '\r')) {
        crc_field.remove_suffix(1);
    }
    std::uint32_t want = 0;
    {
        const auto [p, ec] =
            std::from_chars(crc_field.data(), crc_field.data() + crc_field.size(), want, 16);
        if (ec != std::errc{} || p != crc_field.data() + crc_field.size()) {
            result.error = "bad crc trailer";
            return result;
        }
    }
    const std::string_view body = text.substr(0, crc_at);
    if (crc32c(body) != want) {
        result.error = "snapshot checksum mismatch";
        return result;
    }

    cursor c;
    c.text = body;
    std::vector<std::string_view> f;
    if (!c.next(f) || f.size() != 1 || f[0] != snapshot_header) {
        result.error = c.err.empty() ? "bad snapshot header" : c.err;
        return result;
    }

    snapshot_data data;
    auto finish_error = [&]() {
        result.error = c.err.empty() ? "snapshot parse error" : c.err;
        return result;
    };

    if (!c.expect("meta", 5, f)) return finish_error();
    if (!c.u64(f[1], data.seq) || !c.u64(f[2], data.journal_bytes) ||
        !c.u64(f[3], data.journal_records) || !c.i64(f[4], data.barrier_time)) {
        return finish_error();
    }
    {
        std::uint64_t next_shard = 0;
        if (!c.u64(f[5], next_shard)) return finish_error();
        data.engines.next_region_shard = static_cast<std::size_t>(next_shard);
    }

    std::uint64_t n = 0;
    if (!get_count(c, "locations", n)) return finish_error();
    data.locations.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        if (!c.expect("L", 1, f)) return finish_error();
        data.locations.emplace_back(f[1]);
    }

    if (!get_count(c, "regions", n)) return finish_error();
    data.engines.regions.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        if (!c.expect("R", 2, f)) return finish_error();
        location_id region = invalid_location_id;
        std::uint64_t shard = 0;
        if (!c.u32(f[1], region) || !c.u64(f[2], shard)) return finish_error();
        data.engines.regions.emplace_back(region, static_cast<std::size_t>(shard));
    }

    if (!get_count(c, "engines", n)) return finish_error();
    data.engines.shards.resize(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t index = 0;
        if (!c.expect("engine", 1, f)) return finish_error();
        if (!c.u64(f[1], index)) return finish_error();
        if (index != i) {
            c.fail("engine index out of order");
            return finish_error();
        }
        if (!get_engine(c, data.engines.shards[i])) return finish_error();
    }

    {
        overload::controller::persist_state& ov = data.overload;
        std::uint64_t n_keys = 0;
        std::uint64_t n_breakers = 0;
        if (!c.expect("overload", 4, f)) return finish_error();
        if (!c.u64(f[1], ov.window_alerts) || !c.u64(f[2], ov.window_bytes) ||
            !c.u64(f[3], n_keys) || !c.u64(f[4], n_breakers)) {
            return finish_error();
        }
        if (n_breakers != ov.breakers.size()) {
            c.fail("breaker count: got " + std::to_string(n_breakers) + ", want " +
                   std::to_string(ov.breakers.size()));
            return finish_error();
        }
        ov.dedup_keys.reserve(n_keys);
        for (std::uint64_t i = 0; i < n_keys; ++i) {
            if (!c.expect("D", 1, f)) return finish_error();
            ov.dedup_keys.emplace_back(f[1]);
        }
        for (overload::breaker_status& b : ov.breakers) {
            std::uint64_t state = 0;
            std::uint64_t probes = 0;
            if (!c.expect("B", 9, f)) return finish_error();
            if (!c.u64(f[1], state) || !c.u64(f[2], b.window_good) || !c.u64(f[3], b.window_bad) ||
                !c.i64(f[4], b.window_start) || !c.i64(f[5], b.reopen_at) ||
                !c.i64(f[6], b.backoff) || !c.u64(f[7], probes) || !c.u64(f[8], b.trips) ||
                !c.u64(f[9], b.quarantined)) {
                return finish_error();
            }
            if (state > 2) {
                c.fail("bad breaker state " + std::to_string(state));
                return finish_error();
            }
            b.state = static_cast<overload::breaker_state>(state);
            b.probes_left = static_cast<std::uint32_t>(probes);
        }
        overload_metrics& oc = ov.counters;
        if (!c.expect("ocounters", 11, f)) return finish_error();
        if (!c.u64(f[1], oc.admitted) || !c.u64(f[2], oc.shed_duplicate) ||
            !c.u64(f[3], oc.shed_other) || !c.u64(f[4], oc.shed_root_cause) ||
            !c.u64(f[5], oc.shed_failure) || !c.u64(f[6], oc.shed_bytes) ||
            !c.u64(f[7], oc.breaker_trips) || !c.u64(f[8], oc.breaker_reopens) ||
            !c.u64(f[9], oc.breaker_closes) || !c.u64(f[10], oc.quarantined) ||
            !c.u64(f[11], oc.probes_admitted)) {
            return finish_error();
        }
    }

    {
        lifecycle::manager::persist_state& lc = data.lifecycle;
        std::uint64_t n_lineages = 0;
        std::uint64_t n_collected = 0;
        if (!c.expect("lifecycle", 3, f)) return finish_error();
        if (!c.i64(f[1], lc.last_barrier) || !c.u64(f[2], n_lineages) ||
            !c.u64(f[3], n_collected)) {
            return finish_error();
        }
        lifecycle_metrics& lm = lc.counters;
        if (!c.expect("lcounters", 7, f)) return finish_error();
        if (!c.u64(f[1], lm.tracked) || !c.u64(f[2], lm.recurrences_linked) ||
            !c.u64(f[3], lm.flaps_collapsed) || !c.u64(f[4], lm.realerts_suppressed) ||
            !c.u64(f[5], lm.auto_closed) || !c.u64(f[6], lm.reopened) ||
            !c.u64(f[7], lm.diffs_emitted)) {
            return finish_error();
        }
        lc.lineages.resize(n_lineages);
        for (lifecycle::lineage& ln : lc.lineages) {
            std::uint64_t state = 0;
            std::uint64_t n_types = 0;
            std::uint64_t n_members = 0;
            bool open_flag = false;
            if (!c.expect("LIN", 13, f)) return finish_error();
            if (!c.u64(f[1], ln.id) || !c.u64(f[3], state) ||
                !c.u64(f[5], ln.suppressed_realerts) || !c.i64(f[6], ln.first_seen) ||
                !c.i64(f[7], ln.last_activity) || !c.i64(f[8], ln.last_closed) ||
                !c.dbl(f[9], ln.last_score) || !c.dbl(f[10], ln.peak_score) ||
                !c.flag(f[11], open_flag) || !c.u64(f[12], n_types) ||
                !c.u64(f[13], n_members)) {
                return finish_error();
            }
            ln.root = std::string(f[2]);
            std::uint64_t occurrences = 0;
            if (!c.u64(f[4], occurrences)) return finish_error();
            ln.occurrences = static_cast<std::uint32_t>(occurrences);
            if (state > 4) {
                c.fail("bad lineage state " + std::to_string(state));
                return finish_error();
            }
            ln.state = static_cast<lifecycle::phase>(state);
            ln.engine_open = open_flag;
            ln.types.resize(n_types);
            for (std::uint32_t& t : ln.types) {
                if (!c.expect("LT", 1, f)) return finish_error();
                if (!c.u32(f[1], t)) return finish_error();
            }
            ln.members.resize(n_members);
            for (std::uint64_t& m : ln.members) {
                if (!c.expect("LM", 1, f)) return finish_error();
                if (!c.u64(f[1], m)) return finish_error();
            }
        }
        lc.collected.resize(n_collected);
        for (incident_report& r : lc.collected) {
            if (!get_report(c, r)) return finish_error();
        }
        lifecycle::barrier_diff& ld = lc.last_diff;
        std::uint64_t n_opened = 0, n_esc = 0, n_deesc = 0, n_res = 0, n_flap = 0;
        if (!c.expect("ldiff", 6, f)) return finish_error();
        if (!c.i64(f[1], ld.at) || !c.u64(f[2], n_opened) || !c.u64(f[3], n_esc) ||
            !c.u64(f[4], n_deesc) || !c.u64(f[5], n_res) || !c.u64(f[6], n_flap)) {
            return finish_error();
        }
        auto get_entries = [&](std::vector<lifecycle::diff_entry>& entries, std::uint64_t count) {
            entries.resize(count);
            for (lifecycle::diff_entry& e : entries) {
                std::uint64_t occurrences = 0;
                if (!c.expect("LD", 5, f)) return false;
                if (!c.u64(f[1], e.lineage) || !c.dbl(f[3], e.score) ||
                    !c.dbl(f[4], e.prev_score) || !c.u64(f[5], occurrences)) {
                    return false;
                }
                e.root = std::string(f[2]);
                e.occurrences = static_cast<std::uint32_t>(occurrences);
            }
            return true;
        };
        if (!get_entries(ld.opened, n_opened) || !get_entries(ld.escalated, n_esc) ||
            !get_entries(ld.deescalated, n_deesc) || !get_entries(ld.resolved, n_res) ||
            !get_entries(ld.flapping, n_flap)) {
            return finish_error();
        }
    }

    if (!get_count(c, "log", n)) return finish_error();
    data.log.resize(n);
    for (auto& e : data.log) {
        if (!c.expect("E", 2, f)) return finish_error();
        if (!c.i64(f[1], e.closed_at)) return finish_error();
        if (f[2] == "-") {
            e.attributed_to_failure = std::nullopt;
        } else {
            bool labeled = false;
            if (!c.flag(f[2], labeled)) return finish_error();
            e.attributed_to_failure = labeled;
        }
        if (!get_report(c, e.report)) return finish_error();
    }

    result.data = std::move(data);
    return result;
}

std::string snapshot_filename(std::uint64_t seq) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "snap-%010llu.skysnap", static_cast<unsigned long long>(seq));
    return buf;
}

error write_snapshot(const std::string& dir, const snapshot_data& data) {
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir, ec);  // best-effort; the open below reports failure

    const fs::path final_path = fs::path(dir) / snapshot_filename(data.seq);
    const fs::path tmp_path = final_path.string() + ".tmp";
    const std::string text = render_snapshot(data);
    {
        std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
        if (!out) return error("snapshot: cannot open " + tmp_path.string());
        out.write(text.data(), static_cast<std::streamsize>(text.size()));
        out.flush();
        if (!out) return error("snapshot: short write to " + tmp_path.string());
    }
    fs::rename(tmp_path, final_path, ec);
    if (ec) return error("snapshot: rename failed: " + ec.message());
    return error{};
}

snapshot_pick load_newest_snapshot(const std::string& dir, std::uint64_t journal_valid_bytes) {
    namespace fs = std::filesystem;
    snapshot_pick pick;

    std::vector<std::pair<std::uint64_t, fs::path>> candidates;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (!name.starts_with("snap-") || !name.ends_with(".skysnap")) continue;
        std::uint64_t seq = 0;
        const std::string_view digits =
            std::string_view(name).substr(5, name.size() - 5 - std::string_view(".skysnap").size());
        if (!parse_u64(digits, seq)) continue;
        candidates.emplace_back(seq, entry.path());
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });

    for (const auto& [seq, path] : candidates) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            pick.skipped.push_back({path.filename().string(), "unreadable"});
            continue;
        }
        std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
        snapshot_parse_result parsed = parse_snapshot(text);
        if (!parsed.ok()) {
            pick.skipped.push_back({path.filename().string(), parsed.error});
            continue;
        }
        if (parsed.data->journal_bytes > journal_valid_bytes) {
            pick.skipped.push_back({path.filename().string(),
                                    "references journal bytes past the durable prefix"});
            continue;
        }
        pick.data = std::move(parsed.data);
        pick.file = path.filename().string();
        break;
    }
    return pick;
}

}  // namespace skynet::persist
