#include "skynet/persist/crc32c.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SKYNET_CRC32C_X86 1
#include <nmmintrin.h>
#endif

namespace skynet::persist {

namespace {

// Reflected CRC-32C tables for polynomial 0x1EDC6F41, slicing-by-8:
// tables[0] is the classic byte table; tables[k] advances a byte
// through k additional zero bytes, letting the loop fold 8 input bytes
// per round instead of one.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
    std::array<std::array<std::uint32_t, 256>, 8> tables{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit) {
            crc = (crc & 1u) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
        }
        tables[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = tables[0][i];
        for (std::size_t k = 1; k < 8; ++k) {
            crc = (crc >> 8) ^ tables[0][crc & 0xFFu];
            tables[k][i] = crc;
        }
    }
    return tables;
}

constexpr std::array<std::array<std::uint32_t, 256>, 8> tables = make_tables();

std::uint32_t crc32c_sw(const unsigned char* bytes, std::size_t len,
                        std::uint32_t crc) noexcept {
    while (len >= 8) {
        std::uint64_t chunk;
        std::memcpy(&chunk, bytes, 8);  // layout below assumes little-endian
        crc ^= static_cast<std::uint32_t>(chunk);
        const auto hi = static_cast<std::uint32_t>(chunk >> 32);
        crc = tables[7][crc & 0xFFu] ^ tables[6][(crc >> 8) & 0xFFu] ^
              tables[5][(crc >> 16) & 0xFFu] ^ tables[4][crc >> 24] ^
              tables[3][hi & 0xFFu] ^ tables[2][(hi >> 8) & 0xFFu] ^
              tables[1][(hi >> 16) & 0xFFu] ^ tables[0][hi >> 24];
        bytes += 8;
        len -= 8;
    }
    while (len-- > 0) {
        crc = (crc >> 8) ^ tables[0][(crc ^ *bytes++) & 0xFFu];
    }
    return crc;
}

#ifdef SKYNET_CRC32C_X86

__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(const unsigned char* bytes,
                                                          std::size_t len,
                                                          std::uint32_t crc) noexcept {
    std::uint64_t crc64 = crc;
    while (len >= 8) {
        std::uint64_t chunk;
        std::memcpy(&chunk, bytes, 8);
        crc64 = _mm_crc32_u64(crc64, chunk);
        bytes += 8;
        len -= 8;
    }
    crc = static_cast<std::uint32_t>(crc64);
    while (len-- > 0) {
        crc = _mm_crc32_u8(crc, *bytes++);
    }
    return crc;
}

#endif  // SKYNET_CRC32C_X86

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t seed) noexcept {
    const auto* bytes = static_cast<const unsigned char*>(data);
    const std::uint32_t crc = ~seed;
#ifdef SKYNET_CRC32C_X86
    static const bool hw = __builtin_cpu_supports("sse4.2") != 0;
    if (hw) return ~crc32c_hw(bytes, len, crc);
#endif
    return ~crc32c_sw(bytes, len, crc);
}

}  // namespace skynet::persist
