#include "skynet/telemetry/reachability.h"

#include <algorithm>
#include <cstdio>

#include "skynet/common/error.h"

namespace skynet {

reachability_matrix::reachability_matrix(std::vector<location> endpoints)
    : endpoints_(std::move(endpoints)) {
    for (std::size_t i = 0; i < endpoints_.size(); ++i) {
        index_.emplace(endpoints_[i], i);
    }
    cells_.resize(endpoints_.size() * endpoints_.size());
}

reachability_matrix::reachability_matrix(const location_table& table,
                                         std::vector<location_id> endpoints)
    : endpoint_ids_(std::move(endpoints)) {
    endpoints_.reserve(endpoint_ids_.size());
    for (std::size_t i = 0; i < endpoint_ids_.size(); ++i) {
        endpoints_.push_back(table.path_of(endpoint_ids_[i]));
        index_.emplace(endpoints_[i], i);
        id_index_.emplace(endpoint_ids_[i], i);
    }
    cells_.resize(endpoints_.size() * endpoints_.size());
}

std::optional<std::size_t> reachability_matrix::index_of(const location& loc) const {
    const auto it = index_.find(loc);
    if (it == index_.end()) return std::nullopt;
    return it->second;
}

std::optional<std::size_t> reachability_matrix::index_of(location_id id) const {
    const auto it = id_index_.find(id);
    if (it == id_index_.end()) return std::nullopt;
    return it->second;
}

void reachability_matrix::record(const location& src, const location& dst, double loss_ratio) {
    const auto si = index_of(src);
    const auto di = index_of(dst);
    if (!si || !di) return;
    cell& c = cells_[*si * endpoints_.size() + *di];
    c.loss_sum += std::clamp(loss_ratio, 0.0, 1.0);
    ++c.samples;
}

void reachability_matrix::record(location_id src, location_id dst, double loss_ratio) {
    const auto si = index_of(src);
    const auto di = index_of(dst);
    if (!si || !di) return;
    cell& c = cells_[*si * endpoints_.size() + *di];
    c.loss_sum += std::clamp(loss_ratio, 0.0, 1.0);
    ++c.samples;
}

double reachability_matrix::at(std::size_t src_index, std::size_t dst_index) const {
    if (src_index >= size() || dst_index >= size()) {
        throw skynet_error("reachability_matrix::at: bad index");
    }
    const cell& c = cells_[src_index * size() + dst_index];
    return c.samples == 0 ? 0.0 : c.loss_sum / c.samples;
}

double reachability_matrix::at(const location& src, const location& dst) const {
    const auto si = index_of(src);
    const auto di = index_of(dst);
    if (!si || !di) return 0.0;
    return at(*si, *di);
}

double reachability_matrix::hotspot_score(std::size_t index) const {
    if (index >= size()) throw skynet_error("hotspot_score: bad index");
    if (size() <= 1) return 0.0;
    double sum = 0.0;
    int n = 0;
    for (std::size_t j = 0; j < size(); ++j) {
        if (j == index) continue;
        sum += at(index, j);  // row: index as source
        sum += at(j, index);  // column: index as destination
        n += 2;
    }
    return n == 0 ? 0.0 : sum / n;
}

std::optional<location> reachability_matrix::focal_point(double min_loss,
                                                         double dominance) const {
    if (size() < 2) return std::nullopt;
    std::vector<double> scores(size());
    for (std::size_t i = 0; i < size(); ++i) scores[i] = hotspot_score(i);

    const std::size_t best =
        static_cast<std::size_t>(std::max_element(scores.begin(), scores.end()) - scores.begin());
    if (scores[best] < min_loss) return std::nullopt;

    double rest = 0.0;
    for (std::size_t i = 0; i < size(); ++i) {
        if (i != best) rest += scores[i];
    }
    const double rest_mean = rest / static_cast<double>(size() - 1);
    // A focal endpoint "paints" its row and column; everyone else sees it
    // in exactly one of theirs, so diffuse loss keeps the ratio near 2.
    if (rest_mean > 0.0 && scores[best] < dominance * rest_mean) return std::nullopt;
    return endpoints_[best];
}

std::string reachability_matrix::to_string() const {
    std::string out;
    char buf[32];
    for (std::size_t i = 0; i < size(); ++i) {
        for (std::size_t j = 0; j < size(); ++j) {
            std::snprintf(buf, sizeof buf, "%6.2f ", at(i, j) * 100.0);
            out += buf;
        }
        out += "  # ";
        out += std::string(endpoints_[i].leaf());
        out += '\n';
    }
    return out;
}

}  // namespace skynet
