#include "skynet/telemetry/customer.h"

#include <algorithm>
#include <unordered_set>

#include "skynet/common/error.h"

namespace skynet {

std::string_view to_string(customer_tier tier) noexcept {
    switch (tier) {
        case customer_tier::standard: return "standard";
        case customer_tier::premium: return "premium";
        case customer_tier::critical: return "critical";
    }
    return "?";
}

void customer_registry::ensure_cset(circuit_set_id cset) {
    if (cset == invalid_circuit_set) throw skynet_error("customer_registry: invalid circuit set");
    if (customers_by_cset_.size() <= cset) {
        customers_by_cset_.resize(cset + 1);
        flows_by_cset_.resize(cset + 1);
    }
}

customer_id customer_registry::add_customer(std::string name, customer_tier tier) {
    const auto id = static_cast<customer_id>(customers_.size());
    customers_.push_back(
        customer{.id = id, .name = std::move(name), .tier = tier, .circuit_sets = {}});
    return id;
}

void customer_registry::attach(customer_id c, circuit_set_id cset) {
    if (c >= customers_.size()) throw skynet_error("customer_registry::attach: bad customer");
    ensure_cset(cset);
    customer& cust = customers_[c];
    if (std::find(cust.circuit_sets.begin(), cust.circuit_sets.end(), cset) !=
        cust.circuit_sets.end()) {
        return;
    }
    cust.circuit_sets.push_back(cset);
    customers_by_cset_[cset].push_back(c);
}

sla_flow_id customer_registry::add_sla_flow(customer_id owner, circuit_set_id cset,
                                            double committed_gbps) {
    if (owner >= customers_.size()) throw skynet_error("add_sla_flow: bad customer");
    ensure_cset(cset);
    const auto id = static_cast<sla_flow_id>(flows_.size());
    flows_.push_back(
        sla_flow{.id = id, .owner = owner, .cset = cset, .committed_gbps = committed_gbps});
    flows_by_cset_[cset].push_back(id);
    return id;
}

const customer& customer_registry::customer_at(customer_id id) const {
    if (id >= customers_.size()) throw skynet_error("customer_at: bad id");
    return customers_[id];
}

const sla_flow& customer_registry::flow_at(sla_flow_id id) const {
    if (id >= flows_.size()) throw skynet_error("flow_at: bad id");
    return flows_[id];
}

std::span<const customer_id> customer_registry::customers_on(circuit_set_id cset) const {
    if (cset >= customers_by_cset_.size()) return {};
    return customers_by_cset_[cset];
}

std::span<const sla_flow_id> customer_registry::flows_on(circuit_set_id cset) const {
    if (cset >= flows_by_cset_.size()) return {};
    return flows_by_cset_[cset];
}

double customer_registry::importance_factor(circuit_set_id cset) const {
    double g = 0.0;
    for (customer_id c : customers_on(cset)) {
        g = std::max(g, tier_importance(customers_[c].tier));
    }
    return g;
}

int customer_registry::customer_count(circuit_set_id cset) const {
    return static_cast<int>(customers_on(cset).size());
}

int customer_registry::important_customer_count(std::span<const circuit_set_id> csets) const {
    std::unordered_set<customer_id> seen;
    for (circuit_set_id cs : csets) {
        for (customer_id c : customers_on(cs)) {
            if (customers_[c].tier != customer_tier::standard) seen.insert(c);
        }
    }
    return static_cast<int>(seen.size());
}

customer_registry customer_registry::generate(const topology& topo, int n_customers, rng& rand) {
    customer_registry reg;

    // Candidate circuit sets: workload-facing bundles (ToR/AGG uplinks)
    // and internet entries, where customer traffic originates; transit
    // bundles (CSR/DCBR aggregation) and the WAN, which it traverses.
    std::vector<circuit_set_id> service_sets;
    std::vector<circuit_set_id> internet_sets;
    std::vector<circuit_set_id> transit_sets;
    std::vector<circuit_set_id> wan_sets;
    for (const circuit_set& cs : topo.circuit_sets()) {
        const device_role ra = topo.device_at(cs.a).role;
        const device_role rb = topo.device_at(cs.b).role;
        const bool internet = ra == device_role::isp || rb == device_role::isp;
        if (internet) {
            internet_sets.push_back(cs.id);
        } else if (ra == device_role::tor || rb == device_role::tor || ra == device_role::agg ||
                   rb == device_role::agg) {
            service_sets.push_back(cs.id);
        } else if (ra == device_role::bsr && rb == device_role::bsr) {
            wan_sets.push_back(cs.id);
        } else if (ra != device_role::reflector && rb != device_role::reflector) {
            transit_sets.push_back(cs.id);
        }
    }
    if (service_sets.empty() && internet_sets.empty()) return reg;

    for (int i = 0; i < n_customers; ++i) {
        const double roll = rand.uniform_real();
        const customer_tier tier = roll < 0.05   ? customer_tier::critical
                                   : roll < 0.20 ? customer_tier::premium
                                                 : customer_tier::standard;
        const customer_id id = reg.add_customer("customer-" + std::to_string(i + 1), tier);

        // Each customer's footprint: a few service sets plus, for most,
        // one internet entry.
        const int footprint = static_cast<int>(rand.uniform_int(1, 4));
        for (int f = 0; f < footprint && !service_sets.empty(); ++f) {
            reg.attach(id, rand.pick(service_sets));
        }
        if (!internet_sets.empty() && rand.chance(0.7)) {
            reg.attach(id, rand.pick(internet_sets));
        }
        // Traffic traverses the aggregation tiers and, for distributed
        // workloads, the WAN — those bundles carry the customer too.
        if (!transit_sets.empty() && rand.chance(0.8)) {
            reg.attach(id, rand.pick(transit_sets));
        }
        if (!wan_sets.empty() && rand.chance(0.4)) {
            reg.attach(id, rand.pick(wan_sets));
        }

        if (tier != customer_tier::standard) {
            for (circuit_set_id cs : reg.customer_at(id).circuit_sets) {
                reg.add_sla_flow(id, cs, rand.uniform_real(0.5, 10.0));
            }
        }
    }
    return reg;
}

}  // namespace skynet
