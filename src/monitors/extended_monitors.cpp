#include "skynet/monitors/extended_monitors.h"

#include "skynet/alert/type_registry.h"

namespace skynet {

void register_extended_alert_types(alert_type_registry& registry) {
    registry.register_type(data_source::internet_telemetry, "user probe loss",
                           alert_category::failure);
    registry.register_type(data_source::internet_telemetry, "user probe unreachable",
                           alert_category::failure);
    registry.register_type(data_source::internet_telemetry, "user probe slow",
                           alert_category::failure);
    registry.register_type(data_source::inband_telemetry, "srte bundle degraded",
                           alert_category::root_cause);
    registry.register_type(data_source::inband_telemetry, "srte bundle dead",
                           alert_category::root_cause);
}

// --- user-side telemetry -----------------------------------------------------

user_telemetry_monitor::user_telemetry_monitor(const topology& topo, config cfg,
                                               monitor_options opts)
    : topo_(&topo), cfg_(cfg), opts_(opts) {
    // Vantage points: the ISP peers (stand-ins for customer clients out
    // on the internet). Targets: a sample of clusters per region.
    std::vector<device_id> isps;
    for (const device& d : topo.devices()) {
        if (d.role == device_role::isp) isps.push_back(d.id);
    }
    for (device_id isp : isps) {
        int sampled = 0;
        for (const location& cluster : topo.clusters_under(location{})) {
            if (sampled++ % 4 != 0) continue;  // every fourth cluster
            probes_.push_back(probe_target{
                .isp = isp, .cluster = cluster, .cluster_id = topo.locations().intern(cluster)});
        }
    }
}

void user_telemetry_monitor::poll(const network_state& state, sim_time now, rng& rand,
                                  std::vector<raw_alert>& out) {
    for (const auto& [isp, cluster, cluster_id] : probes_) {
        const auto target = state.representative(cluster_id);
        if (!target) continue;
        // Round-trip view: the reply path crosses the border peer, so
        // trouble beyond it shows up in the probe.
        const network_state::probe_result r = state.probe(*target, isp);

        raw_alert a;
        a.source = data_source::internet_telemetry;
        a.timestamp = now;
        a.loc = cluster;
        a.loc_id = cluster_id;
        a.src_loc = cluster;  // the user's view localizes to the target
        a.src_id = cluster_id;
        if (!r.reachable) {
            a.kind = "user probe unreachable";
            a.message = "user telemetry: no path from client to " + cluster.to_string();
            a.metric = 1.0;
            out.push_back(std::move(a));
        } else if (r.loss > cfg_.loss_threshold) {
            a.kind = "user probe loss";
            a.message = "user telemetry: loss into " + cluster.to_string();
            a.metric = r.loss;
            out.push_back(std::move(a));
        } else if (r.latency_ms > cfg_.latency_threshold_ms) {
            a.kind = "user probe slow";
            a.message = "user telemetry: slow path into " + cluster.to_string();
            a.metric = r.latency_ms;
            out.push_back(std::move(a));
        }
    }
    (void)rand;
}

// --- SRTE label probing ---------------------------------------------------------

srte_probe_monitor::srte_probe_monitor(const topology& topo, config cfg, monitor_options opts)
    : topo_(&topo), cfg_(cfg), opts_(opts) {}

void srte_probe_monitor::poll(const network_state& state, sim_time now, rng& rand,
                              std::vector<raw_alert>& out) {
    for (const circuit_set& cs : topo_->circuit_sets()) {
        // Label-steered probes exercise every circuit of the bundle
        // directly: the verdict is the exact break ratio.
        const double broken = state.break_ratio(cs.id);
        if (broken < cfg_.degraded_threshold) continue;

        raw_alert a;
        a.source = data_source::inband_telemetry;
        a.timestamp = now;
        a.kind = broken >= 1.0 ? "srte bundle dead" : "srte bundle degraded";
        a.message = "srte: " + cs.name + " break ratio " + std::to_string(broken);
        a.metric = broken;
        // Attributed to the near endpoint but located at the bundle's
        // common ancestor: the verdict concerns the whole bundle.
        a.device = cs.a;
        const location_table& table = topo_->locations();
        a.loc_id = table.common_ancestor(topo_->device_at(cs.a).loc_id,
                                         topo_->device_at(cs.b).loc_id);
        if (a.loc_id == root_location_id) {
            a.loc_id = table.parent_of(topo_->device_at(cs.a).loc_id);
        }
        a.loc = table.path_of(a.loc_id);
        out.push_back(std::move(a));
    }
    (void)rand;
}

std::vector<std::unique_ptr<monitor_tool>> make_extended_monitors(const topology& topo,
                                                                  monitor_options opts) {
    std::vector<std::unique_ptr<monitor_tool>> tools;
    tools.push_back(
        std::make_unique<user_telemetry_monitor>(topo, user_telemetry_monitor::config{}, opts));
    tools.push_back(std::make_unique<srte_probe_monitor>(topo, srte_probe_monitor::config{}, opts));
    return tools;
}

}  // namespace skynet
