#include "skynet/monitors/device_monitors.h"

#include <algorithm>

namespace skynet {
namespace {

raw_alert device_alert(data_source src, const device& dev, std::string kind, std::string message,
                       sim_time now, double metric = 0.0) {
    raw_alert a;
    a.source = src;
    a.timestamp = now;
    a.kind = std::move(kind);
    a.message = std::move(message);
    a.loc = dev.loc;
    a.loc_id = dev.loc_id;
    a.device = dev.id;
    a.metric = metric;
    return a;
}

}  // namespace

// --- out-of-band -------------------------------------------------------------

void oob_monitor::poll(const network_state& state, sim_time now, rng& rand,
                       std::vector<raw_alert>& out) {
    for (const device& d : topo_->devices()) {
        if (d.role == device_role::isp) continue;
        const device_health& h = state.device_state(d.id);
        if (!h.alive) {
            out.push_back(device_alert(data_source::out_of_band, d, "device inaccessible",
                                       "oob: " + d.name + " does not answer", now, 1.0));
            continue;
        }
        if (h.cpu > 0.9) {
            out.push_back(device_alert(data_source::out_of_band, d, "high cpu",
                                       "oob: cpu " + std::to_string(h.cpu * 100.0) + "%", now,
                                       h.cpu));
        }
        if (h.ram > 0.9) {
            out.push_back(device_alert(data_source::out_of_band, d, "high ram",
                                       "oob: ram " + std::to_string(h.ram * 100.0) + "%", now,
                                       h.ram));
        }
    }
    // Probe glitch: a broken liveness prober floods identical
    // device-down alerts for one healthy device (§4.2 false-alarm case).
    if (opts_.noise_rate > 0.0 && rand.chance(opts_.noise_rate)) {
        const device& d = rand.pick(topo_->devices());
        if (d.role != device_role::isp && state.device_state(d.id).alive) {
            const int burst = static_cast<int>(rand.uniform_int(20, 80));
            for (int i = 0; i < burst; ++i) {
                out.push_back(device_alert(data_source::out_of_band, d, "device inaccessible",
                                           "oob: probe error glitch", now, 1.0));
            }
        }
    }
}

// --- SNMP -------------------------------------------------------------------

void snmp_monitor::poll(const network_state& state, sim_time now, rng& rand,
                        std::vector<raw_alert>& out) {
    for (const device& d : topo_->devices()) {
        if (d.role == device_role::isp) continue;
        const device_health& h = state.device_state(d.id);
        if (!h.alive) continue;  // SNMP agent is gone with the device

        // Interface status: one alert per unusable link, every poll —
        // a dead peer takes the line protocol down on the live side too.
        for (link_id lid : topo_->links_of(d.id)) {
            if (!state.link_usable(lid)) {
                out.push_back(device_alert(data_source::snmp, d, "link down",
                                           "snmp: ifOperStatus down on " + d.name, now, 1.0));
            }
            if (state.link_state(lid).corruption_loss > 0.005) {
                out.push_back(device_alert(data_source::snmp, d, "rx errors",
                                           "snmp: rx error counter rising on " + d.name, now,
                                           state.link_state(lid).corruption_loss));
            }
            if (state.link_state(lid).flapping) {
                out.push_back(device_alert(data_source::snmp, d, "interface flap",
                                           "snmp: interface flapping on " + d.name, now));
            }
        }

        // Congestion and carried-traffic anomalies per attached set.
        double carried = 0.0;
        for (circuit_set_id cs : topo_->circuit_sets_of(d.id)) {
            const double util = state.utilization(cs);
            if (util > network_state::congestion_knee) {
                out.push_back(device_alert(data_source::snmp, d, "traffic congestion",
                                           "snmp: output queue drops, util " +
                                               std::to_string(util * 100.0) + "%",
                                           now, util));
            }
            carried += std::min(state.offered_gbps(cs), state.live_capacity_gbps(cs));
        }
        auto [it, inserted] = traffic_baseline_.try_emplace(d.id, carried);
        if (!inserted) {
            const double base = it->second;
            if (base > 1.0 && carried < base * 0.5) {
                out.push_back(device_alert(data_source::snmp, d, "traffic drop",
                                           "snmp: carried traffic halved on " + d.name, now,
                                           carried / base));
            } else if (base > 1.0 && carried > base * 1.5) {
                out.push_back(device_alert(data_source::snmp, d, "traffic surge",
                                           "snmp: carried traffic jumped on " + d.name, now,
                                           carried / base));
            }
            // Slow EWMA so sustained anomalies keep alerting for a while.
            it->second = base * 0.98 + carried * 0.02;
        }

        if (h.cpu > 0.9) {
            out.push_back(
                device_alert(data_source::snmp, d, "high cpu", "snmp: cpu high", now, h.cpu));
        }
        if (h.ram > 0.9) {
            out.push_back(
                device_alert(data_source::snmp, d, "high ram", "snmp: ram high", now, h.ram));
        }
    }
    (void)rand;
}

// --- syslog -------------------------------------------------------------------

void syslog_source::emit(const device& dev, std::string_view type_name, sim_time now, rng& rand,
                         std::vector<raw_alert>& out) const {
    // Render a concrete vendor-style message for the type; the
    // preprocessor must recover the type via the FT-tree classifier.
    for (const syslog_format& fmt : syslog_message_catalog()) {
        if (fmt.type_name == type_name) {
            raw_alert a;
            a.source = data_source::syslog;
            a.timestamp = now;
            a.message = render_syslog(fmt.pattern, rand);
            a.loc = dev.loc;
            a.loc_id = dev.loc_id;
            a.device = dev.id;
            out.push_back(std::move(a));
            return;
        }
    }
}

void syslog_source::poll(const network_state& state, sim_time now, rng& rand,
                         std::vector<raw_alert>& out) {
    const std::size_t n_dev = topo_->devices().size();
    const std::size_t n_link = topo_->links().size();
    if (!primed_) {
        prev_link_up_.assign(n_link, true);
        prev_cp_ok_.assign(n_dev, true);
        prev_hw_fault_.assign(n_dev, false);
        prev_sw_fault_.assign(n_dev, false);
        prev_oom_.assign(n_dev, false);
        prev_crc_.assign(n_link, false);
        primed_ = true;
    }

    auto alive = [&](device_id id) {
        return state.device_state(id).alive && topo_->device_at(id).role != device_role::isp;
    };

    // Link transitions: both endpoints log (if they can). Usability
    // covers the peer-death case: the live side logs line-protocol down.
    for (const link& l : topo_->links()) {
        const bool up = state.link_usable(l.id);
        if (prev_link_up_[l.id] && !up) {
            if (alive(l.a)) emit(topo_->device_at(l.a), "link down", now, rand, out);
            if (alive(l.b)) emit(topo_->device_at(l.b), "port down", now, rand, out);
        }
        prev_link_up_[l.id] = up;

        const bool crc = state.link_state(l.id).corruption_loss > 0.02;
        if (crc && !prev_crc_[l.id]) {
            if (alive(l.a)) emit(topo_->device_at(l.a), "crc error", now, rand, out);
        }
        prev_crc_[l.id] = crc;

        if (state.link_state(l.id).flapping && rand.chance(0.3)) {
            if (alive(l.a)) emit(topo_->device_at(l.a), "link flapping", now, rand, out);
            if (alive(l.b)) emit(topo_->device_at(l.b), "port flapping", now, rand, out);
        }
    }

    for (const device& d : topo_->devices()) {
        if (d.role == device_role::isp) continue;
        const device_health& h = state.device_state(d.id);
        if (!h.alive) {
            prev_cp_ok_[d.id] = h.control_plane_ok;
            continue;  // a dead device logs nothing
        }

        // Control-plane down: every live neighbor logs the peer loss.
        if (prev_cp_ok_[d.id] && !h.control_plane_ok) {
            for (device_id nb : topo_->neighbors(d.id)) {
                if (alive(nb)) emit(topo_->device_at(nb), "bgp peer down", now, rand, out);
            }
            emit(d, "protocol adjacency loss", now, rand, out);
            if (h.silent_loss > 0.3) emit(d, "traffic blackhole", now, rand, out);
        }
        prev_cp_ok_[d.id] = h.control_plane_ok;

        // Hardware error: logged when the device finally notices (§7.3 —
        // minutes after the behavioural symptoms).
        if (!prev_hw_fault_[d.id] && h.hardware_fault) {
            emit(d, "hardware error", now, rand, out);
            if (rand.chance(0.3)) emit(d, "bit flip", now, rand, out);
        }
        prev_hw_fault_[d.id] = h.hardware_fault;

        if (!prev_sw_fault_[d.id] && h.software_fault) {
            emit(d, "software error", now, rand, out);
        }
        prev_sw_fault_[d.id] = h.software_fault;

        const bool oom = h.ram > 0.95;
        if (!prev_oom_[d.id] && oom) emit(d, "out of memory", now, rand, out);
        prev_oom_[d.id] = oom;

        // BGP session jitter keeps logging while it lasts.
        if (h.bgp_flapping && rand.chance(0.25)) {
            emit(d, "bgp link jitter", now, rand, out);
        }
    }

    // Background log noise: benign messages that classify to no critical
    // template.
    if (opts_.noise_rate > 0.0 && rand.chance(opts_.noise_rate)) {
        const device& d = rand.pick(topo_->devices());
        if (alive(d.id)) {
            raw_alert a;
            a.source = data_source::syslog;
            a.timestamp = now;
            a.message = "%SYS-6-INFO: periodic housekeeping task completed id " +
                        std::to_string(rand.uniform_int(1, 100000));
            a.loc = d.loc;
            a.loc_id = d.loc_id;
            a.device = d.id;
            out.push_back(std::move(a));
        }
    }
}

// --- INT -----------------------------------------------------------------------

int_monitor::int_monitor(const topology& topo, monitor_options opts)
    : topo_(&topo), opts_(opts) {
    for (const circuit_set& cs : topo.circuit_sets()) {
        if (topo.device_at(cs.a).supports_int && topo.device_at(cs.b).supports_int) {
            covered_sets_.push_back(cs.id);
        }
    }
}

void int_monitor::poll(const network_state& state, sim_time now, rng& rand,
                       std::vector<raw_alert>& out) {
    for (circuit_set_id cs : covered_sets_) {
        const circuit_set& set = topo_->circuit_set_at(cs);
        if (!state.device_state(set.a).alive || !state.device_state(set.b).alive) continue;
        const double loss = state.traversal_loss(cs);
        const device& a_dev = topo_->device_at(set.a);
        if (loss > 0.05) {
            out.push_back(device_alert(data_source::inband_telemetry, a_dev, "int packet loss",
                                       "int: test flow loss on " + set.name, now, loss));
        } else if (loss > 0.01) {
            out.push_back(device_alert(data_source::inband_telemetry, a_dev, "rate discrepancy",
                                       "int: in/out rate mismatch on " + set.name, now, loss));
        }
        if (state.utilization(cs) > 0.85) {
            out.push_back(device_alert(data_source::inband_telemetry, a_dev, "queue buildup",
                                       "int: queue depth rising on " + set.name, now,
                                       state.utilization(cs)));
        }
    }
    (void)rand;
}

// --- PTP -----------------------------------------------------------------------

void ptp_monitor::poll(const network_state& state, sim_time now, rng& rand,
                       std::vector<raw_alert>& out) {
    for (const device& d : topo_->devices()) {
        if (d.role == device_role::isp) continue;
        const device_health& h = state.device_state(d.id);
        if (h.alive && !h.clock_synced) {
            out.push_back(device_alert(data_source::ptp, d, "clock desync",
                                       "ptp: clock offset beyond bound on " + d.name, now));
        }
    }
    (void)rand;
}

// --- patrol -----------------------------------------------------------------------

void patrol_monitor::poll(const network_state& state, sim_time now, rng& rand,
                          std::vector<raw_alert>& out) {
    for (const device& d : topo_->devices()) {
        if (d.role == device_role::isp) continue;
        const device_health& h = state.device_state(d.id);
        if (!h.alive) continue;  // the patrol login just times out
        if (h.hardware_fault || h.software_fault) {
            out.push_back(device_alert(data_source::patrol_inspection, d, "patrol command error",
                                       "patrol: diagnostic command failed on " + d.name, now));
        } else if (h.silent_loss > 0.05 && rand.chance(0.5)) {
            // Internal drop counters sometimes betray a gray failure.
            out.push_back(device_alert(data_source::patrol_inspection, d, "patrol command error",
                                       "patrol: internal drop counters rising on " + d.name, now,
                                       h.silent_loss));
        }
        if (h.cpu > 0.95) {
            out.push_back(device_alert(data_source::patrol_inspection, d, "patrol timeout",
                                       "patrol: command timed out on " + d.name, now));
        }
    }
}

}  // namespace skynet
