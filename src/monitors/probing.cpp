#include "skynet/monitors/probing.h"

#include <unordered_set>

namespace skynet {

// --- ping mesh --------------------------------------------------------------

ping_mesh::ping_mesh(const topology& topo, config cfg, monitor_options opts)
    : topo_(&topo), cfg_(cfg), opts_(opts), clusters_(topo.clusters_under(location{})) {}

void ping_mesh::poll(const network_state& state, sim_time now, rng& rand,
                     std::vector<raw_alert>& out) {
    if (clusters_.size() < 2) return;
    for (int i = 0; i < cfg_.pairs_per_poll; ++i) {
        const location& src = rand.pick(clusters_);
        const location& dst = rand.pick(clusters_);
        if (src == dst) continue;
        const auto sd = state.representative(src);
        const auto dd = state.representative(dst);
        if (!sd || !dd) continue;

        const network_state::probe_result r = state.probe(*sd, *dd);
        raw_alert a;
        a.source = data_source::ping;
        a.timestamp = now;
        a.src_loc = src;
        a.dst_loc = dst;
        // Triangulate before blaming an endpoint: if src still reaches a
        // third cluster cleanly, the trouble is on the dst side. This is
        // how mesh probers attribute loss to "the affected link" (§4.1)
        // instead of smearing it over both healthy and sick endpoints.
        const bool probe_bad =
            !r.reachable || r.loss > cfg_.loss_threshold || r.latency_ms > cfg_.latency_threshold_ms;
        if (probe_bad) {
            const location& ref = rand.pick(clusters_);
            std::optional<bool> src_clean;
            if (ref != src && ref != dst) {
                if (const auto rd = state.representative(ref)) {
                    const auto r2 = state.probe(*sd, *rd);
                    src_clean = r2.reachable && r2.loss <= cfg_.loss_threshold;
                }
            }
            if (src_clean.has_value()) {
                // Source reaches a third cluster cleanly -> the trouble is
                // on the destination side; source lossy everywhere -> the
                // source side is the suspect.
                a.loc = *src_clean ? dst : src;
            } else {
                a.loc = location::common_ancestor(src, dst);
                if (a.loc.is_root()) a.loc = dst;
            }
        }
        if (!r.reachable) {
            a.kind = "unreachable pair";
            a.message = "ping: no reply " + src.to_string() + " -> " + dst.to_string();
            a.metric = 1.0;
            out.push_back(std::move(a));
        } else if (r.loss > cfg_.loss_threshold) {
            a.kind = "packet loss";
            a.message = "ping: loss " + std::to_string(r.loss * 100.0) + "% " + src.to_string() +
                        " -> " + dst.to_string();
            a.metric = r.loss;
            out.push_back(std::move(a));
        } else if (r.latency_ms > cfg_.latency_threshold_ms) {
            a.kind = "high latency";
            a.message = "ping: rtt " + std::to_string(r.latency_ms) + "ms";
            a.metric = r.latency_ms;
            out.push_back(std::move(a));
        }
    }
    // Sporadic single-probe blips (filtered by the preprocessor's
    // persistence rule).
    if (opts_.noise_rate > 0.0 && rand.chance(opts_.noise_rate)) {
        const location& src = rand.pick(clusters_);
        const location& dst = rand.pick(clusters_);
        if (src != dst) {
            raw_alert a;
            a.source = data_source::ping;
            a.timestamp = now;
            a.kind = "packet loss";
            a.message = "ping: transient blip";
            a.loc = src;  // a momentary local artifact at the prober
            a.src_loc = src;
            a.dst_loc = dst;
            a.metric = 0.02;
            out.push_back(std::move(a));
        }
    }
}

// --- traceroute ---------------------------------------------------------------

traceroute_monitor::traceroute_monitor(const topology& topo, config cfg, monitor_options opts)
    : topo_(&topo), cfg_(cfg), opts_(opts), clusters_(topo.clusters_under(location{})) {}

void traceroute_monitor::poll(const network_state& state, sim_time now, rng& rand,
                              std::vector<raw_alert>& out) {
    if (clusters_.size() < 2) return;
    for (int i = 0; i < cfg_.pairs_per_poll; ++i) {
        const std::size_t si = rand.index(clusters_.size());
        const std::size_t di = rand.index(clusters_.size());
        if (si == di) continue;
        const location& src = clusters_[si];
        const location& dst = clusters_[di];
        const auto sd = state.representative(src);
        const auto dd = state.representative(dst);
        if (!sd || !dd) continue;

        const network_state::probe_result r = state.probe(*sd, *dd);
        if (!r.reachable) continue;  // traceroute times out silently

        const std::string key = src.to_string() + ">" + dst.to_string();
        auto [it, inserted] = baseline_paths_.try_emplace(key, r.hops);
        raw_alert base;
        base.source = data_source::traceroute;
        base.timestamp = now;
        base.loc = location::common_ancestor(src, dst);
        if (base.loc.is_root()) base.loc = src.ancestor_at(hierarchy_level::region);
        base.src_loc = src;
        base.dst_loc = dst;

        if (!inserted && it->second != r.hops) {
            raw_alert a = base;
            a.kind = "path change";
            a.message = "traceroute: path changed " + key;
            out.push_back(std::move(a));
            it->second = r.hops;
        }
        if (r.loss > cfg_.hop_loss_threshold) {
            // Attribute the loss to the most suspicious hop (the way
            // traceroute-based localizers vote on links), not to a coarse
            // common ancestor that would weld unrelated incidents.
            device_id suspect = r.hops.size() >= 2 ? r.hops[r.hops.size() / 2] : *sd;
            double worst = -1.0;
            for (device_id hop : r.hops) {
                const double hop_loss = state.device_state(hop).silent_loss;
                if (hop_loss > worst) {
                    worst = hop_loss;
                    suspect = hop;
                }
            }
            raw_alert a = base;
            a.kind = "hop loss";
            a.message = "traceroute: probe loss along " + key;
            a.metric = r.loss;
            a.loc = topo_->device_at(suspect).loc;
            a.device = suspect;
            out.push_back(std::move(a));
        }
        // Attribute queueing delay to the congested hop.
        for (std::size_t h = 0; h + 1 < r.hops.size(); ++h) {
            const device_id hop = r.hops[h];
            for (circuit_set_id cs : topo_->circuit_sets_of(hop)) {
                if (state.utilization(cs) > 0.95) {
                    raw_alert a = base;
                    a.kind = "hop latency spike";
                    a.message = "traceroute: latency spike at " + topo_->device_at(hop).name;
                    a.loc = topo_->device_at(hop).loc;
                    a.device = hop;
                    out.push_back(std::move(a));
                    break;
                }
            }
        }
    }
}

// --- internet telemetry ---------------------------------------------------------

internet_telemetry_monitor::internet_telemetry_monitor(const topology& topo, config cfg,
                                                       monitor_options opts)
    : topo_(&topo), cfg_(cfg), opts_(opts) {
    // Enumerate logic sites and find their region's ISP peer.
    std::unordered_set<location, location_hash> seen;
    for (const device& d : topo.devices()) {
        if (d.role != device_role::isr) continue;
        const location ls = d.loc.ancestor_at(hierarchy_level::logic_site);
        if (!seen.insert(ls).second) continue;
        for (link_id lid : topo.links_of(d.id)) {
            const link& l = topo.link_at(lid);
            if (!l.internet_entry) continue;
            const device_id isp = topo.device_at(l.a).role == device_role::isp ? l.a : l.b;
            probes_.emplace_back(ls, isp);
            break;
        }
    }
}

void internet_telemetry_monitor::poll(const network_state& state, sim_time now, rng& rand,
                                      std::vector<raw_alert>& out) {
    for (const auto& [ls, isp] : probes_) {
        const auto src = state.representative(ls);
        if (!src) continue;
        const network_state::probe_result r = state.probe(*src, isp);
        raw_alert a;
        a.source = data_source::internet_telemetry;
        a.timestamp = now;
        a.loc = ls;
        if (!r.reachable) {
            a.kind = "internet unreachable";
            a.message = "internet probe timed out from " + ls.to_string();
            a.metric = 1.0;
            out.push_back(std::move(a));
        } else if (r.loss > cfg_.loss_threshold) {
            a.kind = "internet packet loss";
            a.message = "internet probe loss from " + ls.to_string();
            a.metric = r.loss;
            out.push_back(std::move(a));
        } else if (r.latency_ms > cfg_.latency_threshold_ms) {
            a.kind = "internet high latency";
            a.message = "internet probe slow from " + ls.to_string();
            a.metric = r.latency_ms;
            out.push_back(std::move(a));
        }
    }
    (void)rand;
}

}  // namespace skynet
