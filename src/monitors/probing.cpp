#include "skynet/monitors/probing.h"

#include <unordered_set>

namespace skynet {

// --- ping mesh --------------------------------------------------------------

ping_mesh::ping_mesh(const topology& topo, config cfg, monitor_options opts)
    : topo_(&topo), cfg_(cfg), opts_(opts), clusters_(topo.clusters_under(location{})) {
    cluster_ids_.reserve(clusters_.size());
    for (const location& c : clusters_) cluster_ids_.push_back(topo.locations().intern(c));
}

void ping_mesh::poll(const network_state& state, sim_time now, rng& rand,
                     std::vector<raw_alert>& out) {
    if (clusters_.size() < 2) return;
    const location_table& table = topo_->locations();
    for (int i = 0; i < cfg_.pairs_per_poll; ++i) {
        const std::size_t si = rand.index(clusters_.size());
        const std::size_t di = rand.index(clusters_.size());
        if (si == di) continue;
        const location& src = clusters_[si];
        const location& dst = clusters_[di];
        const auto sd = state.representative(cluster_ids_[si]);
        const auto dd = state.representative(cluster_ids_[di]);
        if (!sd || !dd) continue;

        const network_state::probe_result r = state.probe(*sd, *dd);
        raw_alert a;
        a.source = data_source::ping;
        a.timestamp = now;
        a.src_loc = src;
        a.dst_loc = dst;
        a.src_id = cluster_ids_[si];
        a.dst_id = cluster_ids_[di];
        // Triangulate before blaming an endpoint: if src still reaches a
        // third cluster cleanly, the trouble is on the dst side. This is
        // how mesh probers attribute loss to "the affected link" (§4.1)
        // instead of smearing it over both healthy and sick endpoints.
        const bool probe_bad =
            !r.reachable || r.loss > cfg_.loss_threshold || r.latency_ms > cfg_.latency_threshold_ms;
        if (probe_bad) {
            const std::size_t ri = rand.index(clusters_.size());
            std::optional<bool> src_clean;
            if (ri != si && ri != di) {
                if (const auto rd = state.representative(cluster_ids_[ri])) {
                    const auto r2 = state.probe(*sd, *rd);
                    src_clean = r2.reachable && r2.loss <= cfg_.loss_threshold;
                }
            }
            if (src_clean.has_value()) {
                // Source reaches a third cluster cleanly -> the trouble is
                // on the destination side; source lossy everywhere -> the
                // source side is the suspect.
                a.loc = *src_clean ? dst : src;
                a.loc_id = *src_clean ? cluster_ids_[di] : cluster_ids_[si];
            } else {
                location_id ca = table.common_ancestor(cluster_ids_[si], cluster_ids_[di]);
                if (ca == root_location_id) ca = cluster_ids_[di];
                a.loc = table.path_of(ca);
                a.loc_id = ca;
            }
        }
        if (!r.reachable) {
            a.kind = "unreachable pair";
            a.message = "ping: no reply " + src.to_string() + " -> " + dst.to_string();
            a.metric = 1.0;
            out.push_back(std::move(a));
        } else if (r.loss > cfg_.loss_threshold) {
            a.kind = "packet loss";
            a.message = "ping: loss " + std::to_string(r.loss * 100.0) + "% " + src.to_string() +
                        " -> " + dst.to_string();
            a.metric = r.loss;
            out.push_back(std::move(a));
        } else if (r.latency_ms > cfg_.latency_threshold_ms) {
            a.kind = "high latency";
            a.message = "ping: rtt " + std::to_string(r.latency_ms) + "ms";
            a.metric = r.latency_ms;
            out.push_back(std::move(a));
        }
    }
    // Sporadic single-probe blips (filtered by the preprocessor's
    // persistence rule).
    if (opts_.noise_rate > 0.0 && rand.chance(opts_.noise_rate)) {
        const std::size_t si = rand.index(clusters_.size());
        const std::size_t di = rand.index(clusters_.size());
        if (si != di) {
            raw_alert a;
            a.source = data_source::ping;
            a.timestamp = now;
            a.kind = "packet loss";
            a.message = "ping: transient blip";
            a.loc = clusters_[si];  // a momentary local artifact at the prober
            a.loc_id = cluster_ids_[si];
            a.src_loc = clusters_[si];
            a.dst_loc = clusters_[di];
            a.src_id = cluster_ids_[si];
            a.dst_id = cluster_ids_[di];
            a.metric = 0.02;
            out.push_back(std::move(a));
        }
    }
}

// --- traceroute ---------------------------------------------------------------

traceroute_monitor::traceroute_monitor(const topology& topo, config cfg, monitor_options opts)
    : topo_(&topo), cfg_(cfg), opts_(opts), clusters_(topo.clusters_under(location{})) {
    cluster_ids_.reserve(clusters_.size());
    for (const location& c : clusters_) cluster_ids_.push_back(topo.locations().intern(c));
}

void traceroute_monitor::poll(const network_state& state, sim_time now, rng& rand,
                              std::vector<raw_alert>& out) {
    if (clusters_.size() < 2) return;
    const location_table& table = topo_->locations();
    for (int i = 0; i < cfg_.pairs_per_poll; ++i) {
        const std::size_t si = rand.index(clusters_.size());
        const std::size_t di = rand.index(clusters_.size());
        if (si == di) continue;
        const location& src = clusters_[si];
        const location& dst = clusters_[di];
        const auto sd = state.representative(cluster_ids_[si]);
        const auto dd = state.representative(cluster_ids_[di]);
        if (!sd || !dd) continue;

        const network_state::probe_result r = state.probe(*sd, *dd);
        if (!r.reachable) continue;  // traceroute times out silently

        const std::uint64_t key = (static_cast<std::uint64_t>(cluster_ids_[si]) << 32) |
                                  static_cast<std::uint64_t>(cluster_ids_[di]);
        const std::string pair_label = src.to_string() + ">" + dst.to_string();
        auto [it, inserted] = baseline_paths_.try_emplace(key, r.hops);
        raw_alert base;
        base.source = data_source::traceroute;
        base.timestamp = now;
        base.loc_id = table.common_ancestor(cluster_ids_[si], cluster_ids_[di]);
        if (base.loc_id == root_location_id) {
            base.loc_id = table.ancestor_at(cluster_ids_[si], hierarchy_level::region);
        }
        base.loc = table.path_of(base.loc_id);
        base.src_loc = src;
        base.dst_loc = dst;
        base.src_id = cluster_ids_[si];
        base.dst_id = cluster_ids_[di];

        if (!inserted && it->second != r.hops) {
            raw_alert a = base;
            a.kind = "path change";
            a.message = "traceroute: path changed " + pair_label;
            out.push_back(std::move(a));
            it->second = r.hops;
        }
        if (r.loss > cfg_.hop_loss_threshold) {
            // Attribute the loss to the most suspicious hop (the way
            // traceroute-based localizers vote on links), not to a coarse
            // common ancestor that would weld unrelated incidents.
            device_id suspect = r.hops.size() >= 2 ? r.hops[r.hops.size() / 2] : *sd;
            double worst = -1.0;
            for (device_id hop : r.hops) {
                const double hop_loss = state.device_state(hop).silent_loss;
                if (hop_loss > worst) {
                    worst = hop_loss;
                    suspect = hop;
                }
            }
            raw_alert a = base;
            a.kind = "hop loss";
            a.message = "traceroute: probe loss along " + pair_label;
            a.metric = r.loss;
            a.loc = topo_->device_at(suspect).loc;
            a.loc_id = topo_->device_at(suspect).loc_id;
            a.device = suspect;
            out.push_back(std::move(a));
        }
        // Attribute queueing delay to the congested hop.
        for (std::size_t h = 0; h + 1 < r.hops.size(); ++h) {
            const device_id hop = r.hops[h];
            for (circuit_set_id cs : topo_->circuit_sets_of(hop)) {
                if (state.utilization(cs) > 0.95) {
                    raw_alert a = base;
                    a.kind = "hop latency spike";
                    a.message = "traceroute: latency spike at " + topo_->device_at(hop).name;
                    a.loc = topo_->device_at(hop).loc;
                    a.loc_id = topo_->device_at(hop).loc_id;
                    a.device = hop;
                    out.push_back(std::move(a));
                    break;
                }
            }
        }
    }
}

// --- internet telemetry ---------------------------------------------------------

internet_telemetry_monitor::internet_telemetry_monitor(const topology& topo, config cfg,
                                                       monitor_options opts)
    : topo_(&topo), cfg_(cfg), opts_(opts) {
    // Enumerate logic sites and find their region's ISP peer.
    location_table& table = topo.locations();
    std::unordered_set<location_id> seen;
    for (const device& d : topo.devices()) {
        if (d.role != device_role::isr) continue;
        const location_id ls = table.ancestor_at(d.loc_id, hierarchy_level::logic_site);
        if (!seen.insert(ls).second) continue;
        for (link_id lid : topo.links_of(d.id)) {
            const link& l = topo.link_at(lid);
            if (!l.internet_entry) continue;
            const device_id isp = topo.device_at(l.a).role == device_role::isp ? l.a : l.b;
            probes_.push_back(probe_target{.ls = table.path_of(ls), .ls_id = ls, .isp = isp});
            break;
        }
    }
}

void internet_telemetry_monitor::poll(const network_state& state, sim_time now, rng& rand,
                                      std::vector<raw_alert>& out) {
    for (const probe_target& p : probes_) {
        const auto src = state.representative(p.ls_id);
        if (!src) continue;
        const network_state::probe_result r = state.probe(*src, p.isp);
        raw_alert a;
        a.source = data_source::internet_telemetry;
        a.timestamp = now;
        a.loc = p.ls;
        a.loc_id = p.ls_id;
        if (!r.reachable) {
            a.kind = "internet unreachable";
            a.message = "internet probe timed out from " + p.ls.to_string();
            a.metric = 1.0;
            out.push_back(std::move(a));
        } else if (r.loss > cfg_.loss_threshold) {
            a.kind = "internet packet loss";
            a.message = "internet probe loss from " + p.ls.to_string();
            a.metric = r.loss;
            out.push_back(std::move(a));
        } else if (r.latency_ms > cfg_.latency_threshold_ms) {
            a.kind = "internet high latency";
            a.message = "internet probe slow from " + p.ls.to_string();
            a.metric = r.latency_ms;
            out.push_back(std::move(a));
        }
    }
    (void)rand;
}

}  // namespace skynet
