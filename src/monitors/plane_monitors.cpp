#include "skynet/monitors/plane_monitors.h"

#include <algorithm>

#include "skynet/monitors/device_monitors.h"
#include "skynet/monitors/probing.h"

namespace skynet {
namespace {

raw_alert set_alert(data_source src, const topology& topo, const circuit_set& cs, std::string kind,
                    std::string message, sim_time now, double metric) {
    raw_alert a;
    a.source = src;
    a.timestamp = now;
    a.kind = std::move(kind);
    a.message = std::move(message);
    a.metric = metric;
    const location_table& table = topo.locations();
    a.loc_id = table.common_ancestor(topo.device_at(cs.a).loc_id, topo.device_at(cs.b).loc_id);
    if (a.loc_id == root_location_id) {
        a.loc_id = table.parent_of(topo.device_at(cs.a).loc_id);
    }
    a.loc = table.path_of(a.loc_id);
    if (!cs.circuits.empty()) a.link = cs.circuits.front();
    return a;
}

}  // namespace

// --- traffic statistics -----------------------------------------------------

void traffic_monitor::poll(const network_state& state, sim_time now, rng& rand,
                           std::vector<raw_alert>& out) {
    for (const circuit_set& cs : topo_->circuit_sets()) {
        const double loss = state.traversal_loss(cs.id);
        if (loss > 0.01) {
            out.push_back(set_alert(data_source::traffic_stats, *topo_, cs, "sflow packet loss",
                                    "sflow: sampled loss on " + cs.name, now, loss));
        }

        const double carried =
            std::min(state.offered_gbps(cs.id), state.live_capacity_gbps(cs.id)) *
            (1.0 - loss);
        auto [it, inserted] = baseline_.try_emplace(cs.id, carried);
        if (!inserted) {
            const double base = it->second;
            if (base > 1.0 && carried < base * 0.5) {
                out.push_back(set_alert(data_source::traffic_stats, *topo_, cs, "traffic drop",
                                        "netflow: traffic down on " + cs.name, now,
                                        carried / base));
            } else if (base > 1.0 && carried > base * 1.5) {
                out.push_back(set_alert(data_source::traffic_stats, *topo_, cs, "traffic surge",
                                        "netflow: traffic spike on " + cs.name, now,
                                        carried / base));
            }
            it->second = base * 0.98 + carried * 0.02;
        }

        // SLA flows beyond committed rate on this set.
        int over = 0;
        for (sla_flow_id f : state.customers().flows_on(cs.id)) {
            if (state.flow_rate_gbps(f) > state.customers().flow_at(f).committed_gbps) ++over;
        }
        if (over > 0) {
            out.push_back(set_alert(data_source::traffic_stats, *topo_, cs,
                                    "sla flow beyond limit",
                                    "netflow: " + std::to_string(over) + " SLA flows over limit",
                                    now, static_cast<double>(over)));
        }
    }
    (void)rand;
}

// --- route monitoring ---------------------------------------------------------

void route_monitor::poll(const network_state& state, sim_time now, rng& rand,
                         std::vector<raw_alert>& out) {
    for (const route_incident& r : state.route_incidents()) {
        raw_alert a;
        a.source = data_source::route_monitoring;
        a.timestamp = now;
        a.loc = r.where;
        a.loc_id = r.where_id;
        switch (r.what) {
            case route_incident::kind::default_route_loss:
                a.kind = "default route loss";
                a.message = "route: default route withdrawn at " + r.where.to_string();
                break;
            case route_incident::kind::aggregate_route_loss:
                a.kind = "aggregate route loss";
                a.message = "route: aggregate missing at " + r.where.to_string();
                break;
            case route_incident::kind::hijack:
                a.kind = "route hijack";
                a.message = "route: more-specific hijack seen at " + r.where.to_string();
                break;
            case route_incident::kind::leak:
                a.kind = "route leak";
                a.message = "route: leaked prefixes at " + r.where.to_string();
                break;
            case route_incident::kind::churn:
                a.kind = "route churn";
                a.message = "route: update churn at " + r.where.to_string();
                break;
        }
        out.push_back(std::move(a));
    }
    // BGP session jitter shows up as update churn in the control plane.
    for (const device& d : topo_->devices()) {
        if (d.role == device_role::isp) continue;
        const device_health& h = state.device_state(d.id);
        if (h.alive && h.bgp_flapping && rand.chance(0.02)) {
            raw_alert a;
            a.source = data_source::route_monitoring;
            a.timestamp = now;
            a.kind = "route churn";
            a.message = "route: update churn from " + d.name;
            a.loc = d.loc;
            a.loc_id = d.loc_id;
            a.device = d.id;
            out.push_back(std::move(a));
        }
    }
}

// --- modification events --------------------------------------------------------

void modification_monitor::poll(const network_state& state, sim_time now, rng& rand,
                                std::vector<raw_alert>& out) {
    const auto& events = state.modifications();
    for (; seen_ < events.size(); ++seen_) {
        const modification_event& e = events[seen_];
        raw_alert a;
        a.source = data_source::modification_events;
        a.timestamp = now;
        a.loc = e.where;
        a.loc_id = e.where_id;
        if (e.failed) {
            a.kind = "modification failed";
            a.message = "change system: modification failed at " + e.where.to_string();
        } else {
            a.kind = "rollback executed";
            a.message = "change system: rollback executed at " + e.where.to_string();
        }
        out.push_back(std::move(a));
    }
    (void)rand;
}

// --- factory ----------------------------------------------------------------------

std::vector<std::unique_ptr<monitor_tool>> make_all_monitors(const topology& topo,
                                                             monitor_options opts) {
    std::vector<std::unique_ptr<monitor_tool>> tools;
    tools.push_back(std::make_unique<ping_mesh>(topo, ping_mesh::config{}, opts));
    tools.push_back(
        std::make_unique<traceroute_monitor>(topo, traceroute_monitor::config{}, opts));
    tools.push_back(std::make_unique<oob_monitor>(topo, opts));
    tools.push_back(std::make_unique<traffic_monitor>(topo, opts));
    tools.push_back(std::make_unique<internet_telemetry_monitor>(
        topo, internet_telemetry_monitor::config{}, opts));
    tools.push_back(std::make_unique<syslog_source>(topo, opts));
    tools.push_back(std::make_unique<snmp_monitor>(topo, opts));
    tools.push_back(std::make_unique<int_monitor>(topo, opts));
    tools.push_back(std::make_unique<ptp_monitor>(topo, opts));
    tools.push_back(std::make_unique<route_monitor>(topo, opts));
    tools.push_back(std::make_unique<modification_monitor>(topo, opts));
    tools.push_back(std::make_unique<patrol_monitor>(topo, opts));
    return tools;
}

}  // namespace skynet
