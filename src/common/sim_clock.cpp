#include "skynet/common/time.h"

#include <cstdio>

namespace skynet {

std::string format_time(sim_time t) {
    const bool negative = t < 0;
    if (negative) t = -t;
    const std::int64_t ms = t % 1000;
    const std::int64_t total_s = t / 1000;
    const std::int64_t s = total_s % 60;
    const std::int64_t m = (total_s / 60) % 60;
    const std::int64_t h = total_s / 3600;
    char buf[48];
    std::snprintf(buf, sizeof buf, "%s%02lld:%02lld:%02lld.%03lld", negative ? "-" : "",
                  static_cast<long long>(h), static_cast<long long>(m),
                  static_cast<long long>(s), static_cast<long long>(ms));
    return buf;
}

std::string format_duration(sim_duration d) {
    const bool negative = d < 0;
    if (negative) d = -d;
    char buf[48];
    if (d < 1000) {
        std::snprintf(buf, sizeof buf, "%s%lldms", negative ? "-" : "", static_cast<long long>(d));
    } else if (d < 60 * 1000) {
        std::snprintf(buf, sizeof buf, "%s%.1fs", negative ? "-" : "",
                      static_cast<double>(d) / 1000.0);
    } else if (d < 60 * 60 * 1000) {
        std::snprintf(buf, sizeof buf, "%s%lldm%llds", negative ? "-" : "",
                      static_cast<long long>(d / 60000), static_cast<long long>((d / 1000) % 60));
    } else {
        std::snprintf(buf, sizeof buf, "%s%lldh%lldm", negative ? "-" : "",
                      static_cast<long long>(d / 3600000),
                      static_cast<long long>((d / 60000) % 60));
    }
    return buf;
}

}  // namespace skynet
