#include "skynet/common/rng.h"

#include <numeric>

namespace skynet {

std::size_t rng::weighted_index(std::span<const double> weights) {
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0) throw std::invalid_argument("rng::weighted_index: negative weight");
        total += w;
    }
    if (total <= 0.0) throw std::invalid_argument("rng::weighted_index: all weights zero");

    double target = uniform_real(0.0, total);
    for (std::size_t i = 0; i < weights.size(); ++i) {
        target -= weights[i];
        if (target < 0.0) return i;
    }
    // Floating-point slack: fall back to the last positive weight.
    for (std::size_t i = weights.size(); i-- > 0;) {
        if (weights[i] > 0.0) return i;
    }
    return weights.size() - 1;
}

}  // namespace skynet
