#include "skynet/common/strings.h"

#include <cctype>

namespace skynet {

std::vector<std::string> split(std::string_view text, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            break;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::vector<std::string> split_whitespace(std::string_view text) {
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
        const std::size_t start = i;
        while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
        if (i > start) out.emplace_back(text.substr(start, i - start));
    }
    return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i != 0) out += sep;
        out += parts[i];
    }
    return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
    return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool contains(std::string_view text, std::string_view needle) noexcept {
    return text.find(needle) != std::string_view::npos;
}

std::string to_lower(std::string_view text) {
    std::string out(text);
    for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

}  // namespace skynet
