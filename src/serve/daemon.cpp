#include "skynet/serve/daemon.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "skynet/core/digest.h"
#include "skynet/persist/recovery.h"
#include "skynet/serve/report_text.h"
#include "skynet/serve/wire.h"
#include "skynet/sim/trace.h"

namespace skynet::serve {

namespace {

/// Same temp-file + atomic-rename convention as the batch CLI's
/// --health-json and the persist layer's snapshots.
void write_atomic(const std::string& path, const std::string& text) {
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", tmp.c_str());
            return;
        }
        out << text;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) std::fprintf(stderr, "health-json rename failed: %s\n", ec.message().c_str());
}

bool parse_i64(std::string_view text, std::int64_t& out) {
    const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
    return ec == std::errc{} && ptr == text.data() + text.size();
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
    const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
    return ec == std::errc{} && ptr == text.data() + text.size();
}

http_reply bad_request(const std::string& message) {
    return {400, "application/json", "{\"error\":\"" + json_escape(message) + "\"}\n"};
}

}  // namespace

daemon::daemon(const topology& topo, const customer_registry& customers,
               const alert_type_registry& registry, const syslog_classifier* syslog,
               engine_options opts)
    : topo_(topo),
      customers_(customers),
      registry_(registry),
      syslog_(syslog),
      opts_(std::move(opts)),
      idle_(&topo_, &customers_),
      guard_(opts_.overload_config(), &topo_, &registry_) {}

daemon::~daemon() {
    ingest_listener_.stop();
    http_.stop();
    for (int& fd : stop_pipe_) {
        if (fd >= 0) ::close(fd);
        fd = -1;
    }
}

error daemon::start() {
    if (::pipe(stop_pipe_) != 0) return error{"stop pipe creation failed"};

    const skynet_engine::deps deps{&topo_, &customers_, &registry_, syslog_};
    if (opts_.shards > 0) {
        sharded_.emplace(deps, opts_.sharded());
    } else {
        seq_.emplace(deps, opts_.pipeline);
    }
    if (opts_.lifecycle) lifecycle_.emplace(opts_.lifecycle_config(), &topo_);

    persist::recovery_result recovered;
    if (opts_.recover) {
        persist::recovery_options ropts;
        ropts.dir = opts_.checkpoint_dir;
        ropts.tick_state = &idle_;
        // Direct continuation: the daemon does not re-stream, so the
        // snapshot's controller state is imported as-is.
        ropts.controller = &guard_;
        if (lifecycle_) {
            ropts.lifecycle = &*lifecycle_;
            // Replayed barriers drain the engine (the manager needs each
            // barrier's closures); append them to the store at their true
            // barrier times so the incident history matches the
            // uninterrupted run.
            ropts.replay_closed = [this](sim_time when,
                                         const std::vector<incident_report>& closed) {
                if (!closed.empty()) store_.append_closed(closed, when);
            };
        }
        try {
            recovered = sharded_ ? persist::recover(*sharded_, topo_.locations(),
                                                    &store_.log(), ropts)
                                 : persist::recover(*seq_, topo_.locations(), &store_.log(),
                                                   ropts);
        } catch (const std::exception& e) {
            return error{e.what()};
        }
        store_.reindex();
        recovered_base_ = recovered.metrics;
        last_barrier_ = recovered.last_barrier_time;
        saw_finish_ = recovered.saw_finish;
        // --resume-stream: the feeder will restream from the top; this
        // many wire records are already applied and must be skipped.
        if (opts_.resume_stream) resume_skip_ = recovered.journal_records;
        for (const std::string& note : recovered.notes) {
            std::printf("recover: %s\n", note.c_str());
        }
    }

    if (!opts_.checkpoint_dir.empty()) {
        persist::durable_options dopts;
        dopts.dir = opts_.checkpoint_dir;
        dopts.checkpoint_every = static_cast<std::uint64_t>(opts_.checkpoint_every);
        dopts.resume_records = recovered.journal_records;
        dopts.crash_after = opts_.crash_after;
        dopts.continue_after_recovery = true;
        dopts.next_snapshot_seq = recovered.next_snapshot_seq;
        dopts.base = recovered.metrics;
        dopts.locations = &topo_.locations();
        dopts.log = &store_.log();
        dopts.controller = &guard_;
        if (lifecycle_) {
            dopts.lifecycle = &*lifecycle_;
            // Drain + feed inside the session's tick, before any
            // checkpoint at that barrier: the snapshot then captures the
            // manager's state *through* the barrier. apply_barrier picks
            // the stash up right after. engine_mu_ is already held.
            dopts.barrier_hook = [this](sim_time when, const network_state&) {
                barrier_reports_ = drain_reports_locked(when);
            };
        }
        try {
            if (sharded_) {
                dur_sharded_ =
                    std::make_unique<persist::durable_session<sharded_engine>>(*sharded_, dopts);
            } else {
                dur_seq_ =
                    std::make_unique<persist::durable_session<skynet_engine>>(*seq_, dopts);
            }
        } catch (const std::exception& e) {
            return error{e.what()};
        }
    }

    {
        std::lock_guard lock(engine_mu_);
        publish_locked();
    }

    // Before any listener can race it: let the federation emitter resync
    // a digest journal that fell behind the recovered engine state.
    if (recovered_hook_) recovered_hook_();

    if (!opts_.serve.ingest_addr.empty()) {
        const auto addr = parse_addr(opts_.serve.ingest_addr);
        if (!addr) return error{"--serve: bad address " + opts_.serve.ingest_addr};
        if (error e = ingest_listener_.start(*addr, [this](int fd) { handle_ingest_conn(fd); })) {
            return e;
        }
    }
    if (!opts_.serve.http_addr.empty()) {
        const auto addr = parse_addr(opts_.serve.http_addr);
        if (!addr) return error{"--http: bad address " + opts_.serve.http_addr};
        if (error e = http_.start(*addr, [this](const http_request& r) { return handle(r); })) {
            ingest_listener_.stop();
            return e;
        }
    }
    return {};
}

void daemon::request_stop() noexcept {
    stopping_.store(true, std::memory_order_relaxed);
    if (stop_pipe_[1] >= 0) {
        const char wake = 'x';
        [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &wake, 1);
    }
}

int daemon::run() {
    while (!stopping_.load(std::memory_order_relaxed)) {
        pollfd pfd{.fd = stop_pipe_[0], .events = POLLIN, .revents = 0};
        ::poll(&pfd, 1, 500);
    }
    std::printf("serve: draining\n");
    std::fflush(stdout);
    // Joining the listeners waits for in-flight handlers, so after this
    // every accepted record has been applied.
    ingest_listener_.stop();
    http_.stop();
    {
        std::lock_guard lock(engine_mu_);
        const auto reports = drain_reports_locked(last_barrier_);
        store_.append_closed(reports, last_barrier_);
        publish_locked();
        if (barrier_hook_ && !reports.empty()) {
            barrier_hook_(reports, last_barrier_, saw_finish_);
        }
        if (!durable_checkpoint(last_barrier_)) {
            std::fprintf(stderr, "serve: final checkpoint failed\n");
        }
    }
    std::printf("serve: shutdown clean: %llu connections, %llu records, %llu alerts, "
                "%zu incidents\n",
                static_cast<unsigned long long>(wire_conns_.load()),
                static_cast<unsigned long long>(wire_records_.load()),
                static_cast<unsigned long long>(wire_alerts_.load()), store_.size());
    std::fflush(stdout);
    return 0;
}

std::string daemon::ingest_addr() const {
    return opts_.serve.ingest_addr.empty() ? std::string()
                                           : ingest_listener_.bound().to_string();
}

std::string daemon::http_addr() const {
    return opts_.serve.http_addr.empty() ? std::string() : http_.bound().to_string();
}

void daemon::handle_ingest_conn(int fd) {
    wire_conns_.fetch_add(1, std::memory_order_relaxed);
    wire_decoder decoder;
    char buf[65536];
    std::uint64_t records = 0;
    std::uint64_t alerts = 0;
    bool finished = false;
    while (!stopping_.load(std::memory_order_relaxed) && !finished) {
        const int n = read_some(fd, buf, sizeof buf, 200);
        if (n == 0) continue;  // poll timeout; re-check the stop flag
        if (n < 0) break;      // EOF or error
        decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
        while (!finished) {
            auto record = decoder.next();
            if (!record) break;
            ++records;
            // --resume-stream: the journal already applied this prefix
            // during recovery; consume the re-streamed copies without
            // touching the engine (a skipped finish still completes the
            // session so the feeder gets its OK line). The ingest
            // listener is single-threaded, so the position counter needs
            // no lock.
            if (resume_pos_ < resume_skip_) {
                ++resume_pos_;
                if (record->type == persist::record_type::finish) finished = true;
                continue;
            }
            switch (record->type) {
                case persist::record_type::batch:
                    alerts += record->batch.size();
                    apply_batch(std::move(record->batch));
                    break;
                case persist::record_type::tick:
                    apply_barrier(record->now, false);
                    break;
                case persist::record_type::finish:
                    apply_barrier(record->now, true);
                    finished = true;
                    break;
            }
        }
        if (decoder.corrupt()) {
            (void)write_all(fd, "ERR " + decoder.corruption_reason() + "\n");
            wire_records_.fetch_add(records, std::memory_order_relaxed);
            wire_alerts_.fetch_add(alerts, std::memory_order_relaxed);
            return;
        }
    }
    wire_records_.fetch_add(records, std::memory_order_relaxed);
    wire_alerts_.fetch_add(alerts, std::memory_order_relaxed);
    if (finished) {
        char line[64];
        std::snprintf(line, sizeof line, "OK %llu %llu\n",
                      static_cast<unsigned long long>(records),
                      static_cast<unsigned long long>(alerts));
        (void)write_all(fd, line);
    }
}

void daemon::apply_batch(std::vector<traced_alert> batch) {
    std::lock_guard lock(engine_mu_);
    // Mirrors the batch CLI's delivery: pass-through feeds the engine
    // verbatim; an active guard sheds first and skips empty remainders.
    if (guard_.pass_through()) {
        with_sink([&](auto& s) { s.ingest_batch(std::span<const traced_alert>(batch)); });
        return;
    }
    batch = guard_.admit(std::move(batch));
    if (!batch.empty()) {
        with_sink([&](auto& s) { s.ingest_batch(std::span<const traced_alert>(batch)); });
    }
}

void daemon::apply_barrier(sim_time now, bool finish) {
    std::lock_guard lock(engine_mu_);
    if (now < last_barrier_) return;  // stale barrier from a replayed stream
    // A durable session with the life-cycle layer on drains the barrier
    // inside its tick (see the barrier_hook in start()); consume that
    // stash instead of draining twice.
    const bool stashed = lifecycle_ && (dur_seq_ || dur_sharded_);
    barrier_reports_.clear();
    with_sink([&](auto& s) {
        if (finish) {
            s.finish(now, idle_);
        } else {
            s.tick(now, idle_);
        }
    });
    guard_.on_tick(now);
    last_barrier_ = now;
    if (finish) saw_finish_ = true;
    const auto reports = stashed ? std::move(barrier_reports_) : drain_reports_locked(now);
    store_.append_closed(reports, now);
    publish_locked();
    if (barrier_hook_) barrier_hook_(reports, now, finish);
}

std::vector<incident_report> daemon::drain_reports_locked(sim_time now) {
    std::vector<incident_report> reports =
        with_engine([](auto& e) { return e.take_reports(); });
    if (lifecycle_) {
        const std::vector<incident_report> open =
            with_engine([&](auto& e) { return e.open_reports(now, idle_); });
        lifecycle_->on_barrier(now, reports, open, &idle_);
    }
    return reports;
}

void daemon::publish_locked() {
    engine_metrics m = with_engine([](auto& e) { return engine_metrics(e.barrier_metrics()); });
    m.overload += guard_.metrics();
    m.degraded.sketched += guard_.sketched_decisions();
    m.recovery += durable_metrics();
    m.degraded.log_out_of_order += store_.out_of_order();
    if (lifecycle_) m.lifecycle = lifecycle_->metrics();
    if (metrics_hook_) metrics_hook_(m);
    std::string health = m.to_json() + "\n";
    if (!opts_.health_json.empty()) write_atomic(opts_.health_json, health);
    std::lock_guard lock(pub_mu_);
    pub_health_ = std::move(health);
}

recovery_metrics daemon::durable_metrics() const {
    if (dur_sharded_) return dur_sharded_->metrics();
    if (dur_seq_) return dur_seq_->metrics();
    return recovered_base_;
}

bool daemon::durable_checkpoint(sim_time now) {
    if (dur_sharded_) return dur_sharded_->checkpoint_now(now);
    if (dur_seq_) return dur_seq_->checkpoint_now(now);
    return true;
}

http_reply daemon::handle(const http_request& req) {
    if (req.path == "/v1/health") {
        if (req.method != "GET") return {405, "application/json", "{\"error\":\"use GET\"}\n"};
        return get_health();
    }
    if (req.path == "/v1/report") {
        if (req.method != "GET") return {405, "application/json", "{\"error\":\"use GET\"}\n"};
        return get_report(req);
    }
    if (req.path == "/v1/incidents") {
        if (req.method != "GET") return {405, "application/json", "{\"error\":\"use GET\"}\n"};
        return get_incidents(req);
    }
    if (req.path == "/v1/diff") {
        if (req.method != "GET") return {405, "application/json", "{\"error\":\"use GET\"}\n"};
        return get_diff();
    }
    if (req.path == "/v1/ingest") {
        if (req.method != "POST") {
            return {405, "application/json", "{\"error\":\"use POST\"}\n"};
        }
        return post_ingest(req);
    }
    if (req.path == "/") {
        return {200, "text/plain",
                "skynet daemon\n"
                "  GET  /v1/health\n"
                "  GET  /v1/report?json=0|1&timeline=0|1\n"
                "  GET  /v1/incidents?id=&loc=&type=&from=&to=&min_score=&actionable=1"
                "&cursor=&limit=\n"
                "  GET  /v1/diff              (--lifecycle on: last barrier's changes)\n"
                "  POST /v1/ingest            (trace text body)\n"};
    }
    return {404, "application/json", "{\"error\":\"no such endpoint\"}\n"};
}

http_reply daemon::get_health() const {
    std::lock_guard lock(pub_mu_);
    return {200, "application/json", pub_health_};
}

http_reply daemon::get_report(const http_request& req) const {
    report_listing_options ropts{.json = opts_.json, .timeline = opts_.timeline};
    if (const std::string* v = req.param("json")) ropts.json = *v != "0";
    if (const std::string* v = req.param("timeline")) ropts.timeline = *v != "0";
    const std::vector<incident_report> reports = store_.ranked_reports();
    return {200, "text/plain", render_report_listing(reports, ropts)};
}

http_reply daemon::get_incidents(const http_request& req) const {
    incident_store::query_params q;
    if (const std::string* v = req.param("id")) {
        std::uint64_t id = 0;
        if (!parse_u64(*v, id)) return bad_request("id: expected an unsigned integer");
        q.id = id;
    }
    if (const std::string* v = req.param("loc")) q.scope = location::parse(*v);
    if (const std::string* v = req.param("type")) q.type = *v;
    if (const std::string* v = req.param("from")) {
        std::int64_t t = 0;
        if (!parse_i64(*v, t)) return bad_request("from: expected a time in ms");
        q.from = t;
    }
    if (const std::string* v = req.param("to")) {
        std::int64_t t = 0;
        if (!parse_i64(*v, t)) return bad_request("to: expected a time in ms");
        q.to = t;
    }
    if (const std::string* v = req.param("min_score")) {
        char* end = nullptr;
        q.min_score = std::strtod(v->c_str(), &end);
        if (end != v->c_str() + v->size() || v->empty()) {
            return bad_request("min_score: expected a number");
        }
    }
    if (const std::string* v = req.param("actionable")) q.only_actionable = *v != "0";
    if (const std::string* v = req.param("cursor")) {
        if (!parse_u64(*v, q.cursor)) return bad_request("cursor: expected an unsigned integer");
    }
    if (const std::string* v = req.param("limit")) {
        std::uint64_t limit = 0;
        if (!parse_u64(*v, limit)) return bad_request("limit: expected an unsigned integer");
        q.limit = static_cast<std::size_t>(limit);
    }

    const incident_store::query_result result = store_.query(q);
    std::string body;
    body.reserve(256 + result.items.size() * 512);
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "{\"barrier_time\":%lld,\"total\":%llu,\"count\":%zu,\"next_cursor\":%llu,"
                  "\"has_more\":%s,\"incidents\":[",
                  static_cast<long long>(result.barrier_time),
                  static_cast<unsigned long long>(result.total), result.items.size(),
                  static_cast<unsigned long long>(result.next_cursor),
                  result.has_more ? "true" : "false");
    body += buf;
    for (std::size_t i = 0; i < result.items.size(); ++i) {
        const incident_store::item& item = result.items[i];
        if (i > 0) body += ",";
        const char* labeled = !item.entry.attributed_to_failure.has_value() ? "null"
                              : *item.entry.attributed_to_failure          ? "true"
                                                                           : "false";
        std::snprintf(buf, sizeof buf, "{\"ordinal\":%llu,\"closed_at\":%lld,\"labeled\":%s,",
                      static_cast<unsigned long long>(item.ordinal),
                      static_cast<long long>(item.entry.closed_at), labeled);
        body += buf;
        body += "\"incident\":";
        body += incident_digest_json(item.entry.report);
        body += "}";
    }
    body += "]}\n";
    return {200, "application/json", std::move(body)};
}

http_reply daemon::get_diff() {
    if (!lifecycle_) {
        return {404, "application/json",
                "{\"error\":\"life-cycle layer disabled; start with --lifecycle on\"}\n"};
    }
    // The manager only changes at barriers, under engine_mu_; a short
    // hold gives a barrier-consistent diff.
    std::lock_guard lock(engine_mu_);
    return {200, "application/json", lifecycle_->last_diff().to_json() + "\n"};
}

http_reply daemon::post_ingest(const http_request& req) {
    trace_parse_result parsed = parse_trace(req.body);
    if (parsed.alerts.empty() && !parsed.errors.empty()) {
        return bad_request("no parsable alerts (" + std::to_string(parsed.errors.size()) +
                           " parse errors)");
    }
    const std::size_t accepted = parsed.alerts.size();
    const std::size_t parse_errors = parsed.errors.size();
    sim_time max_arrival = 0;
    for (const traced_alert& t : parsed.alerts) max_arrival = std::max(max_arrival, t.arrival);
    if (accepted > 0) {
        apply_batch(std::move(parsed.alerts));
        // Barrier at the batch's horizon so the results are queryable
        // immediately; dropped when the engine clock is already past it.
        apply_barrier(max_arrival, false);
    }
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "{\"accepted\":%zu,\"parse_errors\":%zu,\"barrier_time\":%lld}\n", accepted,
                  parse_errors, static_cast<long long>(store_.barrier_time()));
    return {200, "application/json", buf};
}

}  // namespace skynet::serve
