#include "skynet/serve/engine_options.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "skynet/persist/durable.h"
#include "skynet/serve/net.h"

namespace skynet::serve {

namespace {

/// Strict unsigned parse (the old CLI's atoll accepted trailing junk
/// silently; the unified parser reports it).
bool parse_u64(std::string_view text, std::uint64_t& out) {
    const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
    return ec == std::errc{} && ptr == text.data() + text.size();
}

bool parse_int(std::string_view text, int& out) {
    const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
    return ec == std::errc{} && ptr == text.data() + text.size();
}

bool parse_double(std::string_view text, double& out) {
    char* end = nullptr;
    const std::string copy(text);
    out = std::strtod(copy.c_str(), &end);
    return end == copy.c_str() + copy.size() && !copy.empty();
}

void check_addr(std::vector<option_error>& errors, const char* flag, const std::string& text) {
    if (text.empty()) return;
    if (!parse_addr(text)) {
        errors.push_back({flag, "expected unix:PATH or tcp:HOST:PORT, got '" + text + "'"});
    }
}

}  // namespace

overload::controller_config engine_options::overload_config() const {
    overload::controller_config cfg;
    cfg.admission.max_alerts = admission_budget;
    cfg.breaker.enabled = breaker;
    // The guard's dedup/usage accounting follows the same counting policy
    // as the preprocessor, so one --sketch flag governs both layers.
    cfg.sketch = pipeline.pre.sketch;
    return cfg;
}

lifecycle::config engine_options::lifecycle_config() const {
    lifecycle::config cfg;
    cfg.flap_threshold = flap_threshold;
    cfg.recurrence_window = minutes(recurrence_window_min);
    cfg.auto_close_quiet = minutes(auto_close_quiet_min);
    return cfg;
}

sharded_config engine_options::sharded(const std::string& parsed_overflow) const {
    sharded_config cfg;
    cfg.engine = pipeline;
    cfg.shards = static_cast<std::size_t>(shards);
    const std::string& token = parsed_overflow.empty() ? overflow : parsed_overflow;
    if (const auto policy = parse_overflow_policy(token)) cfg.overflow = *policy;
    cfg.watchdog_deadline_ms = watchdog_deadline;
    cfg.steal = steal;
    return cfg;
}

std::vector<option_error> engine_options::validate(run_mode mode) const {
    std::vector<option_error> errors;
    if (mode == run_mode::help) return errors;

    // Reconnect policy: shared by the client and the federation emitter.
    if (retry < 0 || retry > 100) errors.push_back({"--retry", "must be in [0, 100]"});
    if (retry_base_ms < 1 || retry_base_ms > 60000) {
        errors.push_back({"--retry-base-ms", "must be in [1, 60000] ms"});
    }

    // Blocks shared by batch and serve runs.
    if (mode != run_mode::client) {
        if (error e = pipeline.validate()) errors.push_back({"pipeline config", e.message()});
        if (!parse_overflow_policy(overflow)) {
            errors.push_back({"--overflow", "unknown policy '" + overflow + "'"});
        }
        try {
            overload_config().validate();
        } catch (const std::exception& e) {
            errors.push_back({"--admission-budget/--breaker", e.what()});
        }
        if (lifecycle) {
            try {
                lifecycle_config().validate();
            } catch (const std::exception& e) {
                errors.push_back(
                    {"--flap-threshold/--recurrence-window/--auto-close-quiet", e.what()});
            }
        } else {
            // A tuned-but-disabled life-cycle layer is almost certainly a
            // forgotten --lifecycle on; refuse rather than silently ignore.
            const std::pair<const char*, bool> tuned[] = {
                {"--flap-threshold", flap_threshold != 3},
                {"--recurrence-window", recurrence_window_min != 30},
                {"--auto-close-quiet", auto_close_quiet_min != 6},
                {"--diff", diff},
            };
            for (const auto& [flag, set] : tuned) {
                if (set) errors.push_back({flag, "requires --lifecycle on"});
            }
        }
        if (shards < 0) errors.push_back({"--shards", "must be >= 0"});
        if (shards > kMaxShards) {
            errors.push_back({"--shards", "must be <= " + std::to_string(kMaxShards) +
                                              " (each shard costs a worker thread)"});
        }
        if (checkpoint_every < 1) errors.push_back({"--checkpoint-every", "must be >= 1"});
        if (duration_min < 1) errors.push_back({"--duration", "must be >= 1 minute"});
        if (customers < 0) errors.push_back({"--customers", "must be >= 0"});
        if (noise < 0.0 || noise > 1.0) errors.push_back({"--noise", "must be in [0, 1]"});
        if (checkpoint_dir.empty()) {
            if (recover) errors.push_back({"--recover", "requires --checkpoint-dir"});
            if (crash_after > 0) {
                errors.push_back({"--crash-after", "requires --checkpoint-dir"});
            }
        }
        if (!topo_file.empty() && topo_preset != "small") {
            errors.push_back({"--topo", "mutually exclusive with --topo-file"});
        }
    }

    switch (mode) {
        case run_mode::batch:
            if (!checkpoint_dir.empty() && replay_file.empty() && !recover) {
                errors.push_back({"--checkpoint-dir",
                                  "requires --replay or --recover (the journal records "
                                  "replayed traces; use --record to make one)"});
            }
            if (serve.enabled()) {
                errors.push_back({"--serve/--http", "internal: serve options in batch mode"});
            }
            if (federate.emit()) {
                errors.push_back({"--federate", "emit needs a daemon; add --serve"});
            }
            if (!federate.journal_dir.empty() && !federate.emit()) {
                errors.push_back({"--fed-journal", "only meaningful with --federate emit:"});
            }
            if (resume_stream) {
                errors.push_back(
                    {"--resume-stream", "needs a recovering daemon (--serve with --recover)"});
            }
            break;
        case run_mode::serve: {
            check_addr(errors, "--serve", serve.ingest_addr);
            check_addr(errors, "--http", serve.http_addr);
            // One-shot inputs make no sense for a long-running service;
            // stream traces in through the ingest socket instead.
            // (--crash-after stays available: the partition drill kills a
            // daemon at an exact journal-record boundary with it.)
            const std::pair<const char*, bool> rejected[] = {
                {"--replay", !replay_file.empty()},   {"--record", !record_file.empty()},
                {"--export-topo", !export_topo.empty()}, {"--faults", !faults_spec.empty()},
            };
            for (const auto& [flag, set] : rejected) {
                if (set) errors.push_back({flag, "not available with --serve/--http"});
            }
            if (federate.emit() && federate.aggregate()) {
                errors.push_back(
                    {"--federate", "a process is either an emitter or the aggregator, not both"});
            } else if (federate.emit()) {
                check_addr(errors, "--federate", federate.emit_addr);
                if (serve.ingest_addr.empty()) {
                    errors.push_back({"--federate", "emit needs the daemon's --serve ingest"});
                }
                if (federate.emit_region.find_first_of("\t\n\r ") != std::string::npos) {
                    errors.push_back(
                        {"--federate", "region names cannot contain whitespace"});
                }
            } else if (federate.aggregate()) {
                check_addr(errors, "--federate", federate.aggregate_addr);
                if (serve.http_addr.empty()) {
                    errors.push_back(
                        {"--federate", "aggregate needs --http to serve the merged view"});
                }
                // The aggregator runs no engine: digests are its only
                // input and the emitters' journals its only durability.
                const std::pair<const char*, bool> engine_only[] = {
                    {"--serve", !serve.ingest_addr.empty()},
                    {"--checkpoint-dir", !checkpoint_dir.empty()},
                    {"--recover", recover},
                };
                for (const auto& [flag, set] : engine_only) {
                    if (set) {
                        errors.push_back({flag, "not available with --federate aggregate:"});
                    }
                }
            }
            if (!federate.journal_dir.empty() && !federate.emit()) {
                errors.push_back({"--fed-journal", "only meaningful with --federate emit:"});
            }
            if (federate.heartbeat_ms < 0 || federate.heartbeat_ms > 600000) {
                errors.push_back({"--fed-heartbeat-ms", "must be in [0, 600000] ms"});
            }
            if (federate.lag_ms < 1 || federate.lag_ms >= federate.stale_ms ||
                federate.stale_ms >= federate.partition_ms) {
                errors.push_back({"--fed-lag-ms/--fed-stale-ms/--fed-partition-ms",
                                  "staleness thresholds must be strictly increasing and >= 1"});
            }
            if (resume_stream && !recover) {
                errors.push_back({"--resume-stream", "requires --recover"});
            }
            break;
        }
        case run_mode::client: {
            check_addr(errors, "--connect", client.connect);
            const int actions = (client.get_path.empty() ? 0 : 1) +
                                (client.post_path.empty() ? 0 : 1) +
                                (client.stream_file.empty() ? 0 : 1);
            if (actions != 1) {
                errors.push_back({"--connect",
                                  "needs exactly one of --get, --post, --stream-trace"});
            }
            if (!client.post_path.empty() && client.data_file.empty()) {
                errors.push_back({"--post", "requires --data-file"});
            }
            if (client.post_path.empty() && !client.data_file.empty()) {
                errors.push_back({"--data-file", "only meaningful with --post"});
            }
            if (federate.enabled()) {
                errors.push_back({"--federate", "not available with --connect"});
            }
            if (lifecycle) {
                errors.push_back({"--lifecycle", "not available with --connect"});
            }
            if (diff) {
                errors.push_back({"--diff", "not available with --connect"});
            }
            if (resume_stream) {
                errors.push_back({"--resume-stream", "not available with --connect"});
            }
            break;
        }
        case run_mode::help:
            break;
    }
    return errors;
}

cli_parse_result parse_cli(int argc, const char* const* argv) {
    cli_parse_result result;
    engine_options& opt = result.opts;
    bool help = false;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        const auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                result.errors.push_back({std::string(arg), "missing value"});
                return "";
            }
            return argv[++i];
        };
        const auto int_value = [&](int& out) {
            const std::string_view text = value();
            if (!text.empty() && !parse_int(text, out)) {
                result.errors.push_back(
                    {std::string(arg), "expected an integer, got '" + std::string(text) + "'"});
            }
        };
        const auto i64_value = [&](std::int64_t& out) {
            const std::string_view text = value();
            if (text.empty()) return;
            const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
            if (ec != std::errc{} || ptr != text.data() + text.size()) {
                result.errors.push_back(
                    {std::string(arg), "expected an integer, got '" + std::string(text) + "'"});
            }
        };
        const auto u64_value = [&](std::uint64_t& out) {
            const std::string_view text = value();
            if (!text.empty() && !parse_u64(text, out)) {
                result.errors.push_back(
                    {std::string(arg),
                     "expected a non-negative integer, got '" + std::string(text) + "'"});
            }
        };
        if (arg == "--topo") {
            opt.topo_preset = value();
        } else if (arg == "--topo-file") {
            opt.topo_file = value();
        } else if (arg == "--export-topo") {
            opt.export_topo = value();
        } else if (arg == "--scenario") {
            opt.scenario_name = value();
        } else if (arg == "--minor") {
            opt.severe = false;
        } else if (arg == "--duration") {
            int_value(opt.duration_min);
        } else if (arg == "--customers") {
            int_value(opt.customers);
        } else if (arg == "--noise") {
            const std::string_view text = value();
            if (!text.empty() && !parse_double(text, opt.noise)) {
                result.errors.push_back(
                    {"--noise", "expected a number, got '" + std::string(text) + "'"});
            }
        } else if (arg == "--seed") {
            u64_value(opt.seed);
        } else if (arg == "--extended") {
            opt.extended = true;
        } else if (arg == "--shards") {
            const std::string_view text = value();
            if (text == "auto") {
                // One worker per hardware thread; the container may
                // report 0 (unknown), which means "sequential" here.
                opt.shards = static_cast<int>(std::thread::hardware_concurrency());
            } else if (!text.empty() && !parse_int(text, opt.shards)) {
                result.errors.push_back(
                    {"--shards",
                     "expected an integer or 'auto', got '" + std::string(text) + "'"});
            }
        } else if (arg == "--steal") {
            const std::string_view text = value();
            if (text == "on") {
                opt.steal = true;
            } else if (text == "off") {
                opt.steal = false;
            } else if (!text.empty()) {
                result.errors.push_back(
                    {"--steal", "expected on or off, got '" + std::string(text) + "'"});
            }
        } else if (arg == "--metrics") {
            opt.metrics = true;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--timeline") {
            opt.timeline = true;
        } else if (arg == "--record") {
            opt.record_file = value();
        } else if (arg == "--replay") {
            opt.replay_file = value();
        } else if (arg == "--faults") {
            opt.faults_spec = value();
        } else if (arg == "--overflow") {
            opt.overflow = value();
        } else if (arg == "--checkpoint-dir") {
            opt.checkpoint_dir = value();
        } else if (arg == "--checkpoint-every") {
            int_value(opt.checkpoint_every);
        } else if (arg == "--recover") {
            opt.recover = true;
        } else if (arg == "--crash-after") {
            u64_value(opt.crash_after);
        } else if (arg == "--admission-budget") {
            u64_value(opt.admission_budget);
        } else if (arg == "--breaker") {
            opt.breaker = true;
        } else if (arg == "--sketch") {
            const std::string_view text = value();
            if (const auto mode = sketch::parse_counting_mode(text)) {
                opt.pipeline.pre.sketch.mode = *mode;
            } else if (!text.empty()) {
                result.errors.push_back(
                    {"--sketch", "expected on, off or auto, got '" + std::string(text) + "'"});
            }
        } else if (arg == "--lifecycle") {
            const std::string_view text = value();
            if (text == "on") {
                opt.lifecycle = true;
            } else if (text == "off") {
                opt.lifecycle = false;
            } else if (!text.empty()) {
                result.errors.push_back(
                    {"--lifecycle", "expected on or off, got '" + std::string(text) + "'"});
            }
        } else if (arg == "--flap-threshold") {
            int_value(opt.flap_threshold);
        } else if (arg == "--recurrence-window") {
            int_value(opt.recurrence_window_min);
        } else if (arg == "--auto-close-quiet") {
            int_value(opt.auto_close_quiet_min);
        } else if (arg == "--diff") {
            opt.diff = true;
        } else if (arg == "--sketch-threshold") {
            u64_value(opt.pipeline.pre.sketch.threshold);
        } else if (arg == "--watchdog-deadline") {
            u64_value(opt.watchdog_deadline);
        } else if (arg == "--health-json") {
            opt.health_json = value();
        } else if (arg == "--federate") {
            const std::string_view text = value();
            if (text.starts_with("emit:")) {
                const std::string_view rest = text.substr(5);
                const std::size_t at = rest.find('@');
                if (at == std::string_view::npos || at == 0 || at + 1 == rest.size()) {
                    result.errors.push_back(
                        {"--federate", "emit needs REGION@ADDR, got '" + std::string(text) + "'"});
                } else {
                    opt.federate.emit_region = std::string(rest.substr(0, at));
                    opt.federate.emit_addr = std::string(rest.substr(at + 1));
                }
            } else if (text.starts_with("aggregate:")) {
                const std::string_view rest = text.substr(10);
                if (rest.empty()) {
                    result.errors.push_back({"--federate", "aggregate needs an address"});
                } else {
                    opt.federate.aggregate_addr = std::string(rest);
                }
            } else if (!text.empty()) {
                result.errors.push_back(
                    {"--federate",
                     "expected emit:REGION@ADDR or aggregate:ADDR, got '" + std::string(text) +
                         "'"});
            }
        } else if (arg == "--fed-journal") {
            opt.federate.journal_dir = value();
        } else if (arg == "--fed-heartbeat-ms") {
            int_value(opt.federate.heartbeat_ms);
        } else if (arg == "--fed-lag-ms") {
            i64_value(opt.federate.lag_ms);
        } else if (arg == "--fed-stale-ms") {
            i64_value(opt.federate.stale_ms);
        } else if (arg == "--fed-partition-ms") {
            i64_value(opt.federate.partition_ms);
        } else if (arg == "--retry") {
            int_value(opt.retry);
        } else if (arg == "--retry-base-ms") {
            int_value(opt.retry_base_ms);
        } else if (arg == "--resume-stream") {
            opt.resume_stream = true;
        } else if (arg == "--serve") {
            opt.serve.ingest_addr = value();
        } else if (arg == "--http") {
            opt.serve.http_addr = value();
        } else if (arg == "--connect") {
            opt.client.connect = value();
        } else if (arg == "--get") {
            opt.client.get_path = value();
        } else if (arg == "--post") {
            opt.client.post_path = value();
        } else if (arg == "--data-file") {
            opt.client.data_file = value();
        } else if (arg == "--stream-trace") {
            opt.client.stream_file = value();
        } else if (arg == "--help" || arg == "-h") {
            help = true;
        } else {
            result.errors.push_back({std::string(arg), "unknown option"});
        }
    }
    result.mode = help                   ? run_mode::help
                  : opt.client.enabled() ? run_mode::client
                  // The aggregator is a long-running service too, even
                  // though it runs no ingest listener of its own.
                  : opt.serve.enabled() || opt.federate.aggregate() ? run_mode::serve
                                                                    : run_mode::batch;
    return result;
}

std::string cli_usage() {
    std::string out =
        "usage: skynet_cli [options]\n"
        "  --topo tiny|small|medium|large   topology preset (default small)\n"
        "  --topo-file FILE                 import topology from the text format\n"
        "  --export-topo FILE               write the topology and exit\n"
        "  --scenario NAME                  random|hardware|link|modification|software|\n"
        "                                   infrastructure|route|ddos|config|cable-cut|\n"
        "                                   gray|flapping-link|storm|maintenance|slow-burn\n"
        "  --minor                          inject the minor variant (default severe)\n"
        "  --duration MIN                   failure duration in minutes (default 5)\n"
        "  --customers N                    synthetic customers (default 400)\n"
        "  --noise R                        monitor glitch rate (default 0.02)\n"
        "  --seed N                         simulation seed (default 1)\n"
        "  --extended                       also run the user-telemetry/SRTE sources\n"
        "  --shards N|auto                  run the region-sharded engine with N workers\n"
        "                                   (auto = hardware threads; max 256)\n"
        "  --steal on|off                   deterministic work stealing between shards\n"
        "                                   (default on; reports stay byte-identical)\n"
        "  --metrics                        print per-stage engine metrics\n"
        "  --json                           print incidents as JSON digests\n"
        "  --timeline                       print an ASCII incident timeline\n"
        "  --record FILE                    save the raw alert trace\n"
        "  --replay FILE                    replay a recorded trace (skips the simulator)\n"
        "  --faults SPEC                    degrade the ingest stream deterministically, e.g.\n"
        "                                   'seed=3;dropout=0.2;dup=0.05;reorder=0.1;skew=5s;\n"
        "                                   skew_rate=0.3;corrupt=0.02;drop:ping@60s+120s;\n"
        "                                   pressure=0.5' (see DESIGN.md fault model)\n"
        "  --overflow block|drop_oldest|reject\n"
        "                                   shard-queue policy when full (default block)\n"
        "  --checkpoint-dir DIR             journal every batch/tick and write\n"
        "                                   barrier-consistent checkpoints into DIR\n"
        "  --checkpoint-every N             barriers between checkpoints (default 8)\n"
        "  --recover                        restore from --checkpoint-dir (newest valid\n"
        "                                   snapshot + journal replay) before streaming\n";
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "  --crash-after N                  crash drill: exit %d after the Nth journal\n"
                  "                                   record is durable, before it is applied\n",
                  persist::crash_exit_code);
    out += buf;
    out +=
        "  --admission-budget N             overload guard: admit at most N alerts per\n"
        "                                   tick window, shedding duplicates/other first\n"
        "  --breaker                        per-source circuit breakers (quarantine a\n"
        "                                   source emitting sustained garbage)\n"
        "  --lifecycle on|off               incident life-cycle manager: recurrence\n"
        "                                   linking, flap suppression, auto-close with\n"
        "                                   recovery confirmation (default off)\n"
        "  --flap-threshold N               re-opens within the recurrence window that\n"
        "                                   collapse a lineage into one flapping\n"
        "                                   incident (default 3; minimum 2)\n"
        "  --recurrence-window MIN          minutes a closed lineage stays linkable to\n"
        "                                   a recurrence at the same root (default 30)\n"
        "  --auto-close-quiet MIN           quiet minutes (no subtree alerts + healthy\n"
        "                                   ping) before an incident auto-closes\n"
        "                                   (default 6)\n"
        "  --diff                           print the ranked \"what changed\" diff\n"
        "                                   (new/escalated/de-escalated/resolved/\n"
        "                                   flapping) at every tick barrier\n"
        "  --sketch on|off|auto             count-min sketch for hot-path counting\n"
        "                                   (default auto: exact below --sketch-threshold,\n"
        "                                   sketched past it; surfaces as degraded.sketched)\n"
        "  --sketch-threshold N             exact-table cardinality that flips auto mode\n"
        "                                   to the sketch (default 65536)\n"
        "  --watchdog-deadline MS           sharded only: write off / recover a shard\n"
        "                                   making no progress for MS wall-clock ms\n"
        "                                   (defaults to 250 when --faults has stalls)\n"
        "  --health-json FILE               write the merged engine health report as\n"
        "                                   JSON at every tick barrier (atomic rename;\n"
        "                                   same schema as GET /v1/health)\n"
        "daemon mode:\n"
        "  --serve ADDR                     run as a daemon: streaming alert ingest on\n"
        "                                   ADDR (unix:PATH or tcp:HOST:PORT; the wire\n"
        "                                   format is the SKYNETJ1 journal stream)\n"
        "  --http ADDR                      JSON API: GET /v1/health /v1/report\n"
        "                                   /v1/incidents, POST /v1/ingest\n"
        "                                   (tcp:HOST:0 picks a free port, printed)\n"
        "  --resume-stream                  with --recover: the feeder restreams from\n"
        "                                   the top; skip the prefix the journal already\n"
        "                                   applied instead of re-closing incidents\n"
        "federation:\n"
        "  --federate emit:REGION@ADDR      stream this daemon's per-barrier incident\n"
        "                                   digests to the aggregator at ADDR\n"
        "  --federate aggregate:ADDR        run the global aggregator: merge region\n"
        "                                   digests from ADDR, serve the cross-region\n"
        "                                   ranking on --http (/v1/report /v1/regions)\n"
        "  --fed-journal DIR                emit: journal digests in DIR so a restarted\n"
        "                                   emitter still replays everything unacked\n"
        "  --fed-heartbeat-ms MS            emit: idle session cadence so the aggregator\n"
        "                                   can tell idle from partitioned (default 1000)\n"
        "  --fed-lag-ms MS                  aggregate: region health thresholds on the\n"
        "  --fed-stale-ms MS                time since last contact; must increase\n"
        "  --fed-partition-ms MS            (defaults 2000 / 5000 / 15000)\n"
        "client mode:\n"
        "  --connect ADDR                   talk to a daemon instead of running one\n"
        "  --get PATH                       HTTP GET (e.g. '/v1/incidents?loc=Region A')\n"
        "  --post PATH --data-file FILE     HTTP POST the file body\n"
        "  --stream-trace FILE              stream a recorded trace into --connect's\n"
        "                                   ingest socket with replay batching\n"
        "  --retry N                        client/emitter reconnects: N retries after\n"
        "                                   the first attempt (default 0)\n"
        "  --retry-base-ms MS               backoff base, doubling per retry with\n"
        "                                   deterministic jitter (default 100)\n";
    return out;
}

}  // namespace skynet::serve
