#include "skynet/serve/http.h"

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace skynet::serve {

namespace {

const char* status_text(int status) {
    switch (status) {
        case 200: return "OK";
        case 202: return "Accepted";
        case 400: return "Bad Request";
        case 404: return "Not Found";
        case 405: return "Method Not Allowed";
        case 413: return "Payload Too Large";
        case 503: return "Service Unavailable";
        default: return status >= 500 ? "Internal Server Error" : "Unknown";
    }
}

std::string render_reply(const http_reply& reply) {
    char head[256];
    std::snprintf(head, sizeof head,
                  "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
                  "Connection: close\r\n\r\n",
                  reply.status, status_text(reply.status), reply.content_type.c_str(),
                  reply.body.size());
    return head + reply.body;
}

/// Case-insensitive header lookup in a raw head block; empty when absent.
std::string_view header_value(std::string_view head, std::string_view name) {
    std::size_t pos = 0;
    while (pos < head.size()) {
        std::size_t eol = head.find("\r\n", pos);
        if (eol == std::string_view::npos) eol = head.size();
        const std::string_view line = head.substr(pos, eol - pos);
        const std::size_t colon = line.find(':');
        if (colon != std::string_view::npos && colon == name.size()) {
            bool match = true;
            for (std::size_t i = 0; i < name.size(); ++i) {
                if (std::tolower(static_cast<unsigned char>(line[i])) !=
                    std::tolower(static_cast<unsigned char>(name[i]))) {
                    match = false;
                    break;
                }
            }
            if (match) {
                std::string_view value = line.substr(colon + 1);
                while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
                return value;
            }
        }
        pos = eol + 2;
    }
    return {};
}

}  // namespace

const std::string* http_request::param(std::string_view key) const {
    const std::string* found = nullptr;
    for (const auto& [k, v] : params) {
        if (k == key) found = &v;
    }
    return found;
}

std::string url_decode(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (c == '+') {
            out.push_back(' ');
        } else if (c == '%' && i + 2 < text.size() &&
                   std::isxdigit(static_cast<unsigned char>(text[i + 1])) &&
                   std::isxdigit(static_cast<unsigned char>(text[i + 2]))) {
            unsigned value = 0;
            std::from_chars(text.data() + i + 1, text.data() + i + 3, value, 16);
            out.push_back(static_cast<char>(value));
            i += 2;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

http_request parse_target(std::string_view method, std::string_view target) {
    http_request req;
    req.method = std::string(method);
    const std::size_t qmark = target.find('?');
    req.path = url_decode(target.substr(0, qmark));
    if (qmark == std::string_view::npos) return req;
    std::string_view query = target.substr(qmark + 1);
    while (!query.empty()) {
        std::size_t amp = query.find('&');
        const std::string_view pair = query.substr(0, amp);
        const std::size_t eq = pair.find('=');
        if (!pair.empty()) {
            req.params.emplace_back(
                url_decode(pair.substr(0, eq)),
                eq == std::string_view::npos ? std::string() : url_decode(pair.substr(eq + 1)));
        }
        if (amp == std::string_view::npos) break;
        query.remove_prefix(amp + 1);
    }
    return req;
}

error http_server::start(const socket_addr& addr, http_handler handler) {
    handler_ = std::move(handler);
    return listener_.start(addr, [this](int fd) { handle(fd); });
}

void http_server::handle(int fd) {
    std::string data;
    char buf[16384];
    std::size_t head_end = std::string::npos;
    // Read the head (bounded), then the declared body.
    while (head_end == std::string::npos && data.size() < max_head_bytes) {
        const int n = read_some(fd, buf, sizeof buf, 5000);
        if (n < 0) return;  // client went away
        if (n == 0) return;  // idle connection; drop it
        data.append(buf, static_cast<std::size_t>(n));
        head_end = data.find("\r\n\r\n");
    }
    if (head_end == std::string::npos) {
        (void)write_all(fd, render_reply({400, "application/json",
                                          "{\"error\":\"request head too large\"}"}));
        return;
    }
    const std::string_view head = std::string_view(data).substr(0, head_end);
    const std::size_t line_end = head.find("\r\n");
    const std::string_view request_line = head.substr(0, line_end);
    const std::size_t sp1 = request_line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? std::string_view::npos : request_line.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos) {
        (void)write_all(
            fd, render_reply({400, "application/json", "{\"error\":\"malformed request\"}"}));
        return;
    }
    std::size_t body_len = 0;
    const std::string_view cl = header_value(head.substr(line_end + 2), "Content-Length");
    if (!cl.empty()) {
        const auto [ptr, ec] = std::from_chars(cl.data(), cl.data() + cl.size(), body_len);
        if (ec != std::errc{} || ptr != cl.data() + cl.size() || body_len > max_body_bytes) {
            (void)write_all(fd, render_reply({413, "application/json",
                                              "{\"error\":\"body too large\"}"}));
            return;
        }
    }
    const std::size_t body_start = head_end + 4;
    while (data.size() < body_start + body_len) {
        const int n = read_some(fd, buf, sizeof buf, 5000);
        if (n <= 0) return;
        data.append(buf, static_cast<std::size_t>(n));
    }

    http_request req =
        parse_target(request_line.substr(0, sp1), request_line.substr(sp1 + 1, sp2 - sp1 - 1));
    req.body = data.substr(body_start, body_len);
    http_reply reply;
    try {
        reply = handler_(req);
    } catch (const std::exception& e) {
        reply = {500, "application/json",
                 std::string("{\"error\":\"") + e.what() + "\"}"};
    }
    (void)write_all(fd, render_reply(reply));
}

bool http_call(const socket_addr& addr, std::string_view method,
               std::string_view path_and_query, std::string_view body, http_response& out,
               std::string& err) {
    const int fd = dial(addr, err);
    if (fd < 0) return false;
    std::string request;
    request.reserve(path_and_query.size() + body.size() + 128);
    request += method;
    request += ' ';
    request += path_and_query;
    request += " HTTP/1.1\r\nHost: skynet\r\nConnection: close\r\n";
    if (!body.empty() || method == "POST") {
        request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    }
    request += "\r\n";
    request += body;
    if (!write_all(fd, request)) {
        err = "short write to " + addr.to_string();
        ::close(fd);
        return false;
    }
    std::string reply;
    const bool read_ok = read_all(fd, reply);
    ::close(fd);
    if (!read_ok) {
        err = "read from " + addr.to_string() + " failed";
        return false;
    }
    const std::size_t head_end = reply.find("\r\n\r\n");
    if (head_end == std::string::npos || reply.size() < 12 ||
        reply.compare(0, 5, "HTTP/") != 0) {
        err = "malformed HTTP response";
        return false;
    }
    const std::size_t sp = reply.find(' ');
    out.status = std::atoi(reply.c_str() + sp + 1);
    out.body = reply.substr(head_end + 4);
    return true;
}

}  // namespace skynet::serve
