#include "skynet/serve/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "skynet/persist/crc32c.h"

namespace skynet::serve {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32(const char* p) {
    const auto* u = reinterpret_cast<const unsigned char*>(p);
    return static_cast<std::uint32_t>(u[0]) | (static_cast<std::uint32_t>(u[1]) << 8) |
           (static_cast<std::uint32_t>(u[2]) << 16) | (static_cast<std::uint32_t>(u[3]) << 24);
}

/// Shared tail of the two stream_* helpers: dial, send the assembled
/// stream, half-close, read the status line.
std::optional<stream_stats> finish_stream(const socket_addr& addr, const std::string& bytes,
                                          stream_stats stats, std::string& err) {
    const int fd = dial(addr, err);
    if (fd < 0) return std::nullopt;
    if (!write_all(fd, bytes)) {
        err = "short write streaming to " + addr.to_string();
        ::close(fd);
        return std::nullopt;
    }
    ::shutdown(fd, SHUT_WR);
    std::string reply;
    if (!read_all(fd, reply, 4096)) {
        err = "reading status line from " + addr.to_string() + " failed";
        ::close(fd);
        return std::nullopt;
    }
    ::close(fd);
    while (!reply.empty() && (reply.back() == '\n' || reply.back() == '\r')) reply.pop_back();
    if (reply.empty()) {
        err = "server closed the stream without a status line";
        return std::nullopt;
    }
    stats.status = std::move(reply);
    return stats;
}

}  // namespace

std::string frame_record(persist::record_type type, std::string_view payload) {
    std::string out;
    out.reserve(persist::record_header_bytes + payload.size());
    out.push_back(static_cast<char>(type));
    put_u32(out, static_cast<std::uint32_t>(payload.size()));
    put_u32(out, persist::crc32c(payload));
    out += payload;
    return out;
}

void wire_decoder::fail(std::string reason) {
    corrupt_ = true;
    reason_ = std::move(reason);
}

void wire_decoder::feed(std::string_view bytes) {
    if (corrupt_) return;
    buf_ += bytes;
    // Reclaim consumed prefix once it dominates the buffer.
    if (pos_ > 1u << 20 && pos_ > buf_.size() / 2) {
        buf_.erase(0, pos_);
        pos_ = 0;
    }
}

std::optional<persist::journal_record> wire_decoder::next() {
    if (corrupt_) return std::nullopt;
    if (!seen_magic_) {
        if (buf_.size() - pos_ < persist::journal_magic.size()) return std::nullopt;
        if (std::string_view(buf_).substr(pos_, persist::journal_magic.size()) !=
            persist::journal_magic) {
            fail("bad stream magic");
            return std::nullopt;
        }
        pos_ += persist::journal_magic.size();
        seen_magic_ = true;
    }
    if (buf_.size() - pos_ < persist::record_header_bytes) return std::nullopt;
    const char* header = buf_.data() + pos_;
    const auto type = static_cast<persist::record_type>(static_cast<unsigned char>(header[0]));
    const std::uint32_t len = get_u32(header + 1);
    const std::uint32_t crc = get_u32(header + 5);
    if (type != persist::record_type::batch && type != persist::record_type::tick &&
        type != persist::record_type::finish) {
        fail("unknown record type " + std::to_string(static_cast<unsigned char>(header[0])));
        return std::nullopt;
    }
    if (len > max_payload_bytes) {
        fail("payload length " + std::to_string(len) + " exceeds limit");
        return std::nullopt;
    }
    if (buf_.size() - pos_ < persist::record_header_bytes + len) return std::nullopt;
    const std::string_view payload(buf_.data() + pos_ + persist::record_header_bytes, len);
    if (persist::crc32c(payload) != crc) {
        fail("payload CRC mismatch");
        return std::nullopt;
    }
    persist::journal_record record;
    record.type = type;
    if (type == persist::record_type::batch) {
        if (!persist::decode_batch_payload(payload, record.batch)) {
            fail("malformed batch payload");
            return std::nullopt;
        }
    } else if (!persist::decode_barrier_payload(payload, record.now)) {
        fail("barrier payload size mismatch");
        return std::nullopt;
    }
    pos_ += persist::record_header_bytes + len;
    ++records_;
    return record;
}

std::optional<stream_stats> stream_trace(const socket_addr& addr,
                                         std::span<const traced_alert> alerts,
                                         sim_duration tick_every, sim_duration finish_grace,
                                         std::string& err) {
    std::string bytes{persist::journal_magic};
    stream_stats stats;
    std::string payload;
    std::vector<traced_alert> batch;
    auto flush_batch = [&] {
        if (batch.empty()) return;
        persist::encode_batch_payload(payload, batch);
        bytes += frame_record(persist::record_type::batch, payload);
        ++stats.records;
        stats.alerts += batch.size();
        batch.clear();
    };
    sim_time last_tick = 0;
    sim_time last_arrival = 0;
    for (const traced_alert& t : alerts) {
        batch.push_back(t);
        last_arrival = t.arrival;
        if (t.arrival - last_tick >= tick_every) {
            flush_batch();
            bytes += frame_record(persist::record_type::tick,
                                  persist::encode_barrier_payload(t.arrival));
            ++stats.records;
            last_tick = t.arrival;
        }
    }
    flush_batch();
    bytes += frame_record(persist::record_type::finish,
                          persist::encode_barrier_payload(last_arrival + finish_grace));
    ++stats.records;
    return finish_stream(addr, bytes, stats, err);
}

std::optional<stream_stats> stream_records(const socket_addr& addr,
                                           std::span<const persist::journal_record> records,
                                           bool append_finish_if_missing,
                                           sim_duration finish_grace, std::string& err) {
    std::string bytes{persist::journal_magic};
    stream_stats stats;
    std::string payload;
    sim_time last_time = 0;
    bool finished = false;
    for (const persist::journal_record& record : records) {
        if (record.type == persist::record_type::batch) {
            persist::encode_batch_payload(payload, record.batch);
            bytes += frame_record(record.type, payload);
            stats.alerts += record.batch.size();
            for (const traced_alert& t : record.batch) {
                last_time = std::max(last_time, t.arrival);
            }
        } else {
            bytes += frame_record(record.type, persist::encode_barrier_payload(record.now));
            last_time = std::max(last_time, record.now);
            finished = record.type == persist::record_type::finish;
        }
        ++stats.records;
    }
    if (!finished && append_finish_if_missing) {
        bytes += frame_record(persist::record_type::finish,
                              persist::encode_barrier_payload(last_time + finish_grace));
        ++stats.records;
    }
    return finish_stream(addr, bytes, stats, err);
}

}  // namespace skynet::serve
