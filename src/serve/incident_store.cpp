#include "skynet/serve/incident_store.h"

#include <algorithm>
#include <limits>
#include <mutex>

namespace skynet::serve {

void incident_store::index_entry(std::size_t ordinal) {
    const incident_log::entry& e = log_.entries()[ordinal];
    by_id_.emplace(e.report.inc.id, ordinal);  // first close of an id wins
    std::vector<std::string> names;
    names.reserve(e.report.inc.alerts.size());
    for (const structured_alert& a : e.report.inc.alerts) names.push_back(a.type_name);
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    types_.push_back(std::move(names));
}

void incident_store::append_closed(const std::vector<incident_report>& reports, sim_time now) {
    std::unique_lock lock(mu_);
    for (const incident_report& r : reports) {
        log_.append(r, now);
        index_entry(log_.size() - 1);
    }
    barrier_ = now;
}

void incident_store::reindex() {
    std::unique_lock lock(mu_);
    by_id_.clear();
    types_.clear();
    for (std::size_t i = 0; i < log_.size(); ++i) index_entry(i);
    for (const incident_log::entry& e : log_.entries()) {
        barrier_ = std::max(barrier_, e.closed_at);
    }
}

bool incident_store::matches(const incident_log::entry& e, std::size_t ordinal,
                             const query_params& params) const {
    const incident_report& r = e.report;
    if (params.id && r.inc.id != *params.id) return false;
    if (params.from && r.inc.when.end < *params.from) return false;
    if (params.to && r.inc.when.begin > *params.to) return false;
    if (!params.scope.is_root() && !params.scope.contains(r.inc.root)) return false;
    if (r.severity.score < params.min_score) return false;
    if (params.only_actionable && !r.actionable) return false;
    if (!params.type.empty() &&
        !std::binary_search(types_[ordinal].begin(), types_[ordinal].end(), params.type)) {
        return false;
    }
    return true;
}

incident_store::query_result incident_store::query(const query_params& params) const {
    std::shared_lock lock(mu_);
    query_result result;
    result.total = log_.size();
    result.barrier_time = barrier_;

    const std::size_t limit =
        std::min(params.limit.value_or(default_page_limit), max_page_limit);

    // Reversed bounds can never match; report "scan finished" so a
    // paginating client stops instead of spinning on the same cursor.
    if (params.from && params.to && *params.from > *params.to) {
        result.next_cursor = log_.size();
        return result;
    }

    std::size_t start = static_cast<std::size_t>(
        std::min<std::uint64_t>(params.cursor, log_.size()));
    if (params.id) {
        // Id lookups skip the scan entirely.
        const auto it = by_id_.find(*params.id);
        if (it != by_id_.end() && it->second >= start) {
            const incident_log::entry& e = log_.entries()[it->second];
            if (matches(e, it->second, params) && limit > 0) {
                result.items.push_back(item{e, it->second});
            }
        }
        result.next_cursor = log_.size();
        return result;
    }
    if (params.from) {
        // Entries closing before `from` cannot overlap [from, to]; under
        // the close-order invariant the scan starts past all of them.
        start = std::max(start, log_.first_closed_at_or_after(*params.from));
    }

    std::size_t scanned_to = start;
    for (std::size_t i = start; i < log_.size(); ++i) {
        const incident_log::entry& e = log_.entries()[i];
        if (!matches(e, i, params)) {
            scanned_to = i + 1;
            continue;
        }
        if (result.items.size() >= limit) {
            // Page full (or limit=0 probe): the match at `i` is not
            // consumed — the cursor stays before it.
            result.has_more = true;
            break;
        }
        result.items.push_back(item{e, i});
        scanned_to = i + 1;
    }
    result.next_cursor = scanned_to;
    return result;
}

std::size_t incident_store::size() const {
    std::shared_lock lock(mu_);
    return log_.size();
}

std::uint64_t incident_store::out_of_order() const {
    std::shared_lock lock(mu_);
    return log_.out_of_order_appends();
}

sim_time incident_store::barrier_time() const {
    std::shared_lock lock(mu_);
    return barrier_;
}

std::vector<incident_report> incident_store::ranked_reports() const {
    std::shared_lock lock(mu_);
    std::vector<incident_report> reports;
    reports.reserve(log_.size());
    for (const incident_log::entry& e : log_.entries()) reports.push_back(e.report);
    std::stable_sort(reports.begin(), reports.end(), report_before);
    return reports;
}

std::vector<incident_report> incident_store::reports_closed_after(sim_time t) const {
    std::shared_lock lock(mu_);
    std::vector<incident_report> reports;
    for (const incident_log::entry& e : log_.entries()) {
        if (e.closed_at > t) reports.push_back(e.report);
    }
    return reports;
}

}  // namespace skynet::serve
