#include "skynet/serve/report_text.h"

#include <cstdio>

#include "skynet/core/digest.h"
#include "skynet/viz/timeline.h"

namespace skynet::serve {

std::string render_report_listing(std::span<const incident_report> reports,
                                  const report_listing_options& options) {
    std::string out;
    char head[64];
    std::snprintf(head, sizeof head, "incidents: %zu\n\n", reports.size());
    out += head;
    if (options.timeline && !reports.empty()) {
        out += render_timeline(std::vector<incident_report>(reports.begin(), reports.end()));
        out += "\n";
    }
    for (const incident_report& r : reports) {
        out += options.json ? incident_digest_json(r) : r.render();
        out += "\n";
    }
    return out;
}

}  // namespace skynet::serve
