#include "skynet/serve/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>

namespace skynet::serve {

namespace {

/// Builds the sockaddr for `addr`; returns the usable length, 0 on a
/// path/host that does not fit or parse.
socklen_t fill_sockaddr(const socket_addr& addr, sockaddr_storage& out) {
    std::memset(&out, 0, sizeof out);
    if (addr.is_unix) {
        auto* sun = reinterpret_cast<sockaddr_un*>(&out);
        if (addr.path.size() + 1 > sizeof sun->sun_path) return 0;
        sun->sun_family = AF_UNIX;
        std::memcpy(sun->sun_path, addr.path.c_str(), addr.path.size() + 1);
        return static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + addr.path.size() + 1);
    }
    auto* sin = reinterpret_cast<sockaddr_in*>(&out);
    sin->sin_family = AF_INET;
    sin->sin_port = htons(addr.port);
    const std::string host = addr.host.empty() ? "127.0.0.1" : addr.host;
    if (host == "localhost") {
        sin->sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    } else if (host == "0.0.0.0" || host == "*") {
        sin->sin_addr.s_addr = htonl(INADDR_ANY);
    } else if (inet_pton(AF_INET, host.c_str(), &sin->sin_addr) != 1) {
        return 0;  // keep it resolver-free: dotted quads only
    }
    return sizeof(sockaddr_in);
}

std::string errno_text(const char* what) {
    return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

std::string socket_addr::to_string() const {
    if (is_unix) return "unix:" + path;
    return "tcp:" + (host.empty() ? std::string("127.0.0.1") : host) + ":" +
           std::to_string(port);
}

std::optional<socket_addr> parse_addr(std::string_view text) {
    socket_addr addr;
    if (text.starts_with("unix:")) {
        addr.is_unix = true;
        addr.path = std::string(text.substr(5));
        if (addr.path.empty()) return std::nullopt;
        return addr;
    }
    if (!text.starts_with("tcp:")) return std::nullopt;
    const std::string_view rest = text.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string_view::npos || colon + 1 == rest.size()) return std::nullopt;
    addr.host = std::string(rest.substr(0, colon));
    const std::string_view port_text = rest.substr(colon + 1);
    unsigned port = 0;
    const auto [ptr, ec] =
        std::from_chars(port_text.data(), port_text.data() + port_text.size(), port);
    if (ec != std::errc{} || ptr != port_text.data() + port_text.size() || port > 65535) {
        return std::nullopt;
    }
    addr.port = static_cast<std::uint16_t>(port);
    return addr;
}

int dial(const socket_addr& addr, std::string& err) {
    sockaddr_storage storage;
    const socklen_t len = fill_sockaddr(addr, storage);
    if (len == 0) {
        err = "unusable address: " + addr.to_string();
        return -1;
    }
    const int fd = ::socket(addr.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        err = errno_text("socket");
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&storage), len) != 0) {
        err = errno_text("connect") + " (" + addr.to_string() + ")";
        ::close(fd);
        return -1;
    }
    return fd;
}

bool write_all(int fd, std::string_view data) {
    while (!data.empty()) {
        const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        data.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
}

bool read_all(int fd, std::string& out, std::size_t max_bytes) {
    char buf[16384];
    while (out.size() < max_bytes) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n == 0) return true;
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        out.append(buf, static_cast<std::size_t>(n));
    }
    return true;
}

int read_some(int fd, char* buf, std::size_t cap, int timeout_ms) {
    pollfd pfd{.fd = fd, .events = POLLIN, .revents = 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) return 0;
    if (ready < 0) return errno == EINTR ? 0 : -1;
    const ssize_t n = ::recv(fd, buf, cap, 0);
    if (n < 0) return errno == EINTR ? 0 : -1;
    if (n == 0) return -1;  // orderly EOF
    return static_cast<int>(n);
}

bool read_line(int fd, std::string& line, int timeout_ms, std::size_t max_len) {
    line.clear();
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (line.size() <= max_len) {
        // Byte-at-a-time keeps this helper usable on connections that
        // carry framed binary data after the line — it never reads past
        // the newline. Status/handshake lines are tiny, so the syscall
        // count is irrelevant.
        char c = 0;
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now());
        if (left.count() <= 0) return false;
        const int n = read_some(fd, &c, 1, static_cast<int>(left.count()));
        if (n < 0) return false;  // EOF before newline
        if (n == 0) continue;     // poll tick; deadline check above bounds it
        if (c == '\n') {
            if (!line.empty() && line.back() == '\r') line.pop_back();
            return true;
        }
        line += c;
    }
    return false;  // line too long
}

std::chrono::milliseconds backoff_delay(const retry_policy& policy, int attempt) noexcept {
    const std::uint64_t base = policy.base_ms <= 0 ? 1 : static_cast<std::uint64_t>(policy.base_ms);
    const std::uint64_t ceiling = policy.max_ms <= 0 ? 1 : static_cast<std::uint64_t>(policy.max_ms);
    const int shift = attempt < 0 ? 0 : (attempt > 20 ? 20 : attempt);
    std::uint64_t cap = base << shift;
    if (cap > ceiling || cap < base) cap = ceiling;  // overflow-safe clamp
    // splitmix64 over (seed, attempt): deterministic full-jitter point in
    // [cap/2, cap] — enough spread to break reconnect synchronization,
    // reproducible enough to unit-test the schedule.
    std::uint64_t x = policy.seed + 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(shift + 1);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    const std::uint64_t half = cap / 2;
    return std::chrono::milliseconds(half + x % (cap - half + 1));
}

error listener::start(const socket_addr& addr, std::function<void(int)> handler) {
    sockaddr_storage storage;
    socklen_t len = fill_sockaddr(addr, storage);
    if (len == 0) return error{"listen: unusable address: " + addr.to_string()};
    fd_ = ::socket(addr.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return error{errno_text("socket")};
    if (addr.is_unix) {
        ::unlink(addr.path.c_str());  // stale socket from a crashed run
    } else {
        const int one = 1;
        ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    }
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&storage), len) != 0 ||
        ::listen(fd_, 16) != 0) {
        const error bound_err{errno_text("bind/listen") + " (" + addr.to_string() + ")"};
        ::close(fd_);
        fd_ = -1;
        return bound_err;
    }
    bound_ = addr;
    if (!addr.is_unix) {
        sockaddr_in resolved{};
        socklen_t rlen = sizeof resolved;
        if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&resolved), &rlen) == 0) {
            bound_.port = ntohs(resolved.sin_port);
        }
    }
    handler_ = std::move(handler);
    stopping_.store(false, std::memory_order_relaxed);
    thread_ = std::thread([this] { loop(); });
    return {};
}

void listener::loop() {
    while (!stopping_.load(std::memory_order_relaxed)) {
        pollfd pfd{.fd = fd_, .events = POLLIN, .revents = 0};
        const int ready = ::poll(&pfd, 1, 200);
        if (ready <= 0) continue;
        const int conn = ::accept(fd_, nullptr, nullptr);
        if (conn < 0) continue;
        handler_(conn);
        ::close(conn);
    }
}

void listener::stop() {
    if (fd_ < 0) return;
    stopping_.store(true, std::memory_order_relaxed);
    if (thread_.joinable()) thread_.join();
    ::close(fd_);
    fd_ = -1;
    if (bound_.is_unix) ::unlink(bound_.path.c_str());
}

}  // namespace skynet::serve
