#include "skynet/lifecycle/manager.h"

#include <algorithm>
#include <cstdio>

#include "skynet/common/error.h"
#include "skynet/sim/network_state.h"
#include "skynet/topology/topology.h"

namespace skynet::lifecycle {

namespace {

constexpr std::size_t npos = static_cast<std::size_t>(-1);

/// Dice overlap of two sorted distinct type sets: 2|A∩B| / (|A|+|B|).
double type_overlap(const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
    if (a.empty() && b.empty()) return 1.0;
    std::size_t both = 0;
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i] == b[j]) {
            ++both;
            ++i;
            ++j;
        } else if (a[i] < b[j]) {
            ++i;
        } else {
            ++j;
        }
    }
    return 2.0 * static_cast<double>(both) / static_cast<double>(a.size() + b.size());
}

std::vector<std::uint32_t> fingerprint_types(const incident& inc) {
    std::vector<std::uint32_t> types;
    types.reserve(inc.alerts.size());
    for (const auto& a : inc.alerts) types.push_back(a.type);
    std::sort(types.begin(), types.end());
    types.erase(std::unique(types.begin(), types.end()), types.end());
    return types;
}

bool entry_before(const diff_entry& a, const diff_entry& b) noexcept {
    if (a.score != b.score) return a.score > b.score;
    return a.lineage < b.lineage;
}

void append_json_string(std::string& out, std::string_view s) {
    out += '"';
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

}  // namespace

void config::validate() const {
    if (flap_threshold < 2) {
        throw skynet_error("lifecycle: flap threshold must be >= 2 occurrences");
    }
    if (recurrence_window <= 0) {
        throw skynet_error("lifecycle: recurrence window must be positive");
    }
    if (auto_close_quiet <= 0) {
        throw skynet_error("lifecycle: auto-close quiet period must be positive");
    }
}

const char* to_string(phase p) noexcept {
    switch (p) {
    case phase::open: return "open";
    case phase::closed: return "closed";
    case phase::flapping: return "flapping";
    case phase::suppressed: return "suppressed";
    case phase::auto_closed: return "auto-closed";
    }
    return "?";
}

std::string barrier_diff::render() const {
    std::string out = "what changed @ " + format_time(at) + "\n";
    if (!any()) {
        out += "  (no changes)\n";
        return out;
    }
    char buf[64];
    auto section = [&](const char* name, const std::vector<diff_entry>& entries,
                       bool show_prev) {
        if (entries.empty()) return;
        out += "  ";
        out += name;
        out += ":\n";
        for (const auto& e : entries) {
            std::snprintf(buf, sizeof buf, "    [lineage %llu] ",
                          static_cast<unsigned long long>(e.lineage));
            out += buf;
            out += e.root;
            if (show_prev) {
                std::snprintf(buf, sizeof buf, "  score %.4f -> %.4f", e.prev_score, e.score);
            } else {
                std::snprintf(buf, sizeof buf, "  score %.4f", e.score);
            }
            out += buf;
            if (e.occurrences > 1) {
                std::snprintf(buf, sizeof buf, "  x%u", e.occurrences);
                out += buf;
            }
            out += "\n";
        }
    };
    section("opened", opened, false);
    section("escalated", escalated, true);
    section("de-escalated", deescalated, true);
    section("resolved", resolved, false);
    section("flapping", flapping, false);
    return out;
}

std::string barrier_diff::to_json() const {
    std::string out;
    out.reserve(256);
    char buf[96];
    std::snprintf(buf, sizeof buf, "{\"at\":%lld", static_cast<long long>(at));
    out += buf;
    auto section = [&](const char* name, const std::vector<diff_entry>& entries) {
        out += ",\"";
        out += name;
        out += "\":[";
        for (std::size_t i = 0; i < entries.size(); ++i) {
            const diff_entry& e = entries[i];
            if (i != 0) out += ',';
            std::snprintf(buf, sizeof buf, "{\"lineage\":%llu,\"root\":",
                          static_cast<unsigned long long>(e.lineage));
            out += buf;
            append_json_string(out, e.root);
            std::snprintf(buf, sizeof buf,
                          ",\"score\":%.4f,\"prev_score\":%.4f,\"occurrences\":%u}", e.score,
                          e.prev_score, e.occurrences);
            out += buf;
        }
        out += ']';
    };
    section("opened", opened);
    section("escalated", escalated);
    section("deescalated", deescalated);
    section("resolved", resolved);
    section("flapping", flapping);
    out += '}';
    return out;
}

manager::manager(config cfg, const topology* topo) : cfg_(cfg), topo_(topo) {
    cfg_.validate();
}

std::size_t manager::find_by_member(std::uint64_t incident_id) const {
    for (std::size_t i = 0; i < lineages_.size(); ++i) {
        const auto& m = lineages_[i].members;
        if (std::find(m.begin(), m.end(), incident_id) != m.end()) return i;
    }
    return npos;
}

std::size_t manager::match_fingerprint(const std::string& root,
                                       const std::vector<std::uint32_t>& types,
                                       sim_time now) const {
    std::size_t best = npos;
    int best_rank = -1;
    for (std::size_t i = 0; i < lineages_.size(); ++i) {
        const lineage& ln = lineages_[i];
        if (ln.root != root) continue;
        // Eligible while live, while flapping/suppressed (that is the
        // whole point of suppression), or within the recurrence window
        // of the latest activity.
        const sim_time ref = std::max(ln.last_closed, ln.last_activity);
        const bool eligible = ln.engine_open || ln.state == phase::flapping ||
                              ln.state == phase::suppressed ||
                              now - ref <= cfg_.recurrence_window;
        if (!eligible) continue;
        const bool exact = ln.types == types;
        if (!exact && type_overlap(ln.types, types) < 0.5) continue;
        const int rank = exact ? 1 : 0;
        if (rank > best_rank) {
            best = i;
            best_rank = rank;
        }
    }
    return best;
}

manager::link_result manager::link(const incident_report& r, sim_time now) {
    if (std::size_t i = find_by_member(r.inc.id); i != npos) return {i, false, false};
    std::string root = r.inc.root.to_string();
    std::vector<std::uint32_t> types = fingerprint_types(r.inc);
    if (std::size_t i = match_fingerprint(root, types, now); i != npos) {
        lineage& ln = lineages_[i];
        ln.members.push_back(r.inc.id);
        ln.occurrences = static_cast<std::uint32_t>(ln.members.size());
        // The fingerprint tracks the union of types seen across members.
        std::vector<std::uint32_t> merged;
        merged.reserve(ln.types.size() + types.size());
        std::set_union(ln.types.begin(), ln.types.end(), types.begin(), types.end(),
                       std::back_inserter(merged));
        ln.types = std::move(merged);
        return {i, false, true};
    }
    lineage ln;
    ln.id = r.inc.id;
    ln.root = std::move(root);
    ln.types = std::move(types);
    ln.first_seen = r.inc.when.begin;
    ln.last_activity = r.inc.when.end;
    ln.members.push_back(r.inc.id);
    lineages_.push_back(std::move(ln));
    return {lineages_.size() - 1, true, true};
}

void manager::note_score(lineage& ln, double score) {
    if (score > ln.peak_score) ln.peak_score = score;
    if (ln.last_score <= 0.0) {
        ln.last_score = score;
        return;
    }
    if (score > ln.last_score * 1.2) {
        diff_.escalated.push_back({ln.id, ln.root, score, ln.last_score, ln.occurrences});
        ln.last_score = score;
    } else if (score < ln.last_score * 0.8) {
        diff_.deescalated.push_back({ln.id, ln.root, score, ln.last_score, ln.occurrences});
        ln.last_score = score;
    }
}

bool manager::root_healthy(const lineage& ln, const network_state* state) const {
    if (state == nullptr || topo_ == nullptr) return true;
    const location root = location::parse(ln.root);
    const auto src = state->representative(root);
    if (!src) return true;
    // Probe out of the subtree: the first device not under the root is a
    // deterministic external vantage point.
    for (const auto& d : topo_->devices()) {
        if (root.contains(d.loc)) continue;
        const auto pr = state->probe(*src, d.id);
        return pr.reachable && pr.loss <= network_state::sla_loss_limit;
    }
    return true;
}

void manager::on_barrier(sim_time now, std::vector<incident_report> closed,
                         std::span<const incident_report> open, const network_state* state) {
    // Durable resume re-streams barriers the snapshot already covers;
    // skipping them keeps the managed state exactly-once. An equal-time
    // barrier is a re-fire of the one already applied unless it carries
    // fresh closures (the recovered engine was drained at the snapshot).
    if (last_barrier_ != no_barrier &&
        (now < last_barrier_ || (now == last_barrier_ && closed.empty()))) {
        return;
    }
    last_barrier_ = now;
    diff_ = barrier_diff{};
    diff_.at = now;

    std::stable_sort(closed.begin(), closed.end(), report_before);

    std::vector<std::uint8_t> closed_here(lineages_.size(), 0);
    auto mark_closed = [&](std::size_t i) {
        if (closed_here.size() < lineages_.size()) closed_here.resize(lineages_.size(), 0);
        closed_here[i] = 1;
    };
    auto entry_of = [](const lineage& ln, double score, double prev = 0.0) {
        return diff_entry{ln.id, ln.root, score, prev, ln.occurrences};
    };

    // A linked incident's state transition, shared by the closed drain
    // and the open snapshot.
    auto apply = [&](const link_result& lr, lineage& ln, double score, bool fresh_activity,
                     bool is_open) {
        if (lr.created) {
            ++counters_.tracked;
            ln.state = is_open ? phase::open : phase::closed;
            ln.last_score = score;
            ln.peak_score = score;
            diff_.opened.push_back(entry_of(ln, score));
            return;
        }
        if (lr.new_member) {
            ++counters_.recurrences_linked;
            const bool was_auto = ln.state == phase::auto_closed;
            if (static_cast<int>(ln.occurrences) >= cfg_.flap_threshold) {
                if (ln.state == phase::flapping || ln.state == phase::suppressed) {
                    // Hysteresis: past the threshold the lineage was
                    // already announced as flapping — swallow the
                    // re-alert instead of re-announcing it.
                    ln.state = phase::suppressed;
                    ++ln.suppressed_realerts;
                    ++counters_.realerts_suppressed;
                } else {
                    ln.state = phase::flapping;
                    ++counters_.flaps_collapsed;
                    if (was_auto) ++counters_.reopened;
                    diff_.flapping.push_back(entry_of(ln, score));
                }
            } else {
                if (was_auto) ++counters_.reopened;
                ln.state = is_open ? phase::open : phase::closed;
                diff_.opened.push_back(entry_of(ln, score));
            }
            if (score > ln.peak_score) ln.peak_score = score;
            ln.last_score = score;
            return;
        }
        // Continuing member. An auto-closed incident the engine still
        // holds open re-opens (same lineage id) when alerts recur.
        if (is_open && fresh_activity && ln.state == phase::auto_closed) {
            ++counters_.reopened;
            ln.state = phase::open;
            ln.last_score = score;
            if (score > ln.peak_score) ln.peak_score = score;
            diff_.opened.push_back(entry_of(ln, score));
            return;
        }
        if (is_open) {
            note_score(ln, score);
        } else {
            if (score > ln.peak_score) ln.peak_score = score;
            ln.last_score = score;
        }
    };

    for (auto& r : closed) {
        const link_result lr = link(r, now);
        lineage& ln = lineages_[lr.index];
        const bool fresh = r.inc.when.end > ln.last_activity;
        if (fresh) ln.last_activity = r.inc.when.end;
        ln.last_closed = now;
        apply(lr, ln, r.severity.score, fresh, /*is_open=*/false);
        mark_closed(lr.index);
        collected_.push_back(std::move(r));
    }

    for (auto& ln : lineages_) ln.engine_open = false;
    for (const auto& r : open) {
        const link_result lr = link(r, now);
        lineage& ln = lineages_[lr.index];
        const bool fresh = r.inc.when.end > ln.last_activity;
        if (fresh) ln.last_activity = r.inc.when.end;
        ln.engine_open = true;
        apply(lr, ln, r.severity.score, fresh, /*is_open=*/true);
    }

    // Resolution: a lineage that closed this barrier and has no member
    // left open. Flapping/suppressed lineages resolve only by quiescing
    // below; auto-closed ones already announced their resolution.
    for (std::size_t i = 0; i < closed_here.size(); ++i) {
        if (!closed_here[i]) continue;
        lineage& ln = lineages_[i];
        if (ln.engine_open) continue;
        if (ln.state != phase::open && ln.state != phase::closed) continue;
        ln.state = phase::closed;
        diff_.resolved.push_back(entry_of(ln, ln.last_score));
    }

    // Auto-close: quiet subtree + confirmed-healthy reachability closes
    // an engine-open incident early; a quiet flapping lineage quiesces,
    // re-arming its re-alerts.
    for (auto& ln : lineages_) {
        if (ln.state == phase::auto_closed) continue;
        if (now - ln.last_activity < cfg_.auto_close_quiet) continue;
        if (ln.engine_open) {
            if (!root_healthy(ln, state)) continue;
        } else if (ln.state != phase::flapping && ln.state != phase::suppressed) {
            continue;
        }
        ln.state = phase::auto_closed;
        ++counters_.auto_closed;
        diff_.resolved.push_back(entry_of(ln, ln.last_score));
    }

    std::sort(diff_.opened.begin(), diff_.opened.end(), entry_before);
    std::sort(diff_.escalated.begin(), diff_.escalated.end(), entry_before);
    std::sort(diff_.deescalated.begin(), diff_.deescalated.end(), entry_before);
    std::sort(diff_.resolved.begin(), diff_.resolved.end(), entry_before);
    std::sort(diff_.flapping.begin(), diff_.flapping.end(), entry_before);
    if (diff_.any()) ++counters_.diffs_emitted;
}

std::vector<incident_report> manager::managed_reports() const {
    std::vector<incident_report> out;
    out.reserve(lineages_.size());
    for (const auto& ln : lineages_) {
        const incident_report* best = nullptr;
        for (const auto& r : collected_) {
            if (std::find(ln.members.begin(), ln.members.end(), r.inc.id) == ln.members.end())
                continue;
            if (best == nullptr || report_before(r, *best)) best = &r;
        }
        if (best != nullptr) out.push_back(*best);
    }
    std::sort(out.begin(), out.end(), report_before);
    return out;
}

std::string manager::render_managed() const {
    std::uint64_t suppressed = 0;
    for (const auto& ln : lineages_) suppressed += ln.suppressed_realerts;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "managed incidents: %zu lineages over %zu engine incidents"
                  " (%llu re-alerts suppressed)\n",
                  lineages_.size(), collected_.size(),
                  static_cast<unsigned long long>(suppressed));
    std::string out = buf;
    for (const auto& rep : managed_reports()) {
        const std::size_t i = find_by_member(rep.inc.id);
        std::string body = rep.render();
        if (body.empty() || body.back() != '\n') body += '\n';
        out += body;
        if (i == npos) continue;
        const lineage& ln = lineages_[i];
        std::snprintf(buf, sizeof buf, "    lifecycle: lineage %llu %s x%u",
                      static_cast<unsigned long long>(ln.id), to_string(ln.state),
                      ln.occurrences);
        out += buf;
        if (ln.suppressed_realerts != 0) {
            std::snprintf(buf, sizeof buf, ", %llu re-alerts suppressed",
                          static_cast<unsigned long long>(ln.suppressed_realerts));
            out += buf;
        }
        out += ", span " + format_time(ln.first_seen) + ".." + format_time(ln.last_activity);
        out += '\n';
    }
    return out;
}

manager::persist_state manager::export_state() const {
    return {last_barrier_, counters_, lineages_, diff_, collected_};
}

void manager::import_state(persist_state state) {
    last_barrier_ = state.last_barrier;
    counters_ = state.counters;
    lineages_ = std::move(state.lineages);
    diff_ = std::move(state.last_diff);
    collected_ = std::move(state.collected);
}

}  // namespace skynet::lifecycle
