#include "skynet/federate/emitter.h"

#include <sys/socket.h>
#include <unistd.h>

#include <charconv>
#include <filesystem>
#include <system_error>

#include "skynet/sketch/counting.h"

namespace skynet::federate {

namespace {

bool parse_u64_text(std::string_view s, std::uint64_t& out) {
    const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
    return ec == std::errc{} && p == s.data() + s.size();
}

/// "TAG <u64> ..." -> the first integer field; false on anything else.
bool parse_status_line(std::string_view line, std::string_view tag, std::uint64_t& first) {
    if (!line.starts_with(tag) || line.size() <= tag.size() || line[tag.size()] != ' ') {
        return false;
    }
    std::string_view rest = line.substr(tag.size() + 1);
    const std::size_t space = rest.find(' ');
    if (space != std::string_view::npos) rest = rest.substr(0, space);
    return parse_u64_text(rest, first);
}

}  // namespace

digest_emitter::digest_emitter(emitter_config cfg) : cfg_(std::move(cfg)) {}

digest_emitter::~digest_emitter() { stop(); }

error digest_emitter::start() {
    const auto addr = serve::parse_addr(cfg_.aggregator_addr);
    if (!addr) return error{"federate: bad aggregator address " + cfg_.aggregator_addr};
    addr_ = *addr;
    retry_ = cfg_.retry;
    if (retry_.seed == 0) retry_.seed = sketch::hash64(cfg_.region);

    if (!cfg_.journal_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cfg_.journal_dir, ec);
        if (ec) return error{"federate: cannot create " + cfg_.journal_dir};
        const std::string path = cfg_.journal_dir + "/" + digest_journal_filename;
        digest_journal_read loaded = read_digest_journal(path);
        if (loaded.truncated_tail_bytes > 0) {
            std::filesystem::resize_file(path, loaded.valid_bytes, ec);
            if (ec) return error{"federate: cannot trim torn digest journal " + path};
        }
        for (region_digest& d : loaded.digests) {
            if (d.region != cfg_.region) {
                return error{"federate: digest journal " + path + " belongs to region '" +
                             d.region + "', not '" + cfg_.region + "'"};
            }
            frames_.emplace_back(d.seq,
                                 frame_fed_record(fed_record::digest, encode_digest_payload(d)));
            next_seq_ = d.seq + 1;
            last_barrier_ = d.barrier;
            last_finish_ = d.finish;
        }
        try {
            journal_ = std::make_unique<digest_journal_writer>(path);
        } catch (const std::exception& e) {
            return error{e.what()};
        }
    }

    thread_ = std::thread([this] { loop(); });
    return {};
}

void digest_emitter::stop() {
    {
        std::lock_guard lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
}

void digest_emitter::publish(const std::vector<incident_report>& reports, sim_time barrier,
                             bool finish) {
    std::lock_guard lock(mu_);
    // The barrier clock only moves forward; a repeated barrier is a
    // replayed stream re-closing reports the journal already carries
    // (the daemon's resume path) — publishing it again would duplicate
    // incidents at the aggregator. The only same-barrier upgrade allowed
    // is tick -> finish, which carries the drain's trailing reports.
    if (barrier < last_barrier_) return;
    if (barrier == last_barrier_ && !(finish && !last_finish_)) return;

    region_digest d;
    d.region = cfg_.region;
    d.seq = next_seq_;
    d.barrier = barrier;
    d.finish = finish;
    d.reports = reports;
    std::string frame = frame_fed_record(fed_record::digest, encode_digest_payload(d));
    if (journal_) journal_->append_frame(frame);
    emitted_.fetch_add(1, std::memory_order_relaxed);
    emitted_bytes_.fetch_add(frame.size(), std::memory_order_relaxed);
    frames_.emplace_back(next_seq_, std::move(frame));
    ++next_seq_;
    last_barrier_ = barrier;
    last_finish_ = finish;
    cv_.notify_all();
}

bool digest_emitter::flush_now() {
    if (!session_with_retries()) return false;
    std::lock_guard lock(mu_);
    return acked_.load(std::memory_order_relaxed) + 1 >= next_seq_;
}

std::uint64_t digest_emitter::next_seq() const {
    std::lock_guard lock(mu_);
    return next_seq_;
}

sim_time digest_emitter::last_barrier() const {
    std::lock_guard lock(mu_);
    return last_barrier_;
}

federation_metrics digest_emitter::metrics() const {
    federation_metrics m;
    m.digests_emitted = emitted_.load(std::memory_order_relaxed);
    m.digest_bytes = emitted_bytes_.load(std::memory_order_relaxed);
    m.sessions_ok = sessions_ok_.load(std::memory_order_relaxed);
    m.sessions_failed = sessions_failed_.load(std::memory_order_relaxed);
    m.send_retries = retries_.load(std::memory_order_relaxed);
    m.acked_seq = acked_.load(std::memory_order_relaxed);
    return m;
}

void digest_emitter::loop() {
    std::unique_lock lock(mu_);
    while (!stop_) {
        const auto pending = [&] { return acked_.load(std::memory_order_relaxed) + 1 < next_seq_; };
        if (!pending()) {
            if (cfg_.heartbeat_ms > 0) {
                cv_.wait_for(lock, std::chrono::milliseconds(cfg_.heartbeat_ms),
                             [&] { return stop_ || pending(); });
            } else {
                cv_.wait(lock, [&] { return stop_ || pending(); });
            }
            if (stop_) break;
            if (!pending() && cfg_.heartbeat_ms <= 0) continue;  // spurious wake
        }
        lock.unlock();
        const bool sent = session_with_retries();
        lock.lock();
        if (!sent && pending() && !stop_) {
            // The aggregator is unreachable and retries are exhausted:
            // pace the next cycle instead of spinning on dial failures.
            const int pause_ms = cfg_.heartbeat_ms > 0 ? cfg_.heartbeat_ms : 200;
            cv_.wait_for(lock, std::chrono::milliseconds(pause_ms), [&] { return stop_; });
        }
    }
    const bool final_flush = acked_.load(std::memory_order_relaxed) + 1 < next_seq_;
    lock.unlock();
    if (final_flush) {
        // One last single-attempt drain so a clean daemon shutdown hands
        // the aggregator everything it produced.
        std::string err;
        if (run_session(err)) {
            sessions_ok_.fetch_add(1, std::memory_order_relaxed);
        } else {
            sessions_failed_.fetch_add(1, std::memory_order_relaxed);
        }
    }
}

bool digest_emitter::session_with_retries() {
    for (int attempt = 0;; ++attempt) {
        std::string err;
        if (run_session(err)) {
            sessions_ok_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        sessions_failed_.fetch_add(1, std::memory_order_relaxed);
        if (attempt >= retry_.attempts) return false;
        retries_.fetch_add(1, std::memory_order_relaxed);
        const auto delay = serve::backoff_delay(retry_, attempt);
        std::unique_lock lock(mu_);
        if (cv_.wait_for(lock, delay, [&] { return stop_; })) return false;
    }
}

bool digest_emitter::run_session(std::string& err) {
    const int fd = serve::dial(addr_, err);
    if (fd < 0) return false;

    std::string head(fed_magic);
    head += frame_fed_record(fed_record::hello, cfg_.region);
    if (!serve::write_all(fd, head)) {
        err = "hello write failed";
        ::close(fd);
        return false;
    }

    std::string line;
    std::uint64_t have = 0;
    if (!serve::read_line(fd, line, cfg_.session_timeout_ms) ||
        !parse_status_line(line, "HAVE", have)) {
        err = "no HAVE handshake from " + addr_.to_string();
        ::close(fd);
        return false;
    }

    std::string body;
    {
        std::lock_guard lock(mu_);
        for (const auto& [seq, frame] : frames_) {
            if (seq > have) body += frame;
        }
        // The aggregator may already be ahead of our ack high-water mark
        // (a previous session died after its digests landed but before
        // the OK line made it back).
        std::uint64_t prev = acked_.load(std::memory_order_relaxed);
        const std::uint64_t capped = std::min<std::uint64_t>(have, next_seq_ - 1);
        while (prev < capped &&
               !acked_.compare_exchange_weak(prev, capped, std::memory_order_relaxed)) {
        }
    }
    if (!body.empty() && !serve::write_all(fd, body)) {
        err = "digest write failed";
        ::close(fd);
        return false;
    }
    ::shutdown(fd, SHUT_WR);

    std::uint64_t acked = 0;
    if (!serve::read_line(fd, line, cfg_.session_timeout_ms) ||
        !parse_status_line(line, "OK", acked)) {
        err = line.starts_with("ERR") ? ("aggregator rejected the stream: " + line)
                                      : ("no OK ack from " + addr_.to_string());
        ::close(fd);
        return false;
    }
    ::close(fd);

    std::uint64_t prev = acked_.load(std::memory_order_relaxed);
    while (prev < acked &&
           !acked_.compare_exchange_weak(prev, acked, std::memory_order_relaxed)) {
    }
    return true;
}

}  // namespace skynet::federate
