#include "skynet/federate/aggregator.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <mutex>

#include "skynet/core/digest.h"
#include "skynet/core/pipeline.h"
#include "skynet/serve/report_text.h"

namespace skynet::federate {

namespace {

std::int64_t ms_since(std::chrono::steady_clock::time_point then,
                      std::chrono::steady_clock::time_point now) {
    return std::chrono::duration_cast<std::chrono::milliseconds>(now - then).count();
}

}  // namespace

aggregator::aggregator(aggregator_config cfg) : cfg_(std::move(cfg)) {}

aggregator::~aggregator() {
    fed_listener_.stop();
    http_.stop();
    for (int& fd : stop_pipe_) {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }
}

error aggregator::start() {
    if (::pipe2(stop_pipe_, O_CLOEXEC | O_NONBLOCK) != 0) {
        return error{"federate: cannot create stop pipe"};
    }

    const auto fed = serve::parse_addr(cfg_.listen_addr);
    if (!fed) return error{"federate: bad aggregate address " + cfg_.listen_addr};
    if (error err = fed_listener_.start(*fed, [this](int fd) { handle_fed_conn(fd); })) {
        return err;
    }

    if (!cfg_.http_addr.empty()) {
        const auto http = serve::parse_addr(cfg_.http_addr);
        if (!http) return error{"federate: bad http address " + cfg_.http_addr};
        if (error err = http_.start(
                *http, [this](const serve::http_request& req) { return handle(req); })) {
            fed_listener_.stop();
            return err;
        }
    }
    return {};
}

int aggregator::run() {
    std::fprintf(stderr, "federate: aggregating on %s", fed_addr().c_str());
    if (!cfg_.http_addr.empty()) std::fprintf(stderr, ", http on %s", http_addr().c_str());
    std::fprintf(stderr, "\n");

    while (!stopping_.load(std::memory_order_acquire)) {
        struct pollfd pfd{stop_pipe_[0], POLLIN, 0};
        (void)::poll(&pfd, 1, 500);
        if (pfd.revents != 0) break;
    }
    std::fprintf(stderr, "federate: draining\n");
    fed_listener_.stop();
    http_.stop();

    const federation_metrics m = metrics();
    std::fprintf(stderr,
                 "federate: shutdown clean: %zu regions, %llu digests applied, "
                 "%llu duplicates dropped, %llu gaps\n",
                 region_count(), static_cast<unsigned long long>(m.digests_applied),
                 static_cast<unsigned long long>(m.duplicates_dropped),
                 static_cast<unsigned long long>(m.gaps_detected));
    return 0;
}

void aggregator::request_stop() noexcept {
    stopping_.store(true, std::memory_order_release);
    if (stop_pipe_[1] >= 0) {
        const char byte = 1;
        [[maybe_unused]] ssize_t n = ::write(stop_pipe_[1], &byte, 1);
    }
}

std::string aggregator::fed_addr() const { return fed_listener_.bound().to_string(); }

std::string aggregator::http_addr() const { return http_.bound().to_string(); }

aggregator::apply_result aggregator::apply_digest(region_digest d) {
    std::unique_lock lock(mu_);
    region_entry& entry = regions_[d.region];
    entry.last_contact = std::chrono::steady_clock::now();
    if (d.seq <= entry.last_seq) {
        // Exactly-once merge: the emitter replays everything past the
        // aggregator's HAVE mark, so an overlap after a reconnect (or a
        // restarted emitter's full-journal replay) lands here harmlessly.
        ++entry.duplicates_dropped;
        return {};
    }
    apply_result result;
    result.gap = d.seq - entry.last_seq - 1;
    entry.gaps_detected += result.gap;
    entry.last_seq = d.seq;
    entry.last_barrier = d.barrier;
    entry.finished = entry.finished || d.finish;
    ++entry.digests_applied;
    entry.reports.insert(entry.reports.end(), std::make_move_iterator(d.reports.begin()),
                         std::make_move_iterator(d.reports.end()));
    result.applied = true;
    return result;
}

std::uint64_t aggregator::last_seq(const std::string& region) const {
    std::shared_lock lock(mu_);
    const auto it = regions_.find(region);
    return it == regions_.end() ? 0 : it->second.last_seq;
}

std::vector<incident_report> aggregator::merged_ranked() const {
    std::vector<incident_report> merged;
    {
        std::shared_lock lock(mu_);
        for (const auto& [region, entry] : regions_) {
            merged.insert(merged.end(), entry.reports.begin(), entry.reports.end());
        }
    }
    // Concatenation follows the map's region order, so the stable sort
    // yields (score desc, incident id asc, region asc) — one total order
    // no matter how digest arrivals interleaved. This is the partition
    // parity guarantee: a recovered region's catch-up produces the same
    // bytes as an always-connected run.
    std::stable_sort(merged.begin(), merged.end(), report_before);
    return merged;
}

federation_metrics aggregator::metrics() const {
    federation_metrics m;
    const auto now = std::chrono::steady_clock::now();
    std::shared_lock lock(mu_);
    for (const auto& [region, entry] : regions_) {
        m.digests_applied += entry.digests_applied;
        m.duplicates_dropped += entry.duplicates_dropped;
        m.gaps_detected += entry.gaps_detected;
        switch (classify(ms_since(entry.last_contact, now), cfg_.health)) {
            case region_state::live: ++m.regions_live; break;
            case region_state::lagging: ++m.regions_lagging; break;
            case region_state::stale: ++m.regions_stale; break;
            case region_state::partitioned: ++m.regions_partitioned; break;
        }
    }
    return m;
}

std::size_t aggregator::region_count() const {
    std::shared_lock lock(mu_);
    return regions_.size();
}

void aggregator::touch(const std::string& region) {
    std::unique_lock lock(mu_);
    regions_[region].last_contact = std::chrono::steady_clock::now();
}

void aggregator::handle_fed_conn(int fd) {
    fed_decoder decoder;
    std::string region;
    std::uint64_t applied = 0;
    char buf[64 * 1024];
    auto last_activity = std::chrono::steady_clock::now();

    auto send_err = [&](const std::string& reason) {
        (void)serve::write_all(fd, "ERR " + reason + "\n");
    };

    while (!stopping_.load(std::memory_order_acquire)) {
        const int n = serve::read_some(fd, buf, sizeof buf, 200);
        if (n < 0) break;  // EOF (or error): the emitter is done sending
        if (n == 0) {
            if (ms_since(last_activity, std::chrono::steady_clock::now()) >=
                cfg_.session_timeout_ms) {
                sessions_rejected_.fetch_add(1, std::memory_order_relaxed);
                send_err("session timeout");
                return;
            }
            continue;
        }
        last_activity = std::chrono::steady_clock::now();
        decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
        while (auto frame = decoder.next()) {
            if (frame->type == fed_record::hello) {
                if (!region.empty()) {
                    sessions_rejected_.fetch_add(1, std::memory_order_relaxed);
                    send_err("duplicate hello");
                    return;
                }
                if (frame->payload.empty()) {
                    sessions_rejected_.fetch_add(1, std::memory_order_relaxed);
                    send_err("hello with empty region");
                    return;
                }
                region = frame->payload;
                touch(region);
                sessions_.fetch_add(1, std::memory_order_relaxed);
                // The catch-up contract: tell the emitter our high-water
                // mark so it sends exactly the digests we are missing.
                if (!serve::write_all(fd, "HAVE " + std::to_string(last_seq(region)) + "\n")) {
                    return;
                }
                continue;
            }
            // digest frame
            if (region.empty()) {
                sessions_rejected_.fetch_add(1, std::memory_order_relaxed);
                send_err("digest before hello");
                return;
            }
            region_digest d;
            std::string err;
            if (!decode_digest_payload(frame->payload, d, err)) {
                sessions_rejected_.fetch_add(1, std::memory_order_relaxed);
                send_err("bad digest: " + err);
                return;
            }
            if (d.region != region) {
                sessions_rejected_.fetch_add(1, std::memory_order_relaxed);
                send_err("digest region '" + d.region + "' does not match hello '" + region +
                         "'");
                return;
            }
            if (apply_digest(std::move(d)).applied) ++applied;
        }
        if (decoder.corrupt()) {
            sessions_rejected_.fetch_add(1, std::memory_order_relaxed);
            send_err(decoder.corruption_reason());
            return;
        }
    }
    if (region.empty()) return;  // never completed the handshake
    (void)serve::write_all(fd, "OK " + std::to_string(last_seq(region)) + " " +
                                   std::to_string(applied) + "\n");
}

serve::http_reply aggregator::handle(const serve::http_request& req) {
    auto bad = [](int status, std::string_view message) {
        serve::http_reply reply;
        reply.status = status;
        reply.body = "{\"error\":\"" + json_escape(message) + "\"}\n";
        return reply;
    };

    if (req.path == "/v1/health") {
        if (req.method != "GET") return bad(405, "use GET");
        return get_health();
    }
    if (req.path == "/v1/report") {
        if (req.method != "GET") return bad(405, "use GET");
        return get_report(req);
    }
    if (req.path == "/v1/regions") {
        if (req.method != "GET") return bad(405, "use GET");
        return get_regions();
    }
    if (req.path == "/") {
        serve::http_reply reply;
        reply.content_type = "text/plain";
        reply.body =
            "skynet federation aggregator\n"
            "  GET /v1/health   merged metrics JSON (federation block)\n"
            "  GET /v1/report   cross-region ranked incident listing\n"
            "  GET /v1/regions  per-region staleness detail\n";
        return reply;
    }
    return bad(404, "no such endpoint");
}

serve::http_reply aggregator::get_health() {
    // Same shape as the daemon's /v1/health: the canonical engine
    // metrics JSON. The aggregator runs no engine, so every block except
    // `federation` is zero — consumers parse one schema everywhere.
    engine_metrics m;
    m.federation = metrics();
    serve::http_reply reply;
    reply.body = m.to_json() + "\n";
    return reply;
}

serve::http_reply aggregator::get_report(const serve::http_request& req) const {
    serve::report_listing_options options;
    options.json = cfg_.report_json;
    options.timeline = cfg_.report_timeline;
    if (const std::string* v = req.param("json")) options.json = *v != "0";
    if (const std::string* v = req.param("timeline")) options.timeline = *v != "0";
    const std::vector<incident_report> merged = merged_ranked();
    serve::http_reply reply;
    reply.content_type = "text/plain";
    reply.body = serve::render_report_listing(merged, options);
    return reply;
}

serve::http_reply aggregator::get_regions() const {
    const auto now = std::chrono::steady_clock::now();
    std::string body = "{\"regions\":[";
    std::size_t count = 0;
    {
        std::shared_lock lock(mu_);
        for (const auto& [region, entry] : regions_) {
            if (count++ != 0) body += ',';
            const std::int64_t since = ms_since(entry.last_contact, now);
            body += "{\"region\":\"" + json_escape(region) + "\"";
            body += ",\"state\":\"";
            body += to_string(classify(since, cfg_.health));
            body += "\",\"since_contact_ms\":" + std::to_string(since);
            body += ",\"last_seq\":" + std::to_string(entry.last_seq);
            body += ",\"last_barrier\":" + std::to_string(entry.last_barrier);
            body += ",\"finished\":";
            body += entry.finished ? "true" : "false";
            body += ",\"digests_applied\":" + std::to_string(entry.digests_applied);
            body += ",\"duplicates_dropped\":" + std::to_string(entry.duplicates_dropped);
            body += ",\"gaps_detected\":" + std::to_string(entry.gaps_detected);
            body += ",\"reports\":" + std::to_string(entry.reports.size());
            body += "}";
        }
    }
    body += "],\"count\":" + std::to_string(count);
    body += ",\"sessions\":" + std::to_string(sessions_.load(std::memory_order_relaxed));
    body += ",\"sessions_rejected\":" +
            std::to_string(sessions_rejected_.load(std::memory_order_relaxed));
    body += "}\n";
    return {200, "application/json", std::move(body)};
}

}  // namespace skynet::federate
