#include "skynet/federate/digest.h"

#include <sys/stat.h>

#include <cstring>
#include <fstream>

#include "skynet/persist/crc32c.h"
#include "skynet/persist/journal.h"
#include "skynet/persist/report_codec.h"

namespace skynet::federate {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32(const char* p) {
    const auto* u = reinterpret_cast<const unsigned char*>(p);
    return static_cast<std::uint32_t>(u[0]) | (static_cast<std::uint32_t>(u[1]) << 8) |
           (static_cast<std::uint32_t>(u[2]) << 16) | (static_cast<std::uint32_t>(u[3]) << 24);
}

}  // namespace

std::string encode_digest_payload(const region_digest& d) {
    namespace codec = persist::codec;
    std::string out = "DIG";
    codec::put_u64(out, d.seq);
    codec::put_i64(out, d.barrier);
    codec::put(out, d.finish ? "1" : "0");
    codec::put_u64(out, d.reports.size());
    codec::put(out, d.region);
    out += '\n';
    for (const incident_report& r : d.reports) codec::put_report(out, r);
    return out;
}

bool decode_digest_payload(std::string_view payload, region_digest& d, std::string& err) {
    namespace codec = persist::codec;
    codec::cursor c;
    c.text = payload;
    std::vector<std::string_view> f;
    auto finish_error = [&]() {
        err = c.err.empty() ? "digest parse error" : c.err;
        return false;
    };
    std::uint64_t n_reports = 0;
    bool finish = false;
    if (!c.expect("DIG", 5, f)) return finish_error();
    if (!c.u64(f[1], d.seq)) return finish_error();
    if (!c.i64(f[2], d.barrier)) return finish_error();
    if (!c.flag(f[3], finish)) return finish_error();
    if (!c.u64(f[4], n_reports)) return finish_error();
    d.region = std::string(f[5]);
    d.finish = finish;
    if (d.region.empty()) {
        err = "digest with empty region";
        return false;
    }
    d.reports.clear();
    d.reports.reserve(n_reports);
    for (std::uint64_t i = 0; i < n_reports; ++i) {
        incident_report r;
        if (!codec::get_report(c, r)) return finish_error();
        d.reports.push_back(std::move(r));
    }
    if (c.pos < c.text.size()) {
        err = "trailing bytes after digest reports";
        return false;
    }
    return true;
}

std::string frame_fed_record(fed_record type, std::string_view payload) {
    std::string out;
    out.reserve(persist::record_header_bytes + payload.size());
    out.push_back(static_cast<char>(type));
    put_u32(out, static_cast<std::uint32_t>(payload.size()));
    put_u32(out, persist::crc32c(payload));
    out += payload;
    return out;
}

void fed_decoder::fail(std::string reason) {
    corrupt_ = true;
    reason_ = std::move(reason);
}

void fed_decoder::feed(std::string_view bytes) {
    if (corrupt_) return;
    buf_ += bytes;
    if (pos_ > 1u << 20 && pos_ > buf_.size() / 2) {
        buf_.erase(0, pos_);
        pos_ = 0;
    }
}

std::optional<fed_frame> fed_decoder::next() {
    if (corrupt_) return std::nullopt;
    if (!seen_magic_) {
        if (buf_.size() - pos_ < fed_magic.size()) return std::nullopt;
        if (std::string_view(buf_).substr(pos_, fed_magic.size()) != fed_magic) {
            fail("bad federation magic");
            return std::nullopt;
        }
        pos_ += fed_magic.size();
        seen_magic_ = true;
    }
    if (buf_.size() - pos_ < persist::record_header_bytes) return std::nullopt;
    const char* header = buf_.data() + pos_;
    const auto type = static_cast<fed_record>(static_cast<unsigned char>(header[0]));
    const std::uint32_t len = get_u32(header + 1);
    const std::uint32_t crc = get_u32(header + 5);
    if (type != fed_record::hello && type != fed_record::digest) {
        fail("unknown federation record type " +
             std::to_string(static_cast<unsigned char>(header[0])));
        return std::nullopt;
    }
    if (len > max_payload_bytes) {
        fail("payload length " + std::to_string(len) + " exceeds limit");
        return std::nullopt;
    }
    if (buf_.size() - pos_ < persist::record_header_bytes + len) return std::nullopt;
    const std::string_view payload(buf_.data() + pos_ + persist::record_header_bytes, len);
    if (persist::crc32c(payload) != crc) {
        fail("payload CRC mismatch");
        return std::nullopt;
    }
    fed_frame frame;
    frame.type = type;
    frame.payload = std::string(payload);
    pos_ += persist::record_header_bytes + len;
    ++frames_;
    return frame;
}

digest_journal_read read_digest_journal(const std::string& path) {
    digest_journal_read result;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        result.missing = true;
        return result;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

    auto truncate_at = [&](std::uint64_t at, std::string reason) {
        result.valid_bytes = at;
        result.truncated_tail_bytes = bytes.size() - at;
        result.truncation_reason = std::move(reason);
        return result;
    };

    if (bytes.size() < fed_magic.size() ||
        std::string_view(bytes).substr(0, fed_magic.size()) != fed_magic) {
        // An empty or headerless file is a torn-at-byte-zero journal:
        // drop everything, the writer re-creates the magic.
        return truncate_at(0, "missing digest journal magic");
    }

    std::size_t pos = fed_magic.size();
    while (true) {
        if (pos == bytes.size()) break;  // clean end
        if (bytes.size() - pos < persist::record_header_bytes) {
            return truncate_at(pos, "torn record header");
        }
        const char* header = bytes.data() + pos;
        const auto type = static_cast<fed_record>(static_cast<unsigned char>(header[0]));
        const std::uint32_t len = get_u32(header + 1);
        const std::uint32_t crc = get_u32(header + 5);
        if (type != fed_record::digest) {
            return truncate_at(pos, "unexpected record type in digest journal");
        }
        if (len > fed_decoder::max_payload_bytes ||
            bytes.size() - pos - persist::record_header_bytes < len) {
            return truncate_at(pos, "payload overruns the file");
        }
        const std::string_view payload(bytes.data() + pos + persist::record_header_bytes, len);
        if (persist::crc32c(payload) != crc) {
            return truncate_at(pos, "payload CRC mismatch");
        }
        region_digest d;
        std::string err;
        if (!decode_digest_payload(payload, d, err)) {
            return truncate_at(pos, "undecodable digest: " + err);
        }
        result.digests.push_back(std::move(d));
        pos += persist::record_header_bytes + len;
    }
    result.valid_bytes = pos;
    return result;
}

digest_journal_writer::digest_journal_writer(const std::string& path) {
    file_ = std::fopen(path.c_str(), "ab");
    if (file_ == nullptr) {
        throw skynet_error("digest journal: cannot open " + path);
    }
    struct stat st{};
    const bool fresh = ::fstat(::fileno(file_), &st) != 0 || st.st_size == 0;
    if (fresh) {
        if (std::fwrite(fed_magic.data(), 1, fed_magic.size(), file_) != fed_magic.size()) {
            std::fclose(file_);
            file_ = nullptr;
            throw skynet_error("digest journal: cannot write magic to " + path);
        }
        std::fflush(file_);
        offset_ = fed_magic.size();
    } else {
        offset_ = static_cast<std::uint64_t>(st.st_size);
    }
}

digest_journal_writer::~digest_journal_writer() {
    if (file_ != nullptr) {
        std::fflush(file_);
        std::fclose(file_);
    }
}

void digest_journal_writer::append_frame(std::string_view frame) {
    if (file_ == nullptr) return;
    if (std::fwrite(frame.data(), 1, frame.size(), file_) == frame.size()) {
        offset_ += frame.size();
    }
    std::fflush(file_);
}

}  // namespace skynet::federate
