#include "skynet/viz/vote_graph.h"

#include <algorithm>
#include <cstdio>

#include "skynet/common/error.h"

namespace skynet {

vote_graph::vote_graph(const topology* topo) : topo_(topo) {
    if (topo_ == nullptr) throw skynet_error("vote_graph: null topology");
}

void vote_graph::add_incident(const incident& inc) {
    for (const structured_alert& a : inc.alerts) {
        if (!a.device) continue;
        const device_id dev = *a.device;
        device_votes_[dev] += 1.0;
        for (link_id lid : topo_->links_of(dev)) {
            link_votes_[lid] += 1.0;
        }
        // Far-endpoint votes are per neighbor, not per circuit — parallel
        // circuits in a bundle must not multiply a neighbor's vote.
        for (device_id other : topo_->neighbors(dev)) {
            device_votes_[other] += 0.5;
        }
    }
}

double vote_graph::device_votes(device_id id) const {
    const auto it = device_votes_.find(id);
    return it == device_votes_.end() ? 0.0 : it->second;
}

double vote_graph::link_votes(link_id id) const {
    const auto it = link_votes_.find(id);
    return it == link_votes_.end() ? 0.0 : it->second;
}

std::vector<vote_graph::ranked_device> vote_graph::ranking() const {
    std::vector<ranked_device> out;
    out.reserve(device_votes_.size());
    for (const auto& [id, votes] : device_votes_) {
        out.push_back(ranked_device{.id = id, .votes = votes});
    }
    std::sort(out.begin(), out.end(), [](const ranked_device& a, const ranked_device& b) {
        if (a.votes != b.votes) return a.votes > b.votes;
        return a.id < b.id;
    });
    return out;
}

std::string vote_graph::to_dot() const {
    const std::vector<ranked_device> ranked = ranking();
    const device_id leader = ranked.empty() ? invalid_device : ranked.front().id;

    std::string out = "graph skynet_votes {\n  node [shape=box];\n";
    char buf[256];
    for (const auto& [id, votes] : device_votes_) {
        const device& d = topo_->device_at(id);
        std::snprintf(buf, sizeof buf, "  \"%s\" [label=\"%s\\n%s votes=%.1f\"%s];\n",
                      d.name.c_str(), std::string(to_string(d.role)).c_str(), d.name.c_str(),
                      votes, id == leader ? ", style=filled, fillcolor=salmon" : "");
        out += buf;
    }
    for (const auto& [lid, votes] : link_votes_) {
        const link& l = topo_->link_at(lid);
        if (!device_votes_.contains(l.a) || !device_votes_.contains(l.b)) continue;
        std::snprintf(buf, sizeof buf, "  \"%s\" -- \"%s\" [label=\"%.1f\"];\n",
                      topo_->device_at(l.a).name.c_str(), topo_->device_at(l.b).name.c_str(),
                      votes);
        out += buf;
    }
    out += "}\n";
    return out;
}

std::string vote_graph::to_ascii(std::size_t limit) const {
    std::string out = "votes  role   device\n";
    char buf[256];
    std::size_t shown = 0;
    for (const ranked_device& r : ranking()) {
        if (shown++ >= limit) break;
        const device& d = topo_->device_at(r.id);
        std::snprintf(buf, sizeof buf, "%5.1f  %-5s  %s\n", r.votes,
                      std::string(to_string(d.role)).c_str(), d.name.c_str());
        out += buf;
    }
    return out;
}

}  // namespace skynet
