#include "skynet/viz/timeline.h"

#include <algorithm>
#include <cstdio>

namespace skynet {

std::string render_timeline(const std::vector<incident_report>& reports,
                            const timeline_options& options) {
    if (reports.empty()) return "(no incidents)\n";

    sim_time begin = reports.front().inc.when.begin;
    sim_time end = reports.front().inc.when.end;
    for (const incident_report& r : reports) {
        begin = std::min(begin, r.inc.when.begin);
        end = std::max(end, r.inc.when.end);
    }
    if (end <= begin) end = begin + 1;
    const int cols = std::max(10, options.columns);
    const double bucket =
        static_cast<double>(end - begin) / static_cast<double>(cols);

    std::vector<incident_report> ordered = reports;
    std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
        return a.severity.score > b.severity.score;
    });

    // Header: the time axis endpoints.
    std::string out;
    const std::string left = format_time(begin);
    const std::string right = format_time(end);
    out += std::string(static_cast<std::size_t>(options.label_width) + 2, ' ') + left;
    const int pad = cols - static_cast<int>(left.size()) - static_cast<int>(right.size());
    out += std::string(static_cast<std::size_t>(std::max(1, pad)), ' ') + right + "\n";

    char buf[64];
    for (const incident_report& r : ordered) {
        // Per-bucket activity: failure alerts beat other categories.
        std::vector<char> row(static_cast<std::size_t>(cols), ' ');
        auto bucket_of = [&](sim_time t) {
            const int b = static_cast<int>(static_cast<double>(t - begin) / bucket);
            return std::clamp(b, 0, cols - 1);
        };
        // Open window baseline.
        for (int b = bucket_of(r.inc.when.begin); b <= bucket_of(r.inc.when.end); ++b) {
            row[static_cast<std::size_t>(b)] = '.';
        }
        for (const structured_alert& a : r.inc.alerts) {
            const char mark = a.category == alert_category::failure ? '#' : '=';
            for (int b = bucket_of(a.when.begin); b <= bucket_of(a.when.end); ++b) {
                char& cell = row[static_cast<std::size_t>(b)];
                if (cell != '#') cell = mark;
            }
        }

        std::string label = r.inc.root.to_string();
        if (static_cast<int>(label.size()) > options.label_width) {
            label = "..." + label.substr(label.size() -
                                         static_cast<std::size_t>(options.label_width - 3));
        }
        std::snprintf(buf, sizeof buf, "%6.1f%s", r.severity.score,
                      r.actionable ? " *" : "");
        out += label + std::string(static_cast<std::size_t>(options.label_width) -
                                       label.size() + 2,
                                   ' ') +
               std::string(row.begin(), row.end()) + " " + buf + "\n";
    }
    out += "\n'#' failure-alert activity, '=' other alerts, '.' open; * above the\n"
           "severity threshold.\n";
    return out;
}

}  // namespace skynet
