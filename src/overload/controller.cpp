#include "skynet/overload/controller.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "skynet/common/error.h"

namespace skynet::overload {

namespace {

std::size_t idx(data_source source) noexcept { return static_cast<std::size_t>(source); }

/// Approximate wire footprint of a raw alert: fixed overhead plus the
/// variable-length payload strings. Only has to be consistent, not exact.
std::uint64_t approx_bytes(const raw_alert& raw) {
    std::uint64_t bytes = 64 + raw.kind.size() + raw.message.size();
    for (const std::string& segment : raw.loc.segments()) bytes += segment.size() + 1;
    return bytes;
}

}  // namespace

std::string_view to_string(breaker_state state) noexcept {
    switch (state) {
        case breaker_state::closed: return "closed";
        case breaker_state::open: return "open";
        case breaker_state::half_open: return "half-open";
    }
    return "?";
}

void controller_config::validate() const {
    if (breaker.enabled) {
        if (breaker.window <= 0) throw skynet_error("overload: breaker window must be positive");
        if (breaker.min_samples == 0) {
            throw skynet_error("overload: breaker min_samples must be at least 1");
        }
        if (!(breaker.trip_ratio > 0.0) || breaker.trip_ratio > 1.0) {
            throw skynet_error("overload: breaker trip_ratio must be in (0, 1]");
        }
        if (breaker.backoff_initial <= 0) {
            throw skynet_error("overload: breaker backoff_initial must be positive");
        }
        if (breaker.backoff_max < breaker.backoff_initial) {
            throw skynet_error("overload: breaker backoff_max must be >= backoff_initial");
        }
        if (breaker.probe_count == 0) {
            throw skynet_error("overload: breaker probe_count must be at least 1");
        }
    }
    if (const char* msg = sketch.check()) {
        throw skynet_error(std::string("overload: ") + msg);
    }
}

controller::controller(controller_config cfg, const topology* topo,
                       const alert_type_registry* registry)
    : cfg_(cfg), topo_(topo), registry_(registry) {
    cfg_.validate();
    dedup_policy_ = sketch::counting_policy(cfg_.sketch);
    usage_ = sketch::counting_policy(cfg_.sketch);
}

bool controller::is_bad(const raw_alert& raw) const {
    // Mirrors preprocessor::reject_reason: alerts the engine would refuse
    // with a reason count against the source's breaker.
    if (!std::isfinite(raw.metric)) return true;
    if (raw.timestamp < 0) return true;
    if (topo_ != nullptr) {
        if (raw.device && *raw.device >= topo_->devices().size()) return true;
        if (raw.link && *raw.link >= topo_->links().size()) return true;
        const location_table& table = topo_->locations();
        const location_id ids[] = {raw.loc_id, raw.src_id, raw.dst_id};
        for (const location_id id : ids) {
            if (id != invalid_location_id && id >= table.size()) return true;
        }
    }
    // An unknown kind on a structured source would drop as unclassified —
    // the signature of a corrupting feed (syslog is free text, exempt).
    if (registry_ != nullptr && raw.source != data_source::syslog && !raw.kind.empty() &&
        !registry_->find(raw.source, raw.kind)) {
        return true;
    }
    return false;
}

shed_class controller::classify(const raw_alert& raw, bool duplicate) const {
    if (duplicate) return shed_class::duplicate;
    if (registry_ != nullptr && raw.source != data_source::syslog && !raw.kind.empty()) {
        if (const auto id = registry_->find(raw.source, raw.kind)) {
            switch (registry_->at(*id).category) {
                case alert_category::failure: return shed_class::failure;
                case alert_category::root_cause: return shed_class::root_cause;
                case alert_category::abnormal: return shed_class::other;
            }
        }
    }
    return shed_class::other;
}

std::string controller::dedup_key(const raw_alert& raw) const {
    std::string key;
    key.reserve(48 + raw.kind.size());
    key += std::to_string(static_cast<int>(raw.source));
    key += '\x1f';
    key += raw.kind;
    key += '\x1f';
    key += raw.loc.to_string();
    key += '\x1f';
    key += raw.device ? std::to_string(*raw.device) : std::string("-");
    key += '\x1f';
    key += std::to_string(raw.timestamp);
    // Keys end up in text snapshots; keep them single-line and tab-free.
    for (char& c : key) {
        if (c == '\t' || c == '\n' || c == '\r') c = ' ';
    }
    return key;
}

bool controller::note_dedup(const std::string& key) {
    if (!dedup_policy_.enabled() || !dedup_policy_.overflowing(dedup_seen_.size())) {
        return !dedup_seen_.insert(key).second;
    }
    // Sketched regime: keys captured exactly before the overflow still
    // dedup precisely; new keys are counted in the sketch, whose one-sided
    // error can flag a first sighting as a duplicate but never the reverse.
    if (dedup_seen_.contains(key)) return true;
    const sketch::counted c = dedup_policy_.sketch_add(sketch::hash64(key), 1);
    return !c.first;
}

void controller::account_usage(data_source source, std::uint64_t bytes) {
    const std::uint64_t slot = 2 * static_cast<std::uint64_t>(idx(source));
    (void)usage_.add(slot, 1);
    (void)usage_.add(slot + 1, bytes);
}

std::uint64_t controller::source_window_alerts(data_source source) const {
    return usage_.count(2 * static_cast<std::uint64_t>(idx(source)));
}

std::uint64_t controller::source_window_bytes(data_source source) const {
    return usage_.count(2 * static_cast<std::uint64_t>(idx(source)) + 1);
}

void controller::roll_window(breaker_status& st, sim_time now) {
    if (st.state != breaker_state::closed) return;
    const std::uint64_t samples = st.window_good + st.window_bad;
    if (samples == 0) return;
    if (now - st.window_start < cfg_.breaker.window) return;
    if (samples >= cfg_.breaker.min_samples &&
        static_cast<double>(st.window_bad) >= cfg_.breaker.trip_ratio * static_cast<double>(samples)) {
        st.state = breaker_state::open;
        st.backoff = cfg_.breaker.backoff_initial;
        st.reopen_at = now + st.backoff;
        ++st.trips;
        ++metrics_.breaker_trips;
    }
    st.window_good = 0;
    st.window_bad = 0;
    st.window_start = now;
}

void controller::run_breaker(const raw_alert& raw, sim_time now, verdict& v) {
    breaker_status& st = breakers_[idx(raw.source)];
    roll_window(st, now);
    if (st.state == breaker_state::open && now >= st.reopen_at) {
        st.state = breaker_state::half_open;
        st.probes_left = cfg_.breaker.probe_count;
    }
    switch (st.state) {
        case breaker_state::closed: {
            if (st.window_good + st.window_bad == 0) st.window_start = now;
            if (is_bad(raw)) {
                ++st.window_bad;
            } else {
                ++st.window_good;
            }
            // Bad alerts still pass while closed: the engine rejects them
            // itself, so closed-breaker behavior is bit-identical to no
            // breaker at all.
            break;
        }
        case breaker_state::open: {
            v.keep = false;
            ++st.quarantined;
            ++metrics_.quarantined;
            break;
        }
        case breaker_state::half_open: {
            ++metrics_.probes_admitted;
            --st.probes_left;
            if (is_bad(raw)) {
                st.state = breaker_state::open;
                st.backoff = std::min<sim_duration>(st.backoff * 2, cfg_.breaker.backoff_max);
                st.reopen_at = now + st.backoff;
                ++metrics_.breaker_reopens;
            } else if (st.probes_left == 0) {
                st.state = breaker_state::closed;
                st.window_good = 0;
                st.window_bad = 0;
                st.window_start = now;
                st.backoff = 0;
                ++metrics_.breaker_closes;
            }
            break;  // probes are admitted either way; a bad one the engine rejects
        }
    }
}

std::vector<controller::verdict> controller::decide(const std::vector<const raw_alert*>& alerts,
                                                    const std::vector<sim_time>& arrivals) {
    const std::size_t n = alerts.size();
    std::vector<verdict> verdicts(n);
    if (cfg_.breaker.enabled) {
        for (std::size_t i = 0; i < n; ++i) run_breaker(*alerts[i], arrivals[i], verdicts[i]);
    }

    if (!cfg_.admission.enabled()) {
        if (cfg_.breaker.enabled) {
            for (std::size_t i = 0; i < n; ++i) {
                if (!verdicts[i].keep) continue;
                ++metrics_.admitted;
                account_usage(alerts[i]->source, approx_bytes(*alerts[i]));
            }
        }
        return verdicts;
    }

    struct candidate {
        std::size_t pos;
        shed_class cls;
        std::uint64_t bytes;
    };
    std::vector<candidate> candidates;
    candidates.reserve(n);
    std::uint64_t batch_bytes = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (!verdicts[i].keep) continue;
        const bool duplicate = note_dedup(dedup_key(*alerts[i]));
        verdicts[i].cls = classify(*alerts[i], duplicate);
        verdicts[i].bytes = approx_bytes(*alerts[i]);
        candidates.push_back({i, verdicts[i].cls, verdicts[i].bytes});
        batch_bytes += verdicts[i].bytes;
    }

    constexpr std::uint64_t unlimited = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t remaining_alerts =
        cfg_.admission.max_alerts == 0
            ? unlimited
            : (cfg_.admission.max_alerts > window_alerts_ ? cfg_.admission.max_alerts - window_alerts_
                                                          : 0);
    std::uint64_t remaining_bytes =
        cfg_.admission.max_bytes == 0
            ? unlimited
            : (cfg_.admission.max_bytes > window_bytes_ ? cfg_.admission.max_bytes - window_bytes_
                                                        : 0);

    if (candidates.size() > remaining_alerts || batch_bytes > remaining_bytes) {
        // Over budget: keep the most valuable classes, ties broken by
        // arrival order, then restore original ordering via the verdicts.
        std::stable_sort(candidates.begin(), candidates.end(),
                         [](const candidate& a, const candidate& b) {
                             return static_cast<int>(a.cls) > static_cast<int>(b.cls);
                         });
        for (const candidate& c : candidates) {
            if (remaining_alerts > 0 && c.bytes <= remaining_bytes) {
                if (remaining_alerts != unlimited) --remaining_alerts;
                if (remaining_bytes != unlimited) remaining_bytes -= c.bytes;
                continue;
            }
            verdict& v = verdicts[c.pos];
            v.keep = false;
            metrics_.shed_bytes += c.bytes;
            switch (c.cls) {
                case shed_class::duplicate: ++metrics_.shed_duplicate; break;
                case shed_class::other: ++metrics_.shed_other; break;
                case shed_class::root_cause: ++metrics_.shed_root_cause; break;
                case shed_class::failure: ++metrics_.shed_failure; break;
            }
        }
    }

    for (std::size_t i = 0; i < n; ++i) {
        if (!verdicts[i].keep) continue;
        ++window_alerts_;
        window_bytes_ += verdicts[i].bytes;
        ++metrics_.admitted;
        account_usage(alerts[i]->source, verdicts[i].bytes);
    }
    return verdicts;
}

std::vector<traced_alert> controller::admit(std::vector<traced_alert> batch) {
    if (pass_through() || batch.empty()) return batch;
    std::vector<const raw_alert*> alerts;
    std::vector<sim_time> arrivals;
    alerts.reserve(batch.size());
    arrivals.reserve(batch.size());
    for (const traced_alert& t : batch) {
        alerts.push_back(&t.alert);
        arrivals.push_back(t.arrival);
    }
    const std::vector<verdict> verdicts = decide(alerts, arrivals);
    std::vector<traced_alert> admitted;
    admitted.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (verdicts[i].keep) admitted.push_back(std::move(batch[i]));
    }
    return admitted;
}

std::vector<raw_alert> controller::admit(std::vector<raw_alert> batch, sim_time now) {
    if (pass_through() || batch.empty()) return batch;
    std::vector<const raw_alert*> alerts;
    alerts.reserve(batch.size());
    for (const raw_alert& raw : batch) alerts.push_back(&raw);
    const std::vector<sim_time> arrivals(batch.size(), now);
    const std::vector<verdict> verdicts = decide(alerts, arrivals);
    std::vector<raw_alert> admitted;
    admitted.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (verdicts[i].keep) admitted.push_back(std::move(batch[i]));
    }
    return admitted;
}

void controller::on_tick(sim_time now) {
    if (pass_through()) return;
    window_alerts_ = 0;
    window_bytes_ = 0;
    dedup_seen_.clear();
    // Window rollover drops the per-window counting state but keeps the
    // lifetime sketched-decision counters for the degraded metric.
    dedup_policy_.reset_counts();
    usage_.reset_counts();
    if (cfg_.breaker.enabled) {
        for (breaker_status& st : breakers_) roll_window(st, now);
    }
}

controller::persist_state controller::export_state() const {
    persist_state state;
    state.window_alerts = window_alerts_;
    state.window_bytes = window_bytes_;
    state.dedup_keys.assign(dedup_seen_.begin(), dedup_seen_.end());
    std::sort(state.dedup_keys.begin(), state.dedup_keys.end());
    state.breakers = breakers_;
    state.counters = metrics_;
    return state;
}

void controller::import_state(const persist_state& state) {
    window_alerts_ = state.window_alerts;
    window_bytes_ = state.window_bytes;
    dedup_seen_.clear();
    dedup_seen_.insert(state.dedup_keys.begin(), state.dedup_keys.end());
    breakers_ = state.breakers;
    metrics_ = state.counters;
    // Sketch state is deliberately not persisted: a recovered session
    // restarts in the exact regime and re-enters the sketched one only if
    // the live window overflows again (reset-on-recover, see DESIGN.md).
    dedup_policy_.reset_all();
    usage_.reset_all();
}

}  // namespace skynet::overload
