#include "skynet/syslog/template_miner.h"

#include <algorithm>

#include "skynet/common/strings.h"
#include "skynet/syslog/ft_tree.h"

namespace skynet {

void template_miner::observe(std::string_view message, sim_time now) {
    ++observed_;
    std::vector<std::string> words = strip_variables(message);
    if (words.empty()) return;
    const std::string signature = join(words, " ");

    auto [it, inserted] = tracked_.try_emplace(signature);
    mined_template& t = it->second;
    if (inserted) {
        // Evict the stalest low-support entry when full.
        if (tracked_.size() > opts_.max_tracked) {
            auto victim = tracked_.end();
            for (auto cur = tracked_.begin(); cur != tracked_.end(); ++cur) {
                if (cur == it) continue;
                if (victim == tracked_.end() ||
                    cur->second.last_seen < victim->second.last_seen) {
                    victim = cur;
                }
            }
            if (victim != tracked_.end()) tracked_.erase(victim);
        }
        t.signature = signature;
        t.example = std::string(message);
        t.first_seen = now;
    }
    ++t.occurrences;
    t.last_seen = now;
}

std::vector<mined_template> template_miner::candidates() const {
    std::vector<mined_template> out;
    for (const auto& [signature, t] : tracked_) {
        if (t.occurrences >= opts_.min_occurrences) out.push_back(t);
    }
    std::sort(out.begin(), out.end(), [](const mined_template& a, const mined_template& b) {
        if (a.occurrences != b.occurrences) return a.occurrences > b.occurrences;
        return a.signature < b.signature;
    });
    return out;
}

void template_miner::resolve(std::string_view signature) {
    tracked_.erase(std::string(signature));
}

}  // namespace skynet
