#include "skynet/syslog/message_catalog.h"

namespace skynet {

const std::vector<syslog_format>& syslog_message_catalog() {
    static const std::vector<syslog_format> catalog = {
        {"link down", "%LINK-3-UPDOWN: Interface {intf} changed state to down"},
        {"link down", "%LINEPROTO-5-UPDOWN: Line protocol on Interface {intf} changed state to "
                      "down"},
        {"port down", "%PORT-5-IF_DOWN: port {intf} is down transceiver signal lost"},
        {"interface down", "%ETHPORT-5-IF_ADMIN_DOWN: Interface {intf} is admin down"},
        {"link flapping", "%LINK-4-FLAP: Interface {intf} flapping detected {num} transitions in "
                          "{num} seconds"},
        {"port flapping", "%PORT-4-IF_FLAPPING: port {intf} flap threshold exceeded count {num}"},
        {"bgp peer down", "%BGP-5-ADJCHANGE: neighbor {ip} Down BGP Notification sent holdtimer "
                          "expired"},
        {"bgp link jitter", "%BGP-4-SESSIONFLAP: neighbor {ip} session flapped {num} times within "
                            "window"},
        {"traffic blackhole", "%FIB-2-BLACKHOLE: prefix {ip} resolves to null adjacency traffic "
                              "blackholed"},
        {"hardware error", "%PLATFORM-2-HW_ERROR: ASIC {num} parity error detected slot {num} "
                           "requires reset"},
        {"hardware error", "%PLATFORM-1-LC_FAILURE: linecard {num} hardware failure diagnostics "
                           "code {hex}"},
        {"software error", "%SYS-2-CRASH: process {proc} terminated unexpectedly core dumped "
                           "signal {num}"},
        {"out of memory", "%SYS-1-MEMORY: out of memory malloc failed in process {proc} size "
                          "{num}"},
        {"crc error", "%ETH-3-CRC: interface {intf} input CRC errors exceed threshold rate {num}"},
        {"bit flip", "%MEM-2-ECC: uncorrectable ECC bit flip at address {hex} bank {num}"},
        {"config commit failed", "%CONFIG-3-COMMIT_FAIL: configuration commit failed semantic "
                                 "validation stage"},
        {"protocol adjacency loss", "%OSPF-5-ADJCHG: neighbor {ip} adjacency lost on {intf} dead "
                                    "timer expired"},
    };
    return catalog;
}

std::string render_syslog(std::string_view pattern, rng& rand) {
    static const char* const processes[] = {"routed", "bgpd", "snmpd", "fibd", "ifmgr"};
    std::string out;
    out.reserve(pattern.size() + 16);
    std::size_t i = 0;
    while (i < pattern.size()) {
        if (pattern[i] != '{') {
            out += pattern[i++];
            continue;
        }
        const std::size_t close = pattern.find('}', i);
        if (close == std::string_view::npos) {
            out += pattern.substr(i);
            break;
        }
        const std::string_view field = pattern.substr(i + 1, close - i - 1);
        if (field == "intf") {
            out += "TenGigE0/" + std::to_string(rand.uniform_int(0, 3)) + "/" +
                   std::to_string(rand.uniform_int(0, 3)) + "/" +
                   std::to_string(rand.uniform_int(0, 47));
        } else if (field == "ip") {
            out += std::to_string(rand.uniform_int(10, 172)) + "." +
                   std::to_string(rand.uniform_int(0, 255)) + "." +
                   std::to_string(rand.uniform_int(0, 255)) + "." +
                   std::to_string(rand.uniform_int(1, 254));
        } else if (field == "num") {
            out += std::to_string(rand.uniform_int(1, 9999));
        } else if (field == "hex") {
            char buf[24];
            std::snprintf(buf, sizeof buf, "0x%08llx",
                          static_cast<unsigned long long>(rand.uniform_int(0, 0x7fffffff)));
            out += buf;
        } else if (field == "proc") {
            out += processes[rand.index(std::size(processes))];
        } else {
            out += pattern.substr(i, close - i + 1);
        }
        i = close + 1;
    }
    return out;
}

}  // namespace skynet
