#include "skynet/syslog/classifier.h"

#include "skynet/syslog/message_catalog.h"

namespace skynet {

syslog_classifier syslog_classifier::train_from_catalog(int samples_per_format,
                                                        std::uint64_t seed) {
    rng rand(seed);
    std::vector<std::pair<std::string, std::string>> corpus;
    for (const syslog_format& fmt : syslog_message_catalog()) {
        for (int i = 0; i < samples_per_format; ++i) {
            corpus.emplace_back(render_syslog(fmt.pattern, rand), fmt.type_name);
        }
    }
    return train(corpus);
}

syslog_classifier syslog_classifier::train(
    const std::vector<std::pair<std::string, std::string>>& labeled_corpus, ft_tree::options opts) {
    ft_tree tree(opts);
    for (const auto& [message, type_name] : labeled_corpus) {
        tree.add_message(message);
    }
    tree.build();
    for (const auto& [message, type_name] : labeled_corpus) {
        if (!type_name.empty()) tree.label(message, type_name);
    }
    return syslog_classifier(std::move(tree));
}

std::optional<syslog_classifier::result> syslog_classifier::classify(
    std::string_view message) const {
    const auto tmpl = tree_.classify(message);
    if (!tmpl) return std::nullopt;
    const syslog_template& t = tree_.template_at(*tmpl);
    if (t.assigned_type.empty()) return std::nullopt;
    return result{.type_name = t.assigned_type, .tmpl = *tmpl};
}

}  // namespace skynet
