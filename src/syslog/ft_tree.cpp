#include "skynet/syslog/ft_tree.h"

#include <algorithm>
#include <regex>

#include "skynet/common/error.h"
#include "skynet/common/strings.h"

namespace skynet {
namespace {

const std::vector<std::regex>& variable_patterns() {
    // Predefined variable-word patterns (§4.1): addresses, interfaces,
    // numbers. Compiled once.
    static const std::vector<std::regex> patterns = [] {
        std::vector<std::regex> p;
        p.emplace_back(R"(^\d+$)");                                    // plain number
        p.emplace_back(R"(^0x[0-9a-fA-F]+$)");                        // hex literal
        p.emplace_back(R"(^\d+\.\d+\.\d+\.\d+(/\d+)?(:\d+)?$)");     // IPv4 (+mask/port)
        p.emplace_back(R"(^([0-9a-fA-F]{0,4}:){2,7}[0-9a-fA-F]{0,4}$)");  // IPv6-ish
        p.emplace_back(R"(^([0-9a-fA-F]{2}[:-]){5}[0-9a-fA-F]{2}$)");     // MAC
        p.emplace_back(R"(^[A-Za-z]+[0-9]+(/[0-9]+)+$)");             // TenGigE0/1/0/25
        p.emplace_back(R"(^\[.*\]$)");                                 // bracketed fields
        p.emplace_back(R"(^\d{4}-\d{2}-\d{2}$)");                     // date
        p.emplace_back(R"(^\d{2}:\d{2}:\d{2}(\.\d+)?$)");             // time
        p.emplace_back(R"(^\d+(\.\d+)?(ms|s|us|%|Mbps|Gbps|KB|MB|GB)$)");  // quantities
        return p;
    }();
    return patterns;
}

bool is_variable(const std::string& word) {
    for (const std::regex& re : variable_patterns()) {
        if (std::regex_match(word, re)) return true;
    }
    return false;
}

}  // namespace

std::vector<std::string> strip_variables(std::string_view message) {
    std::vector<std::string> words = split_whitespace(message);
    // Trim trailing punctuation so "down," and "down" unify, then drop
    // variable tokens.
    std::vector<std::string> out;
    out.reserve(words.size());
    for (std::string& w : words) {
        while (!w.empty() && (w.back() == ',' || w.back() == ';' || w.back() == '.')) {
            w.pop_back();
        }
        if (w.empty() || is_variable(w)) continue;
        out.push_back(std::move(w));
    }
    return out;
}

void ft_tree::add_message(std::string_view message) {
    if (built_) throw skynet_error("ft_tree: add_message after build");
    std::vector<std::string> words = strip_variables(message);
    for (const std::string& w : words) ++word_freq_[w];
    corpus_.push_back(std::move(words));
}

std::vector<std::string> ft_tree::ordered_words(std::string_view message) const {
    std::vector<std::string> words = strip_variables(message);
    std::sort(words.begin(), words.end(), [this](const std::string& a, const std::string& b) {
        const auto ia = word_freq_.find(a);
        const auto ib = word_freq_.find(b);
        const int fa = ia == word_freq_.end() ? 0 : ia->second;
        const int fb = ib == word_freq_.end() ? 0 : ib->second;
        if (fa != fb) return fa > fb;
        return a < b;
    });
    words.erase(std::unique(words.begin(), words.end()), words.end());
    if (words.size() > static_cast<std::size_t>(opts_.max_depth)) {
        words.resize(static_cast<std::size_t>(opts_.max_depth));
    }
    return words;
}

void ft_tree::build() {
    if (built_) throw skynet_error("ft_tree: build called twice");
    root_ = std::make_unique<node>();

    for (const std::vector<std::string>& raw_words : corpus_) {
        // Re-derive the frequency ordering now that counts are final.
        std::vector<std::string> words = raw_words;
        std::sort(words.begin(), words.end(), [this](const std::string& a, const std::string& b) {
            const int fa = word_freq_.at(a);
            const int fb = word_freq_.at(b);
            if (fa != fb) return fa > fb;
            return a < b;
        });
        words.erase(std::unique(words.begin(), words.end()), words.end());
        if (words.size() > static_cast<std::size_t>(opts_.max_depth)) {
            words.resize(static_cast<std::size_t>(opts_.max_depth));
        }

        node* cur = root_.get();
        ++cur->support;
        for (const std::string& w : words) {
            auto [it, inserted] = cur->children.try_emplace(w);
            if (inserted) it->second = std::make_unique<node>();
            cur = it->second.get();
            ++cur->support;
        }
        ++cur->ends;
    }

    // Prune rare subtrees and register the surviving leaf paths as
    // templates (depth-first, deterministic order via std::map children).
    templates_.clear();
    std::vector<std::string> path;
    auto walk = [this, &path](auto&& self, node& n) -> void {
        // Remove children below the support threshold.
        for (auto it = n.children.begin(); it != n.children.end();) {
            if (it->second->support < opts_.min_support) {
                it = n.children.erase(it);
            } else {
                ++it;
            }
        }
        // A node is a template if messages terminate here (interior stop)
        // or it became a leaf after pruning.
        const bool terminal = n.children.empty() || n.ends >= opts_.min_support;
        if (terminal && !path.empty()) {
            const auto id = static_cast<template_id>(templates_.size());
            n.tmpl = id;
            templates_.push_back(syslog_template{
                .id = id, .words = path, .support = n.support, .assigned_type = {}});
        }
        for (auto& [word, child] : n.children) {
            path.push_back(word);
            self(self, *child);
            path.pop_back();
        }
    };
    walk(walk, *root_);

    built_ = true;
    corpus_.clear();
    corpus_.shrink_to_fit();
}

std::optional<template_id> ft_tree::classify(std::string_view message) const {
    if (!built_) return std::nullopt;
    const std::vector<std::string> words = ordered_words(message);
    const node* cur = root_.get();
    template_id best = invalid_template;
    for (const std::string& w : words) {
        const auto it = cur->children.find(w);
        if (it == cur->children.end()) break;
        cur = it->second.get();
        if (cur->tmpl != invalid_template) best = cur->tmpl;
    }
    // Also accept an exact interior stop: a message shorter than any
    // template cannot match, but reaching a template-marked node suffices.
    if (best == invalid_template) return std::nullopt;
    return best;
}

std::optional<template_id> ft_tree::label(std::string_view example_message,
                                          std::string_view type_name) {
    const auto id = classify(example_message);
    if (!id) return std::nullopt;
    templates_[*id].assigned_type = std::string(type_name);
    return id;
}

const syslog_template& ft_tree::template_at(template_id id) const {
    if (id >= templates_.size()) throw skynet_error("ft_tree::template_at: bad id");
    return templates_[id];
}

}  // namespace skynet
