#include "skynet/alert/type_registry.h"

#include "skynet/common/error.h"

namespace skynet {

std::string_view to_string(data_source source) noexcept {
    switch (source) {
        case data_source::ping: return "Ping";
        case data_source::traceroute: return "Traceroute";
        case data_source::out_of_band: return "Out-of-band";
        case data_source::traffic_stats: return "Traffic";
        case data_source::internet_telemetry: return "Internet";
        case data_source::syslog: return "Syslog";
        case data_source::snmp: return "SNMP";
        case data_source::inband_telemetry: return "INT";
        case data_source::ptp: return "PTP";
        case data_source::route_monitoring: return "Route";
        case data_source::modification_events: return "Modification";
        case data_source::patrol_inspection: return "Patrol";
    }
    return "?";
}

std::string_view to_string(alert_category category) noexcept {
    switch (category) {
        case alert_category::failure: return "failure";
        case alert_category::abnormal: return "abnormal";
        case alert_category::root_cause: return "root cause";
    }
    return "?";
}

std::string alert_type_registry::key(data_source source, std::string_view name) {
    std::string k(to_string(source));
    k += '\x1f';
    k += name;
    return k;
}

alert_type_id alert_type_registry::register_type(data_source source, std::string name,
                                                 alert_category category) {
    const std::string k = key(source, name);
    if (const auto it = by_key_.find(k); it != by_key_.end()) {
        if (types_[it->second].category != category) {
            throw skynet_error("alert type re-registered with conflicting category: " + name);
        }
        return it->second;
    }
    const auto id = static_cast<alert_type_id>(types_.size());
    types_.push_back(
        alert_type{.id = id, .name = std::move(name), .source = source, .category = category});
    by_key_.emplace(k, id);
    return id;
}

std::optional<alert_type_id> alert_type_registry::find(data_source source,
                                                       std::string_view name) const {
    const auto it = by_key_.find(key(source, name));
    if (it == by_key_.end()) return std::nullopt;
    return it->second;
}

const alert_type& alert_type_registry::at(alert_type_id id) const {
    if (id >= types_.size()) throw skynet_error("alert_type_registry::at: bad id");
    return types_[id];
}

alert_type_registry alert_type_registry::with_builtin_catalog() {
    alert_type_registry reg;
    using ds = data_source;
    using cat = alert_category;

    // Ping mesh: end-to-end reachability and latency between server pairs.
    reg.register_type(ds::ping, "packet loss", cat::failure);
    reg.register_type(ds::ping, "high latency", cat::failure);
    reg.register_type(ds::ping, "unreachable pair", cat::failure);
    reg.register_type(ds::ping, "latency jitter", cat::abnormal);

    // Traceroute.
    reg.register_type(ds::traceroute, "hop loss", cat::failure);
    reg.register_type(ds::traceroute, "hop latency spike", cat::abnormal);
    reg.register_type(ds::traceroute, "path change", cat::abnormal);

    // Out-of-band.
    reg.register_type(ds::out_of_band, "device inaccessible", cat::abnormal);
    reg.register_type(ds::out_of_band, "high cpu", cat::abnormal);
    reg.register_type(ds::out_of_band, "high ram", cat::abnormal);
    reg.register_type(ds::out_of_band, "temperature high", cat::abnormal);
    reg.register_type(ds::out_of_band, "fan failure", cat::root_cause);
    reg.register_type(ds::out_of_band, "power anomaly", cat::root_cause);

    // Traffic statistics (sFlow / netFlow).
    reg.register_type(ds::traffic_stats, "sflow packet loss", cat::failure);
    reg.register_type(ds::traffic_stats, "traffic surge", cat::abnormal);
    reg.register_type(ds::traffic_stats, "traffic drop", cat::abnormal);
    reg.register_type(ds::traffic_stats, "abnormal traffic decline", cat::abnormal);
    reg.register_type(ds::traffic_stats, "sla flow beyond limit", cat::abnormal);

    // Internet telemetry.
    reg.register_type(ds::internet_telemetry, "internet unreachable", cat::failure);
    reg.register_type(ds::internet_telemetry, "internet packet loss", cat::failure);
    reg.register_type(ds::internet_telemetry, "internet high latency", cat::failure);

    // Syslog templates (categories per the Figure 6 example).
    reg.register_type(ds::syslog, "link down", cat::root_cause);
    reg.register_type(ds::syslog, "port down", cat::root_cause);
    reg.register_type(ds::syslog, "interface down", cat::root_cause);
    reg.register_type(ds::syslog, "link flapping", cat::abnormal);
    reg.register_type(ds::syslog, "port flapping", cat::abnormal);
    reg.register_type(ds::syslog, "bgp peer down", cat::abnormal);
    reg.register_type(ds::syslog, "bgp link jitter", cat::root_cause);
    reg.register_type(ds::syslog, "traffic blackhole", cat::abnormal);
    reg.register_type(ds::syslog, "hardware error", cat::root_cause);
    reg.register_type(ds::syslog, "software error", cat::root_cause);
    reg.register_type(ds::syslog, "out of memory", cat::root_cause);
    reg.register_type(ds::syslog, "crc error", cat::root_cause);
    reg.register_type(ds::syslog, "bit flip", cat::failure);
    reg.register_type(ds::syslog, "config commit failed", cat::root_cause);
    reg.register_type(ds::syslog, "protocol adjacency loss", cat::abnormal);

    // SNMP & GRPC counters.
    reg.register_type(ds::snmp, "traffic congestion", cat::root_cause);
    reg.register_type(ds::snmp, "link down", cat::root_cause);
    reg.register_type(ds::snmp, "port down", cat::root_cause);
    reg.register_type(ds::snmp, "rx errors", cat::root_cause);
    reg.register_type(ds::snmp, "interface flap", cat::abnormal);
    reg.register_type(ds::snmp, "high cpu", cat::abnormal);
    reg.register_type(ds::snmp, "high ram", cat::abnormal);
    reg.register_type(ds::snmp, "traffic drop", cat::abnormal);
    reg.register_type(ds::snmp, "traffic surge", cat::abnormal);

    // In-band network telemetry.
    reg.register_type(ds::inband_telemetry, "int packet loss", cat::failure);
    reg.register_type(ds::inband_telemetry, "rate discrepancy", cat::failure);
    reg.register_type(ds::inband_telemetry, "queue buildup", cat::abnormal);

    // PTP.
    reg.register_type(ds::ptp, "clock desync", cat::abnormal);

    // Route monitoring (control plane only).
    reg.register_type(ds::route_monitoring, "default route loss", cat::root_cause);
    reg.register_type(ds::route_monitoring, "aggregate route loss", cat::root_cause);
    reg.register_type(ds::route_monitoring, "route hijack", cat::root_cause);
    reg.register_type(ds::route_monitoring, "route leak", cat::root_cause);
    reg.register_type(ds::route_monitoring, "route churn", cat::abnormal);

    // Modification events.
    reg.register_type(ds::modification_events, "modification failed", cat::root_cause);
    reg.register_type(ds::modification_events, "rollback executed", cat::abnormal);

    // Patrol inspection.
    reg.register_type(ds::patrol_inspection, "patrol command error", cat::root_cause);
    reg.register_type(ds::patrol_inspection, "patrol timeout", cat::abnormal);

    return reg;
}

}  // namespace skynet
