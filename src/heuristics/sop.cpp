#include "skynet/heuristics/sop.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "skynet/common/error.h"
#include "skynet/heuristics/rule_parser.h"

namespace skynet {

std::string_view to_string(sop_action_kind kind) noexcept {
    switch (kind) {
        case sop_action_kind::isolate_device: return "isolate device";
        case sop_action_kind::disable_interface: return "disable interface";
        case sop_action_kind::rollback_modification: return "rollback modification";
    }
    return "?";
}

sop_engine::sop_engine(const topology* topo) : topo_(topo) {
    if (topo_ == nullptr) throw skynet_error("sop_engine: null topology");
}

void sop_engine::add_rule(sop_rule rule) { rules_.push_back(std::move(rule)); }

std::string_view sop_engine::default_rulebook() {
    // Device-level isolation signatures distilled from historical known
    // failures (the production system grew to ~1000 of these; the ones
    // below cover the single-device patterns our simulator produces).
    // Authored in the operator text format and parsed at load, like the
    // real rulebook.
    return R"(# SkyNet default SOP rulebook
rule "device packet loss isolation":
  require sflow packet loss
  group quiet
  max group utilization 0.7
  action isolate device

rule "hardware error isolation":
  require hardware error
  group quiet
  max group utilization 0.7
  action isolate device

rule "software crash isolation":
  require software error
  group quiet
  max group utilization 0.7
  action isolate device

rule "crc interface disable":
  require crc error
  forbid hardware error
  group quiet
  max group utilization 0.8
  action disable interface

rule "failed modification rollback":
  require modification failed
  action rollback modification
)";
}

sop_engine sop_engine::with_default_rules(const topology* topo) {
    sop_engine engine(topo);
    const rule_parse_result parsed = parse_sop_rules(default_rulebook());
    if (!parsed.ok()) {
        throw skynet_error("default rulebook failed to parse: " +
                           parsed.errors.front().message);
    }
    for (const sop_rule& rule : parsed.rules) engine.add_rule(rule);
    return engine;
}

std::vector<sop_match> sop_engine::match(std::span<const structured_alert> recent,
                                         const network_state& state) const {
    // Index the recent alerts per device.
    std::unordered_map<device_id, std::unordered_set<std::string>> types_by_device;
    std::unordered_set<device_id> alerting;
    for (const structured_alert& a : recent) {
        if (!a.device) continue;
        types_by_device[*a.device].insert(a.type_name);
        alerting.insert(*a.device);
    }

    std::vector<sop_match> out;
    for (const auto& [dev, types] : types_by_device) {
        const device& d = topo_->device_at(dev);
        for (const sop_rule& rule : rules_) {
            const sop_condition& c = rule.condition;
            const bool required_ok =
                std::all_of(c.required_types.begin(), c.required_types.end(),
                            [&types](const std::string& t) { return types.contains(t); });
            if (!required_ok) continue;

            bool forbidden_hit = false;
            if (d.group != invalid_group) {
                for (device_id member : topo_->group_at(d.group).members) {
                    const auto it = types_by_device.find(member);
                    if (it == types_by_device.end()) continue;
                    for (const std::string& t : c.forbidden_types) {
                        if (it->second.contains(t)) forbidden_hit = true;
                    }
                }
            }
            if (forbidden_hit) continue;

            if (c.require_group_quiet && d.group != invalid_group) {
                bool group_quiet = true;
                for (device_id member : topo_->group_at(d.group).members) {
                    if (member != dev && alerting.contains(member)) group_quiet = false;
                }
                if (!group_quiet) continue;
            }

            if (d.group != invalid_group && c.max_group_utilization < 1.0) {
                double util_sum = 0.0;
                int util_n = 0;
                for (device_id member : topo_->group_at(d.group).members) {
                    for (circuit_set_id cs : topo_->circuit_sets_of(member)) {
                        util_sum += std::min(2.0, state.utilization(cs));
                        ++util_n;
                    }
                }
                const double mean_util = util_n == 0 ? 0.0 : util_sum / util_n;
                if (mean_util > c.max_group_utilization) continue;
            }

            out.push_back(sop_match{.rule = &rule,
                                    .device = dev,
                                    .action = rule.action,
                                    .rollback_note = "re-enable " + d.name});
            break;  // first matching rule wins for a device
        }
    }
    return out;
}

std::function<void(network_state&)> sop_engine::execute(const sop_match& m,
                                                        network_state& state) const {
    switch (m.action) {
        case sop_action_kind::isolate_device: {
            state.device_state(m.device).isolated = true;
            const device_id dev = m.device;
            return [dev](network_state& s) { s.device_state(dev).isolated = false; };
        }
        case sop_action_kind::disable_interface: {
            // Drain the first corrupting circuit of the device.
            for (link_id lid : topo_->links_of(m.device)) {
                if (state.link_state(lid).corruption_loss > 0.0) {
                    state.link_state(lid).up = false;
                    return [lid](network_state& s) { s.link_state(lid).up = true; };
                }
            }
            return [](network_state&) {};
        }
        case sop_action_kind::rollback_modification:
            // The rollback itself is modeled by the scenario's on_end; the
            // SOP records the intent.
            return [](network_state&) {};
    }
    return [](network_state&) {};
}

}  // namespace skynet
