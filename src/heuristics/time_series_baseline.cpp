#include "skynet/heuristics/time_series_baseline.h"

namespace skynet {
namespace {

attribution to_attribution(const structured_alert& alert) {
    return attribution{.device = alert.device,
                       .type_name = alert.type_name,
                       .at = alert.when.begin,
                       .valid = true};
}

int category_rank(alert_category category) {
    switch (category) {
        case alert_category::root_cause: return 0;  // names the fix
        case alert_category::failure: return 1;
        case alert_category::abnormal: return 2;
    }
    return 3;
}

}  // namespace

attribution attribute_first_alert(std::span<const structured_alert> alerts) {
    const structured_alert* first = nullptr;
    for (const structured_alert& a : alerts) {
        if (first == nullptr || a.when.begin < first->when.begin) first = &a;
    }
    return first == nullptr ? attribution{} : to_attribution(*first);
}

attribution attribute_by_category(std::span<const structured_alert> alerts) {
    const structured_alert* best = nullptr;
    for (const structured_alert& a : alerts) {
        if (best == nullptr) {
            best = &a;
            continue;
        }
        const int ra = category_rank(a.category);
        const int rb = category_rank(best->category);
        // Prefer better category; within a category prefer device-level
        // evidence, then earliest.
        if (ra != rb) {
            if (ra < rb) best = &a;
            continue;
        }
        if (a.device.has_value() != best->device.has_value()) {
            if (a.device.has_value()) best = &a;
            continue;
        }
        if (a.when.begin < best->when.begin) best = &a;
    }
    return best == nullptr ? attribution{} : to_attribution(*best);
}

}  // namespace skynet
