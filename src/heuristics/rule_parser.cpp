#include "skynet/heuristics/rule_parser.h"

#include <cstdio>

#include "skynet/common/strings.h"

namespace skynet {
namespace {

std::string_view trim(std::string_view s) {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
        s.remove_suffix(1);
    }
    return s;
}

/// Strips a trailing `# comment` (not inside quotes).
std::string_view strip_comment(std::string_view s) {
    bool quoted = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '"') quoted = !quoted;
        if (s[i] == '#' && !quoted) return s.substr(0, i);
    }
    return s;
}

bool consume_keyword(std::string_view& s, std::string_view keyword) {
    if (!starts_with(s, keyword)) return false;
    const std::string_view rest = s.substr(keyword.size());
    if (!rest.empty() && rest.front() != ' ' && rest.front() != '\t') return false;
    s = trim(rest);
    return true;
}

}  // namespace

rule_parse_result parse_sop_rules(std::string_view text) {
    rule_parse_result result;
    sop_rule current;
    bool in_rule = false;
    bool rule_bad = false;
    bool has_action = false;

    auto fail = [&](int line, std::string message) {
        result.errors.push_back(rule_parse_error{.line = line, .message = std::move(message)});
        rule_bad = true;
    };
    auto finish_rule = [&](int line) {
        if (!in_rule) return;
        if (!rule_bad && !has_action) {
            result.errors.push_back(
                rule_parse_error{.line = line, .message = "rule '" + current.name +
                                                          "' has no action"});
            rule_bad = true;
        }
        if (!rule_bad) result.rules.push_back(std::move(current));
        current = sop_rule{};
        in_rule = false;
        rule_bad = false;
        has_action = false;
    };

    int line_no = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t nl = text.find('\n', pos);
        std::string_view line = text.substr(pos, nl == std::string_view::npos ? text.size() - pos
                                                                              : nl - pos);
        pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
        ++line_no;

        std::string_view body = trim(strip_comment(line));
        if (body.empty()) continue;

        if (consume_keyword(body, "rule")) {
            finish_rule(line_no);
            // Expect: "name":
            if (body.size() < 3 || body.front() != '"') {
                fail(line_no, "expected rule \"name\":");
                in_rule = true;  // swallow the body lines of the bad rule
                continue;
            }
            const std::size_t close = body.find('"', 1);
            if (close == std::string_view::npos || trim(body.substr(close + 1)) != ":") {
                fail(line_no, "expected rule \"name\":");
                in_rule = true;
                continue;
            }
            current.name = std::string(body.substr(1, close - 1));
            // Defaults: conditions opt in.
            current.condition = sop_condition{.required_types = {},
                                              .forbidden_types = {},
                                              .require_group_quiet = false,
                                              .max_group_utilization = 1.0};
            in_rule = true;
            continue;
        }

        if (!in_rule) {
            fail(line_no, "directive outside a rule: '" + std::string(body) + "'");
            rule_bad = false;  // nothing to skip; the error is recorded
            continue;
        }
        if (rule_bad) continue;  // skipping the rest of a bad rule

        if (consume_keyword(body, "require")) {
            if (body.empty()) {
                fail(line_no, "require needs an alert type");
                continue;
            }
            current.condition.required_types.emplace_back(body);
        } else if (consume_keyword(body, "forbid")) {
            if (body.empty()) {
                fail(line_no, "forbid needs an alert type");
                continue;
            }
            current.condition.forbidden_types.emplace_back(body);
        } else if (body == "group quiet") {
            current.condition.require_group_quiet = true;
        } else if (consume_keyword(body, "max group utilization")) {
            char* end = nullptr;
            const std::string value(body);
            const double v = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || !trim(std::string_view(end)).empty() || v < 0.0 ||
                v > 1.0) {
                fail(line_no, "max group utilization needs a number in [0,1]");
                continue;
            }
            current.condition.max_group_utilization = v;
        } else if (consume_keyword(body, "action")) {
            if (body == "isolate device") {
                current.action = sop_action_kind::isolate_device;
            } else if (body == "disable interface") {
                current.action = sop_action_kind::disable_interface;
            } else if (body == "rollback modification") {
                current.action = sop_action_kind::rollback_modification;
            } else {
                fail(line_no, "unknown action: '" + std::string(body) + "'");
                continue;
            }
            has_action = true;
        } else {
            fail(line_no, "unknown directive: '" + std::string(body) + "'");
        }
    }
    finish_rule(line_no);
    return result;
}

std::string render_sop_rule(const sop_rule& rule) {
    std::string out = "rule \"" + rule.name + "\":\n";
    for (const std::string& t : rule.condition.required_types) {
        out += "  require " + t + "\n";
    }
    for (const std::string& t : rule.condition.forbidden_types) {
        out += "  forbid " + t + "\n";
    }
    if (rule.condition.require_group_quiet) out += "  group quiet\n";
    if (rule.condition.max_group_utilization < 1.0) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "  max group utilization %.2f\n",
                      rule.condition.max_group_utilization);
        out += buf;
    }
    out += "  action " + std::string(to_string(rule.action)) + "\n";
    return out;
}

}  // namespace skynet
