file(REMOVE_RECURSE
  "CMakeFiles/test_network_state.dir/test_network_state.cpp.o"
  "CMakeFiles/test_network_state.dir/test_network_state.cpp.o.d"
  "test_network_state"
  "test_network_state.pdb"
  "test_network_state[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
