# Empty dependencies file for test_alert_registry.
# This may be replaced when dependencies are built.
