file(REMOVE_RECURSE
  "CMakeFiles/test_alert_registry.dir/test_alert_registry.cpp.o"
  "CMakeFiles/test_alert_registry.dir/test_alert_registry.cpp.o.d"
  "test_alert_registry"
  "test_alert_registry.pdb"
  "test_alert_registry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alert_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
