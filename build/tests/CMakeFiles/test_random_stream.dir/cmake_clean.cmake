file(REMOVE_RECURSE
  "CMakeFiles/test_random_stream.dir/test_random_stream.cpp.o"
  "CMakeFiles/test_random_stream.dir/test_random_stream.cpp.o.d"
  "test_random_stream"
  "test_random_stream.pdb"
  "test_random_stream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
