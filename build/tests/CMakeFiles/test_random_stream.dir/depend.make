# Empty dependencies file for test_random_stream.
# This may be replaced when dependencies are built.
