file(REMOVE_RECURSE
  "CMakeFiles/test_threshold_tuner.dir/test_threshold_tuner.cpp.o"
  "CMakeFiles/test_threshold_tuner.dir/test_threshold_tuner.cpp.o.d"
  "test_threshold_tuner"
  "test_threshold_tuner.pdb"
  "test_threshold_tuner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_threshold_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
