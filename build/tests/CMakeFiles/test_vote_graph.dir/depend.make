# Empty dependencies file for test_vote_graph.
# This may be replaced when dependencies are built.
