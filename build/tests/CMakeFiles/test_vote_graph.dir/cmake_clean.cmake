file(REMOVE_RECURSE
  "CMakeFiles/test_vote_graph.dir/test_vote_graph.cpp.o"
  "CMakeFiles/test_vote_graph.dir/test_vote_graph.cpp.o.d"
  "test_vote_graph"
  "test_vote_graph.pdb"
  "test_vote_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vote_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
