file(REMOVE_RECURSE
  "CMakeFiles/test_operator_model.dir/test_operator_model.cpp.o"
  "CMakeFiles/test_operator_model.dir/test_operator_model.cpp.o.d"
  "test_operator_model"
  "test_operator_model.pdb"
  "test_operator_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_operator_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
