# Empty dependencies file for test_operator_model.
# This may be replaced when dependencies are built.
