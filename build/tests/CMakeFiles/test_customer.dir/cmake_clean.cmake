file(REMOVE_RECURSE
  "CMakeFiles/test_customer.dir/test_customer.cpp.o"
  "CMakeFiles/test_customer.dir/test_customer.cpp.o.d"
  "test_customer"
  "test_customer.pdb"
  "test_customer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_customer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
