file(REMOVE_RECURSE
  "CMakeFiles/test_preprocessor.dir/test_preprocessor.cpp.o"
  "CMakeFiles/test_preprocessor.dir/test_preprocessor.cpp.o.d"
  "test_preprocessor"
  "test_preprocessor.pdb"
  "test_preprocessor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preprocessor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
