# Empty compiler generated dependencies file for test_extended_monitors.
# This may be replaced when dependencies are built.
