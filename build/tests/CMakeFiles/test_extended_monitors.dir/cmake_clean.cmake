file(REMOVE_RECURSE
  "CMakeFiles/test_extended_monitors.dir/test_extended_monitors.cpp.o"
  "CMakeFiles/test_extended_monitors.dir/test_extended_monitors.cpp.o.d"
  "test_extended_monitors"
  "test_extended_monitors.pdb"
  "test_extended_monitors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extended_monitors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
