# Empty compiler generated dependencies file for test_ft_tree.
# This may be replaced when dependencies are built.
