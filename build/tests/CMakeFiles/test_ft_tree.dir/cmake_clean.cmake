file(REMOVE_RECURSE
  "CMakeFiles/test_ft_tree.dir/test_ft_tree.cpp.o"
  "CMakeFiles/test_ft_tree.dir/test_ft_tree.cpp.o.d"
  "test_ft_tree"
  "test_ft_tree.pdb"
  "test_ft_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ft_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
