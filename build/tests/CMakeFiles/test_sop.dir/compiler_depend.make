# Empty compiler generated dependencies file for test_sop.
# This may be replaced when dependencies are built.
