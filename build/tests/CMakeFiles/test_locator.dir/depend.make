# Empty dependencies file for test_locator.
# This may be replaced when dependencies are built.
