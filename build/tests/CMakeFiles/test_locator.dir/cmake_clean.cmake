file(REMOVE_RECURSE
  "CMakeFiles/test_locator.dir/test_locator.cpp.o"
  "CMakeFiles/test_locator.dir/test_locator.cpp.o.d"
  "test_locator"
  "test_locator.pdb"
  "test_locator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_locator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
