file(REMOVE_RECURSE
  "CMakeFiles/test_figure6_fidelity.dir/test_figure6_fidelity.cpp.o"
  "CMakeFiles/test_figure6_fidelity.dir/test_figure6_fidelity.cpp.o.d"
  "test_figure6_fidelity"
  "test_figure6_fidelity.pdb"
  "test_figure6_fidelity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_figure6_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
