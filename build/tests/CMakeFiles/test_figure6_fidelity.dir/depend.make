# Empty dependencies file for test_figure6_fidelity.
# This may be replaced when dependencies are built.
