file(REMOVE_RECURSE
  "CMakeFiles/test_config_sweeps.dir/test_config_sweeps.cpp.o"
  "CMakeFiles/test_config_sweeps.dir/test_config_sweeps.cpp.o.d"
  "test_config_sweeps"
  "test_config_sweeps.pdb"
  "test_config_sweeps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
