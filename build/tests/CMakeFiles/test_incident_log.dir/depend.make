# Empty dependencies file for test_incident_log.
# This may be replaced when dependencies are built.
