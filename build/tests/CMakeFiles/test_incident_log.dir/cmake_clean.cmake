file(REMOVE_RECURSE
  "CMakeFiles/test_incident_log.dir/test_incident_log.cpp.o"
  "CMakeFiles/test_incident_log.dir/test_incident_log.cpp.o.d"
  "test_incident_log"
  "test_incident_log.pdb"
  "test_incident_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_incident_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
