file(REMOVE_RECURSE
  "libskynet_common.a"
)
