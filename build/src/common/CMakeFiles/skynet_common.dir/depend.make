# Empty dependencies file for skynet_common.
# This may be replaced when dependencies are built.
