file(REMOVE_RECURSE
  "CMakeFiles/skynet_common.dir/rng.cpp.o"
  "CMakeFiles/skynet_common.dir/rng.cpp.o.d"
  "CMakeFiles/skynet_common.dir/sim_clock.cpp.o"
  "CMakeFiles/skynet_common.dir/sim_clock.cpp.o.d"
  "CMakeFiles/skynet_common.dir/strings.cpp.o"
  "CMakeFiles/skynet_common.dir/strings.cpp.o.d"
  "libskynet_common.a"
  "libskynet_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skynet_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
