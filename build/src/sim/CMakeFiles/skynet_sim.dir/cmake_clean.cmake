file(REMOVE_RECURSE
  "CMakeFiles/skynet_sim.dir/engine.cpp.o"
  "CMakeFiles/skynet_sim.dir/engine.cpp.o.d"
  "CMakeFiles/skynet_sim.dir/network_state.cpp.o"
  "CMakeFiles/skynet_sim.dir/network_state.cpp.o.d"
  "CMakeFiles/skynet_sim.dir/operator_model.cpp.o"
  "CMakeFiles/skynet_sim.dir/operator_model.cpp.o.d"
  "CMakeFiles/skynet_sim.dir/scenario.cpp.o"
  "CMakeFiles/skynet_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/skynet_sim.dir/trace.cpp.o"
  "CMakeFiles/skynet_sim.dir/trace.cpp.o.d"
  "libskynet_sim.a"
  "libskynet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skynet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
