# Empty dependencies file for skynet_sim.
# This may be replaced when dependencies are built.
