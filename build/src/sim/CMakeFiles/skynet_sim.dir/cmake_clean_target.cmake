file(REMOVE_RECURSE
  "libskynet_sim.a"
)
