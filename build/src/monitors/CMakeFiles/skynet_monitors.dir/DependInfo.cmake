
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitors/device_monitors.cpp" "src/monitors/CMakeFiles/skynet_monitors.dir/device_monitors.cpp.o" "gcc" "src/monitors/CMakeFiles/skynet_monitors.dir/device_monitors.cpp.o.d"
  "/root/repo/src/monitors/extended_monitors.cpp" "src/monitors/CMakeFiles/skynet_monitors.dir/extended_monitors.cpp.o" "gcc" "src/monitors/CMakeFiles/skynet_monitors.dir/extended_monitors.cpp.o.d"
  "/root/repo/src/monitors/plane_monitors.cpp" "src/monitors/CMakeFiles/skynet_monitors.dir/plane_monitors.cpp.o" "gcc" "src/monitors/CMakeFiles/skynet_monitors.dir/plane_monitors.cpp.o.d"
  "/root/repo/src/monitors/probing.cpp" "src/monitors/CMakeFiles/skynet_monitors.dir/probing.cpp.o" "gcc" "src/monitors/CMakeFiles/skynet_monitors.dir/probing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/skynet_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/skynet_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/alert/CMakeFiles/skynet_alert.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/skynet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/syslog/CMakeFiles/skynet_syslog.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/skynet_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
