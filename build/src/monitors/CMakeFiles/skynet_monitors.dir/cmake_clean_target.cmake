file(REMOVE_RECURSE
  "libskynet_monitors.a"
)
