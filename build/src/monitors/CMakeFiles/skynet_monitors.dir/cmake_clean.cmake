file(REMOVE_RECURSE
  "CMakeFiles/skynet_monitors.dir/device_monitors.cpp.o"
  "CMakeFiles/skynet_monitors.dir/device_monitors.cpp.o.d"
  "CMakeFiles/skynet_monitors.dir/extended_monitors.cpp.o"
  "CMakeFiles/skynet_monitors.dir/extended_monitors.cpp.o.d"
  "CMakeFiles/skynet_monitors.dir/plane_monitors.cpp.o"
  "CMakeFiles/skynet_monitors.dir/plane_monitors.cpp.o.d"
  "CMakeFiles/skynet_monitors.dir/probing.cpp.o"
  "CMakeFiles/skynet_monitors.dir/probing.cpp.o.d"
  "libskynet_monitors.a"
  "libskynet_monitors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skynet_monitors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
