# Empty dependencies file for skynet_monitors.
# This may be replaced when dependencies are built.
