file(REMOVE_RECURSE
  "CMakeFiles/skynet_telemetry.dir/customer.cpp.o"
  "CMakeFiles/skynet_telemetry.dir/customer.cpp.o.d"
  "CMakeFiles/skynet_telemetry.dir/reachability.cpp.o"
  "CMakeFiles/skynet_telemetry.dir/reachability.cpp.o.d"
  "libskynet_telemetry.a"
  "libskynet_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skynet_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
