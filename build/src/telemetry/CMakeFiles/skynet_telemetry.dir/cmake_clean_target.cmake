file(REMOVE_RECURSE
  "libskynet_telemetry.a"
)
