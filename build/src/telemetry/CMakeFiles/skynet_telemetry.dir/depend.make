# Empty dependencies file for skynet_telemetry.
# This may be replaced when dependencies are built.
