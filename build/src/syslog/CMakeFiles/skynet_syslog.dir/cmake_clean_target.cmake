file(REMOVE_RECURSE
  "libskynet_syslog.a"
)
