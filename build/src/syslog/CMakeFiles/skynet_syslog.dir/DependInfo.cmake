
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/syslog/classifier.cpp" "src/syslog/CMakeFiles/skynet_syslog.dir/classifier.cpp.o" "gcc" "src/syslog/CMakeFiles/skynet_syslog.dir/classifier.cpp.o.d"
  "/root/repo/src/syslog/ft_tree.cpp" "src/syslog/CMakeFiles/skynet_syslog.dir/ft_tree.cpp.o" "gcc" "src/syslog/CMakeFiles/skynet_syslog.dir/ft_tree.cpp.o.d"
  "/root/repo/src/syslog/message_catalog.cpp" "src/syslog/CMakeFiles/skynet_syslog.dir/message_catalog.cpp.o" "gcc" "src/syslog/CMakeFiles/skynet_syslog.dir/message_catalog.cpp.o.d"
  "/root/repo/src/syslog/template_miner.cpp" "src/syslog/CMakeFiles/skynet_syslog.dir/template_miner.cpp.o" "gcc" "src/syslog/CMakeFiles/skynet_syslog.dir/template_miner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/skynet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
