file(REMOVE_RECURSE
  "CMakeFiles/skynet_syslog.dir/classifier.cpp.o"
  "CMakeFiles/skynet_syslog.dir/classifier.cpp.o.d"
  "CMakeFiles/skynet_syslog.dir/ft_tree.cpp.o"
  "CMakeFiles/skynet_syslog.dir/ft_tree.cpp.o.d"
  "CMakeFiles/skynet_syslog.dir/message_catalog.cpp.o"
  "CMakeFiles/skynet_syslog.dir/message_catalog.cpp.o.d"
  "CMakeFiles/skynet_syslog.dir/template_miner.cpp.o"
  "CMakeFiles/skynet_syslog.dir/template_miner.cpp.o.d"
  "libskynet_syslog.a"
  "libskynet_syslog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skynet_syslog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
