# Empty dependencies file for skynet_syslog.
# This may be replaced when dependencies are built.
