file(REMOVE_RECURSE
  "CMakeFiles/skynet_topology.dir/generator.cpp.o"
  "CMakeFiles/skynet_topology.dir/generator.cpp.o.d"
  "CMakeFiles/skynet_topology.dir/location.cpp.o"
  "CMakeFiles/skynet_topology.dir/location.cpp.o.d"
  "CMakeFiles/skynet_topology.dir/serialization.cpp.o"
  "CMakeFiles/skynet_topology.dir/serialization.cpp.o.d"
  "CMakeFiles/skynet_topology.dir/topology.cpp.o"
  "CMakeFiles/skynet_topology.dir/topology.cpp.o.d"
  "libskynet_topology.a"
  "libskynet_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skynet_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
