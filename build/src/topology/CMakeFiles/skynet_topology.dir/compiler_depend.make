# Empty compiler generated dependencies file for skynet_topology.
# This may be replaced when dependencies are built.
