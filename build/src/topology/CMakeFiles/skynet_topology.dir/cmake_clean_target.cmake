file(REMOVE_RECURSE
  "libskynet_topology.a"
)
