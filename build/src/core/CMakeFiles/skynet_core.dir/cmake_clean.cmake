file(REMOVE_RECURSE
  "CMakeFiles/skynet_core.dir/accuracy.cpp.o"
  "CMakeFiles/skynet_core.dir/accuracy.cpp.o.d"
  "CMakeFiles/skynet_core.dir/digest.cpp.o"
  "CMakeFiles/skynet_core.dir/digest.cpp.o.d"
  "CMakeFiles/skynet_core.dir/evaluator.cpp.o"
  "CMakeFiles/skynet_core.dir/evaluator.cpp.o.d"
  "CMakeFiles/skynet_core.dir/incident_log.cpp.o"
  "CMakeFiles/skynet_core.dir/incident_log.cpp.o.d"
  "CMakeFiles/skynet_core.dir/locator.cpp.o"
  "CMakeFiles/skynet_core.dir/locator.cpp.o.d"
  "CMakeFiles/skynet_core.dir/pipeline.cpp.o"
  "CMakeFiles/skynet_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/skynet_core.dir/preprocessor.cpp.o"
  "CMakeFiles/skynet_core.dir/preprocessor.cpp.o.d"
  "CMakeFiles/skynet_core.dir/threshold_tuner.cpp.o"
  "CMakeFiles/skynet_core.dir/threshold_tuner.cpp.o.d"
  "libskynet_core.a"
  "libskynet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skynet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
