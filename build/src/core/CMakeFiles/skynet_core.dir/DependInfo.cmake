
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accuracy.cpp" "src/core/CMakeFiles/skynet_core.dir/accuracy.cpp.o" "gcc" "src/core/CMakeFiles/skynet_core.dir/accuracy.cpp.o.d"
  "/root/repo/src/core/digest.cpp" "src/core/CMakeFiles/skynet_core.dir/digest.cpp.o" "gcc" "src/core/CMakeFiles/skynet_core.dir/digest.cpp.o.d"
  "/root/repo/src/core/evaluator.cpp" "src/core/CMakeFiles/skynet_core.dir/evaluator.cpp.o" "gcc" "src/core/CMakeFiles/skynet_core.dir/evaluator.cpp.o.d"
  "/root/repo/src/core/incident_log.cpp" "src/core/CMakeFiles/skynet_core.dir/incident_log.cpp.o" "gcc" "src/core/CMakeFiles/skynet_core.dir/incident_log.cpp.o.d"
  "/root/repo/src/core/locator.cpp" "src/core/CMakeFiles/skynet_core.dir/locator.cpp.o" "gcc" "src/core/CMakeFiles/skynet_core.dir/locator.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/skynet_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/skynet_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/preprocessor.cpp" "src/core/CMakeFiles/skynet_core.dir/preprocessor.cpp.o" "gcc" "src/core/CMakeFiles/skynet_core.dir/preprocessor.cpp.o.d"
  "/root/repo/src/core/threshold_tuner.cpp" "src/core/CMakeFiles/skynet_core.dir/threshold_tuner.cpp.o" "gcc" "src/core/CMakeFiles/skynet_core.dir/threshold_tuner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/skynet_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/skynet_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/alert/CMakeFiles/skynet_alert.dir/DependInfo.cmake"
  "/root/repo/build/src/syslog/CMakeFiles/skynet_syslog.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/skynet_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/skynet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/monitors/CMakeFiles/skynet_monitors.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
