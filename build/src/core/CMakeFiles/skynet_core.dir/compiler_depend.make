# Empty compiler generated dependencies file for skynet_core.
# This may be replaced when dependencies are built.
