file(REMOVE_RECURSE
  "libskynet_core.a"
)
