file(REMOVE_RECURSE
  "libskynet_heuristics.a"
)
