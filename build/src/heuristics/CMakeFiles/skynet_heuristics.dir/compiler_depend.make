# Empty compiler generated dependencies file for skynet_heuristics.
# This may be replaced when dependencies are built.
