file(REMOVE_RECURSE
  "CMakeFiles/skynet_heuristics.dir/rule_parser.cpp.o"
  "CMakeFiles/skynet_heuristics.dir/rule_parser.cpp.o.d"
  "CMakeFiles/skynet_heuristics.dir/sop.cpp.o"
  "CMakeFiles/skynet_heuristics.dir/sop.cpp.o.d"
  "CMakeFiles/skynet_heuristics.dir/time_series_baseline.cpp.o"
  "CMakeFiles/skynet_heuristics.dir/time_series_baseline.cpp.o.d"
  "libskynet_heuristics.a"
  "libskynet_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skynet_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
