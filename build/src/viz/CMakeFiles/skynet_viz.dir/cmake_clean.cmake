file(REMOVE_RECURSE
  "CMakeFiles/skynet_viz.dir/timeline.cpp.o"
  "CMakeFiles/skynet_viz.dir/timeline.cpp.o.d"
  "CMakeFiles/skynet_viz.dir/vote_graph.cpp.o"
  "CMakeFiles/skynet_viz.dir/vote_graph.cpp.o.d"
  "libskynet_viz.a"
  "libskynet_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skynet_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
