file(REMOVE_RECURSE
  "libskynet_viz.a"
)
