# Empty dependencies file for skynet_viz.
# This may be replaced when dependencies are built.
