file(REMOVE_RECURSE
  "libskynet_alert.a"
)
