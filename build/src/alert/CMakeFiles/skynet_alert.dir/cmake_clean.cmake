file(REMOVE_RECURSE
  "CMakeFiles/skynet_alert.dir/type_registry.cpp.o"
  "CMakeFiles/skynet_alert.dir/type_registry.cpp.o.d"
  "libskynet_alert.a"
  "libskynet_alert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skynet_alert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
