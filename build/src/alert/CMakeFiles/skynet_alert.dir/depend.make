# Empty dependencies file for skynet_alert.
# This may be replaced when dependencies are built.
