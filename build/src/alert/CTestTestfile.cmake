# CMake generated Testfile for 
# Source directory: /root/repo/src/alert
# Build directory: /root/repo/build/src/alert
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
