file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_connectivity.dir/bench_ablation_connectivity.cpp.o"
  "CMakeFiles/bench_ablation_connectivity.dir/bench_ablation_connectivity.cpp.o.d"
  "bench_ablation_connectivity"
  "bench_ablation_connectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
