# Empty dependencies file for skynet_bench_harness.
# This may be replaced when dependencies are built.
