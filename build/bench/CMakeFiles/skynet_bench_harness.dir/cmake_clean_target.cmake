file(REMOVE_RECURSE
  "libskynet_bench_harness.a"
)
