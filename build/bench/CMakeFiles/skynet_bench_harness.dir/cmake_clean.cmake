file(REMOVE_RECURSE
  "CMakeFiles/skynet_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/skynet_bench_harness.dir/harness.cpp.o.d"
  "libskynet_bench_harness.a"
  "libskynet_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skynet_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
