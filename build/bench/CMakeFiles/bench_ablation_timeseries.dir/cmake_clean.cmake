file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_timeseries.dir/bench_ablation_timeseries.cpp.o"
  "CMakeFiles/bench_ablation_timeseries.dir/bench_ablation_timeseries.cpp.o.d"
  "bench_ablation_timeseries"
  "bench_ablation_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
