
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_timeseries.cpp" "bench/CMakeFiles/bench_ablation_timeseries.dir/bench_ablation_timeseries.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_timeseries.dir/bench_ablation_timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/skynet_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/heuristics/CMakeFiles/skynet_heuristics.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/skynet_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/skynet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/monitors/CMakeFiles/skynet_monitors.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/skynet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/syslog/CMakeFiles/skynet_syslog.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/skynet_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/alert/CMakeFiles/skynet_alert.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/skynet_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/skynet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
