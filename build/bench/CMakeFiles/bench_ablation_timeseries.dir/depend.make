# Empty dependencies file for bench_ablation_timeseries.
# This may be replaced when dependencies are built.
