file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8a_data_sources.dir/bench_fig8a_data_sources.cpp.o"
  "CMakeFiles/bench_fig8a_data_sources.dir/bench_fig8a_data_sources.cpp.o.d"
  "bench_fig8a_data_sources"
  "bench_fig8a_data_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8a_data_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
