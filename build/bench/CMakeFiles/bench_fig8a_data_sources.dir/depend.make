# Empty dependencies file for bench_fig8a_data_sources.
# This may be replaced when dependencies are built.
