file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10a_severity.dir/bench_fig10a_severity.cpp.o"
  "CMakeFiles/bench_fig10a_severity.dir/bench_fig10a_severity.cpp.o.d"
  "bench_fig10a_severity"
  "bench_fig10a_severity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10a_severity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
