file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8b_preprocessing.dir/bench_fig8b_preprocessing.cpp.o"
  "CMakeFiles/bench_fig8b_preprocessing.dir/bench_fig8b_preprocessing.cpp.o.d"
  "bench_fig8b_preprocessing"
  "bench_fig8b_preprocessing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8b_preprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
