# Empty dependencies file for bench_fig8b_preprocessing.
# This may be replaced when dependencies are built.
