file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_thresholds.dir/bench_fig9_thresholds.cpp.o"
  "CMakeFiles/bench_fig9_thresholds.dir/bench_fig9_thresholds.cpp.o.d"
  "bench_fig9_thresholds"
  "bench_fig9_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
