file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_root_causes.dir/bench_fig1_root_causes.cpp.o"
  "CMakeFiles/bench_fig1_root_causes.dir/bench_fig1_root_causes.cpp.o.d"
  "bench_fig1_root_causes"
  "bench_fig1_root_causes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_root_causes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
