# Empty compiler generated dependencies file for bench_fig8c_locating_time.
# This may be replaced when dependencies are built.
