file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10b_filter.dir/bench_fig10b_filter.cpp.o"
  "CMakeFiles/bench_fig10b_filter.dir/bench_fig10b_filter.cpp.o.d"
  "bench_fig10b_filter"
  "bench_fig10b_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10b_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
