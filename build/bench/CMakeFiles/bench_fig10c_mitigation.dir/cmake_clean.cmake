file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10c_mitigation.dir/bench_fig10c_mitigation.cpp.o"
  "CMakeFiles/bench_fig10c_mitigation.dir/bench_fig10c_mitigation.cpp.o.d"
  "bench_fig10c_mitigation"
  "bench_fig10c_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10c_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
