# Empty dependencies file for bench_fig10c_mitigation.
# This may be replaced when dependencies are built.
