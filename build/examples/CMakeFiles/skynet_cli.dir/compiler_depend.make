# Empty compiler generated dependencies file for skynet_cli.
# This may be replaced when dependencies are built.
