file(REMOVE_RECURSE
  "CMakeFiles/skynet_cli.dir/skynet_cli.cpp.o"
  "CMakeFiles/skynet_cli.dir/skynet_cli.cpp.o.d"
  "skynet_cli"
  "skynet_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skynet_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
