# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for severe_failure_cable_cut.
