file(REMOVE_RECURSE
  "CMakeFiles/severe_failure_cable_cut.dir/severe_failure_cable_cut.cpp.o"
  "CMakeFiles/severe_failure_cable_cut.dir/severe_failure_cable_cut.cpp.o.d"
  "severe_failure_cable_cut"
  "severe_failure_cable_cut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/severe_failure_cable_cut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
