# Empty dependencies file for severe_failure_cable_cut.
# This may be replaced when dependencies are built.
