file(REMOVE_RECURSE
  "CMakeFiles/auto_sop.dir/auto_sop.cpp.o"
  "CMakeFiles/auto_sop.dir/auto_sop.cpp.o.d"
  "auto_sop"
  "auto_sop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_sop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
