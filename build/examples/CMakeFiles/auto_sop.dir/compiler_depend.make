# Empty compiler generated dependencies file for auto_sop.
# This may be replaced when dependencies are built.
