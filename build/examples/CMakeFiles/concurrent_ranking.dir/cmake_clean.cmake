file(REMOVE_RECURSE
  "CMakeFiles/concurrent_ranking.dir/concurrent_ranking.cpp.o"
  "CMakeFiles/concurrent_ranking.dir/concurrent_ranking.cpp.o.d"
  "concurrent_ranking"
  "concurrent_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
