# Empty dependencies file for concurrent_ranking.
# This may be replaced when dependencies are built.
