file(REMOVE_RECURSE
  "CMakeFiles/ddos_multisite.dir/ddos_multisite.cpp.o"
  "CMakeFiles/ddos_multisite.dir/ddos_multisite.cpp.o.d"
  "ddos_multisite"
  "ddos_multisite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddos_multisite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
