# Empty dependencies file for ddos_multisite.
# This may be replaced when dependencies are built.
