// skynet_cli — command-line driver for the whole stack.
//
// Builds (or imports) a topology, injects a failure scenario, streams the
// monitoring flood through SkyNet and prints the ranked incident reports,
// optionally as JSON digests. A practical entry point for exploring the
// system without writing code.
//
//   skynet_cli                                  # random severe failure
//   skynet_cli --scenario ddos --severe
//   skynet_cli --topo medium --duration 6 --json
//   skynet_cli --export-topo inventory.topo     # dump the topology format
//   skynet_cli --topo-file inventory.topo       # ... and load it back
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "skynet/core/digest.h"
#include "skynet/overload/controller.h"
#include "skynet/viz/timeline.h"
#include "skynet/core/pipeline.h"
#include "skynet/core/sharded_engine.h"
#include "skynet/monitors/extended_monitors.h"
#include "skynet/persist/durable.h"
#include "skynet/persist/recovery.h"
#include "skynet/sim/engine.h"
#include "skynet/sim/faults.h"
#include "skynet/sim/trace.h"
#include "skynet/topology/generator.h"
#include "skynet/topology/serialization.h"

using namespace skynet;

namespace {

struct options {
    std::string topo_preset = "small";
    std::string topo_file;
    std::string export_topo;
    std::string record_file;
    std::string replay_file;
    std::string faults_spec;
    std::string checkpoint_dir;
    std::string health_json;
    std::string overflow = "block";
    std::string scenario_name = "random";
    bool severe = true;
    bool json = false;
    bool timeline = false;
    bool extended = false;
    bool metrics = false;
    bool recover = false;
    bool breaker = false;
    int shards = 0;  // 0 = sequential engine
    int checkpoint_every = 8;
    std::uint64_t crash_after = 0;
    std::uint64_t admission_budget = 0;  // alerts per tick window; 0 = off
    std::uint64_t watchdog_deadline = 0;  // ms; 0 = off (auto with stall faults)
    int duration_min = 5;
    int customers = 400;
    double noise = 0.02;
    std::uint64_t seed = 1;
};

void usage() {
    std::printf(
        "usage: skynet_cli [options]\n"
        "  --topo tiny|small|medium|large   topology preset (default small)\n"
        "  --topo-file FILE                 import topology from the text format\n"
        "  --export-topo FILE               write the topology and exit\n"
        "  --scenario NAME                  random|hardware|link|modification|software|\n"
        "                                   infrastructure|route|ddos|config|cable-cut\n"
        "  --minor                          inject the minor variant (default severe)\n"
        "  --duration MIN                   failure duration in minutes (default 5)\n"
        "  --customers N                    synthetic customers (default 400)\n"
        "  --noise R                        monitor glitch rate (default 0.02)\n"
        "  --seed N                         simulation seed (default 1)\n"
        "  --extended                       also run the user-telemetry/SRTE sources\n"
        "  --shards N                       run the region-sharded engine with N workers\n"
        "  --metrics                        print per-stage engine metrics\n"
        "  --json                           print incidents as JSON digests\n"
        "  --timeline                       print an ASCII incident timeline\n"
        "  --record FILE                    save the raw alert trace\n"
        "  --replay FILE                    replay a recorded trace (skips the simulator)\n"
        "  --faults SPEC                    degrade the ingest stream deterministically, e.g.\n"
        "                                   'seed=3;dropout=0.2;dup=0.05;reorder=0.1;skew=5s;\n"
        "                                   skew_rate=0.3;corrupt=0.02;drop:ping@60s+120s;\n"
        "                                   pressure=0.5' (see DESIGN.md fault model)\n"
        "  --overflow block|drop_oldest|reject\n"
        "                                   shard-queue policy when full (default block)\n"
        "  --checkpoint-dir DIR             journal every --replay batch/tick and write\n"
        "                                   barrier-consistent checkpoints into DIR\n"
        "  --checkpoint-every N             barriers between checkpoints (default 8)\n"
        "  --recover                        restore from --checkpoint-dir (newest valid\n"
        "                                   snapshot + journal replay) before streaming\n"
        "  --crash-after N                  crash drill: exit %d after the Nth journal\n"
        "                                   record is durable, before it is applied\n"
        "  --admission-budget N             overload guard: admit at most N alerts per\n"
        "                                   tick window, shedding duplicates/other first\n"
        "  --breaker                        per-source circuit breakers (quarantine a\n"
        "                                   source emitting sustained garbage)\n"
        "  --watchdog-deadline MS           sharded only: write off / recover a shard\n"
        "                                   making no progress for MS wall-clock ms\n"
        "                                   (defaults to 250 when --faults has stalls)\n"
        "  --health-json FILE               write the merged engine health report as\n"
        "                                   JSON at every tick barrier (atomic rename)\n",
        persist::crash_exit_code);
}

std::unique_ptr<scenario> pick_scenario(const options& opt, const topology& topo, rng& rand) {
    const std::string& n = opt.scenario_name;
    if (n == "random") return make_random_scenario(topo, rand, opt.severe);
    if (n == "hardware") return make_device_hardware_failure(topo, rand, opt.severe);
    if (n == "link") return make_link_failure(topo, rand, opt.severe);
    if (n == "modification") return make_modification_error(topo, rand, opt.severe);
    if (n == "software") return make_device_software_failure(topo, rand, opt.severe);
    if (n == "infrastructure") return make_infrastructure_failure(topo, rand, opt.severe);
    if (n == "route") return make_route_error(topo, rand, opt.severe);
    if (n == "ddos") return make_security_ddos(topo, rand, opt.severe ? 3 : 1);
    if (n == "config") return make_configuration_error(topo, rand, opt.severe);
    if (n == "cable-cut") {
        for (const device& d : topo.devices()) {
            if (d.role == device_role::isr) {
                return make_internet_entry_cut(
                    topo, d.loc.ancestor_at(hierarchy_level::logic_site), 0.5);
            }
        }
    }
    return nullptr;
}

/// Writes `text` to `path` via a temp file + atomic rename (the same
/// crash-safety convention as snapshots): a reader never sees a torn
/// health report.
void write_atomic(const std::string& path, const std::string& text) {
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", tmp.c_str());
            return;
        }
        out << text;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) std::fprintf(stderr, "health-json rename failed: %s\n", ec.message().c_str());
}

/// Streams the alert source (recorded trace or live simulation) through
/// `engine` — tick-batched ingest either way — and prints the ranked
/// reports. Works for both the sequential and the region-sharded engine.
/// When `faults` is set, every delivery passes through the injector
/// first and reorder-held alerts are released at each tick. When `guard`
/// is active, every delivery then passes the overload controller, so the
/// engine (and the journal, in durable runs) only ever sees admitted
/// alerts.
template <typename Engine>
int run_session(Engine& engine, const options& opt, const topology& topo,
                const customer_registry& customers, fault_injector* faults,
                overload::controller* guard) {
    std::int64_t raw = 0;
    recovery_metrics persist_metrics;
    const bool guarded = guard != nullptr && !guard->pass_through();

    // Generic over the sink so the replay path can route through a
    // persist::durable_session (same ingest/tick/finish surface) while
    // the simulation path keeps feeding the engine directly.
    const auto deliver = [&](auto& sink, std::vector<traced_alert> batch) {
        if (guarded) batch = guard->admit(std::move(batch));
        if (!batch.empty()) sink.ingest_batch(std::span<const traced_alert>(batch));
    };
    const auto ingest = [&](auto& sink, std::span<const traced_alert> batch) {
        if (faults == nullptr && !guarded) {
            sink.ingest_batch(batch);
            return;
        }
        std::vector<traced_alert> stream(batch.begin(), batch.end());
        if (faults != nullptr) stream = faults->apply(stream);
        deliver(sink, std::move(stream));
    };
    const auto release_held = [&](auto& sink, sim_time now) {
        if (faults == nullptr) return;
        std::vector<traced_alert> due = faults->release(now);
        if (!due.empty()) deliver(sink, std::move(due));
    };
    const auto drain_held = [&](auto& sink) {
        if (faults == nullptr) return;
        std::vector<traced_alert> held = faults->drain();
        if (!held.empty()) deliver(sink, std::move(held));
    };
    // Tick-barrier housekeeping: close the admission window and publish
    // the merged health report (engine barrier metrics + controller
    // counters) if asked to.
    const auto on_barrier = [&](sim_time now) {
        if (guard != nullptr) guard->on_tick(now);
        if (opt.health_json.empty()) return;
        engine_metrics m = engine.barrier_metrics();
        if (guard != nullptr) m.overload += guard->metrics();
        write_atomic(opt.health_json, m.to_json() + "\n");
    };

    if (!opt.replay_file.empty() || opt.recover) {
        network_state idle(&topo, &customers);

        std::vector<traced_alert> alerts;
        if (!opt.replay_file.empty()) {
            std::ifstream in(opt.replay_file);
            if (!in) {
                std::fprintf(stderr, "cannot read %s\n", opt.replay_file.c_str());
                return 1;
            }
            std::stringstream buffer;
            buffer << in.rdbuf();
            trace_parse_result trace = parse_trace(buffer.str());
            for (const trace_parse_error& e : trace.errors) {
                std::fprintf(stderr, "%s:%d: %s\n", opt.replay_file.c_str(), e.line,
                             e.message.c_str());
            }
            alerts = std::move(trace.alerts);
            std::printf("replaying %zu alerts from %s\n", alerts.size(),
                        opt.replay_file.c_str());
        }

        // The journal records what the engine saw, so faults degrade the
        // stream *before* the durable sink journals it: replay and resume
        // both see the post-fault alerts.
        const auto stream = [&](auto& sink) {
            sim_time last_tick = 0;
            sim_time last_arrival = 0;
            std::vector<traced_alert> batch;
            for (const traced_alert& t : alerts) {
                ++raw;
                batch.push_back(t);
                last_arrival = t.arrival;
                if (t.arrival - last_tick >= seconds(2)) {
                    ingest(sink, std::span<const traced_alert>(batch));
                    batch.clear();
                    release_held(sink, t.arrival);
                    sink.tick(t.arrival, idle);
                    on_barrier(t.arrival);
                    last_tick = t.arrival;
                }
            }
            ingest(sink, std::span<const traced_alert>(batch));
            drain_held(sink);
            sink.finish(last_arrival + minutes(20), idle);
            on_barrier(last_arrival + minutes(20));
        };

        persist::recovery_result recovered;
        if (opt.recover) {
            persist::recovery_options ropts;
            ropts.dir = opt.checkpoint_dir;
            ropts.tick_state = &idle;
            // Inspect mode continues directly from the snapshot, so the
            // controller state is imported; a resume re-streams from the
            // start and re-derives it deterministically instead.
            if (opt.replay_file.empty()) ropts.controller = guard;
            try {
                recovered = persist::recover(engine, topo.locations(), nullptr, ropts);
            } catch (const std::exception& e) {
                // recover() prefixes its own messages with "recover:".
                std::fprintf(stderr, "%s\n", e.what());
                return 1;
            }
            for (const std::string& note : recovered.notes) {
                std::printf("recover: %s\n", note.c_str());
            }
            persist_metrics = recovered.metrics;
        }

        if (opt.replay_file.empty()) {
            // Inspect mode: recover alone. Close out the run if the
            // journal never reached its finish barrier, then report.
            if (!recovered.saw_finish) {
                engine.finish(recovered.last_barrier_time + minutes(20), idle);
            }
        } else if (!opt.checkpoint_dir.empty()) {
            persist::durable_options dopts;
            dopts.dir = opt.checkpoint_dir;
            dopts.checkpoint_every = static_cast<std::uint64_t>(opt.checkpoint_every);
            dopts.crash_after = opt.crash_after;
            dopts.resume_records = recovered.journal_records;
            dopts.next_snapshot_seq = recovered.next_snapshot_seq;
            dopts.base = recovered.metrics;
            dopts.locations = &topo.locations();
            dopts.controller = guard;
            persist::durable_session<Engine> session(engine, dopts);
            stream(session);
            persist_metrics = session.metrics();
            if (!session.last_error().empty()) {
                std::fprintf(stderr, "checkpoint: %s\n", session.last_error().c_str());
            }
        } else {
            stream(engine);
        }
    } else {
        simulation_engine sim(&topo, &customers,
                              engine_params{.tick = seconds(2), .seed = opt.seed});
        sim.add_default_monitors(monitor_options{.noise_rate = opt.noise});
        if (opt.extended) {
            for (auto& tool : make_extended_monitors(topo)) sim.add_monitor(std::move(tool));
        }

        rng srand(opt.seed + 2);
        auto failure = pick_scenario(opt, topo, srand);
        if (!failure) {
            std::fprintf(stderr, "unknown scenario: %s\n", opt.scenario_name.c_str());
            return 2;
        }
        std::printf("injecting: %s (%s, %s) for %d min\n", failure->name().c_str(),
                    std::string(to_string(failure->cause())).c_str(),
                    opt.severe ? "severe" : "minor", opt.duration_min);
        sim.inject(std::move(failure), minutes(1), minutes(opt.duration_min));

        std::vector<traced_alert> recorded;
        sim.run_until_batched(minutes(1 + opt.duration_min) + minutes(2),
                              [&](std::span<const traced_alert> batch) {
                                  raw += static_cast<std::int64_t>(batch.size());
                                  ingest(engine, batch);
                                  if (!opt.record_file.empty()) {
                                      recorded.insert(recorded.end(), batch.begin(), batch.end());
                                  }
                              },
                              [&](sim_time now) {
                                  release_held(engine, now);
                                  engine.tick(now, sim.state());
                                  on_barrier(now);
                              });
        drain_held(engine);
        engine.finish(sim.clock().now(), sim.state());
        on_barrier(sim.clock().now());

        if (!opt.record_file.empty()) {
            std::ofstream out(opt.record_file);
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n", opt.record_file.c_str());
                return 1;
            }
            out << serialize_trace(recorded);
            std::printf("recorded %zu alerts to %s\n", recorded.size(),
                        opt.record_file.c_str());
        }
    }

    const preprocessor_stats stats = engine.preprocessing_stats();
    std::printf("alerts: %lld raw -> %lld structured\n", static_cast<long long>(raw),
                static_cast<long long>(stats.emitted_new));
    if (faults != nullptr) {
        const fault_stats& fs = faults->stats();
        std::printf("faults: %llu in, %llu dropped (dropout), %llu duplicated, "
                    "%llu reordered, %llu corrupted, %llu skewed\n",
                    static_cast<unsigned long long>(fs.alerts_in),
                    static_cast<unsigned long long>(fs.dropped_dropout),
                    static_cast<unsigned long long>(fs.duplicated),
                    static_cast<unsigned long long>(fs.reordered),
                    static_cast<unsigned long long>(fs.corrupted),
                    static_cast<unsigned long long>(fs.skewed));
    }
    if (guarded) {
        const overload_metrics& om = guard->metrics();
        std::printf("overload: %llu admitted, %llu shed "
                    "(%llu dup / %llu other / %llu root-cause / %llu failure), "
                    "%llu quarantined, %llu breaker trips\n",
                    static_cast<unsigned long long>(om.admitted),
                    static_cast<unsigned long long>(om.shed_total()),
                    static_cast<unsigned long long>(om.shed_duplicate),
                    static_cast<unsigned long long>(om.shed_other),
                    static_cast<unsigned long long>(om.shed_root_cause),
                    static_cast<unsigned long long>(om.shed_failure),
                    static_cast<unsigned long long>(om.quarantined),
                    static_cast<unsigned long long>(om.breaker_trips));
    }
    if (opt.metrics) {
        engine_metrics m = engine.metrics();
        m.recovery += persist_metrics;
        if (guard != nullptr) m.overload += guard->metrics();
        if (faults != nullptr) {
            // The injector, not the engine, knows which sources went dark.
            m.degraded.sources_in_dropout = faults->stats().sources_in_dropout;
        }
        std::printf("%s", m.render().c_str());
    }

    // take_reports is already globally ranked (severity desc, id asc).
    const auto reports = engine.take_reports();
    std::printf("incidents: %zu\n\n", reports.size());
    if (opt.timeline && !reports.empty()) {
        std::printf("%s\n", render_timeline(reports).c_str());
    }
    for (const incident_report& r : reports) {
        if (opt.json) {
            std::printf("%s\n", incident_digest_json(r).c_str());
        } else {
            std::printf("%s\n", r.render().c_str());
        }
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", argv[i]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--topo") {
            opt.topo_preset = value();
        } else if (arg == "--topo-file") {
            opt.topo_file = value();
        } else if (arg == "--export-topo") {
            opt.export_topo = value();
        } else if (arg == "--scenario") {
            opt.scenario_name = value();
        } else if (arg == "--minor") {
            opt.severe = false;
        } else if (arg == "--duration") {
            opt.duration_min = std::atoi(value());
        } else if (arg == "--customers") {
            opt.customers = std::atoi(value());
        } else if (arg == "--noise") {
            opt.noise = std::atof(value());
        } else if (arg == "--seed") {
            opt.seed = static_cast<std::uint64_t>(std::atoll(value()));
        } else if (arg == "--extended") {
            opt.extended = true;
        } else if (arg == "--shards") {
            opt.shards = std::atoi(value());
        } else if (arg == "--metrics") {
            opt.metrics = true;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--timeline") {
            opt.timeline = true;
        } else if (arg == "--record") {
            opt.record_file = value();
        } else if (arg == "--replay") {
            opt.replay_file = value();
        } else if (arg == "--faults") {
            opt.faults_spec = value();
        } else if (arg == "--overflow") {
            opt.overflow = value();
        } else if (arg == "--checkpoint-dir") {
            opt.checkpoint_dir = value();
        } else if (arg == "--checkpoint-every") {
            opt.checkpoint_every = std::atoi(value());
        } else if (arg == "--recover") {
            opt.recover = true;
        } else if (arg == "--crash-after") {
            opt.crash_after = static_cast<std::uint64_t>(std::atoll(value()));
        } else if (arg == "--admission-budget") {
            opt.admission_budget = static_cast<std::uint64_t>(std::atoll(value()));
        } else if (arg == "--breaker") {
            opt.breaker = true;
        } else if (arg == "--watchdog-deadline") {
            opt.watchdog_deadline = static_cast<std::uint64_t>(std::atoll(value()));
        } else if (arg == "--health-json") {
            opt.health_json = value();
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", argv[i]);
            usage();
            return 2;
        }
    }

    if (opt.checkpoint_dir.empty() && (opt.recover || opt.crash_after > 0)) {
        std::fprintf(stderr, "--recover and --crash-after require --checkpoint-dir\n");
        return 2;
    }
    if (!opt.checkpoint_dir.empty() && opt.replay_file.empty() && !opt.recover) {
        std::fprintf(stderr, "--checkpoint-dir requires --replay or --recover (the\n"
                             "journal records replayed traces; use --record to make one)\n");
        return 2;
    }
    if (opt.checkpoint_every < 1) {
        std::fprintf(stderr, "--checkpoint-every must be >= 1\n");
        return 2;
    }

    // Topology: preset, or imported file.
    topology topo;
    if (!opt.topo_file.empty()) {
        std::ifstream in(opt.topo_file);
        if (!in) {
            std::fprintf(stderr, "cannot read %s\n", opt.topo_file.c_str());
            return 1;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        topology_parse_result parsed = import_topology(buffer.str());
        for (const topology_parse_error& e : parsed.errors) {
            std::fprintf(stderr, "%s:%d: %s\n", opt.topo_file.c_str(), e.line,
                         e.message.c_str());
            if (!e.text.empty()) {
                std::fprintf(stderr, "  | %s\n", e.text.c_str());
            }
        }
        if (!parsed.ok()) return 1;
        topo = std::move(parsed.topo);
    } else {
        generator_params params = opt.topo_preset == "tiny"     ? generator_params::tiny()
                                  : opt.topo_preset == "medium" ? generator_params::medium()
                                  : opt.topo_preset == "large"  ? generator_params::large()
                                                                : generator_params::small();
        params.seed = opt.seed;
        topo = generate_topology(params);
    }
    std::printf("topology: %zu devices, %zu links, %zu circuit sets\n", topo.devices().size(),
                topo.links().size(), topo.circuit_sets().size());

    if (!opt.export_topo.empty()) {
        std::ofstream out(opt.export_topo);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", opt.export_topo.c_str());
            return 1;
        }
        out << export_topology(topo);
        std::printf("wrote %s\n", opt.export_topo.c_str());
        return 0;
    }

    rng crand(opt.seed + 1);
    const customer_registry customers = customer_registry::generate(topo, opt.customers, crand);
    alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    if (opt.extended) register_extended_alert_types(registry);
    const syslog_classifier syslog = syslog_classifier::train_from_catalog();

    const auto policy = parse_overflow_policy(opt.overflow);
    if (!policy) {
        std::fprintf(stderr, "unknown overflow policy: %s\n", opt.overflow.c_str());
        usage();
        return 2;
    }

    std::unique_ptr<fault_injector> faults;
    if (!opt.faults_spec.empty()) {
        fault_parse_result parsed = parse_fault_spec(opt.faults_spec);
        for (const fault_parse_error& e : parsed.errors) {
            std::fprintf(stderr, "--faults: bad clause '%s': %s\n", e.clause.c_str(),
                         e.message.c_str());
        }
        if (!parsed.ok()) return 2;
        faults = std::make_unique<fault_injector>(parsed.spec);
        std::printf("faults: injecting '%s'\n", opt.faults_spec.c_str());
    }

    overload::controller_config ocfg;
    ocfg.admission.max_alerts = opt.admission_budget;
    ocfg.breaker.enabled = opt.breaker;
    try {
        ocfg.validate();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
    overload::controller guard(ocfg, &topo, &registry);
    if (!guard.pass_through()) {
        std::printf("overload: admission budget %llu/window, breakers %s\n",
                    static_cast<unsigned long long>(opt.admission_budget),
                    opt.breaker ? "on" : "off");
    }

    const skynet_engine::deps deps{&topo, &customers, &registry, &syslog};
    if (opt.shards > 0) {
        sharded_config scfg;
        scfg.shards = static_cast<std::size_t>(opt.shards);
        scfg.overflow = *policy;
        scfg.watchdog_deadline_ms = opt.watchdog_deadline;
        if (faults) {
            scfg.force_full = faults->queue_pressure_hook();
            scfg.worker_stall = faults->worker_stall_hook();
            // Injected stalls without a watchdog would wedge the run;
            // arm a default deadline so the drill recovers on its own.
            if (scfg.worker_stall && scfg.watchdog_deadline_ms == 0) {
                scfg.watchdog_deadline_ms = 250;
            }
        }
        sharded_engine engine(deps, scfg);
        std::printf("engine: region-sharded, %zu shards, overflow=%s%s\n", engine.shard_count(),
                    std::string(to_string(*policy)).c_str(),
                    scfg.watchdog_deadline_ms > 0 ? ", watchdog on" : "");
        return run_session(engine, opt, topo, customers, faults.get(), &guard);
    }
    skynet_engine engine(deps);
    return run_session(engine, opt, topo, customers, faults.get(), &guard);
}
